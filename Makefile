# Convenience targets for the RLA reproduction.

PYTHON ?= python

.PHONY: install test bench figures quickstart clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Reproduce every paper figure from the CLI at a moderate scale.
figures:
	$(PYTHON) -m repro.cli fig4
	$(PYTHON) -m repro.cli fig5
	$(PYTHON) -m repro.cli fig7 --duration 120
	$(PYTHON) -m repro.cli fig8 --duration 120
	$(PYTHON) -m repro.cli fig9 --duration 120
	$(PYTHON) -m repro.cli fig10 --duration 120
	$(PYTHON) -m repro.cli multisession --duration 120

quickstart:
	$(PYTHON) examples/quickstart.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
