# Convenience targets for the RLA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-harness bench-smoke checkpoint-smoke fluid-smoke figures quickstart clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Full regression harness: all suites, compared against the committed
# per-PR record (see docs/PERFORMANCE.md for the schema and knobs).
bench-harness:
	PYTHONPATH=src $(PYTHON) -m repro.bench run --label local \
		--out BENCH_local.json --compare BENCH_8.json

# The fast smoke subset CI runs on every push (>25% slowdown fails):
# engine + fig7 plus the two smallest receiver-scaling sizes (RLA
# incremental aggregates) and the fluid ODE integrator's small twin.
# 3 repeats (min wins) because CI runners are noisy single-tenant VMs.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench run \
		--suites engine,fig7,rla_scale_4,rla_scale_64,fluid_small \
		--label ci --out BENCH_ci.json --repeats 3 \
		--compare benchmarks/BENCH_ci_baseline.json

# Checkpoint/restore byte-identity smoke: snapshot an *audited* churn
# run mid-flight, restore it in a brand-new interpreter, and require the
# resumed report pickle to equal the straight-through run's byte for
# byte.  Any divergence means a piece of simulation state escaped the
# snapshot (see docs/SIMULATOR.md, "Checkpoint/restore").
checkpoint-smoke:
	rm -rf ckpt-smoke && mkdir -p ckpt-smoke
	PYTHONPATH=src $(PYTHON) -c "import pickle; \
	from repro.scenarios import get_scenario, run_scenario; \
	from repro.scenarios.runner import checkpoint_scenario; \
	spec = get_scenario('tree-churn', duration=8.0, warmup=3.0, audited=True); \
	checkpoint_scenario(spec, at=5.0, path='ckpt-smoke/mid.ckpt'); \
	open('ckpt-smoke/straight.pkl', 'wb').write(pickle.dumps(run_scenario(spec)))"
	PYTHONPATH=src $(PYTHON) -c "import pickle; \
	from repro.checkpoint import resume; \
	straight = open('ckpt-smoke/straight.pkl', 'rb').read(); \
	resumed = pickle.dumps(resume('ckpt-smoke/mid.ckpt')); \
	assert resumed == straight, 'checkpoint restore diverged from straight run'; \
	print('checkpoint smoke OK: %d-byte report, byte-identical after fresh-process restore' % len(resumed))"

# Fluid backend smoke: the small-n fluid-vs-packet cross-validation
# cases (per-metric error tables, tolerances from docs/FLUID.md), then
# one 10^5-flow fluid point to prove the mean-field scaling path — the
# bounds must hold and the RED equilibrium must be Reynier-stable.
fluid-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli fluid crossval "--cases=-10-"
	PYTHONPATH=src $(PYTHON) -c "from repro.experiments.population import \
	run_population, format_population; \
	rows = run_population(counts=(100_000,)); \
	print(format_population(rows)); \
	assert all(row['bound_ok'] for row in rows), rows; \
	assert all(row['equilibrium']['stability_margin'] > 0 \
	           for row in rows), rows; \
	print('fluid smoke OK: bounds hold at 100k flows, stable equilibrium')"

# Reproduce every paper figure from the CLI at a moderate scale.
figures:
	$(PYTHON) -m repro.cli fig4
	$(PYTHON) -m repro.cli fig5
	$(PYTHON) -m repro.cli fig7 --duration 120
	$(PYTHON) -m repro.cli fig8 --duration 120
	$(PYTHON) -m repro.cli fig9 --duration 120
	$(PYTHON) -m repro.cli fig10 --duration 120
	$(PYTHON) -m repro.cli multisession --duration 120

quickstart:
	$(PYTHON) examples/quickstart.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
