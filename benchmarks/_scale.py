"""Benchmark scale knobs (importable by bench modules).

See benchmarks/conftest.py for how scale relates to the paper's runs.
"""

from __future__ import annotations

import os

DEFAULT_DURATION = 60.0
DEFAULT_WARMUP = 20.0


def bench_duration() -> float:
    """Measured window length for simulation benchmarks (seconds)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", DEFAULT_DURATION))


def bench_warmup() -> float:
    """Warmup discarded before measuring (seconds)."""
    return float(os.environ.get("REPRO_BENCH_WARMUP", DEFAULT_WARMUP))


def bench_workers() -> int:
    """Worker processes for the figure/sweep grids (``REPRO_BENCH_WORKERS``).

    Defaults to one per core, capped at 4 — enough to fan the five-case
    grids out without oversubscribing CI runners.  Set to 1 to force the
    serial path (results are byte-identical either way).
    """
    default = min(os.cpu_count() or 1, 4)
    return max(int(os.environ.get("REPRO_BENCH_WORKERS", default)), 1)
