"""Benchmark scale knobs (importable by bench modules).

See benchmarks/conftest.py for how scale relates to the paper's runs.
"""

from __future__ import annotations

import os

DEFAULT_DURATION = 60.0
DEFAULT_WARMUP = 20.0


def bench_duration() -> float:
    """Measured window length for simulation benchmarks (seconds)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", DEFAULT_DURATION))


def bench_warmup() -> float:
    """Warmup discarded before measuring (seconds)."""
    return float(os.environ.get("REPRO_BENCH_WARMUP", DEFAULT_WARMUP))
