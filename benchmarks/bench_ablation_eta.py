"""Ablation A1 — the trouble threshold eta (§3.3 rule 6, §4.2).

eta decides which congested receivers count toward num_trouble_rcvr.  On
an unbalanced topology (one much-more-congested branch plus mildly
congested ones), a small eta shrinks the troubled set toward the single
worst receiver — raising pthresh and cutting more often (lower RLA
throughput); a large eta keeps every reporter troubled — cutting less.
The paper recommends eta = 20 as the middle ground that still protects
the Proposition's upper bound.
"""

from __future__ import annotations

from dataclasses import replace

from _scale import bench_duration, bench_warmup
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time

#: one tight branch (share 50 pkt/s) + five mild ones (share 150 pkt/s)
SPEC = RestrictedSpec(mu_pps=[100, 300, 300, 300, 300, 300],
                      m=[1, 1, 1, 1, 1, 1])


def _run(eta: float, duration: float, warmup: float, seed: int = 1):
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, SPEC)
    jitter = transmission_time(SPEC.packet_size, pps_to_bps(min(SPEC.mu_pps)))
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(0.1 * index)
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(eta=eta, phase_jitter=jitter))
    session.start(0.05)
    sim.run(until=warmup)
    session.mark()
    sim.run(until=warmup + duration)
    return session.report()


def test_eta_sweep(benchmark):
    duration, warmup = bench_duration(), bench_warmup()

    def sweep():
        return {eta: _run(eta, duration, warmup) for eta in (2.0, 20.0, 100.0)}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n[ablation eta] eta -> throughput, cuts, signals, num_trouble")
    for eta, report in reports.items():
        print(f"  eta={eta:5.0f}: {report['throughput_pps']:6.1f} pkt/s, "
              f"cuts={report['window_cuts']:3d}, "
              f"signals={report['congestion_signals']:4d}, "
              f"trouble={report['num_trouble']}")

    # All variants keep the session alive and responsive.
    for report in reports.values():
        assert report["throughput_pps"] > 5
        assert report["window_cuts"] > 0
    # Monotone shape: a stricter trouble filter (small eta) never counts
    # more receivers as troubled than a looser one.
    assert (reports[2.0]["num_trouble"]
            <= reports[20.0]["num_trouble"]
            <= reports[100.0]["num_trouble"])
