"""Ablation A2 — the forced-cut protection (§3.3 rule 3, footnote 7).

With pure random listening a long run of ignored congestion signals can
let cwnd grow unchecked; the forced-cut rule halves the window whenever
the last cut is older than 2 * awnd * srtt.  We compare the two variants
on a six-branch topology (pthresh = 1/6 makes ignored-signal runs long
enough for the rule to matter).
"""

from __future__ import annotations

from _scale import bench_duration, bench_warmup
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time

SPEC = RestrictedSpec(mu_pps=[200] * 6, m=[1] * 6)


def _run(forced: bool, duration: float, warmup: float, seed: int = 2):
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, SPEC)
    jitter = transmission_time(SPEC.packet_size, pps_to_bps(200))
    for index, receiver in enumerate(receivers):
        TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                config=TcpConfig(phase_jitter=jitter)).start(0.1 * index)
    session = RLASession(
        sim, net, "rla-0", "S", receivers,
        config=RLAConfig(phase_jitter=jitter, forced_cut_enabled=forced),
    )
    session.start(0.05)
    sim.run(until=warmup)
    session.mark()
    sim.run(until=warmup + duration)
    return session.report()


def test_forced_cut_ablation(benchmark):
    duration, warmup = bench_duration(), bench_warmup()

    def compare():
        return {"on": _run(True, duration, warmup),
                "off": _run(False, duration, warmup)}

    reports = benchmark.pedantic(compare, rounds=1, iterations=1)
    on, off = reports["on"], reports["off"]
    print(f"\n[ablation forced-cut] on : thr {on['throughput_pps']:.1f}, "
          f"cwnd {on['mean_cwnd']:.1f}, cuts {on['window_cuts']} "
          f"(forced {on['forced_cuts']})")
    print(f"[ablation forced-cut] off: thr {off['throughput_pps']:.1f}, "
          f"cwnd {off['mean_cwnd']:.1f}, cuts {off['window_cuts']}")

    # Both variants work; footnote 7's prediction is directional: without
    # the forced cut the window only ever gets cut by the (randomized)
    # listening rule, so its average cannot be smaller by much.
    assert on["throughput_pps"] > 10
    assert off["throughput_pps"] > 10
    assert off["mean_cwnd"] >= 0.7 * on["mean_cwnd"]
    assert off["forced_cuts"] == 0
