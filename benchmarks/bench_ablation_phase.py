"""Ablation A3 — phase-effect elimination on drop-tail gateways (§3.1).

With drop-tail queues the drop pattern is exquisitely sensitive to packet
arrival phase; the paper adds a uniform random processing time (up to one
bottleneck service time) to break it.  We run the same shared-bottleneck
scenario with and without the jitter and report how evenly the competing
connections share — jitter should never make sharing worse, and without
it the share dispersion can be extreme.
"""

from __future__ import annotations

from _scale import bench_duration, bench_warmup
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time

SPEC = RestrictedSpec(mu_pps=[200, 200, 200], m=[1, 1, 1])


def _run(jitter_on: bool, duration: float, warmup: float, seed: int = 3):
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, SPEC)
    jitter = (transmission_time(SPEC.packet_size, pps_to_bps(200))
              if jitter_on else None)
    flows = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(0.1 * index)
        flows.append(flow)
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(phase_jitter=jitter))
    session.start(0.05)
    sim.run(until=warmup)
    session.mark()
    for flow in flows:
        flow.mark()
    sim.run(until=warmup + duration)
    tcp_rates = [flow.report()["throughput_pps"] for flow in flows]
    return {
        "rla": session.report()["throughput_pps"],
        "tcp": tcp_rates,
        "tcp_balance": min(tcp_rates) / max(tcp_rates) if max(tcp_rates) else 0,
    }


def test_phase_jitter_ablation(benchmark):
    duration, warmup = bench_duration(), bench_warmup()

    def compare():
        return {"with": _run(True, duration, warmup),
                "without": _run(False, duration, warmup)}

    reports = benchmark.pedantic(compare, rounds=1, iterations=1)
    for label, report in reports.items():
        rates = ", ".join(f"{r:.1f}" for r in report["tcp"])
        print(f"\n[ablation phase] {label:7s} jitter: RLA {report['rla']:.1f}, "
              f"TCP [{rates}], balance {report['tcp_balance']:.2f}")

    with_jitter = reports["with"]
    # with jitter, nobody is starved and the RLA stays within the
    # essential-fairness band of the worst TCP
    assert with_jitter["tcp_balance"] > 0.4
    assert with_jitter["rla"] > 0.25 * min(with_jitter["tcp"])
    # jitter never costs much utilization: the multicast stream occupies
    # every branch, so per-branch load is tcp_i + rla against 200 pkt/s
    floor = 0.8 if bench_duration() >= 40 else 0.6
    for tcp_rate in with_jitter["tcp"]:
        assert tcp_rate + with_jitter["rla"] > floor * 200
