"""Ablation A4 — RLA vs the rate-based baselines (LTRC, MBFC) and the
deterministic listener (§1, §3.2).

All schemes compete with one TCP connection per branch on a three-branch
restricted topology with RED gateways (the setting where [16] showed a
loss-threshold AIMD scheme is not fair to TCP).  We report each scheme's
throughput relative to the mean competing TCP throughput; the RLA should
sit closest to parity.
"""

from __future__ import annotations

import math

from _scale import bench_duration, bench_warmup
from repro.baselines.deterministic import DeterministicListenerSender
from repro.baselines.ltrc import LtrcSender
from repro.baselines.mbfc import MbfcSender
from repro.baselines.ratebase import LossReportReceiver
from repro.net.addressing import group_address
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted

SPEC = RestrictedSpec(mu_pps=[200, 200, 200], m=[1, 1, 1], gateway="red")


def _environment(seed: int):
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, SPEC)
    flows = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig())
        flow.start(0.1 * index)
        flows.append(flow)
    return sim, net, receivers, flows


def _measure(sim, flows, mark, report, duration, warmup):
    sim.run(until=warmup)
    mark()
    for flow in flows:
        flow.mark()
    sim.run(until=warmup + duration)
    tcp_rates = [flow.report()["throughput_pps"] for flow in flows]
    return report(), tcp_rates


def _run_window_scheme(sender_cls, duration, warmup, seed=4):
    sim, net, receivers, flows = _environment(seed)
    session = RLASession(sim, net, "mc-0", "S", receivers,
                         config=RLAConfig(), sender_cls=sender_cls)
    session.start(0.05)
    scheme_report, tcp_rates = _measure(
        sim, flows, session.mark,
        lambda: session.report()["throughput_pps"], duration, warmup,
    )
    return scheme_report, tcp_rates


def _run_rate_scheme(cls, duration, warmup, seed=4, **kwargs):
    sim, net, receivers, flows = _environment(seed)
    group = group_address("mc-0")
    net.join_group(group, "S", receivers)
    sender = cls(sim, net.node("S"), "mc-0", group, receivers,
                 initial_rate_pps=20, increase_pps=4, adjust_interval=1.0,
                 backoff_period=2.0, **kwargs)
    net.node("S").bind("mc-0", sender.on_packet)
    sinks = []
    for receiver in receivers:
        sink = LossReportReceiver(sim, net.node(receiver), "mc-0", "S")
        net.node(receiver).bind("mc-0", sink.on_packet)
        sinks.append(sink)
    sender.start(0.05)
    marker = {}

    def mark():
        sender._note_rate()
        marker["integral"] = sender.rate_integral
        marker["time"] = sim.now

    def report():
        elapsed = sim.now - marker["time"]
        return sender.mean_rate(elapsed, marker["integral"])

    return _measure(sim, flows, mark, report, duration, warmup)


def test_baseline_comparison(benchmark):
    duration, warmup = bench_duration(), bench_warmup()

    def run_all():
        from repro.rla.sender import RLASender

        results = {}
        results["RLA"] = _run_window_scheme(RLASender, duration, warmup)
        results["deterministic"] = _run_window_scheme(
            DeterministicListenerSender, duration, warmup)
        results["LTRC"] = _run_rate_scheme(LtrcSender, duration, warmup,
                                           loss_threshold=0.02)
        results["MBFC"] = _run_rate_scheme(MbfcSender, duration, warmup,
                                           loss_threshold=0.02,
                                           population_threshold=0.25)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    deviations = {}
    print("\n[baselines] scheme: throughput vs mean competing TCP")
    for name, (scheme_rate, tcp_rates) in results.items():
        mean_tcp = sum(tcp_rates) / len(tcp_rates)
        ratio = scheme_rate / mean_tcp if mean_tcp else float("inf")
        deviations[name] = abs(math.log(max(ratio, 1e-6)))
        print(f"  {name:13s}: {scheme_rate:6.1f} pkt/s vs TCP {mean_tcp:6.1f} "
              f"-> ratio {ratio:.2f}")

    rla_rate, rla_tcp = results["RLA"]
    # The RLA stays in the essential-fairness band of its competitors.
    assert 0.25 * min(rla_tcp) < rla_rate < 6 * max(rla_tcp)
    # The window-based schemes track TCP more closely than at least one of
    # the threshold-based rate controllers (the paper's §1 argument).
    assert deviations["RLA"] <= max(deviations["LTRC"], deviations["MBFC"])
