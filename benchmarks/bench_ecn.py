"""Extension benchmark: ECN marking versus dropping under RED.

Not a paper figure (the paper predates deployable ECN by a year) but the
natural follow-on its RED analysis invites: if the gateway *marks*
instead of dropping, the congestion-frequency equalization argument of
Theorem I applies unchanged while the loss-repair traffic disappears.
We run the same RLA + per-branch-TCP scenario with RED in drop mode and
in mark mode and compare fairness and repair volume.
"""

from __future__ import annotations

import pytest

from _scale import bench_duration, bench_warmup
from repro.net.network import Network, red_factory
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.units import mbps, ms, pps_to_bps


def _run(mark: bool, duration: float, warmup: float, seed: int = 8):
    sim = Simulator(seed=seed)
    net = Network(sim)
    factory = red_factory(sim, mark_ecn=mark)
    net.add_link("S", "G", mbps(100), ms(5))
    receivers = ["R1", "R2", "R3"]
    for receiver in receivers:
        net.add_link("G", receiver, pps_to_bps(200), ms(50),
                     queue_factory=factory)
    net.build_routes()
    flows = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(ecn=mark))
        flow.start(0.1 * index)
        flows.append(flow)
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(ecn=mark))
    session.start(0.05)
    sim.run(until=warmup)
    session.mark()
    for flow in flows:
        flow.mark()
    sim.run(until=warmup + duration)
    rla = session.report()
    tcp_rates = [flow.report()["throughput_pps"] for flow in flows]
    return {
        "rla_pps": rla["throughput_pps"],
        "repairs": rla["rtx_multicast"] + rla["rtx_unicast"],
        "signals": rla["congestion_signals"],
        "cuts": rla["window_cuts"],
        "tcp_min": min(tcp_rates),
        "tcp_rates": tcp_rates,
    }


def test_ecn_marking_vs_dropping(benchmark):
    duration, warmup = bench_duration(), bench_warmup()

    def compare():
        return {"drop": _run(False, duration, warmup),
                "mark": _run(True, duration, warmup)}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    for label, result in results.items():
        print(f"\n[ecn] {label:4s}: RLA {result['rla_pps']:6.1f} pkt/s "
              f"(cuts {result['cuts']}, repairs {result['repairs']}), "
              f"worst TCP {result['tcp_min']:6.1f}")

    drop, mark = results["drop"], results["mark"]
    # fairness holds in both modes (Theorem I band, n = 3)
    for result in results.values():
        assert 1 / 3 * result["tcp_min"] < result["rla_pps"] < 3 * result["tcp_min"]
    # marking keeps the control loop active but removes most repair work
    assert mark["signals"] > 0
    assert mark["repairs"] < max(drop["repairs"], 1)