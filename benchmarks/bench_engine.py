"""Micro-benchmarks of the simulation substrate itself.

Not a paper figure — these quantify the engine the experiments stand on
(event throughput, packet forwarding cost), which is what limits how close
to the paper's 3000-second runs a benchmark session can afford to go.
"""

from __future__ import annotations

from repro.net.network import Network, droptail_factory
from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow
from repro.units import ms, pps_to_bps


def _event_storm(n_events: int) -> int:
    sim = Simulator(seed=1)

    def chain(remaining: int) -> None:
        if remaining > 0:
            sim.schedule_after(0.001, chain, remaining - 1)

    for _ in range(100):
        sim.schedule(0.0, chain, n_events // 100)
    return sim.run()


def test_event_loop_throughput(benchmark):
    """Raw heapq event dispatch rate."""
    executed = benchmark(_event_storm, 50_000)
    assert executed >= 50_000


def _tcp_second() -> int:
    sim = Simulator(seed=1)
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("A", "B", pps_to_bps(500), ms(20))
    net.build_routes()
    flow = TcpFlow(sim, net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=10.0)
    return sim.events_executed


def test_tcp_simulation_rate(benchmark):
    """Events needed for 10 seconds of a single 500 pkt/s TCP flow."""
    events = benchmark(_tcp_second)
    assert events > 10_000
