"""Experiment E6 — figure 10: different round-trip times, generalized RLA.

36 receivers (27 leaves at ~230 ms RTT, 9 level-3 gateways at ~30 ms),
listening probability scaled by (srtt_i / srtt_max)^2 (§5.3).  The paper
reports the generalized RLA obtaining roughly twice the WTCP throughput
in both cases while no TCP is shut out.
"""

from __future__ import annotations

from _scale import bench_duration, bench_warmup, bench_workers
from repro.experiments.fig10_rtt import run_fig10
from repro.experiments.paperdata import FIG10_RTT
from repro.experiments.tables import format_case_table


def test_fig10_different_rtts(benchmark, run_cache):
    def run():
        return run_fig10(duration=bench_duration(), warmup=bench_warmup(),
                         seed=1, workers=bench_workers())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    run_cache["fig10"] = results
    print("\n" + format_case_table(
        results, paper=FIG10_RTT,
        title=(f"Figure 10 (different RTTs, generalized RLA), "
               f"duration={bench_duration():.0f}s warmup={bench_warmup():.0f}s"),
    ))

    for case, result in results.items():
        rla = result.rla[0]
        wtcp = result.wtcp["throughput_pps"]
        ratio = rla["throughput_pps"] / wtcp if wtcp > 0 else float("inf")
        print(f"case {case}: RLA/WTCP ratio {ratio:.2f} "
              f"(paper: {FIG10_RTT[case]['rla']['thrput'] / FIG10_RTT[case]['wtcp']['thrput']:.2f})")
        # "reasonable share": nobody shut out, RLA within a wide bound
        assert result.wtcp["throughput_pps"] > 5.0
        assert rla["throughput_pps"] > 0.25 * wtcp
        assert rla["throughput_pps"] < 2 * 36 * wtcp
        # the generalized RLA really ran with RTT scaling
        assert result.spec.resolved_generalized()
