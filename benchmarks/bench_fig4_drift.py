"""Experiment E1 — figure 4: drift diagram of two competing cwnds.

Analytical: evaluates the §4.4 particle model at the paper's setting
(n = 3, pipe = 10) and checks the qualitative structure the figure shows —
diagonal growth below the pipe boundary, a pull back toward the fair
operating point (5, 5) beyond it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig4_drift import PAPER_N, PAPER_PIPE, drift_field, render_field


def test_fig4_drift_field(benchmark):
    gx, gy, u, v = benchmark(drift_field, PAPER_N, PAPER_PIPE, 12.0, 1.0)
    print("\n" + render_field())

    # Region 1: uncongested (w1 + w2 <= pipe) -> both components grow by +2.
    uncongested = gx + gy <= PAPER_PIPE
    assert np.all(u[uncongested] == 2.0)
    assert np.all(v[uncongested] == 2.0)

    # Region 2: deep congestion -> the larger window is pulled down.
    deep = (gx + gy > PAPER_PIPE) & (gx >= 8)
    assert np.all(u[deep] < 0)

    # Symmetry: the model treats the two sessions identically.
    assert np.allclose(u, v.T)

    # The fair point's neighbourhood is where drift changes sign along the
    # diagonal: just below the boundary it grows, just above it shrinks
    # for windows larger than their fair share.
    assert u[4, 4] == 2.0          # (5, 5): still uncongested side
    assert u[6, 6] < 2.0           # (7, 7): congested, damped or negative
