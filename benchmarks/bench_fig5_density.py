"""Experiment E2 — figure 5: density of (cwnd1, cwnd2) for two sessions.

Two levels, as in DESIGN.md:

* the §4.4 Markov model at the paper's scale (n = 27, per-session fair
  cwnd 20) — fast, deterministic given the seed;
* the packet-level reproduction of footnote 11 (two RLA sessions + one
  TCP per branch, path pipe 60 packets) at benchmark scale.

The paper's claim: the probability mass concentrates around the fair
operating point (20, 20) and the sessions' mean windows are equal.
"""

from __future__ import annotations

import pytest

from _scale import bench_duration, bench_warmup
from repro.experiments.fig5_density import (
    run_packet_density,
    run_particle_density,
)


def test_fig5_particle_model(benchmark):
    trace = benchmark.pedantic(
        run_particle_density, kwargs={"steps": 200_000, "seed": 5},
        rounds=1, iterations=1,
    )
    print(f"\n[fig5/model] mean cwnds ({trace.mean_w1:.1f}, {trace.mean_w2:.1f}) "
          f"(paper's fair point: 20, 20); mass within r=10: "
          f"{trace.mass_within(10.0):.1%}, r=15: {trace.mass_within(15.0):.1%}")
    assert trace.mean_w1 == pytest.approx(trace.mean_w2, rel=0.1)
    assert trace.mean_w1 == pytest.approx(20.0, rel=0.5)
    assert trace.mass_within(15.0) > 0.5


def test_fig5_packet_level(benchmark):
    duration = max(bench_duration(), 60.0)

    def run():
        return run_packet_density(duration=duration, warmup=bench_warmup(),
                                  seed=5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[fig5/packet] mean cwnds ({result.mean_w1:.1f}, "
          f"{result.mean_w2:.1f}) over {result.samples} samples "
          f"(paper: ~19.9, 20.1)")
    # equal split between the two sessions
    assert result.mean_w1 == pytest.approx(result.mean_w2, rel=0.35)
    # mass concentrated: the modal cell is near the diagonal
    grid = result.density(w_max=60)
    peak = grid.argmax()
    peak_w1, peak_w2 = divmod(peak, grid.shape[1])
    assert abs(peak_w1 - peak_w2) <= 12
