"""Experiment E3 — figure 7: RLA sharing with TCP, drop-tail gateways.

Runs all five tree cases at benchmark scale, prints the paper's table next
to ours, and asserts:

* Theorem II (E9): 1/4 * WTCP < RLA < 2n * WTCP in every case;
* the shape results the paper highlights: the RLA wins big in case 5
  (single congested subtree), correlation helps (case 1 window > case 3
  window, the Lemma), forced cuts stay rare, and randomized cuts track
  congestion signals / num_trouble.
"""

from __future__ import annotations

import pytest

from _scale import bench_duration, bench_warmup, bench_workers
from repro.experiments.fig7_droptail import run_fig7
from repro.experiments.tables import format_case_table
from repro.experiments.paperdata import FIG7_DROPTAIL
from repro.models.fairness import check_essential_fairness


def test_fig7_droptail_table(benchmark, run_cache):
    def run():
        return run_fig7(duration=bench_duration(), warmup=bench_warmup(),
                        seed=1, workers=bench_workers())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    run_cache["fig7"] = results
    print("\n" + format_case_table(
        results, paper=FIG7_DROPTAIL,
        title=(f"Figure 7 (drop-tail), duration={bench_duration():.0f}s "
               f"warmup={bench_warmup():.0f}s; paper: 2900s/100s"),
    ))

    verdicts = {}
    for case, result in results.items():
        rla = result.rla[0]
        n = max(rla["num_trouble"], 1)
        verdict = check_essential_fairness(
            rla["throughput_pps"], result.wtcp["throughput_pps"], n, "droptail"
        )
        verdicts[case] = verdict
        print(f"case {case}: {verdict}")
        assert verdict.fair, f"Theorem II violated in case {case}: {verdict}"

    # Finer shape checks need enough window cuts to average out the
    # randomized listening; only meaningful from ~40 measured seconds up.
    if bench_duration() >= 40:
        # case 5 (one congested subtree of 9) gives the RLA the largest
        # advantage; the paper's ratio there is ~3.
        ratios = {case: verdicts[case].ratio for case in results}
        assert ratios[5] == max(ratios.values())
        assert ratios[5] > 1.5
        # Lemma shape: fully-correlated losses (case 1) sustain a larger
        # RLA window than fully-independent ones (case 3).
        assert results[1].rla[0]["mean_cwnd"] > results[3].rla[0]["mean_cwnd"]
    # Forced cuts are rare (the paper observed none).
    for case, result in results.items():
        rla = result.rla[0]
        assert rla["forced_cuts"] <= max(2, 0.1 * rla["window_cuts"])
