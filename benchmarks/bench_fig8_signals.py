"""Experiment E4 — figure 8: congestion-signal statistics per branch.

Reuses the figure 7 runs (as the paper does): for every case it compares
the congestion signals the RLA sender saw from each branch with the window
cuts of the TCP connection sharing that branch — the §3.1 claim that both
sender types see the same congestion *frequency* on drop-tail gateways
once phase effects are eliminated.
"""

from __future__ import annotations

from statistics import mean

from _scale import bench_duration, bench_warmup, bench_workers
from repro.experiments.fig7_droptail import run_fig7
from repro.experiments.paperdata import FIG8_SIGNALS
from repro.experiments.tables import format_signals_table


def test_fig8_signal_statistics(benchmark, run_cache):
    def obtain():
        cached = run_cache.get("fig7")
        if cached is not None:
            return cached
        # Cache miss (figure 7 suite deselected): fan out exactly like
        # bench_fig7_droptail so REPRO_BENCH_WORKERS is honored either way.
        return run_fig7(duration=bench_duration(), warmup=bench_warmup(),
                        seed=1, workers=bench_workers())

    results = benchmark.pedantic(obtain, rounds=1, iterations=1)
    run_cache["fig7"] = results
    print("\n" + format_signals_table(
        results, paper=FIG8_SIGNALS,
        title="Figure 8 - congestion signals per branch (drop-tail runs; "
              "paper counts are over 2900 s)",
    ))

    # §3.1 shape: on the uniformly congested cases the per-branch RLA
    # signal frequency matches the TCP window-cut frequency within a
    # factor ~2 (the paper found them within ~5% over 2900 s).
    for case in (2, 3):
        rla_avg = mean(results[case].rla_signals_by_tier("more"))
        tcp_avg = mean(results[case].tcp_cuts_by_tier("more"))
        assert tcp_avg > 0
        ratio = rla_avg / tcp_avg
        print(f"case {case}: RLA signals/branch {rla_avg:.1f}, "
              f"TCP cuts {tcp_avg:.1f}, ratio {ratio:.2f}")
        assert 0.4 < ratio < 2.5

    # Case 5: congested-subtree branches see far more signals than the
    # uncongested ones (paper: 1082 vs 112).
    more = mean(results[5].rla_signals_by_tier("more"))
    less = mean(results[5].rla_signals_by_tier("less") or [0])
    assert more > 2 * less
