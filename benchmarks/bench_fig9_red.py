"""Experiment E5 — figure 9: RLA sharing with TCP, RED gateways.

Same five cases as figure 7 with RED gateways (min 5 / max 15 / buffer
20) and no phase-effect jitter.  Asserts Theorem I (E9) and the paper's
observation that RED brings the sharing closer to absolute fairness than
drop-tail does in the fully-shared case.
"""

from __future__ import annotations

from _scale import bench_duration, bench_warmup, bench_workers
from repro.experiments.fig9_red import run_fig9
from repro.experiments.paperdata import FIG9_RED
from repro.experiments.tables import format_case_table
from repro.models.fairness import check_essential_fairness


def test_fig9_red_table(benchmark, run_cache):
    def run():
        return run_fig9(duration=bench_duration(), warmup=bench_warmup(),
                        seed=1, workers=bench_workers())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    run_cache["fig9"] = results
    print("\n" + format_case_table(
        results, paper=FIG9_RED,
        title=(f"Figure 9 (RED), duration={bench_duration():.0f}s "
               f"warmup={bench_warmup():.0f}s; paper: 2900s/100s"),
    ))

    ratios = {}
    for case, result in results.items():
        rla = result.rla[0]
        n = max(rla["num_trouble"], 1)
        verdict = check_essential_fairness(
            rla["throughput_pps"], result.wtcp["throughput_pps"], n, "red"
        )
        ratios[case] = verdict.ratio
        print(f"case {case}: {verdict}")
        assert verdict.fair, f"Theorem I violated in case {case}: {verdict}"

    # Shape checks need enough cuts to average out; gate on scale.
    if bench_duration() >= 40:
        # the one-congested-subtree case still wins the most bandwidth
        assert ratios[5] == max(ratios.values())
    # Paper: with RED, case 1 sharing is close to absolute (ratio ~1.4 at
    # full scale vs 1.8 for drop-tail).  Require it within a loose band.
    assert 0.5 < ratios[1] < 3.0
