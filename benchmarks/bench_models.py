"""Experiment E8 — validate the §4 closed forms by Monte Carlo.

Regenerates the analytical backbone of the paper: equation 1 (PA window),
equation 3 (two-receiver RLA window), the n-receiver Proposition bounds
(equation 2) and the correlation Lemma, each checked against a simulation
of the exact window jump chain the proofs analyse.
"""

from __future__ import annotations

import pytest

from repro.models.rla_drift import (
    lemma_correlation_gap,
    proposition_bounds,
    rla_window_common,
    rla_window_independent,
    rla_window_two_receivers,
    simulate_window_chain,
)
from repro.models.tcp_formula import pa_window

STEPS = 400_000


def test_equation1_monte_carlo(benchmark):
    """TCP's PA window: chain simulation vs sqrt(2(1-p)/p)."""
    p = 0.01
    simulated = benchmark(simulate_window_chain, [p], STEPS, 11)
    closed = pa_window(p)
    print(f"\n[eq 1] p={p}: simulated W={simulated:.2f}, closed form {closed:.2f}")
    assert simulated == pytest.approx(closed, rel=0.15)


def test_equation3_monte_carlo(benchmark):
    """Two-receiver RLA window (eq 3) vs the jump chain."""
    p1, p2 = 0.02, 0.01
    simulated = benchmark(simulate_window_chain, [p1, p2], STEPS, 12)
    closed = rla_window_two_receivers(p1, p2)
    print(f"\n[eq 3] p=({p1},{p2}): simulated W={simulated:.2f}, "
          f"closed form {closed:.2f}")
    assert simulated == pytest.approx(closed, rel=0.15)


def test_proposition_bounds_sweep(benchmark):
    """Equation 2 bounds hold across n for the simulated chain."""

    def sweep():
        results = []
        for n in (2, 4, 8, 16, 27):
            p = 0.02
            w = simulate_window_chain([p] * n, steps=100_000, seed=n)
            lower, upper = proposition_bounds(p, n)
            results.append((n, lower, w, upper))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n[eq 2] n: lower < simulated W < upper")
    for n, lower, w, upper in results:
        print(f"  n={n:2d}: {lower:6.2f} < {w:6.2f} < {upper:6.2f}")
        assert lower < w < upper


def test_lemma_correlation(benchmark):
    """§4.2 Lemma: correlated losses give a larger average window."""

    def compare():
        p, n = 0.02, 9
        independent = simulate_window_chain([p] * n, steps=150_000, seed=21)
        common = simulate_window_chain([p] * n, steps=150_000, seed=21,
                                       correlated=True)
        return independent, common

    independent, common = benchmark.pedantic(compare, rounds=1, iterations=1)
    closed_gap = lemma_correlation_gap(0.02, 9)
    print(f"\n[Lemma] independent W={independent:.2f}, common W={common:.2f}, "
          f"closed-form gap {closed_gap:.2f}")
    assert common > independent
    assert rla_window_common(0.02, 9) > rla_window_independent([0.02] * 9)
