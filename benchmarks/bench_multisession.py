"""Experiment E7 — §5.2: two overlapping multicast sessions share equally.

Two RLA sessions from the same sender to the same 27 receivers on the
case-3 topology, plus the background TCPs.  The paper reports 65.1 vs
65.9 pkt/s and mean windows 19.9 vs 20.1 — near-perfect multicast
fairness, the §4.4 theory at packet level.
"""

from __future__ import annotations

import pytest

from _scale import bench_duration, bench_warmup
from repro.experiments.multisession import run_multisession, summarize
from repro.experiments.paperdata import MULTISESSION


def test_two_sessions_share_equally(benchmark):
    def run():
        return run_multisession(duration=bench_duration(),
                                warmup=bench_warmup(), seed=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = summarize(result)
    for metric, (measured, paper) in summary.items():
        print(f"\n[multisession] {metric}: measured {measured}, paper {paper}")

    rates = [r["throughput_pps"] for r in result.rla]
    windows = [r["mean_cwnd"] for r in result.rla]
    assert min(rates) > 0
    # equality of the two sessions (the paper's point)
    assert min(rates) / max(rates) > 0.55
    assert min(windows) / max(windows) > 0.6
    # combined, the two sessions take roughly the share one session plus
    # one TCP-equivalent would: each branch serves 2 RLA + 1 TCP at a
    # 200 pkt/s bottleneck, so the pair of sessions together stay under it.
    assert sum(rates) < 220
