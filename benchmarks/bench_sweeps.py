"""Sensitivity sweeps (beyond the paper's single operating point).

Three knobs around the §5 setup, all on the symmetric restricted topology
where near-absolute fairness is the expected outcome:

* receiver count (the ``n`` of the Theorem bounds),
* gateway buffer size,
* absolute bottleneck speed.

Asserts the essential-fairness verdict at every sweep point.
"""

from __future__ import annotations

from _scale import bench_duration, bench_warmup, bench_workers
from repro.experiments.sweeps import (
    format_sweep,
    sweep_buffer_size,
    sweep_receiver_count,
    sweep_share,
)


def test_receiver_count_sweep(benchmark):
    def run():
        return sweep_receiver_count(counts=(2, 4, 8),
                                    duration=bench_duration(),
                                    warmup=bench_warmup(),
                                    workers=bench_workers())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_sweep(rows, "n_receivers"))
    for row in rows:
        assert row["fair"], f"unfair at n={row['n_receivers']}: {row}"
    # symmetric topology: the ratio must not blow up with n even though
    # the theorem's upper bound grows as 2n
    assert all(row["ratio"] < 4.0 for row in rows)


def test_buffer_size_sweep(benchmark):
    def run():
        return sweep_buffer_size(buffers=(10, 20, 40),
                                 duration=bench_duration(),
                                 warmup=bench_warmup(),
                                 workers=bench_workers())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_sweep(rows, "buffer_pkts"))
    for row in rows:
        assert row["fair"], f"unfair at buffer={row['buffer_pkts']}: {row}"


def test_share_sweep(benchmark):
    def run():
        return sweep_share(shares=(50.0, 100.0, 200.0),
                           duration=bench_duration(),
                           warmup=bench_warmup(),
                           workers=bench_workers())

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_sweep(rows, "share_pps"))
    for row in rows:
        assert row["fair"], f"unfair at share={row['share_pps']}: {row}"
    # throughput scales with the configured share
    assert rows[-1]["rla_pps"] > rows[0]["rla_pps"]