"""Shared infrastructure for the paper-reproduction benchmarks.

Every figure/table benchmark runs a scaled-down version of the paper's
3000-second NS2 experiments.  The scale is controlled by two environment
variables so a higher-fidelity run is one command away:

* ``REPRO_BENCH_DURATION`` — measured seconds after warmup (default 60;
  the paper used 2900),
* ``REPRO_BENCH_WARMUP`` — discarded warmup seconds (default 20; the
  paper used 100).

Benchmarks print the paper's numbers next to ours (the ``[paper]``
bracket) and assert the *shape* results: who wins, the theorem bounds,
and the case ordering — not absolute throughput equality.

Expensive simulation results are cached per session so figure 8 (which
the paper derives from the same runs as figure 7) does not re-simulate.
"""

from __future__ import annotations

from typing import Dict

import pytest

from _scale import bench_duration, bench_warmup


@pytest.fixture(scope="session")
def run_cache() -> Dict[str, object]:
    """Session-wide cache of simulation results shared across benchmarks."""
    return {}


@pytest.fixture(scope="session")
def scale() -> Dict[str, float]:
    """The duration/warmup this benchmark session runs at."""
    return {"duration": bench_duration(), "warmup": bench_warmup()}
