#!/usr/bin/env python
"""Window dynamics: the RLA sawtooth next to TCP's, plus a CSV export.

Samples both senders' congestion windows at 100 ms over a shared-branch
scenario, renders them as an ASCII chart (the RLA's window should ride
the same sawtooth band as TCP's — that is what essential fairness looks
like in the time domain), and writes the series to ``cwnd_timeline.csv``
for external plotting.

Run:  python examples/cwnd_timeline.py
"""

from __future__ import annotations

from repro import RLAConfig, RLASession, Simulator, TcpConfig, TcpFlow
from repro.analysis import cwnd_probe, multi_line_plot, write_timeseries_csv
from repro.net import Network, droptail_factory
from repro.units import mbps, ms, pps_to_bps, transmission_time

DURATION = 120.0


def main() -> None:
    sim = Simulator(seed=17)
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", mbps(100), ms(5), queue_factory=droptail_factory(100))
    for receiver in ("R1", "R2"):
        net.add_link("G", receiver, pps_to_bps(300), ms(50))
    net.build_routes()
    jitter = transmission_time(1000, pps_to_bps(300))

    tcp = TcpFlow(sim, net, "tcp-0", "S", "R1",
                  config=TcpConfig(phase_jitter=jitter))
    session = RLASession(sim, net, "rla-0", "S", ["R1", "R2"],
                         config=RLAConfig(phase_jitter=jitter))
    tcp.start(0.1)
    session.start(0.05)

    tcp_probe = cwnd_probe(sim, tcp.sender, interval=0.1, name="TCP cwnd")
    rla_probe = cwnd_probe(sim, session.sender, interval=0.1, name="RLA cwnd")
    tcp_probe.start()
    rla_probe.start()
    sim.run(until=DURATION)

    window = slice(200, 1200)  # a 100-second slice past slow start
    tcp_series = tcp_probe.series.window(20.0, DURATION)
    rla_series = rla_probe.series.window(20.0, DURATION)
    print(multi_line_plot([tcp_series, rla_series], height=14,
                          title="Congestion windows, shared 300 pkt/s branch"))
    print(f"\nmeans: TCP {tcp_series.stats().mean:.1f}, "
          f"RLA {rla_series.stats().mean:.1f} packets")

    rows = write_timeseries_csv("cwnd_timeline.csv",
                                [tcp_probe.series, rla_probe.series])
    print(f"wrote cwnd_timeline.csv ({rows} rows)")


if __name__ == "__main__":
    main()
