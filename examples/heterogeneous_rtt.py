#!/usr/bin/env python
"""The generalized RLA with receivers at very different distances (§5.3).

A session with one nearby receiver (10 ms one-way) and one far receiver
(100 ms one-way) shares a common bottleneck with TCP.  Without RTT
scaling, the near receiver's frequent congestion signals would throttle
the whole session; the generalized RLA discounts them by
``(srtt_i / srtt_max)^2``.  This example runs both variants and shows the
difference in how often the sender listens to each receiver's signals.

Run:  python examples/heterogeneous_rtt.py
"""

from __future__ import annotations

from repro import RLAConfig, Simulator, TcpConfig, TcpFlow
from repro.net import Network, droptail_factory
from repro.rla import GeneralizedRLASession, RLASession
from repro.units import mbps, ms, pps_to_bps, transmission_time

WARMUP, DURATION = 20.0, 120.0
SHARED_RATE = 400.0  # pkt/s bottleneck shared by everyone


def build(sim: Simulator) -> Network:
    net = Network(sim, default_queue=droptail_factory(20))
    # shared bottleneck S -> G, then fast branches of unequal length
    net.add_link("S", "G", pps_to_bps(SHARED_RATE), ms(5))
    net.add_link("G", "Rnear", mbps(100), ms(10))
    net.add_link("G", "Rfar", mbps(100), ms(100))
    net.build_routes()
    return net


def run(generalized: bool) -> dict:
    sim = Simulator(seed=13)
    net = build(sim)
    jitter = transmission_time(1000, pps_to_bps(SHARED_RATE))
    tcp = TcpFlow(sim, net, "tcp-0", "S", "Rfar",
                  config=TcpConfig(phase_jitter=jitter))
    tcp.start(0.1)
    session_cls = GeneralizedRLASession if generalized else RLASession
    session = session_cls(sim, net, "rla-0", "S", ["Rnear", "Rfar"],
                          config=RLAConfig(phase_jitter=jitter))
    session.start(0.05)
    sim.run(until=WARMUP)
    session.mark()
    tcp.mark()
    sim.run(until=WARMUP + DURATION)
    return {"rla": session.report(), "tcp": tcp.report()}


def main() -> None:
    for generalized in (False, True):
        label = "generalized (pthresh ~ (rtt/rtt_max)^2)" if generalized \
            else "original (pthresh = 1/n)"
        outcome = run(generalized)
        rla, tcp = outcome["rla"], outcome["tcp"]
        signals = rla["signals_by_receiver"]
        print(f"--- {label} ---")
        print(f"RLA : {rla['throughput_pps']:7.1f} pkt/s, cwnd "
              f"{rla['mean_cwnd']:5.1f}, cuts {rla['window_cuts']}")
        print(f"TCP : {tcp['throughput_pps']:7.1f} pkt/s, cwnd "
              f"{tcp['mean_cwnd']:5.1f}")
        print(f"signals: near={signals.get('Rnear', 0)}, "
              f"far={signals.get('Rfar', 0)}\n")


if __name__ == "__main__":
    main()
