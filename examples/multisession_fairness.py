#!/usr/bin/env python
"""Multicast fairness between two overlapping RLA sessions (§4.4, §5.2).

Runs the paper's footnote-11 setup at small scale — two RLA sessions plus
one TCP per branch, each path's pipe sized for a fair per-session window
of ~20 packets — and draws an ASCII density plot of the two senders'
congestion windows (our figure 5).  The mass should concentrate around
the fair operating point (20, 20).

Run:  python examples/multisession_fairness.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5_density import run_packet_density, run_particle_density

SHADES = " .:-=+*#%@"


def ascii_density(grid: np.ndarray, bucket: int = 4) -> str:
    """Coarse ASCII rendering of the (cwnd1, cwnd2) occupancy grid."""
    size = grid.shape[0] // bucket
    coarse = np.zeros((size, size))
    for i in range(size):
        for j in range(size):
            coarse[i, j] = grid[i * bucket:(i + 1) * bucket,
                                j * bucket:(j + 1) * bucket].sum()
    peak = coarse.max() or 1.0
    lines = []
    for j in range(size - 1, -1, -1):  # cwnd2 on the y axis, increasing up
        row = "".join(
            SHADES[min(int(len(SHADES) * coarse[i, j] / peak), len(SHADES) - 1)]
            for i in range(size)
        )
        lines.append(f"{j * bucket:3d} |{row}")
    lines.append("    +" + "-" * size)
    lines.append("     cwnd1 in buckets of "
                 f"{bucket} packets (0..{size * bucket})")
    return "\n".join(lines)


def main() -> None:
    print("particle-model prediction (section 4.4):")
    trace = run_particle_density(steps=100_000, seed=9)
    print(f"  mean cwnds ({trace.mean_w1:.1f}, {trace.mean_w2:.1f}); "
          f"mass within 10 of the fair point: {trace.mass_within(10.0):.1%}\n")

    print("packet-level run (10 receivers, 90 s measured):")
    result = run_packet_density(n_receivers=10, duration=90.0, warmup=20.0,
                                seed=9)
    print(f"  mean cwnds ({result.mean_w1:.1f}, {result.mean_w2:.1f}) "
          f"over {result.samples} samples (paper: ~19.9, 20.1)\n")
    print(ascii_density(result.density(w_max=47)))


if __name__ == "__main__":
    main()
