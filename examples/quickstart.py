#!/usr/bin/env python
"""Quickstart: one RLA multicast session sharing a bottleneck with TCP.

Builds the smallest interesting scenario — a three-receiver multicast
session competing with one TCP connection per branch through drop-tail
gateways — runs it for a simulated few minutes, and prints the metrics
the paper reports: throughput, mean congestion window, mean RTT,
congestion signals and window cuts, plus the essential-fairness verdict
of Theorem II.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RLAConfig, RLASession, Simulator, TcpConfig, TcpFlow
from repro.models import check_essential_fairness
from repro.net import Network, droptail_factory
from repro.units import mbps, ms, pps_to_bps, transmission_time

BRANCH_RATE_PPS = 200       # each branch bottleneck, packets/second
N_RECEIVERS = 3
WARMUP, DURATION = 20.0, 180.0


def main() -> None:
    sim = Simulator(seed=7)

    # -- topology: S -- G -- {R1, R2, R3}, per-branch bottlenecks --------
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", mbps(100), ms(5), queue_factory=droptail_factory(100))
    receivers = [f"R{i}" for i in range(1, N_RECEIVERS + 1)]
    for receiver in receivers:
        net.add_link("G", receiver, pps_to_bps(BRANCH_RATE_PPS), ms(50))
    net.build_routes()

    # -- §3.1: random processing time breaks drop-tail phase effects ----
    jitter = transmission_time(1000, pps_to_bps(BRANCH_RATE_PPS))

    # -- one background TCP per branch -----------------------------------
    tcps = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(offset=0.1 * index)
        tcps.append(flow)

    # -- the RLA multicast session ----------------------------------------
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(phase_jitter=jitter))
    session.start(offset=0.05)

    # -- warmup, then measure --------------------------------------------
    sim.run(until=WARMUP)
    session.mark()
    for flow in tcps:
        flow.mark()
    sim.run(until=WARMUP + DURATION)

    rla = session.report()
    print(f"simulated {DURATION:.0f}s after {WARMUP:.0f}s warmup "
          f"({sim.events_executed:,} events)\n")
    print(f"{'flow':10s} {'thrput':>8s} {'cwnd':>6s} {'RTT':>7s} {'cuts':>5s}")
    print(f"{'RLA':10s} {rla['throughput_pps']:8.1f} {rla['mean_cwnd']:6.1f} "
          f"{rla['mean_rtt']:7.3f} {rla['window_cuts']:5d}   "
          f"({rla['congestion_signals']} signals, "
          f"{rla['forced_cuts']} forced cuts)")
    worst_tcp = None
    for flow in tcps:
        report = flow.report()
        print(f"{flow.flow:10s} {report['throughput_pps']:8.1f} "
              f"{report['mean_cwnd']:6.1f} {report['mean_rtt']:7.3f} "
              f"{report['window_cuts']:5d}")
        if worst_tcp is None or report["throughput_pps"] < worst_tcp:
            worst_tcp = report["throughput_pps"]

    verdict = check_essential_fairness(
        rla["throughput_pps"], worst_tcp, max(rla["num_trouble"], 1), "droptail"
    )
    print(f"\nTheorem II check: {verdict}")


if __name__ == "__main__":
    main()
