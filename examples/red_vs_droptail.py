#!/usr/bin/env python
"""RED vs drop-tail gateways for the same RLA/TCP sharing scenario.

The paper proves tighter essential-fairness bounds under RED (Theorem I:
a=1/3, b=sqrt(3n)) than under drop-tail (Theorem II: a=1/4, b=2n) because
RED equalizes the loss *probability* seen by all connections, while
drop-tail only equalizes the congestion *frequency* — and only once phase
effects are eliminated.  This example runs the same three-branch scenario
through both gateway types and prints the two verdicts side by side.

Run:  python examples/red_vs_droptail.py
"""

from __future__ import annotations

from repro import RLAConfig, RLASession, Simulator, TcpConfig, TcpFlow
from repro.models import check_essential_fairness, essential_fairness_bounds
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time

WARMUP, DURATION = 20.0, 120.0
BRANCHES = [200.0, 200.0, 200.0]   # pkt/s, one TCP each


def run(gateway: str) -> dict:
    spec = RestrictedSpec(mu_pps=BRANCHES, m=[1] * len(BRANCHES),
                          gateway=gateway)
    sim = Simulator(seed=11)
    net, receivers = build_restricted(sim, spec)
    # §3.1: drop-tail needs the random processing time; RED does not.
    jitter = (transmission_time(1000, pps_to_bps(min(BRANCHES)))
              if gateway == "droptail" else None)
    tcps = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(0.1 * index)
        tcps.append(flow)
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(phase_jitter=jitter))
    session.start(0.05)
    sim.run(until=WARMUP)
    session.mark()
    for flow in tcps:
        flow.mark()
    sim.run(until=WARMUP + DURATION)
    rla = session.report()
    tcp_rates = [flow.report()["throughput_pps"] for flow in tcps]
    return {"rla": rla, "tcp_rates": tcp_rates}


def main() -> None:
    for gateway in ("droptail", "red"):
        outcome = run(gateway)
        rla = outcome["rla"]
        wtcp = min(outcome["tcp_rates"])
        n = max(rla["num_trouble"], 1)
        a, b = essential_fairness_bounds(n, gateway)
        verdict = check_essential_fairness(rla["throughput_pps"], wtcp, n,
                                           gateway)
        print(f"--- {gateway} (theorem bounds a={a:.2f}, b={b:.2f}) ---")
        print(f"RLA : {rla['throughput_pps']:7.1f} pkt/s, "
              f"cwnd {rla['mean_cwnd']:5.1f}, "
              f"cuts {rla['window_cuts']} of {rla['congestion_signals']} signals")
        print(f"TCPs: {', '.join(f'{rate:.1f}' for rate in outcome['tcp_rates'])}"
              f" pkt/s")
        print(f"{verdict}\n")


if __name__ == "__main__":
    main()
