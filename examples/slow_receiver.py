#!/usr/bin/env python
"""The §4.3 slow-receiver option: eject the laggard, recover the session.

One receiver sits behind a 20 pkt/s trickle while the rest enjoy
400 pkt/s.  Reliable multicast must pace the whole session at the slowest
branch, so throughput collapses — until the LaggardDropPolicy notices the
receiver pinned a full window behind the leader and ejects it, at which
point the session springs back to the fast branches' rate.

Run:  python examples/slow_receiver.py
"""

from __future__ import annotations

from repro import RLASession, Simulator
from repro.analysis import Probe, line_plot
from repro.net import Network, droptail_factory
from repro.rla import LaggardDropPolicy
from repro.units import mbps, ms, pps_to_bps


def main() -> None:
    sim = Simulator(seed=21)
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", mbps(100), ms(5), queue_factory=droptail_factory(100))
    net.add_link("G", "R1", pps_to_bps(400), ms(50))
    net.add_link("G", "R2", pps_to_bps(400), ms(50))
    net.add_link("G", "Rslow", pps_to_bps(20), ms(50))
    net.build_routes()

    session = RLASession(sim, net, "rla-0", "S", ["R1", "R2", "Rslow"])
    session.start()

    events = []
    policy = LaggardDropPolicy(
        sim, session.sender, check_interval=2.0, patience=10.0,
        on_drop=lambda rid: events.append((sim.now, rid)),
    )
    policy.start()

    # sample the reliable delivery rate over time
    probe = Probe(sim, lambda: session.sender.max_reach_all, interval=1.0,
                  name="delivered")
    probe.start()
    sim.run(until=120.0)

    rate = probe.series.rate_of_change()
    rate.name = "session pkt/s"
    print(line_plot(rate, title="Reliable session throughput "
                               "(watch the jump when the laggard is cut)"))
    for when, rid in events:
        print(f"\n  t={when:5.1f}s: dropped {rid} "
              f"(gap behind leader exceeded half the average window)")
    print(f"  final receiver set: {sorted(session.sender.receivers)}")
    final_rate = rate.values[-5:]
    print(f"  steady throughput after the drop: "
          f"~{sum(final_rate)/len(final_rate):.0f} pkt/s (was pinned at ~20)")


if __name__ == "__main__":
    main()
