#!/usr/bin/env python
"""Check the §4 theory against live measurements in one script.

Runs a TCP flow and an RLA session on the restricted topology, extracts
each sender's *measured* congestion probability (window cuts per packet
for TCP; congestion signals per packet for the RLA), and compares the
measured average windows with:

* equation 1 (TCP's PA window),
* the Proposition's bounds (equation 2) for the RLA,
* the closed-form n-receiver window of the drift analysis.

Run:  python examples/theory_check.py [duration_s]
"""

from __future__ import annotations

import sys

from repro import RLAConfig, RLASession, Simulator, TcpConfig, TcpFlow
from repro.models import (
    pa_window,
    rla_window_independent,
    window_ratio_bounds,
)
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time

N = 3
WARMUP = 20.0


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 150.0
    spec = RestrictedSpec(mu_pps=[200.0] * N, m=[1] * N)
    sim = Simulator(seed=29)
    net, receivers = build_restricted(sim, spec)
    jitter = transmission_time(1000, pps_to_bps(200.0))

    tcps = []
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(0.1 * index)
        tcps.append(flow)
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(phase_jitter=jitter))
    session.start(0.05)

    sim.run(until=WARMUP)
    session.mark()
    for flow in tcps:
        flow.mark()
    sim.run(until=WARMUP + duration)

    print(f"measured over {duration:.0f}s ({N} branches, 200 pkt/s each)\n")

    # --- TCP vs equation 1 ------------------------------------------------
    print("TCP flows vs eq 1 (W = sqrt(2(1-p)/p)):")
    for flow in tcps:
        report = flow.report()
        p = report["window_cuts"] / max(report["packets_sent"], 1)
        if p <= 0:
            continue
        predicted = pa_window(p)
        print(f"  {flow.flow}: p={p:.4f}  measured cwnd {report['mean_cwnd']:5.1f}"
              f"  eq1 predicts {predicted:5.1f}"
              f"  ({report['mean_cwnd']/predicted:5.2f}x)")

    # --- RLA vs the drift analysis ------------------------------------------
    # Compare measured-to-measured (equation 4's window ratio): the PA
    # approximation overestimates time-average windows by a common factor
    # (visible in the TCP rows above), which a ratio cancels.
    rla = session.report()
    p_c = rla["congestion_signals"] / max(rla["packets_sent"], 1) / N
    closed = rla_window_independent([min(max(p_c, 1e-4), 0.049)] * N)
    mean_tcp_cwnd = sum(f.report()["mean_cwnd"] for f in tcps) / len(tcps)
    ratio = rla["mean_cwnd"] / mean_tcp_cwnd
    lower, upper = window_ratio_bounds(N)
    print(f"\nRLA: per-receiver congestion probability p={p_c:.4f}")
    print(f"  measured cwnd {rla['mean_cwnd']:.1f} "
          f"(PA closed form at this p: {closed:.1f})")
    print(f"  eq 4 window ratio W_RLA/W_TCP = {ratio:.2f}, bounds "
          f"({lower:.2f}, {upper:.2f})"
          f"  {'WITHIN' if lower < ratio < upper else 'OUTSIDE'}")
    print(f"  randomized cuts / signals = "
          f"{rla['window_cuts'] - rla['forced_cuts']}/{rla['congestion_signals']}"
          f" (listening target 1/{rla['num_trouble']})")


if __name__ == "__main__":
    main()
