#!/usr/bin/env python
"""Reproduce a column of the paper's figure 7 table on the tertiary tree.

Builds the four-level tertiary tree of figure 6 (27 receivers, one
background TCP per receiver), congests the links of a chosen case so the
soft-bottleneck share is 100 pkt/s, runs the RLA against the TCP flock
through drop-tail gateways, and prints the paper-format table plus the
Theorem II essential-fairness verdict.

Run:  python examples/tree_experiment.py [case] [duration_s]
      (defaults: case 5, 60 s measured after 20 s warmup)
"""

from __future__ import annotations

import sys

from repro.experiments.paperdata import FIG7_DROPTAIL
from repro.experiments.runner import TreeExperimentSpec, run_tree_experiment
from repro.experiments.tables import format_case_table
from repro.models import check_essential_fairness
from repro.topology.cases import TREE_CASES


def main() -> None:
    case_number = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0

    spec = TreeExperimentSpec(
        case=TREE_CASES[case_number],
        gateway="droptail",
        duration=duration,
        warmup=20.0,
        seed=1,
    )
    print(f"running case {case_number} ({spec.case.description}) for "
          f"{duration:.0f}s after {spec.warmup:.0f}s warmup ...")
    result = run_tree_experiment(spec)

    print()
    print(format_case_table({case_number: result}, paper=FIG7_DROPTAIL,
                            title="Figure 7 column (drop-tail)"))

    rla = result.rla[0]
    verdict = check_essential_fairness(
        rla["throughput_pps"], result.wtcp["throughput_pps"],
        max(rla["num_trouble"], 1), "droptail",
    )
    print(f"\n{verdict}")
    print(f"randomized cuts / signals = "
          f"{rla['window_cuts'] - rla['forced_cuts']}/{rla['congestion_signals']}"
          f" (target ~1/num_trouble = 1/{rla['num_trouble']})")


if __name__ == "__main__":
    main()
