"""repro — a reproduction of the Random Listening Algorithm (RLA).

Wang & Schwartz, "Achieving Bounded Fairness for Multicast and TCP
Traffic in the Internet", SIGCOMM 1998.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation engine (the NS2 stand-in).
``repro.net``
    Packet-level substrate: links, drop-tail and RED gateways, routing,
    multicast trees.
``repro.tcp``
    TCP SACK — the competing unicast traffic.
``repro.rla``
    The paper's contribution: the window-based Random Listening Algorithm
    and its generalized different-RTT variant.
``repro.baselines``
    LTRC / MBFC rate-based schemes and the deterministic listener.
``repro.models``
    Analytical results of §4: PA windows, drift analysis, essential
    fairness bounds, the two-session particle model.
``repro.topology``
    The paper's topologies: figure 1 (restricted) and figure 6 (tree).
``repro.experiments``
    One module per paper figure/table (figures 4, 5, 7, 8, 9, 10, §5.2).
``repro.runtime``
    Parallel experiment execution: content-addressed run specs, a
    process-pool executor with retry/timeout handling, an on-disk
    result cache, and per-run cost metrics.

Quick start::

    from repro import Simulator, Network, TcpFlow, RLASession
    from repro.units import ms, pps_to_bps

    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_link("S", "G", pps_to_bps(10_000), ms(5))
    net.add_link("G", "R1", pps_to_bps(200), ms(50))
    net.build_routes()
    tcp = TcpFlow(sim, net, "tcp-0", "S", "R1")
    rla = RLASession(sim, net, "rla-0", "S", ["R1"])
    tcp.start(); rla.start()
    sim.run(until=100.0)
    print(tcp.report(), rla.report())
"""

from .errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    TopologyError,
)
from .net import (
    DropTailQueue,
    Network,
    Node,
    Packet,
    QueueMonitor,
    REDQueue,
    droptail_factory,
    red_factory,
)
from .rla import (
    GeneralizedRLASession,
    RLAConfig,
    RLAReceiver,
    RLASender,
    RLASession,
)
from .sim import Simulator, Tracer
from .tcp import TcpConfig, TcpFlow, TcpReceiver, TcpSender

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "DropTailQueue",
    "GeneralizedRLASession",
    "Network",
    "Node",
    "Packet",
    "QueueMonitor",
    "REDQueue",
    "RLAConfig",
    "RLAReceiver",
    "RLASender",
    "RLASession",
    "ReproError",
    "RoutingError",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "TcpConfig",
    "TcpFlow",
    "TcpReceiver",
    "TcpSender",
    "TopologyError",
    "Tracer",
    "droptail_factory",
    "red_factory",
    "__version__",
]
