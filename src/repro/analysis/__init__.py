"""Measurement, statistics, plotting and export utilities."""

from .export import write_experiment_csv, write_timeseries_csv
from .plot import heatmap, line_plot, multi_line_plot
from .stats import Histogram, OnlineStats, TimeWeighted
from .timeseries import (
    Probe,
    TimeSeries,
    cwnd_probe,
    queue_depth_probe,
    reach_probe,
)

__all__ = [
    "Histogram",
    "OnlineStats",
    "Probe",
    "TimeSeries",
    "TimeWeighted",
    "cwnd_probe",
    "heatmap",
    "line_plot",
    "multi_line_plot",
    "queue_depth_probe",
    "reach_probe",
    "write_experiment_csv",
    "write_timeseries_csv",
]
