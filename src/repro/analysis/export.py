"""Export experiment data to CSV for external analysis/plotting.

Two writers: time series (one row per sample, one column per series) and
experiment tables (the figure 7/9/10 results as long-format rows).
"""

from __future__ import annotations

import csv
from typing import Dict, IO, Iterable, List, Sequence, Union

from ..errors import ConfigurationError
from .timeseries import TimeSeries

PathOrFile = Union[str, IO[str]]


def _open(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w", newline=""), True
    return target, False


def write_timeseries_csv(target: PathOrFile, series_list: Sequence[TimeSeries]) -> int:
    """Write series as columns joined on sample times; returns row count.

    Series sampled on different grids are merged on the union of times;
    missing values are left blank.
    """
    if not series_list:
        raise ConfigurationError("no series to export")
    handle, owned = _open(target)
    try:
        all_times = sorted({t for s in series_list for t in s.times})
        lookup: List[Dict[float, float]] = [
            dict(zip(s.times, s.values)) for s in series_list
        ]
        writer = csv.writer(handle)
        writer.writerow(["time"] + [s.name or f"series{i}"
                                    for i, s in enumerate(series_list)])
        for t in all_times:
            row: List[object] = [t]
            for table in lookup:
                value = table.get(t)
                row.append("" if value is None else value)
            writer.writerow(row)
        return len(all_times)
    finally:
        if owned:
            handle.close()


def write_experiment_csv(target: PathOrFile, results: Dict[int, object]) -> int:
    """Write tree-experiment results in long format; returns row count.

    Columns: case, section (rla/tcp), entity (session index or receiver),
    metric, value.  Accepts the dict produced by ``run_fig7``-style
    functions.
    """
    if not results:
        raise ConfigurationError("no results to export")
    handle, owned = _open(target)
    rows = 0
    try:
        writer = csv.writer(handle)
        writer.writerow(["case", "section", "entity", "metric", "value"])
        for case, result in sorted(results.items()):
            for index, report in enumerate(result.rla):
                for metric, value in report.items():
                    if metric == "signals_by_receiver":
                        for receiver, count in value.items():
                            writer.writerow([case, "rla-signals", receiver,
                                             "congestion_signals", count])
                            rows += 1
                        continue
                    writer.writerow([case, "rla", index, metric, value])
                    rows += 1
            for receiver, report in result.tcp.items():
                for metric, value in report.items():
                    writer.writerow([case, "tcp", receiver, metric, value])
                    rows += 1
        return rows
    finally:
        if owned:
            handle.close()
