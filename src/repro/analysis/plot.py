"""ASCII plotting for terminal-friendly experiment output.

The examples render cwnd timelines (the classic TCP sawtooth) and density
heat-maps without any plotting dependency.  Deliberately small: a line
chart, a multi-series chart, and a heatmap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .timeseries import TimeSeries

SHADES = " .:-=+*#%@"


def line_plot(
    series: TimeSeries,
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Render one time series as an ASCII line chart."""
    return multi_line_plot([series], width=width, height=height, title=title)


def multi_line_plot(
    series_list: Sequence[TimeSeries],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
    markers: str = "*o+x#@",
) -> str:
    """Render several series on shared axes, one marker per series."""
    if not series_list or all(len(s) == 0 for s in series_list):
        raise ConfigurationError("nothing to plot")
    if width < 8 or height < 4:
        raise ConfigurationError("plot area too small")
    t_min = min(s.times[0] for s in series_list if len(s))
    t_max = max(s.times[-1] for s in series_list if len(s))
    v_min = min(min(s.values) for s in series_list if len(s))
    v_max = max(max(s.values) for s in series_list if len(s))
    if t_max <= t_min:
        t_max = t_min + 1.0
    if v_max <= v_min:
        v_max = v_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = markers[index % len(markers)]
        for t, v in zip(series.times, series.values):
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{v_max:.1f}"), len(f"{v_min:.1f}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{v_max:.1f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{v_min:.1f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(" " * label_width + f"  t={t_min:.1f}s"
                 + f"t={t_max:.1f}s".rjust(width - len(f"t={t_min:.1f}s")))
    if len(series_list) > 1:
        legend = "   ".join(f"{markers[i % len(markers)]} {s.name}"
                            for i, s in enumerate(series_list))
        lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def heatmap(
    grid: "np.ndarray",
    bucket: int = 1,
    title: Optional[str] = None,
    axis_label: str = "",
) -> str:
    """Render a 2-D occupancy array (e.g. figure 5's density) as ASCII."""
    if grid.ndim != 2:
        raise ConfigurationError(f"heatmap needs a 2-D array, got {grid.ndim}-D")
    if bucket < 1:
        raise ConfigurationError(f"bucket must be >= 1: {bucket}")
    rows = grid.shape[0] // bucket
    cols = grid.shape[1] // bucket
    if rows == 0 or cols == 0:
        raise ConfigurationError("grid smaller than one bucket")
    coarse = np.zeros((rows, cols))
    for i in range(rows):
        for j in range(cols):
            coarse[i, j] = grid[i * bucket:(i + 1) * bucket,
                                j * bucket:(j + 1) * bucket].sum()
    peak = coarse.max() or 1.0
    lines = []
    if title:
        lines.append(title)
    for j in range(cols - 1, -1, -1):
        row = "".join(
            SHADES[min(int(len(SHADES) * coarse[i, j] / peak),
                       len(SHADES) - 1)]
            for i in range(rows)
        )
        lines.append(f"{j * bucket:4d} |{row}")
    lines.append("     +" + "-" * rows)
    if axis_label:
        lines.append("      " + axis_label)
    return "\n".join(lines)
