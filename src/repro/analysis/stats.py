"""Streaming statistics primitives.

Simulation probes produce unbounded observation streams; these helpers
accumulate them in O(1) memory:

* :class:`OnlineStats` — count/mean/variance/min/max via Welford's method;
* :class:`TimeWeighted` — time-weighted mean of a piecewise-constant
  signal (queue depth, cwnd);
* :class:`Histogram` — fixed-bin counts with quantile queries.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


class OnlineStats:
    """Welford single-pass mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Sequence[float]) -> None:
        """Fold many observations in."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (f"OnlineStats(n={self.count}, mean={self.mean:.4g}, "
                f"sd={self.stddev:.4g})")


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal."""

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._value = initial
        self._area = 0.0
        self._origin = start_time

    def update(self, now: float, value: float) -> None:
        """The signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ConfigurationError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def mean(self, now: Optional[float] = None) -> float:
        """Average up to ``now`` (defaults to the last update time).

        ``now`` must not precede the last update — a backwards query
        would silently subtract area, mirroring :meth:`update`'s guard.
        """
        if now is not None and now < self._last_time:
            raise ConfigurationError(
                f"time went backwards: {now} < {self._last_time}"
            )
        end = self._last_time if now is None else now
        elapsed = end - self._origin
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / elapsed

    @property
    def current(self) -> float:
        """The current level of the signal."""
        return self._value


class Histogram:
    """Fixed-width binning over [low, high) with overflow bins."""

    def __init__(self, low: float, high: float, bins: int) -> None:
        if not low < high:
            raise ConfigurationError(f"need low < high, got {low}, {high}")
        if bins < 1:
            raise ConfigurationError(f"bins must be >= 1: {bins}")
        self.low = low
        self.high = high
        self.bins = bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def add(self, value: float) -> None:
        """Count one observation."""
        self.total += 1
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            width = (self.high - self.low) / self.bins
            self.counts[int((value - self.low) / width)] += 1

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (bin midpoint); q in [0, 1].

        ``q == 0`` returns the low edge of the first *occupied* bin
        (``low`` itself if there is underflow) — never the midpoint of an
        empty leading bin, which the ``running >= target`` test would
        otherwise accept vacuously at ``target == 0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile out of [0,1]: {q}")
        if self.total == 0:
            return self.low
        width = (self.high - self.low) / self.bins
        if q == 0.0:
            if self.underflow:
                return self.low
            for index, count in enumerate(self.counts):
                if count:
                    return self.low + index * width
            return self.high  # all mass in the overflow bin
        target = q * self.total
        running = self.underflow
        if running >= target and self.underflow:
            return self.low
        for index, count in enumerate(self.counts):
            running += count
            if count and running >= target:
                return self.low + (index + 0.5) * width
        return self.high

    def bin_edges(self) -> List[float]:
        """The bins' left edges plus the final right edge."""
        width = (self.high - self.low) / self.bins
        return [self.low + i * width for i in range(self.bins + 1)]
