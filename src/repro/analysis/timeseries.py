"""Time-series probes: sample simulation state on a fixed cadence.

A :class:`Probe` samples a callable every ``interval`` seconds into a
:class:`TimeSeries`.  Ready-made constructors cover the signals the paper
plots or tabulates: congestion windows, reliable throughput, queue depth.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.queue import Gateway
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from .stats import OnlineStats


class TimeSeries:
    """An append-only sequence of (time, value) samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ConfigurationError(
                f"{self.name}: sample time went backwards ({time})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= t < end, as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        out = TimeSeries(self.name)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def stats(self) -> OnlineStats:
        """Summary statistics over all sampled values."""
        stats = OnlineStats()
        stats.extend(self.values)
        return stats

    def value_at(self, time: float) -> float:
        """Last sampled value at or before ``time`` (piecewise constant)."""
        if not self.times:
            raise ConfigurationError(f"{self.name}: empty series")
        index = bisect_right(self.times, time) - 1
        return self.values[max(index, 0)]

    def rate_of_change(self) -> "TimeSeries":
        """Finite-difference derivative between consecutive samples."""
        out = TimeSeries(f"d({self.name})/dt")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                out.append(self.times[i],
                           (self.values[i] - self.values[i - 1]) / dt)
        return out

    def pairs(self) -> List[Tuple[float, float]]:
        """The samples as a list of (time, value) tuples."""
        return list(zip(self.times, self.values))


class Probe:
    """Samples ``reader()`` every ``interval`` seconds into a series."""

    def __init__(
        self,
        sim: Simulator,
        reader: Callable[[], float],
        interval: float = 0.1,
        name: str = "probe",
        start_offset: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"non-positive interval: {interval}")
        self.sim = sim
        self.reader = reader
        self.series = TimeSeries(name)
        self._process = PeriodicProcess(sim, interval, self._sample,
                                        name=f"probe.{name}",
                                        start_offset=start_offset)

    def start(self) -> None:
        """Begin sampling."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling (the collected series stays available)."""
        self._process.stop()

    def _sample(self) -> None:
        self.series.append(self.sim.now, float(self.reader()))


def cwnd_probe(sim: Simulator, sender, interval: float = 0.1,
               name: Optional[str] = None) -> Probe:
    """Sample a TCP or RLA sender's congestion window."""
    label = name or f"cwnd.{getattr(sender, 'flow', 'sender')}"
    return Probe(sim, lambda: sender.cwnd, interval, name=label)


def queue_depth_probe(sim: Simulator, gateway: Gateway, interval: float = 0.05,
                      name: str = "qdepth") -> Probe:
    """Sample a gateway's instantaneous queue depth."""
    return Probe(sim, lambda: gateway.depth, interval, name=name)


def reach_probe(sim: Simulator, rla_sender, interval: float = 0.5,
                name: Optional[str] = None) -> Probe:
    """Sample an RLA sender's reliable delivery frontier (max_reach_all)."""
    label = name or f"reach.{rla_sender.flow}"
    return Probe(sim, lambda: rla_sender.max_reach_all, interval, name=label)
