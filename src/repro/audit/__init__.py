"""Opt-in simulation-wide invariant auditing and structured observability.

The audit layer sits beside the simulator rather than inside it: components
in :mod:`repro.net`, :mod:`repro.tcp` and :mod:`repro.rla` expose cheap
observation hooks, and this package assembles them into

* a :class:`ConservationAuditor` that follows every packet from creation to
  its terminal fate and enforces end-of-run conservation per flow and per
  link,
* an :class:`InvariantMonitor` of cheap per-event sanity checks (window
  bounds, non-negative pipe, sequence ordering, reach counts, gateway
  bookkeeping),
* a :class:`FlightRecorder` ring buffer whose recent history is attached to
  every raised :class:`InvariantViolation`,
* a JSONL exporter (:func:`export_run`) for per-flow / per-link time series.

Un-audited runs pay only a ``None``/empty-list check at each hook site.
"""

from .conservation import ConservationAuditor
from .export import JsonlExporter, export_run, load_rows
from .invariants import InvariantMonitor
from .recorder import FlightRecorder
from .violation import InvariantViolation

__all__ = [
    "ConservationAuditor",
    "FlightRecorder",
    "InvariantMonitor",
    "InvariantViolation",
    "JsonlExporter",
    "export_run",
    "load_rows",
]
