"""Simulation-wide packet conservation auditing.

The :class:`ConservationAuditor` follows every packet from construction to
its terminal fate through a per-uid state machine:

    created -> at node -> queued at a gateway -> in transit on a link
            -> at node -> ... -> delivered | sunk | replicated | dropped

Transitions are driven by the observability hooks of :mod:`repro.net`
(packet creation, gateway enqueue/dequeue/drop, link delivery, node
consumption), so any code path that loses, duplicates or fabricates a
packet shows up as an impossible transition (raised immediately) or as an
end-of-run imbalance (raised by :meth:`verify`):

* **per flow** — injected == delivered + sunk + replicated + dropped
  + in-flight;
* **per link** — accepted == dequeued + evicted + still queued, and the set of uids
  the auditor believes queued must equal the gateway's physical contents
  (this is what catches a packet leaked out of — or smuggled into — a
  queue without the hooks firing);
* **per gateway** — counter bookkeeping must agree with physical storage.

Auditing is opt-in (``audited=True`` on experiment specs, ``--audit`` on
the CLI): the tracked state costs a dict entry per live packet and a few
dict operations per hop.
"""

from __future__ import annotations

from collections import Counter
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from ..net.link import Link
from ..net.network import Network
from ..net.node import Node
from ..net.packet import Packet, install_creation_hook, uninstall_creation_hook
from ..sim.engine import Simulator
from .invariants import InvariantMonitor
from .recorder import FlightRecorder

#: Per-uid lifecycle states (terminal fates are counted, not stored).
_AT_NODE = "node"
_QUEUED = "queued"
_TRANSIT = "transit"

#: (state, link name or None, flow)
_PacketState = Tuple[str, Optional[str], str]


class ConservationAuditor:
    """Enforce end-of-run packet conservation per flow and per link."""

    def __init__(
        self,
        sim: Simulator,
        monitor: Optional[InvariantMonitor] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.sim = sim
        self.recorder = recorder
        self.monitor = monitor or InvariantMonitor(recorder)
        self._attached = False
        self._net: Optional[Network] = None
        self._links: Dict[str, Link] = {}
        self._where: Dict[int, _PacketState] = {}
        self._queued_uids: Dict[str, Set[int]] = {}
        # per-flow lifetime counters
        self.created_by_flow: Counter = Counter()
        self.delivered_by_flow: Counter = Counter()
        self.sunk_by_flow: Counter = Counter()
        self.replicated_by_flow: Counter = Counter()
        self.dropped_by_flow: Counter = Counter()
        # per-link counters: accepted / dropped / dequeued / delivered
        self.link_counts: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, net: Network) -> None:
        """Hook every gateway, link and node of ``net``; start tracking.

        Attach before any traffic starts: packets already in flight would
        surface as impossible transitions.
        """
        if self._attached:
            raise RuntimeError("auditor is already attached")
        self._attached = True
        self._net = net
        install_creation_hook(self._on_created)
        for link in net.links.values():
            self._watch_link(link)
        for node in net.nodes.values():
            self._watch_node(node)

    def detach(self) -> None:
        """Stop observing packet creation (other hooks die with the net)."""
        if self._attached:
            uninstall_creation_hook(self._on_created)
            self._attached = False

    def rearm(self) -> None:
        """Re-install the process-global creation hook after a restore.

        The gateway/link/node hooks travel inside the pickled object graph
        of a :mod:`repro.checkpoint` snapshot, but the packet-creation hook
        is a module global of :mod:`repro.net.packet` — it does not exist
        in the restoring process until re-installed here.  Only one
        restored world may be armed at a time (the hook is process-wide);
        :meth:`detach` releases it.
        """
        if not self._attached:
            raise RuntimeError("auditor was never attached; nothing to rearm")
        install_creation_hook(self._on_created)

    def __enter__(self) -> "ConservationAuditor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    def _watch_link(self, link: Link) -> None:
        name = link.name
        self._links[name] = link
        self._queued_uids[name] = set()
        self.link_counts[name] = {
            "accepted": 0, "dropped": 0, "dequeued": 0, "delivered": 0,
            "evicted": 0,
        }
        # functools.partial, not lambdas: these hooks live inside the
        # network object graph, which checkpoint snapshots pickle whole.
        gateway = link.gateway
        gateway.on_enqueue(partial(self._on_enqueue, name))
        gateway.on_drop(partial(self._on_drop, name))
        gateway.on_dequeue(partial(self._on_dequeue, name))
        link.on_deliver(partial(self._on_deliver, name))

    def _watch_node(self, node: Node) -> None:
        node.on_consume(partial(self._on_consume, node.id))

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def _record(self, category: str, **fields: Any) -> None:
        if self.recorder is not None:
            self.recorder.record(self.sim.now, category, **fields)

    def _on_created(self, packet: Packet) -> None:
        uid = packet.uid
        self.monitor.require(
            "conservation.unique_uid", uid not in self._where,
            self.sim.now, uid=uid, flow=packet.flow,
        )
        self._where[uid] = (_AT_NODE, None, packet.flow)
        self.created_by_flow[packet.flow] += 1

    def _on_enqueue(self, link: str, now: float, packet: Packet, depth: int) -> None:
        state = self._where.get(packet.uid)
        self._record("enqueue", link=link, flow=packet.flow, seq=packet.seq,
                     uid=packet.uid, depth=depth)
        self.monitor.require(
            "conservation.enqueue_from_node",
            state is not None and state[0] == _AT_NODE,
            now, link=link, uid=packet.uid, flow=packet.flow, state=state,
        )
        self._where[packet.uid] = (_QUEUED, link, packet.flow)
        self._queued_uids[link].add(packet.uid)
        self.link_counts[link]["accepted"] += 1

    def _on_drop(self, link: str, now: float, packet: Packet, reason: str) -> None:
        state = self._where.pop(packet.uid, None)
        self._record("drop", link=link, flow=packet.flow, seq=packet.seq,
                     uid=packet.uid, reason=reason)
        # Most disciplines drop arrivals (_AT_NODE pre-state), but an
        # evicting discipline — CoDel's drop-at-dequeue — legally drops a
        # packet it had already queued, so both pre-states are accepted;
        # the queued case is additionally tallied as an eviction so the
        # link balance can account for packets that entered the queue but
        # never came out the front.
        self.monitor.require(
            "conservation.drop_alive",
            state is not None and state[0] in (_AT_NODE, _QUEUED),
            now, link=link, uid=packet.uid, flow=packet.flow, state=state,
        )
        if state is not None and state[0] == _QUEUED and state[1] is not None:
            self._queued_uids[state[1]].discard(packet.uid)
            self.link_counts[state[1]]["evicted"] += 1
        self.dropped_by_flow[packet.flow] += 1
        self.link_counts[link]["dropped"] += 1

    def _on_dequeue(self, link: str, now: float, packet: Packet) -> None:
        state = self._where.get(packet.uid)
        self.monitor.require(
            "conservation.dequeue_from_queue",
            state == (_QUEUED, link, packet.flow),
            now, link=link, uid=packet.uid, flow=packet.flow, state=state,
        )
        self._where[packet.uid] = (_TRANSIT, link, packet.flow)
        self._queued_uids[link].discard(packet.uid)
        self.link_counts[link]["dequeued"] += 1

    def _on_deliver(self, link: str, now: float, packet: Packet) -> None:
        state = self._where.get(packet.uid)
        self._record("deliver", link=link, flow=packet.flow, seq=packet.seq,
                     uid=packet.uid)
        # A second delivery of the same uid fails here: the packet is no
        # longer in transit on this link (it is at a node, or terminal).
        self.monitor.require(
            "conservation.single_delivery",
            state == (_TRANSIT, link, packet.flow),
            now, link=link, uid=packet.uid, flow=packet.flow, state=state,
        )
        self._where[packet.uid] = (_AT_NODE, None, packet.flow)
        self.link_counts[link]["delivered"] += 1

    def _on_consume(self, node: str, packet: Packet, outcome: str) -> None:
        now = self.sim.now
        state = self._where.pop(packet.uid, None)
        self._record("consume", node=node, flow=packet.flow, seq=packet.seq,
                     uid=packet.uid, outcome=outcome)
        self.monitor.require(
            "conservation.consume_once",
            state is not None and state[0] == _AT_NODE,
            now, node=node, uid=packet.uid, flow=packet.flow,
            outcome=outcome, state=state,
        )
        counter = {
            "delivered": self.delivered_by_flow,
            "sunk": self.sunk_by_flow,
            "replicated": self.replicated_by_flow,
        }.get(outcome)
        self.monitor.require(
            "conservation.known_outcome", counter is not None,
            now, node=node, uid=packet.uid, outcome=outcome,
        )
        if counter is not None:
            counter[packet.flow] += 1

    # ------------------------------------------------------------------
    # end-of-run verification
    # ------------------------------------------------------------------
    def verify(self, drained: Optional[bool] = None) -> None:
        """Check all conservation identities; raise on the first failure.

        ``drained`` overrides the engine-queue check: when the event queue
        is empty nothing may be in flight at all; when the run stopped at
        a time horizon, queued and in-transit packets are legitimate but
        the tracked queue contents must still match the gateways exactly.
        """
        now = self.sim.now
        monitor = self.monitor
        transit_by_link: Counter = Counter()
        alive_by_flow: Counter = Counter()
        limbo: List[int] = []
        for uid, (state, link, flow) in self._where.items():
            alive_by_flow[flow] += 1
            if state == _TRANSIT:
                transit_by_link[link] += 1
            elif state == _AT_NODE:
                limbo.append(uid)

        for name, link in sorted(self._links.items()):
            gateway = link.gateway
            monitor.check_gateway(name, gateway, now)
            tracked = self._queued_uids[name]
            physical = {packet.uid for packet in gateway.contents()}
            monitor.require(
                "conservation.queue_contents", tracked == physical,
                now, link=name,
                leaked=sorted(tracked - physical)[:5],
                smuggled=sorted(physical - tracked)[:5],
            )
            counts = self.link_counts[name]
            monitor.require(
                "conservation.link_balance",
                counts["accepted"]
                == counts["dequeued"] + counts["evicted"] + len(tracked)
                and counts["dequeued"]
                == counts["delivered"] + transit_by_link[name],
                now, link=name, in_queue=len(tracked),
                in_transit=transit_by_link[name], **counts,
            )

        for flow in sorted(self.created_by_flow):
            injected = self.created_by_flow[flow]
            terminal = (
                self.delivered_by_flow[flow]
                + self.sunk_by_flow[flow]
                + self.replicated_by_flow[flow]
                + self.dropped_by_flow[flow]
            )
            monitor.require(
                "conservation.flow_balance",
                injected == terminal + alive_by_flow[flow],
                now, flow=flow, injected=injected,
                delivered=self.delivered_by_flow[flow],
                sunk=self.sunk_by_flow[flow],
                replicated=self.replicated_by_flow[flow],
                dropped=self.dropped_by_flow[flow],
                in_flight=alive_by_flow[flow],
            )

        # A packet "at a node" between events is impossible: node
        # processing is synchronous, so anything still there leaked out of
        # the datapath without reaching a queue, a wire, or an agent.
        monitor.require(
            "conservation.no_limbo", not limbo,
            now, stuck_uids=sorted(limbo)[:5], stuck=len(limbo),
        )
        if drained is None:
            drained = self.sim.pending() == 0
        if drained:
            monitor.require(
                "conservation.drained_empty", not self._where,
                now, in_flight=len(self._where),
                uids=sorted(self._where)[:5],
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Number of packets currently alive (created, no terminal fate)."""
        return len(self._where)

    def flow_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-flow conservation ledger (for stats and JSONL export)."""
        alive_by_flow: Counter = Counter(
            flow for (_state, _link, flow) in self._where.values()
        )
        return {
            flow: {
                "injected": self.created_by_flow[flow],
                "delivered": self.delivered_by_flow[flow],
                "sunk": self.sunk_by_flow[flow],
                "replicated": self.replicated_by_flow[flow],
                "dropped": self.dropped_by_flow[flow],
                "in_flight": alive_by_flow[flow],
            }
            for flow in sorted(self.created_by_flow)
        }

    def link_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-link accounting ledger (for stats and JSONL export)."""
        return {
            name: dict(counts, in_queue=len(self._queued_uids[name]))
            for name, counts in sorted(self.link_counts.items())
        }
