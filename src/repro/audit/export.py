"""JSONL export of audited-run observability data.

One line per row, each a self-describing JSON object with a ``type`` field,
so downstream tooling (pandas, jq, plotting scripts) can filter without a
schema file:

* ``meta`` — run identification (caller-provided dict, written first);
* ``trace`` — one :class:`~repro.sim.trace.Tracer` record;
* ``queue_depth`` — one (time, depth) sample from a
  :class:`~repro.net.monitor.QueueMonitor` built with ``sample_depth=True``;
* ``queue_drop`` — one logged drop event (``log_drops=True``);
* ``queue_summary`` — per-link occupancy/loss summary;
* ``flow_conservation`` / ``link_conservation`` — the auditor's ledgers.

Keys are sorted and floats written verbatim, so exports of a seeded run
are byte-stable across processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Mapping, Optional, TYPE_CHECKING, Union

from ..net.monitor import QueueMonitor
from ..sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .conservation import ConservationAuditor


class JsonlExporter:
    """Writes observability rows to a text stream, one JSON object per line."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self.rows_written = 0

    def write_row(self, row: Mapping[str, Any]) -> None:
        self._stream.write(json.dumps(row, sort_keys=True))
        self._stream.write("\n")
        self.rows_written += 1

    # ------------------------------------------------------------------
    def export_meta(self, meta: Mapping[str, Any]) -> None:
        self.write_row({"type": "meta", **meta})

    def export_trace(self, tracer: Tracer) -> None:
        for time, category, fields in tracer.records:
            self.write_row(
                {"type": "trace", "t": time, "category": category, **fields}
            )

    def export_queue_monitor(self, link: str, monitor: QueueMonitor) -> None:
        for time, depth in monitor.depth_samples:
            self.write_row(
                {"type": "queue_depth", "link": link, "t": time, "depth": depth}
            )
        for time, flow, seq, reason in monitor.drop_log:
            self.write_row(
                {"type": "queue_drop", "link": link, "t": time,
                 "flow": flow, "seq": seq, "reason": reason}
            )
        self.write_row(
            {"type": "queue_summary", "link": link,
             "mean_depth": monitor.mean_depth(),
             "max_depth": monitor.max_depth,
             "total_drops": monitor.total_drops,
             "loss_rate": monitor.loss_rate()}
        )

    def export_conservation(self, auditor: "ConservationAuditor") -> None:
        for flow, ledger in auditor.flow_summary().items():
            self.write_row({"type": "flow_conservation", "flow": flow, **ledger})
        for link, ledger in auditor.link_summary().items():
            self.write_row({"type": "link_conservation", "link": link, **ledger})


def export_run(
    path: Union[str, Path],
    *,
    meta: Optional[Mapping[str, Any]] = None,
    tracer: Optional[Tracer] = None,
    monitors: Optional[Mapping[str, QueueMonitor]] = None,
    auditor: Optional["ConservationAuditor"] = None,
) -> int:
    """Write everything available about a run to ``path``; return row count."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as stream:
        exporter = JsonlExporter(stream)
        if meta is not None:
            exporter.export_meta(meta)
        if tracer is not None:
            exporter.export_trace(tracer)
        if monitors is not None:
            for link in sorted(monitors):
                exporter.export_queue_monitor(link, monitors[link])
        if auditor is not None:
            exporter.export_conservation(auditor)
        return exporter.rows_written


def load_rows(
    path: Union[str, Path], type_filter: Optional[str] = None
) -> list:
    """Read an export back; optionally keep only rows of one ``type``."""
    rows: list = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            row: Dict[str, Any] = json.loads(line)
            if type_filter is None or row.get("type") == type_filter:
                rows.append(row)
    return rows
