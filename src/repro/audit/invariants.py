"""Cheap per-event invariant checks with structured failure reporting.

An :class:`InvariantMonitor` is a registry of named checks.  Components of
an audited run call the ``check_*`` helpers at natural checkpoints (end of
ACK processing, end of run); each helper funnels through :meth:`require`,
which raises a :class:`~repro.audit.violation.InvariantViolation` carrying
the offending context and the flight recorder's dump of recent events.

``strict=False`` collects violations instead of raising — useful for
surveying a run without aborting at the first inconsistency.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from .recorder import FlightRecorder
from .violation import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..net.queue import Gateway
    from ..rla.sender import RLASender
    from ..tcp.sender import TcpSender


class InvariantMonitor:
    """Runs named boolean checks; failures become structured violations."""

    def __init__(
        self,
        recorder: Optional[FlightRecorder] = None,
        strict: bool = True,
    ) -> None:
        self.recorder = recorder
        self.strict = strict
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []

    # ------------------------------------------------------------------
    def require(
        self, check: str, condition: bool, time: float = 0.0, **context: Any
    ) -> bool:
        """Record one check; raise (or collect) on failure.

        Returns the condition so callers can guard follow-up work in
        non-strict mode.
        """
        self.checks_run += 1
        if condition:
            return True
        violation = InvariantViolation(
            check,
            time=time,
            context=context,
            dump=self.recorder.dump() if self.recorder is not None else "",
        )
        self.violations.append(violation)
        if self.strict:
            raise violation
        return False

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    # ------------------------------------------------------------------
    # domain checks (read component internals; the audit layer is the one
    # privileged observer allowed to)
    # ------------------------------------------------------------------
    def check_tcp(self, sender: "TcpSender") -> None:
        """TCP sender sanity: window bounds, pipe, sequence ordering."""
        now = sender.sim.now
        flow = sender.flow
        self.require(
            "tcp.cwnd_bounds",
            1.0 <= sender.cwnd <= sender.config.max_cwnd,
            now, flow=flow, cwnd=sender.cwnd, max_cwnd=sender.config.max_cwnd,
        )
        self.require(
            "tcp.pipe_nonnegative", sender.pipe >= 0,
            now, flow=flow, pipe=sender.pipe, snd_una=sender.snd_una,
            snd_nxt=sender.snd_nxt,
        )
        self.require(
            "tcp.sequence_order", sender.snd_una <= sender.snd_nxt,
            now, flow=flow, snd_una=sender.snd_una, snd_nxt=sender.snd_nxt,
        )

    def check_rla(self, sender: "RLASender") -> None:
        """RLA sender sanity: window bounds, reach counts, ACK ordering."""
        now = sender.sim.now
        flow = sender.flow
        self.require(
            "rla.cwnd_bounds",
            1.0 <= sender.cwnd <= sender.config.max_cwnd,
            now, flow=flow, cwnd=sender.cwnd, max_cwnd=sender.config.max_cwnd,
        )
        # A reach count at/above n_receivers means a completion was missed
        # (counts are popped the moment the last receiver ACKs); at/below
        # zero means a phantom ACK was counted.
        bad = {
            seq: count
            for seq, count in sender._reach.items()
            if not 0 < count < sender.n_receivers
        }
        self.require(
            "rla.reach_bounds", not bad,
            now, flow=flow, n_receivers=sender.n_receivers,
            bad_counts=dict(sorted(bad.items())[:5]),
        )
        self.require(
            "rla.sequence_order", sender.min_last_ack <= sender.snd_nxt,
            now, flow=flow, min_last_ack=sender.min_last_ack,
            snd_nxt=sender.snd_nxt,
        )

    def check_gateway(self, name: str, gateway: "Gateway", time: float) -> None:
        """Gateway bookkeeping: counters must agree with physical storage."""
        physical = len(gateway.contents())
        # ``evicted`` covers dequeue-time discards (CoDel): those packets
        # were enqueued but never dequeued, so plain enqueued - dequeued
        # over-counts occupancy by exactly that number.
        self.require(
            "gateway.depth_consistent",
            gateway.depth == physical
            and gateway.enqueued - gateway.dequeued - gateway.evicted
            == physical,
            time, link=name, depth=gateway.depth, physical=physical,
            enqueued=gateway.enqueued, dequeued=gateway.dequeued,
            evicted=gateway.evicted,
        )
        self.require(
            "gateway.bytes_nonnegative", gateway.bytes_queued >= 0,
            time, link=name, bytes_queued=gateway.bytes_queued,
        )
