"""A bounded ring of recent trace records for post-mortem dumps.

The :class:`FlightRecorder` is the black box of an audited run: every
audit-layer event (enqueue, drop, deliver, consume, engine events) is
appended to a fixed-size ring, and when an invariant trips the last N
records are formatted into the raised :class:`InvariantViolation` so the
events leading up to the failure are visible without re-running.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..sim.events import Event
from ..sim.trace import TraceRecord


class FlightRecorder:
    """Fixed-capacity ring of ``(time, category, fields)`` records."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"non-positive recorder capacity: {capacity}")
        self.capacity = capacity
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        #: Lifetime count of records seen (the ring only keeps the tail).
        self.recorded = 0

    # ------------------------------------------------------------------
    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append one record, evicting the oldest once at capacity."""
        self._ring.append((time, category, fields))
        self.recorded += 1

    def sink(self, record: TraceRecord) -> None:
        """:class:`~repro.sim.trace.Tracer`-compatible sink callable."""
        self._ring.append(record)
        self.recorded += 1

    def observe_event(self, event: Event) -> None:
        """Engine ``event_hook`` adapter: record each executed event."""
        self.record(event.time, "event", name=event.name or "?")

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def dump(self, last: Optional[int] = None) -> str:
        """Human-readable dump of the most recent ``last`` records.

        Format: one record per line, ``<time>  <category>  k=v k=v ...``,
        preceded by a header giving retained/lifetime counts.
        """
        records = self.records
        if last is not None:
            records = records[-last:]
        header = (f"{len(records)} record(s) shown, "
                  f"{self.recorded} recorded in total")
        lines = [header]
        for time, category, fields in records:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            lines.append(f"{time:14.6f}  {category:<10s} {rendered}")
        return "\n".join(lines)
