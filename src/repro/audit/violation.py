"""The structured exception the audit layer raises.

An :class:`InvariantViolation` names the failed check, carries the
offending event context as a dict, and attaches the flight recorder's dump
of the most recent simulation events so a failure is diagnosable from the
exception alone (no re-run needed).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SimulationError


class InvariantViolation(SimulationError):
    """A simulation-wide invariant failed during an audited run.

    Attributes
    ----------
    check:
        Dotted name of the failed check (e.g. ``"conservation.flow_balance"``).
    time:
        Simulation time at which the violation was detected.
    context:
        The offending event's fields (flow, link, uid, counters, ...).
    dump:
        Flight-recorder dump of the last N events, empty if no recorder
        was attached.
    """

    def __init__(
        self,
        check: str,
        message: str = "",
        time: float = 0.0,
        context: Optional[Dict[str, Any]] = None,
        dump: str = "",
    ) -> None:
        self.check = check
        self.time = time
        self.context = dict(context or {})
        self.dump = dump
        detail = message or ", ".join(
            f"{key}={value!r}" for key, value in self.context.items()
        )
        text = f"[t={time:.6f}] invariant {check!r} violated: {detail}"
        if dump:
            text += "\n--- flight recorder (most recent last) ---\n" + dump
        super().__init__(text)
