"""Baseline multicast congestion-control schemes (DESIGN.md S9-S10)."""

from .deterministic import DeterministicListenerSender
from .ltrc import LtrcSender
from .mbfc import MbfcSender
from .ratebase import LossReportReceiver, RateBasedMulticastSender
from .rla_rate import RandomListeningRateSender

__all__ = [
    "DeterministicListenerSender",
    "LossReportReceiver",
    "LtrcSender",
    "MbfcSender",
    "RandomListeningRateSender",
    "RateBasedMulticastSender",
]
