"""The deterministic every-n-signals listener (§3.2 strawman).

Before proposing *random* listening, the paper considers the obvious
deterministic alternative: reduce the window once every
``num_trouble_rcvr`` congestion signals.  It works when buffer periods are
synchronized and fails in asynchronous settings — the motivating argument
for randomization.  We implement it as an RLA variant so the A4/ablation
benches can compare the two under identical conditions.
"""

from __future__ import annotations

from ..rla.sender import RLASender
from ..rla.state import ReceiverState


class DeterministicListenerSender(RLASender):
    """RLA sender whose listening rule is a modulo counter, not a coin."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._signal_counter = 0

    def _on_congestion_signal(self, state: ReceiverState, srtt: float) -> None:
        now = self.sim.now
        self.congestion_signals += 1
        self.tracker.record_signal(state, now, self.receivers.values())
        if not state.troubled:
            return
        cfg = self.config
        if (
            cfg.forced_cut_enabled
            and now - self.last_window_cut > cfg.forced_cut_awnd_rtts * self.awnd * srtt
        ):
            self._cut_window(forced=True)
            return
        self._signal_counter += 1
        if self._signal_counter >= max(self.tracker.num_trouble, 1):
            self._signal_counter = 0
            self._cut_window(forced=False)
