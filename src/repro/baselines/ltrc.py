"""The Loss-Tolerant Rate Controller (LTRC) baseline, Montgomery 1997.

As described in §1 of the paper: the sender halves its rate when the
exponentially-weighted moving average of *some* receiver's reported loss
rate exceeds a threshold, and never reduces again within a hold-off
period.  The paper's criticism — that no universal threshold drives an
arbitrary topology to the fair operating point — is exactly what the A4
baseline benchmark demonstrates.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from .ratebase import RateBasedMulticastSender


class LtrcSender(RateBasedMulticastSender):
    """Rate-based sender reacting to the worst EWMA loss rate."""

    def __init__(self, *args, loss_threshold: float = 0.02,
                 ewma_gain: float = 0.25, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0 < loss_threshold < 1:
            raise ConfigurationError(f"loss_threshold out of (0,1): {loss_threshold}")
        if not 0 < ewma_gain <= 1:
            raise ConfigurationError(f"ewma_gain out of (0,1]: {ewma_gain}")
        self.loss_threshold = loss_threshold
        self.ewma_gain = ewma_gain
        self._ewma: Dict[str, float] = {}

    def congestion_decision(self, reports: Dict[str, float]) -> bool:
        """Congested iff any receiver's smoothed loss rate beats the threshold."""
        for receiver_id, loss in reports.items():
            previous = self._ewma.get(receiver_id, loss)
            self._ewma[receiver_id] = previous + self.ewma_gain * (loss - previous)
        reports.clear()  # each report is consumed once
        if not self._ewma:
            return False
        return max(self._ewma.values()) > self.loss_threshold
