"""Monitor-Based Flow Control (MBFC) baseline, Sano et al. 1997.

The double-threshold scheme from §1 of the paper: a receiver is
*congested* if its loss rate over the monitor period exceeds the loss-rate
threshold, and the sender recognizes congestion only if the fraction of
congested receivers exceeds the loss-population threshold.  Setting the
population threshold to zero degenerates to tracing the slowest receiver,
which is the configuration the paper singles out as hard to tune.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from .ratebase import RateBasedMulticastSender


class MbfcSender(RateBasedMulticastSender):
    """Rate-based sender with loss-rate + loss-population double threshold."""

    def __init__(self, *args, loss_threshold: float = 0.02,
                 population_threshold: float = 0.25, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0 < loss_threshold < 1:
            raise ConfigurationError(f"loss_threshold out of (0,1): {loss_threshold}")
        if not 0 <= population_threshold < 1:
            raise ConfigurationError(
                f"population_threshold out of [0,1): {population_threshold}"
            )
        self.loss_threshold = loss_threshold
        self.population_threshold = population_threshold

    def congestion_decision(self, reports: Dict[str, float]) -> bool:
        """Congested iff enough receivers individually look congested."""
        if not reports:
            return False
        congested = sum(1 for loss in reports.values() if loss > self.loss_threshold)
        fraction = congested / len(self.receiver_ids)
        reports.clear()
        return fraction > self.population_threshold
