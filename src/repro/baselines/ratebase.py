"""Shared machinery for the rate-based multicast baselines (§1 of the paper).

The schemes the paper surveys (LTRC, MBFC) share one framework: the sender
streams packets at a controlled rate; receivers periodically report their
measured loss rate; the sender halves its rate when its congestion
criterion fires (at most once per backoff period) and otherwise increases
it linearly — the classic AIMD-on-rates loop.  Subclasses implement only
the *congestion decision* from the vector of receiver reports, which is
exactly where LTRC and MBFC differ.

Receivers detect losses from sequence-number gaps, the standard technique
for NACK-based multicast transports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from ..net.node import Node
from ..net.packet import ACK, DATA, Packet
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from ..units import ACK_SIZE, DEFAULT_PACKET_SIZE


class LossReportReceiver:
    """Counts arrivals/gaps per monitor period and reports the loss rate."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        sender_id: str,
        report_interval: float = 1.0,
        ack_size: int = ACK_SIZE,
    ) -> None:
        if report_interval <= 0:
            raise ConfigurationError(f"non-positive report interval: {report_interval}")
        self.sim = sim
        self.node = node
        self.flow = flow
        self.sender_id = sender_id
        self.ack_size = ack_size
        self.max_seq = -1
        self.received_total = 0
        self._period_received = 0
        self._period_start_seq = -1
        self._reporter = PeriodicProcess(
            sim, report_interval, self._report, name=f"{flow}.{node.id}.report"
        )
        self._reporter.start()

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler: count data arrivals."""
        if packet.kind != DATA:
            return
        self.received_total += 1
        self._period_received += 1
        if packet.seq > self.max_seq:
            self.max_seq = packet.seq

    def _report(self) -> None:
        expected = self.max_seq - self._period_start_seq
        loss_rate = 0.0
        if expected > 0:
            loss_rate = max(0.0, 1.0 - self._period_received / expected)
        report = Packet(
            ACK,
            self.flow,
            self.node.id,
            self.sender_id,
            self.max_seq,
            self.ack_size,
            sent_time=self.sim.now,
            ack=self.max_seq + 1,
            receiver=self.node.id,
        )
        # Loss rate rides in echo_ts: reports are not RTT probes here, and
        # adding a dedicated field to every packet for one baseline would
        # tax the (hot) Packet class.
        report.echo_ts = -loss_rate
        self.node.send(report)
        self._period_start_seq = self.max_seq
        self._period_received = 0


class RateBasedMulticastSender:
    """AIMD-on-rate multicast sender; subclasses supply the congestion test."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        group: str,
        receiver_ids: Iterable[str],
        initial_rate_pps: float = 10.0,
        min_rate_pps: float = 1.0,
        max_rate_pps: float = 1e6,
        increase_pps: float = 10.0,
        adjust_interval: float = 1.0,
        backoff_period: float = 2.0,
        packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        receiver_ids = list(receiver_ids)
        if not receiver_ids:
            raise ConfigurationError("rate-based session needs at least one receiver")
        if initial_rate_pps <= 0 or min_rate_pps <= 0:
            raise ConfigurationError("rates must be positive")
        self.sim = sim
        self.node = node
        self.flow = flow
        self.group = group
        self.receiver_ids = receiver_ids
        self.rate_pps = initial_rate_pps
        self.min_rate_pps = min_rate_pps
        self.max_rate_pps = max_rate_pps
        self.increase_pps = increase_pps
        self.backoff_period = backoff_period
        self.packet_size = packet_size
        self.next_seq = 0
        self.last_reduction = float("-inf")
        #: latest reported loss rate per receiver id
        self.loss_reports: Dict[str, float] = {}
        self.packets_sent = 0
        self.rate_cuts = 0
        self.rate_integral = 0.0
        self._rate_clock = sim.now
        self._adjuster = PeriodicProcess(sim, adjust_interval, self._adjust,
                                         name=f"{flow}.adjust")
        self._running = False

    # ------------------------------------------------------------------
    def start(self, offset: float = 0.0) -> None:
        """Begin streaming after ``offset`` seconds."""
        if self._running:
            return
        self._running = True
        self.sim.schedule_after(offset, self._emit, name=f"{self.flow}.cbr")
        self._adjuster.start()

    def stop(self) -> None:
        """Halt the stream and the adjustment loop."""
        self._running = False
        self._adjuster.stop()

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler: digest receiver loss reports."""
        if packet.kind == ACK and packet.receiver is not None:
            self.loss_reports[packet.receiver] = max(0.0, -packet.echo_ts)

    # ------------------------------------------------------------------
    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            DATA,
            self.flow,
            self.node.id,
            self.group,
            self.next_seq,
            self.packet_size,
            sent_time=self.sim.now,
        )
        self.next_seq += 1
        self.packets_sent += 1
        self.node.send(packet)
        self.sim.schedule_after(1.0 / self.rate_pps, self._emit, name=f"{self.flow}.cbr")

    def _note_rate(self) -> None:
        now = self.sim.now
        self.rate_integral += self.rate_pps * (now - self._rate_clock)
        self._rate_clock = now

    def _set_rate(self, value: float) -> None:
        self._note_rate()
        self.rate_pps = min(max(value, self.min_rate_pps), self.max_rate_pps)

    def _adjust(self) -> None:
        congested = self.congestion_decision(self.loss_reports)
        if congested and self.sim.now - self.last_reduction >= self.backoff_period:
            self.rate_cuts += 1
            self.last_reduction = self.sim.now
            self._set_rate(self.rate_pps / 2.0)
        elif not congested:
            self._set_rate(self.rate_pps + self.increase_pps)

    # ------------------------------------------------------------------
    def congestion_decision(self, reports: Dict[str, float]) -> bool:
        """Return True when the scheme considers the session congested."""
        raise NotImplementedError

    def mean_rate(self, elapsed: float, base_integral: float = 0.0) -> float:
        """Time-average rate since a reference integral snapshot."""
        self._note_rate()
        if elapsed <= 0:
            return self.rate_pps
        return (self.rate_integral - base_integral) / elapsed
