"""Random listening over a rate-based controller — the §6 direction.

The paper's conclusion: "the idea of 'random listening' can be used in
conjunction with other forms of congestion control mechanism, such as
rate-based control.  The key idea is to randomly react to the congestion
signals from all receivers."

This module explores that: a rate-based AIMD sender (same chassis as the
LTRC/MBFC baselines) whose congestion decision applies the RLA's coin.
Each monitor period, every receiver reporting losses contributes one
congestion signal; the sender halves its rate with probability
``1 / num_trouble`` per signal, where the troubled set is the receivers
that have signalled within a recency window (a rate-domain analogue of
the ``eta * min_congestion_interval`` rule).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import ConfigurationError
from .ratebase import RateBasedMulticastSender


class RandomListeningRateSender(RateBasedMulticastSender):
    """AIMD-on-rate multicast sender with an RLA-style listening rule."""

    def __init__(self, *args, loss_signal_threshold: float = 0.005,
                 trouble_window: float = 10.0,
                 rng: Optional[random.Random] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0 <= loss_signal_threshold < 1:
            raise ConfigurationError(
                f"loss_signal_threshold out of [0,1): {loss_signal_threshold}"
            )
        if trouble_window <= 0:
            raise ConfigurationError(f"non-positive trouble_window: {trouble_window}")
        self.loss_signal_threshold = loss_signal_threshold
        self.trouble_window = trouble_window
        self.rng = rng if rng is not None else random.Random(0)
        #: receiver id -> time of its last congestion signal
        self._last_signal: Dict[str, float] = {}
        self.congestion_signals = 0

    @property
    def num_trouble(self) -> int:
        """Receivers that signalled congestion within the recency window."""
        now = self.sim.now
        return sum(1 for t in self._last_signal.values()
                   if now - t <= self.trouble_window)

    def congestion_decision(self, reports: Dict[str, float]) -> bool:
        """One coin per congestion signal, each at 1/num_trouble."""
        now = self.sim.now
        signals = []
        for receiver_id, loss in reports.items():
            if loss > self.loss_signal_threshold:
                signals.append(receiver_id)
                self._last_signal[receiver_id] = now
        reports.clear()
        if not signals:
            return False
        self.congestion_signals += len(signals)
        pthresh = 1.0 / max(self.num_trouble, 1)
        return any(self.rng.random() <= pthresh for _ in signals)
