"""Benchmark-regression harness: measure, record, and compare performance.

The pytest suites under ``benchmarks/`` validate *shape* (who wins, the
theorem bounds); this package records *speed* so the performance
trajectory accumulates across PRs:

* :mod:`repro.bench.suites` — the registry of measured workloads, each
  mirroring one ``benchmarks/bench_*.py`` suite;
* :mod:`repro.bench.harness` — runs suites and emits a schema'd JSON
  document (``repro.bench/v1``: wall time, events/sec, packets/sec per
  suite plus an environment block);
* :mod:`repro.bench.compare` — diffs two documents with a configurable
  regression threshold (events/sec based, so documents taken at
  different scales remain comparable);
* ``python -m repro.bench`` — the CLI gluing these together, wired into
  ``make bench-harness`` / ``make bench-smoke`` and the CI ``bench-smoke``
  job.

Committed artifacts live next to the code: ``BENCH_<pr>.json`` at the
repo root is the per-PR record, ``benchmarks/BENCH_ci_baseline.json`` is
the smoke baseline CI compares against.  See docs/PERFORMANCE.md.
"""

from .compare import ComparisonReport, SuiteDelta, compare_docs
from .harness import (
    SCHEMA,
    bench_scale,
    load_report,
    run_benchmarks,
    run_suite,
    write_report,
)
from .suites import SMOKE_SUITES, SUITES, Suite

__all__ = [
    "SCHEMA",
    "SUITES",
    "SMOKE_SUITES",
    "Suite",
    "ComparisonReport",
    "SuiteDelta",
    "bench_scale",
    "compare_docs",
    "load_report",
    "run_benchmarks",
    "run_suite",
    "write_report",
]
