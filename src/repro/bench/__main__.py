"""``python -m repro.bench`` — run, compare, and list benchmark suites.

Examples
--------
Run everything at the default smoke scale and write ``BENCH_local.json``::

    PYTHONPATH=src python -m repro.bench run --out BENCH_local.json

Run the CI subset and fail if it regressed >25% vs the committed baseline::

    PYTHONPATH=src python -m repro.bench run --suites engine,fig7 \\
        --out BENCH_ci.json --compare benchmarks/BENCH_ci_baseline.json

Compare two existing documents::

    PYTHONPATH=src python -m repro.bench compare BENCH_new.json BENCH_4.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .compare import DEFAULT_THRESHOLD, compare_docs
from .harness import (
    bench_scale,
    default_output_name,
    load_report,
    run_benchmarks,
    write_report,
)
from .suites import SUITES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="benchmark-regression harness (schema repro.bench/v1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run suites and emit a JSON document")
    run_p.add_argument("--suites", default=None,
                       help="comma-separated subset (default: all)")
    run_p.add_argument("--out", default=None,
                       help="output path (default: BENCH_<label>.json)")
    run_p.add_argument("--label", default="local",
                       help="document label, used in the default file name")
    run_p.add_argument("--repeats", type=int, default=1,
                       help="timed repeats per suite; min wall time wins")
    run_p.add_argument("--duration", type=float, default=None,
                       help="measured seconds (default env or 8.0)")
    run_p.add_argument("--warmup", type=float, default=None,
                       help="warmup seconds (default env or 3.0)")
    run_p.add_argument("--compare", default=None, metavar="BASELINE",
                       help="also compare against this document; exit 1 "
                            "on regression")
    run_p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="allowed fractional slowdown (default 0.25)")

    cmp_p = sub.add_parser("compare", help="compare two JSON documents")
    cmp_p.add_argument("current", help="freshly produced document")
    cmp_p.add_argument("baseline", help="committed baseline document")
    cmp_p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="allowed fractional slowdown (default 0.25)")
    cmp_p.add_argument("--suites", default=None,
                       help="comma-separated subset to gate on "
                            "(default: every suite in either document)")

    sub.add_parser("list", help="list registered suites")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in SUITES)
        for name, suite in SUITES.items():
            print(f"{name:<{width}}  {suite.description}  "
                  f"[mirrors {suite.mirrors}]")
        return 0

    if args.command == "compare":
        suites = args.suites.split(",") if args.suites else None
        report = compare_docs(load_report(args.current),
                              load_report(args.baseline),
                              threshold=args.threshold, suites=suites)
        print(report.format())
        return 0 if report.ok else 1

    # run
    names = args.suites.split(",") if args.suites else None
    scale = bench_scale(duration=args.duration, warmup=args.warmup)
    doc = run_benchmarks(names=names, scale=scale, repeats=args.repeats,
                         label=args.label, progress=print)
    out = args.out or default_output_name(args.label)
    write_report(doc, out)
    print(f"[repro.bench] wrote {out}")
    if args.compare:
        # A subset run gates on exactly the suites it ran; the baseline's
        # other entries are out of scope, not "removed".
        report = compare_docs(doc, load_report(args.compare),
                              threshold=args.threshold, suites=names)
        print(report.format())
        return 0 if report.ok else 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
