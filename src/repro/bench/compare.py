"""Regression comparison between two ``repro.bench/v1`` documents.

The compared metric is **events/sec**: it is wall-clock based (so real
regressions show up) but normalized by the deterministic event count (so
a baseline taken at one ``REPRO_BENCH_DURATION`` can still be compared
to a run at another — the workload per event is identical).  A suite
regresses when its events/sec falls more than ``threshold`` below the
baseline; new or removed suites are reported but never fail the check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Default allowed fractional slowdown before a suite counts as regressed.
DEFAULT_THRESHOLD = 0.25


@dataclass
class SuiteDelta:
    """Comparison outcome for one suite present in either document."""

    name: str
    status: str  # "ok" | "regressed" | "improved" | "new" | "removed"
    current_eps: float = 0.0
    baseline_eps: float = 0.0
    #: current/baseline events-per-second ratio (1.0 = unchanged)
    ratio: float = 1.0


@dataclass
class ComparisonReport:
    """All suite deltas plus the overall pass/fail verdict."""

    threshold: float
    deltas: List[SuiteDelta] = field(default_factory=list)
    #: True when env blocks differ in scale (results still compared, but
    #: the report flags that wall times are not directly comparable).
    scale_mismatch: bool = False

    @property
    def regressed(self) -> List[SuiteDelta]:
        """The suites that failed the threshold."""
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def ok(self) -> bool:
        """True when no suite regressed beyond the threshold."""
        return not self.regressed

    def format(self) -> str:
        """Human-readable comparison table with a verdict line."""
        lines = [f"{'suite':>12s}  {'baseline ev/s':>14s}  "
                 f"{'current ev/s':>13s}  {'ratio':>6s}  status"]
        for d in self.deltas:
            base = f"{d.baseline_eps:,.0f}" if d.baseline_eps else "-"
            cur = f"{d.current_eps:,.0f}" if d.current_eps else "-"
            lines.append(f"{d.name:>12s}  {base:>14s}  {cur:>13s}  "
                         f"{d.ratio:>6.2f}  {d.status}")
        if self.scale_mismatch:
            lines.append("note: scale (duration/warmup) differs between "
                         "documents; events/s is still comparable, wall "
                         "times are not.")
        verdict = ("OK" if self.ok else
                   f"REGRESSION: {', '.join(d.name for d in self.regressed)} "
                   f"slower than baseline by more than "
                   f"{self.threshold:.0%}")
        lines.append(verdict)
        return "\n".join(lines)


def compare_docs(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    suites: Optional[Iterable[str]] = None,
) -> ComparisonReport:
    """Compare two loaded benchmark documents suite by suite.

    ``suites`` restricts the comparison to the named suites: a CI job
    that runs only a subset can gate on exactly that subset instead of
    seeing every other baseline entry reported as ``removed``.  Names
    absent from both documents are ignored (the caller may be gating a
    baseline that predates a suite's introduction).
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    cur_suites: Dict[str, Any] = current.get("suites", {})
    base_suites: Dict[str, Any] = baseline.get("suites", {})
    if suites is not None:
        wanted = set(suites)
        cur_suites = {k: v for k, v in cur_suites.items() if k in wanted}
        base_suites = {k: v for k, v in base_suites.items() if k in wanted}
    cur_env = current.get("environment", {})
    base_env = baseline.get("environment", {})
    report = ComparisonReport(
        threshold=threshold,
        scale_mismatch=(
            (cur_env.get("duration"), cur_env.get("warmup"))
            != (base_env.get("duration"), base_env.get("warmup"))
        ),
    )
    for name in sorted(set(cur_suites) | set(base_suites)):
        cur = cur_suites.get(name)
        base = base_suites.get(name)
        if cur is None:
            report.deltas.append(SuiteDelta(
                name, "removed", baseline_eps=base["events_per_s"]))
            continue
        if base is None:
            report.deltas.append(SuiteDelta(
                name, "new", current_eps=cur["events_per_s"]))
            continue
        cur_eps = float(cur["events_per_s"])
        base_eps = float(base["events_per_s"])
        ratio = cur_eps / base_eps if base_eps else 1.0
        if ratio < 1.0 - threshold:
            status = "regressed"
        elif ratio > 1.0 + threshold:
            status = "improved"
        else:
            status = "ok"
        report.deltas.append(SuiteDelta(
            name, status, current_eps=cur_eps, baseline_eps=base_eps,
            ratio=ratio,
        ))
    return report
