"""Run registered suites, measure, and emit the ``repro.bench/v1`` JSON.

The measurement protocol, per suite:

* ``repeats`` timed runs (default 1 — the simulations are deterministic,
  so repeats only buy wall-clock noise reduction, and the *minimum* wall
  time is reported as the least-contended sample);
* events come from the suite itself (engine counters), packets from the
  process-wide :mod:`repro.net.packet` uid counter sampled around each
  run — which is why suites run serially in-process, never fanned out to
  worker processes.

The emitted document is self-describing (``schema`` key) and carries an
``environment`` block so a regression report can tell "the code got
slower" apart from "this ran on a different machine / scale".
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, Mapping, Optional

from .suites import SUITES, resolve

#: Schema tag stamped into every emitted document.
SCHEMA = "repro.bench/v1"

#: Default measured/warmup seconds — deliberately smaller than the pytest
#: benchmarks' 60/20 so a full harness run stays under a minute.
DEFAULT_DURATION = 8.0
DEFAULT_WARMUP = 3.0


def bench_scale(duration: Optional[float] = None,
                warmup: Optional[float] = None) -> Dict[str, float]:
    """The scale knobs: explicit args beat env vars beat defaults.

    Honors the same ``REPRO_BENCH_DURATION`` / ``REPRO_BENCH_WARMUP``
    env vars as ``benchmarks/_scale.py`` (but with smaller defaults).
    """
    if duration is None:
        duration = float(os.environ.get("REPRO_BENCH_DURATION",
                                        DEFAULT_DURATION))
    if warmup is None:
        warmup = float(os.environ.get("REPRO_BENCH_WARMUP", DEFAULT_WARMUP))
    return {"duration": duration, "warmup": warmup}


def _git_revision() -> Optional[str]:
    """Current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def environment_block(scale: Mapping[str, float], repeats: int) -> Dict[str, Any]:
    """Everything needed to judge whether two documents are comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "duration": scale["duration"],
        "warmup": scale["warmup"],
        "repeats": repeats,
        "git_revision": _git_revision(),
    }


def _packet_uid() -> int:
    """Sample (and consume one tick of) the global packet uid counter."""
    from ..net import packet

    return next(packet._uid_counter)


def run_suite(name: str, scale: Mapping[str, float],
              repeats: int = 1) -> Dict[str, Any]:
    """Run one suite ``repeats`` times; report min wall time and rates."""
    suite = SUITES[name]
    best_wall = None
    events = packets = 0
    for _ in range(max(repeats, 1)):
        uid_before = _packet_uid()
        t0 = time.perf_counter()
        events = suite.run(scale)
        wall = time.perf_counter() - t0
        # The two probe samples themselves consume one uid each.
        packets = _packet_uid() - uid_before - 1
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert best_wall is not None
    return {
        "description": suite.description,
        "mirrors": suite.mirrors,
        "wall_s": round(best_wall, 6),
        "events": events,
        "packets": packets,
        "events_per_s": round(events / best_wall, 1) if best_wall else 0.0,
        "packets_per_s": round(packets / best_wall, 1) if best_wall else 0.0,
    }


def run_benchmarks(
    names: Optional[Iterable[str]] = None,
    scale: Optional[Mapping[str, float]] = None,
    repeats: int = 1,
    label: Optional[str] = None,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run the selected suites and return the full ``repro.bench/v1`` doc.

    ``progress`` is an optional ``print``-like callable for per-suite
    status lines (the CLI passes one; library callers usually don't).
    """
    selected = resolve(names) if names is not None else dict(SUITES)
    if scale is None:
        scale = bench_scale()
    suites: Dict[str, Any] = {}
    for name in selected:
        if progress is not None:
            progress(f"[repro.bench] running {name} ...")
        suites[name] = run_suite(name, scale, repeats=repeats)
        if progress is not None:
            row = suites[name]
            progress(f"[repro.bench]   {name}: {row['wall_s']:.2f}s wall, "
                     f"{row['events_per_s']:,.0f} events/s, "
                     f"{row['packets_per_s']:,.0f} packets/s")
    return {
        "schema": SCHEMA,
        "label": label,
        "created_unix": int(time.time()),
        "environment": environment_block(scale, repeats),
        "suites": suites,
    }


def write_report(doc: Dict[str, Any], path: str) -> None:
    """Write a benchmark document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a benchmark document, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {SCHEMA!r} — "
            "regenerate with `python -m repro.bench run`"
        )
    return doc


# Re-exported for the CLI's default output name.
def default_output_name(label: str) -> str:
    """Canonical file name for a labelled document (``BENCH_<label>.json``)."""
    return f"BENCH_{label}.json"


if sys.version_info < (3, 8):  # pragma: no cover - project floor is 3.8
    raise RuntimeError("repro.bench needs Python >= 3.8")
