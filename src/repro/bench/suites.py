"""The benchmark suite registry.

Each suite is an in-process, single-run equivalent of one of the
``benchmarks/bench_*.py`` pytest suites, trimmed to what a regression
harness needs: a deterministic workload whose *event count* is a pure
function of the scale knobs, so that events/sec comparisons across
commits measure the engine and not the workload.

Suites run **serially in this process** even when ``REPRO_BENCH_WORKERS``
is set: packets/sec is derived from the process-wide packet uid counter,
which a :mod:`repro.runtime` fan-out would bypass (workers mint uids in
their own processes).  See docs/PERFORMANCE.md for how the env vars are
honored across the pytest benchmarks versus this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping


@dataclass(frozen=True)
class Suite:
    """One registered benchmark workload.

    ``run`` takes the scale mapping (``duration``/``warmup`` seconds) and
    returns the number of simulator events executed.  Wall time and
    packet counts are measured around it by the harness.
    """

    name: str
    description: str
    run: Callable[[Mapping[str, float]], int]
    #: pytest suite this mirrors (for cross-referencing in docs/CI logs)
    mirrors: str


def _engine_storm(scale: Mapping[str, float]) -> int:
    """Raw event dispatch: 100 chains of timers, no network stack.

    Mirrors ``bench_engine.test_event_loop_throughput``; scale-independent
    (the chain count is fixed) so it isolates pure engine overhead.
    """
    from ..sim.engine import Simulator

    sim = Simulator(seed=1)
    n_events = 200_000

    def chain(remaining: int) -> None:
        if remaining > 0:
            sim.schedule_after(0.001, chain, remaining - 1)

    for _ in range(100):
        sim.schedule(0.0, chain, n_events // 100)
    return sim.run()


def _fig7(scale: Mapping[str, float]) -> int:
    """Figure 7 cases 1 and 3 (drop-tail), serial path."""
    from ..experiments.fig7_droptail import run_fig7

    results = run_fig7(duration=scale["duration"], warmup=scale["warmup"],
                       cases=(1, 3))
    return int(sum(res.stats["events"] for res in results.values()))


def _fig9(scale: Mapping[str, float]) -> int:
    """Figure 9 cases 1 and 3 (RED), serial path."""
    from ..experiments.fig9_red import run_fig9

    results = run_fig9(duration=scale["duration"], warmup=scale["warmup"],
                       cases=(1, 3))
    return int(sum(res.stats["events"] for res in results.values()))


def _scenarios(scale: Mapping[str, float]) -> int:
    """Scenario catalog smoke: churn + bursty entries at bench scale."""
    from ..scenarios import get_scenario, run_scenario

    events = 0
    for name in ("waxman-churn", "tree-bursty"):
        spec = get_scenario(name, duration=scale["duration"],
                            warmup=scale["warmup"])
        row = run_scenario(spec)
        events += int(row["sim_stats"]["events"])
    return events


#: name -> Suite, in canonical run order.
SUITES: Dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite("engine", "raw event dispatch, no network stack",
              _engine_storm, "bench_engine.py"),
        Suite("fig7", "figure 7 cases 1+3, drop-tail gateways",
              _fig7, "bench_fig7_droptail.py"),
        Suite("fig9", "figure 9 cases 1+3, RED gateways",
              _fig9, "bench_fig9_red.py"),
        Suite("scenarios", "catalog smoke: waxman-churn + tree-bursty",
              _scenarios, "bench_sweeps.py / scenarios catalog"),
    )
}

#: The fast subset the CI ``bench-smoke`` job runs on every push.
SMOKE_SUITES = ("engine", "fig7")


def resolve(names) -> Dict[str, Suite]:
    """Validate a suite-name iterable against the registry, keeping order."""
    selected = {}
    for name in names:
        if name not in SUITES:
            known = ", ".join(SUITES)
            raise KeyError(f"unknown bench suite {name!r} (known: {known})")
        selected[name] = SUITES[name]
    return selected
