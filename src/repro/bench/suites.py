"""The benchmark suite registry.

Each suite is an in-process, single-run equivalent of one of the
``benchmarks/bench_*.py`` pytest suites, trimmed to what a regression
harness needs: a deterministic workload whose *event count* is a pure
function of the scale knobs, so that events/sec comparisons across
commits measure the engine and not the workload.

Suites run **serially in this process** even when ``REPRO_BENCH_WORKERS``
is set: packets/sec is derived from the process-wide packet uid counter,
which a :mod:`repro.runtime` fan-out would bypass (workers mint uids in
their own processes).  See docs/PERFORMANCE.md for how the env vars are
honored across the pytest benchmarks versus this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping


@dataclass(frozen=True)
class Suite:
    """One registered benchmark workload.

    ``run`` takes the scale mapping (``duration``/``warmup`` seconds) and
    returns the number of simulator events executed.  Wall time and
    packet counts are measured around it by the harness.
    """

    name: str
    description: str
    run: Callable[[Mapping[str, float]], int]
    #: pytest suite this mirrors (for cross-referencing in docs/CI logs)
    mirrors: str


def _engine_storm(scale: Mapping[str, float]) -> int:
    """Raw event dispatch: 100 chains of timers, no network stack.

    Mirrors ``bench_engine.test_event_loop_throughput``; scale-independent
    (the chain count is fixed) so it isolates pure engine overhead.
    """
    from ..sim.engine import Simulator

    sim = Simulator(seed=1)
    n_events = 200_000

    def chain(remaining: int) -> None:
        if remaining > 0:
            sim.schedule_after(0.001, chain, remaining - 1)

    for _ in range(100):
        sim.schedule(0.0, chain, n_events // 100)
    return sim.run()


def _fig7(scale: Mapping[str, float]) -> int:
    """Figure 7 cases 1 and 3 (drop-tail), serial path."""
    from ..experiments.fig7_droptail import run_fig7

    results = run_fig7(duration=scale["duration"], warmup=scale["warmup"],
                       cases=(1, 3))
    return int(sum(res.stats["events"] for res in results.values()))


def _fig9(scale: Mapping[str, float]) -> int:
    """Figure 9 cases 1 and 3 (RED), serial path."""
    from ..experiments.fig9_red import run_fig9

    results = run_fig9(duration=scale["duration"], warmup=scale["warmup"],
                       cases=(1, 3))
    return int(sum(res.stats["events"] for res in results.values()))


def _scenarios(scale: Mapping[str, float]) -> int:
    """Scenario catalog smoke: churn + bursty entries at bench scale."""
    from ..scenarios import get_scenario, run_scenario

    events = 0
    for name in ("waxman-churn", "tree-bursty"):
        spec = get_scenario(name, duration=scale["duration"],
                            warmup=scale["warmup"])
        row = run_scenario(spec)
        events += int(row["sim_stats"]["events"])
    return events


def _aqm_grid(scale: Mapping[str, float]) -> int:
    """AQM matrix slice: {codel, pie, red-byte} on the RTT-cohort dumbbell.

    One cell per new discipline (trimodal packet mix, wide RTT spread,
    drop mode), so the sojourn bookkeeping, PI-controller updates and
    byte-mode averaging all sit under the regression gate.
    """
    from ..scenarios.grid import GridSpec, run_grid

    grid = GridSpec(disciplines=("codel", "pie", "red-byte"),
                    mixes=("trimodal",), spreads=("wide",),
                    ecn_modes=(False,),
                    duration=scale["duration"], warmup=scale["warmup"])
    _specs, rows = run_grid(grid)
    return sum(int(row["sim_stats"]["events"]) for row in rows)


def _rla_scale_run(n_receivers: int, scale: Mapping[str, float]) -> int:
    """Receiver-scaling star: constant event budget, growing group size.

    One RLA session over a pure star — every receiver hangs directly off
    the sender on its own link, with per-link bandwidth scaled as
    ``1/n_receivers`` so the aggregate ACK rate at the sender (and hence
    the total event count) is the same at every group size.  Delays are
    symmetric and queues deep enough to stay loss-free, so wall time
    isolates the sender's per-ACK aggregate maintenance: every ACK lands
    in the ``min_last_ack`` cohort and re-arms the max-RTO watchdog.

    From t=1.0s one member per 10ms is cycled out of and straight back
    into the session *at the agent level* (the distribution tree stays
    static; the ejected member's node is unbound and a fresh receiver is
    bound synced to the join point, exactly how ``session.add_member``
    wires late joiners) — exercising the join/leave reach-count and
    aggregate maintenance without dragging multicast-tree rebuild cost
    into the measurement.
    """
    from ..net.droptail import DropTailQueue
    from ..net.network import Network
    from ..rla.config import RLAConfig
    from ..rla.receiver import RLAReceiver
    from ..rla.session import RLASession
    from ..sim.engine import Simulator
    from ..units import mbps, ms

    sim = Simulator(seed=11)
    net = Network(sim)
    members = []
    for i in range(n_receivers):
        rid = f"R{i}"
        members.append(rid)
        net.add_link("S", rid, mbps(32.768 / n_receivers), ms(10.0),
                     queue_factory=lambda name: DropTailQueue(300))
    # Manual routes: all-pairs shortest paths are O(n^2) on a star and
    # irrelevant to what this suite measures.
    src = net.node("S")
    for rid in members:
        src.add_route(rid, net.links[("S", rid)])
        net.node(rid).add_route("S", net.links[(rid, "S")])
    config = RLAConfig(ack_jitter=0.0)
    session = RLASession(sim, net, "rla-scale", "S", members, config=config)
    session.start(0.01)

    counter = [0]

    def churn() -> None:
        rid = members[counter[0] % len(members)]
        counter[0] += 1
        sender = session.sender
        if len(sender.receivers) > 1 and rid in sender.receivers:
            node = net.node(rid)
            sender.remove_receiver(rid)
            node.unbind("rla-scale")
            sync_seq = sender.add_receiver(rid)
            fresh = RLAReceiver(sim, node, "rla-scale", "S",
                                config=config, start_seq=sync_seq)
            node.bind("rla-scale", fresh.on_packet)
        sim.schedule_after(0.01, churn)

    sim.schedule_after(1.0, churn)
    warmup = scale["warmup"]
    sim.run(until=warmup)
    session.mark()
    sim.run(until=warmup + scale["duration"])
    session.report()
    return sim.events_executed


#: Branch count for the warm-start ensemble pair below.  Four branches
#: keeps the cold side's wall time bench-friendly while still amortising
#: the shared prefix enough for the speedup to be visible.
ENSEMBLE_BRANCHES = 4


def _ensemble_spec(scale: Mapping[str, float], seed_offset: int = 0):
    """The churn scenario both ensemble suites run branches of."""
    from ..scenarios import get_scenario

    spec = get_scenario("tree-churn", duration=scale["duration"],
                        warmup=scale["warmup"])
    if seed_offset:
        import dataclasses

        spec = dataclasses.replace(spec, seed=spec.seed + seed_offset)
    return spec


def _ensemble_cold(scale: Mapping[str, float]) -> int:
    """Cold baseline: N independent full runs (fresh world per seed).

    The comparison partner of ``ensemble_fork`` — same scenario, same
    branch count, but every run pays the full ``[0, horizon]`` simulation
    from scratch.  ``ensemble_fork`` wall time over this suite's is the
    warm-start win; docs/PERFORMANCE.md records the measured ratio.
    """
    from ..scenarios import run_scenario

    events = 0
    for offset in range(ENSEMBLE_BRANCHES):
        row = run_scenario(_ensemble_spec(scale, seed_offset=offset))
        events += int(row["sim_stats"]["events"])
    return events


def _ensemble_fork(scale: Mapping[str, float]) -> int:
    """Warm start: one shared prefix, N reseeded branches from a snapshot.

    Builds the churn world once, runs it to the ensemble branch point
    (mid-measurement, so the shared prefix covers warmup plus half the
    measured window), captures a snapshot, then forks
    ``ENSEMBLE_BRANCHES`` reseeded branches to completion.  Capture and
    per-branch restore (pickling the whole world) are *inside* the timed
    region — the reported wall time is the honest end-to-end cost of the
    warm-start workflow.
    """
    from ..checkpoint import run_fork_ensemble
    from ..scenarios.runner import build_scenario_world, snapshot_scenario_world

    spec = _ensemble_spec(scale)
    branch_at = spec.warmup + scale["duration"] / 2.0
    world = build_scenario_world(spec)
    try:
        snapshot = snapshot_scenario_world(world, at=branch_at)
        prefix_events = world.sim.events_executed
    finally:
        world.disarm()
    results = run_fork_ensemble(snapshot, ENSEMBLE_BRANCHES)
    # Count events actually dispatched here: the shared prefix once, plus
    # each branch's post-snapshot tail (events_executed is carried across
    # the snapshot, so per-branch totals each include the prefix).
    events = prefix_events
    for _label, row in results:
        events += int(row["sim_stats"]["events"]) - prefix_events
    return events


def _fluid_small(scale: Mapping[str, float]) -> int:
    """Fluid runs of two packet-comparable cross-validation twins.

    The fluid sides of one RED dumbbell and one drop-tail RTT-cohort
    case from :data:`repro.fluid.crossval.CROSSVAL_CASES` — systems
    small enough that the packet backend runs them too, so this suite
    gates the per-step cost of the RK4 integrator, the grouped RLA
    drift and the equilibrium solver.  "Events" are RK4 steps.
    """
    from ..fluid.crossval import CROSSVAL_CASES, fluid_twin
    from ..fluid.runner import run_fluid

    events = 0
    for case in (CROSSVAL_CASES[0], CROSSVAL_CASES[3]):
        spec = fluid_twin(case).replace(duration=scale["duration"],
                                        warmup=scale["warmup"])
        row = run_fluid(spec)
        events += int(row["sim_stats"]["events"])
    return events


def _fluid_scale_100k(scale: Mapping[str, float]) -> int:
    """One 10⁵-flow population point on the fluid backend.

    The flagship scaling claim under a regression gate: a hundred
    thousand flows (and as many receivers) through a RED bottleneck,
    integrated in O(cohorts) state.  Wall time here is what the
    population-scaling figure reports per point.
    """
    from ..experiments.population import population_spec
    from ..fluid.runner import run_fluid

    spec = population_spec(100_000, duration=scale["duration"],
                           warmup=scale["warmup"])
    row = run_fluid(spec)
    return int(row["sim_stats"]["events"])


def _rla_scale(n_receivers: int) -> Callable[[Mapping[str, float]], int]:
    """Bind one receiver count into a suite-shaped run callable."""
    def run(scale: Mapping[str, float]) -> int:
        return _rla_scale_run(n_receivers, scale)
    return run


#: Group sizes the receiver-scaling sweep registers suites for.
RLA_SCALE_SIZES = (4, 64, 256, 1024)

#: name -> Suite, in canonical run order.
SUITES: Dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite("engine", "raw event dispatch, no network stack",
              _engine_storm, "bench_engine.py"),
        Suite("fig7", "figure 7 cases 1+3, drop-tail gateways",
              _fig7, "bench_fig7_droptail.py"),
        Suite("fig9", "figure 9 cases 1+3, RED gateways",
              _fig9, "bench_fig9_red.py"),
        Suite("scenarios", "catalog smoke: waxman-churn + tree-bursty",
              _scenarios, "bench_sweeps.py / scenarios catalog"),
        Suite("aqm_grid",
              "AQM matrix slice: codel/pie/red-byte on RTT cohorts",
              _aqm_grid, "scenarios grid / docs/SCENARIOS.md"),
        Suite("ensemble_cold",
              f"{ENSEMBLE_BRANCHES} independent cold churn runs (fork baseline)",
              _ensemble_cold, "checkpoint fork ensemble / docs/PERFORMANCE.md"),
        Suite("ensemble_fork",
              f"{ENSEMBLE_BRANCHES} reseeded branches forked from one snapshot",
              _ensemble_fork, "checkpoint fork ensemble / docs/PERFORMANCE.md"),
        *(
            Suite(f"rla_scale_{n}",
                  f"RLA receiver-scaling star, {n} receivers + agent churn",
                  _rla_scale(n), "rla_scale probe / docs/PERFORMANCE.md")
            for n in RLA_SCALE_SIZES
        ),
        Suite("fluid_small",
              "fluid twins of two packet-comparable crossval cases",
              _fluid_small, "repro.fluid crossval / docs/FLUID.md"),
        Suite("fluid_scale_100k",
              "one 100k-flow fluid population point (RED, wide RTTs)",
              _fluid_scale_100k, "fluid scale CLI / docs/FLUID.md"),
    )
}

#: The fast subset the CI ``bench-smoke`` job runs on every push (the two
#: smallest receiver-scaling sizes keep the incremental-aggregate paths
#: under the regression gate without the big groups' wall time;
#: ``fluid_small`` keeps the ODE integrator's per-step cost gated too).
SMOKE_SUITES = ("engine", "fig7", "rla_scale_4", "rla_scale_64",
                "fluid_small")


def resolve(names) -> Dict[str, Suite]:
    """Validate a suite-name iterable against the registry, keeping order."""
    selected = {}
    for name in names:
        if name not in SUITES:
            known = ", ".join(SUITES)
            raise KeyError(f"unknown bench suite {name!r} (known: {known})")
        selected[name] = SUITES[name]
    return selected
