"""Checkpoint/restore of running simulations (ROADMAP item 5).

``repro.checkpoint`` snapshots the complete state of a simulation —
engine, RNG streams, protocol agents, queues, audit ledgers — so that:

* ensemble sweeps fork hundreds of variant futures from one warmed-up
  state instead of re-simulating slow-start for every variant;
* long runs can be checkpointed mid-flight and resumed in a fresh
  process (``--checkpoint-at`` / ``repro.cli resume``);
* :mod:`repro.audit` invariant violations can be bisected in sim-time by
  restoring progressively earlier snapshots.

The correctness oracle is byte-identity: snapshot -> restore -> run must
produce a report pickle identical to the straight-through run, audited
and unaudited (see ``tests/checkpoint``).
"""

from .fork import branch_labels, fork, run_fork_ensemble
from .registry import (
    checkpoint_runner_for,
    register_checkpoint_runner,
    require_checkpoint_runner,
)
from .snapshot import (
    FORMAT_VERSION,
    CheckpointError,
    Snapshot,
    capture,
    dumps,
    load,
    resolve_entrypoint,
    restore,
    resume,
    save,
)

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "Snapshot",
    "branch_labels",
    "capture",
    "checkpoint_runner_for",
    "dumps",
    "fork",
    "load",
    "register_checkpoint_runner",
    "require_checkpoint_runner",
    "resolve_entrypoint",
    "restore",
    "resume",
    "run_fork_ensemble",
    "save",
]
