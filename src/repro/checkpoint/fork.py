"""Fork: branch N variant futures from one restored snapshot.

The wall-clock story of ROADMAP item 5: long-duration runs spend most of
their time in slow-start and join storms; an ensemble sweep that forks
its variants from one warmed-up snapshot pays that cost once instead of
once per variant.

Each branch is an independent deep copy (deserialized from the frozen
payload), optionally reseeded so its randomness future diverges
deterministically by branch label, and optionally mutated (different
churn schedules, queue configs, ...) before running to completion via the
snapshot's resume entrypoint.  Branches run sequentially in-process:
audited worlds install a process-global packet-creation hook, so only one
may be armed at a time — parallel fork ensembles should fan out restored
runs through :mod:`repro.runtime` worker processes instead.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from .snapshot import CheckpointError, Snapshot, resolve_entrypoint, restore

#: A per-branch world mutation applied after reseeding, before running.
BranchMutation = Callable[[Any], None]


def branch_labels(count: int, prefix: str = "fork") -> List[str]:
    """Default labels ``fork.0 .. fork.{count-1}`` for an ensemble."""
    if count < 1:
        raise CheckpointError(f"need at least one branch, got {count}")
    return [f"{prefix}.{index}" for index in range(count)]


def fork(
    snapshot: Snapshot,
    labels: Union[int, Sequence[str]],
    reseed: bool = True,
    rearm: bool = True,
) -> Iterator[Tuple[str, Any]]:
    """Yield ``(label, world)`` branches restored from one snapshot.

    Worlds are yielded lazily, one at a time, so audited branches can be
    armed, run, and disarmed before the next one is restored.  With
    ``reseed`` (the default) every RNG stream of the branch is re-derived
    from ``(snapshot seed, label)`` — same label, same future; different
    labels, independent futures.  ``reseed=False`` replays the captured
    randomness exactly (that is the byte-identity oracle's mode).
    """
    if isinstance(labels, int):
        labels = branch_labels(labels)
    for label in labels:
        world = restore(snapshot, rearm=rearm)
        if reseed:
            sim = getattr(world, "sim", None)
            if sim is None and isinstance(world, dict):
                sim = world.get("sim")
            if sim is None:
                raise CheckpointError(
                    f"cannot reseed branch {label!r}: world exposes no .sim"
                )
            sim.rng.reseed(label)
        yield label, world


def run_fork_ensemble(
    snapshot: Snapshot,
    labels: Union[int, Sequence[str]],
    mutate: Optional[BranchMutation] = None,
    reseed: bool = True,
) -> List[Tuple[str, Any]]:
    """Run every branch to completion; returns ``(label, report)`` pairs.

    Requires the snapshot to record a resume entrypoint (experiment- and
    scenario-level snapshots do).  ``mutate(world)``, when given, runs
    after reseeding and may adjust any branch state — swap queue configs,
    extend churn schedules, change session parameters — before the branch
    future is simulated.
    """
    if not snapshot.resume:
        raise CheckpointError(
            "snapshot records no resume entrypoint; fork() the bare worlds "
            "and finish them manually"
        )
    finish = resolve_entrypoint(snapshot.resume)
    results: List[Tuple[str, Any]] = []
    for label, world in fork(snapshot, labels, reseed=reseed):
        if mutate is not None:
            mutate(world)
        results.append((label, finish(world)))
    return results
