"""Registry of checkpoint-capable RunSpec entrypoints.

The parallel executor (:func:`repro.runtime.run_specs`) is generic over
entrypoints, but writing a mid-run snapshot requires runner cooperation
(the run must stop at the checkpoint time, capture, then continue).
Runners that support this register a *checkpoint runner* — a callable
``(params, checkpoint_at, checkpoint_path) -> result`` returning exactly
what the plain entrypoint returns, with the snapshot file as a side
effect — keyed by the plain entrypoint path.  Registration happens at
import time in :mod:`repro.experiments.runner` and
:mod:`repro.scenarios.runner`; worker processes re-import those modules
when resolving specs, so the registry is populated wherever it is needed.
"""

from __future__ import annotations

from typing import Dict, Optional

from .snapshot import CheckpointError

_CHECKPOINT_RUNNERS: Dict[str, str] = {}


def register_checkpoint_runner(entrypoint: str, runner: str) -> None:
    """Declare ``runner`` as the checkpoint-capable variant of ``entrypoint``.

    Both are ``"module:function"`` paths (runners must be module-level so
    they resolve inside worker processes).  Re-registering the same pair is
    a no-op; conflicting registrations are an error.
    """
    existing = _CHECKPOINT_RUNNERS.get(entrypoint)
    if existing is not None and existing != runner:
        raise CheckpointError(
            f"entrypoint {entrypoint!r} already has checkpoint runner "
            f"{existing!r}; refusing to replace it with {runner!r}"
        )
    _CHECKPOINT_RUNNERS[entrypoint] = runner


def checkpoint_runner_for(entrypoint: str) -> Optional[str]:
    """The registered checkpoint runner path, or ``None``."""
    return _CHECKPOINT_RUNNERS.get(entrypoint)


def require_checkpoint_runner(entrypoint: str) -> str:
    """Like :func:`checkpoint_runner_for` but raising a helpful error."""
    runner = _CHECKPOINT_RUNNERS.get(entrypoint)
    if runner is None:
        raise CheckpointError(
            f"entrypoint {entrypoint!r} does not support mid-run "
            f"checkpoints; registered: {sorted(_CHECKPOINT_RUNNERS) or '(none)'}"
        )
    return runner
