"""Snapshot/restore of full simulation state.

A :class:`Snapshot` captures *everything* a run needs to continue —
the :class:`~repro.sim.engine.Simulator` (event heap, ready batch,
sequence counter, cancelled count, clock), every named RNG stream
(:class:`~repro.sim.rng.RngStreams` pickles via ``random.Random``'s exact
``getstate``/``setstate``), protocol agents (TCP and RLA senders with
their aggregates, SACK trackers, RTT estimators and reach tables),
gateway/queue contents, and any attached :mod:`repro.audit` ledgers — by
pickling the whole world object graph at once, so shared references stay
shared on restore.

Two pieces of state live *outside* that graph and get special handling:

* the process-global packet uid counter (:mod:`repro.net.packet`) is
  recorded in :attr:`Snapshot.uid_next` and reset by :func:`restore` —
  a fresh process would otherwise re-issue uids still held by pickled
  in-flight packets;
* the process-global packet-creation hook the conservation auditor
  installs is re-armed by :func:`restore` through the world's ``rearm()``
  method (the hook is a module global, not part of the object graph).

The correctness contract is absolute: snapshot at any interior time,
restore (in the same or a fresh process), run to completion — the final
report must be byte-identical (as a pickle) to the straight-through run.
``tests/checkpoint`` enforces this for every figure workload and every
churn-catalog scenario.

Files are written atomically (temp + rename) like
:mod:`repro.runtime.cache` entries, with a small versioned header pickled
ahead of the world payload so incompatible files fail fast and cleanly.
"""

from __future__ import annotations

import importlib
import io
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..errors import ReproError
from ..net.packet import restore_uid_counter, uid_counter_state
from ..sim.engine import Simulator

#: Bump when the snapshot layout changes incompatibly.
FORMAT_VERSION = 1

#: File magic identifying a repro checkpoint file.
MAGIC = "repro-ckpt"


class CheckpointError(ReproError):
    """Snapshot capture, serialization, or restore failed."""


@dataclass(frozen=True)
class Snapshot:
    """One captured simulation state, ready to save, restore, or fork.

    ``payload`` is the world pickled *at capture time*: the snapshot stays
    frozen while the originating run continues, and every :func:`restore`
    deserializes a fresh, independent copy (which is exactly what
    :func:`fork` needs to branch variant futures).
    """

    version: int
    code: str
    label: str
    #: ``"module:function"`` entrypoint that finishes a restored world and
    #: returns the run's report (empty for bare-world snapshots).
    resume: str
    sim_time: float
    #: Next process-global packet uid at capture time.
    uid_next: int
    payload: bytes

    def header(self) -> Dict[str, Any]:
        """The versioned metadata written ahead of the payload."""
        return {
            "magic": MAGIC,
            "version": self.version,
            "code": self.code,
            "label": self.label,
            "resume": self.resume,
            "sim_time": self.sim_time,
            "uid_next": self.uid_next,
        }


def _find_simulator(world: Any) -> Simulator:
    sim = getattr(world, "sim", None)
    if sim is None and isinstance(world, dict):
        sim = world.get("sim")
    if not isinstance(sim, Simulator):
        raise CheckpointError(
            f"world of type {type(world).__name__} exposes no .sim / ['sim'] "
            f"Simulator to snapshot"
        )
    return sim


def capture(world: Any, label: str = "", resume: str = "") -> Snapshot:
    """Serialize ``world`` into a :class:`Snapshot` (read-only operation).

    ``world`` must expose the engine as ``world.sim`` (attribute) or
    ``world["sim"]`` (mapping) and must not be mid-event: capture is only
    legal between :meth:`~repro.sim.engine.Simulator.run` calls, where the
    engine guarantees the same-timestamp ready batch has been flushed back
    into the heap.
    """
    sim = _find_simulator(world)
    if sim._running:
        raise CheckpointError(
            "cannot capture while the simulator is running; snapshot "
            "between run() calls (e.g. after run(until=checkpoint_time))"
        )
    from ..runtime.spec import code_version

    try:
        payload = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"world is not picklable: {type(exc).__name__}: {exc}"
        ) from exc
    return Snapshot(
        version=FORMAT_VERSION,
        code=code_version(),
        label=label,
        resume=resume,
        sim_time=sim.now,
        uid_next=uid_counter_state(),
        payload=payload,
    )


def restore(snapshot: Snapshot, rearm: bool = True) -> Any:
    """Deserialize a fresh world copy and take over process-global state.

    Resets the packet uid counter to the captured value and, when
    ``rearm`` is true, calls the world's ``rearm()`` method (if any) so
    process-global hooks — e.g. the conservation auditor's packet-creation
    hook — are re-installed.  Only one audited world can be armed per
    process at a time; pass ``rearm=False`` when restoring several
    branches up front and arm each one around its run instead.
    """
    if snapshot.version != FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot format v{snapshot.version} not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    world = pickle.loads(snapshot.payload)
    restore_uid_counter(snapshot.uid_next)
    if rearm:
        rearm_fn = getattr(world, "rearm", None)
        if rearm_fn is not None:
            rearm_fn()
    return world


# ----------------------------------------------------------------------
# file format
# ----------------------------------------------------------------------
def save(snapshot: Snapshot, path: Union[str, Path]) -> Path:
    """Write ``snapshot`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(snapshot.header(), handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(snapshot.payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load(path: Union[str, Path],
         allow_code_mismatch: bool = False) -> Snapshot:
    """Read a snapshot file, validating magic, version, and code hash.

    A snapshot captured under different simulator code may deserialize
    into silently different behavior, so a :func:`code_version` mismatch
    is an error unless explicitly allowed.
    """
    from ..runtime.spec import code_version

    path = Path(path)
    try:
        with open(path, "rb") as handle:
            header = pickle.load(handle)
            payload = handle.read()
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint file {path}: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} has snapshot format v{header.get('version')}; "
            f"this build reads v{FORMAT_VERSION}"
        )
    if header["code"] != code_version() and not allow_code_mismatch:
        raise CheckpointError(
            f"{path} was captured under different simulator code "
            f"({header['code']} vs {code_version()}); restoring would not "
            f"reproduce the original run (pass allow_code_mismatch=True "
            f"to override)"
        )
    return Snapshot(
        version=header["version"],
        code=header["code"],
        label=header["label"],
        resume=header["resume"],
        sim_time=header["sim_time"],
        uid_next=header["uid_next"],
        payload=payload,
    )


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------
def resolve_entrypoint(entrypoint: str) -> Callable[..., Any]:
    """Import ``"module:function"`` (same convention as RunSpec)."""
    module_name, sep, func_name = entrypoint.partition(":")
    if not sep or not module_name or not func_name:
        raise CheckpointError(
            f"entrypoint must look like 'module:function': {entrypoint!r}"
        )
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, func_name)
    except AttributeError as exc:
        raise CheckpointError(
            f"{module_name} has no attribute {func_name!r}"
        ) from exc
    if not callable(func):
        raise CheckpointError(f"entrypoint {entrypoint!r} is not callable")
    return func


def resume(source: Union[Snapshot, str, Path],
           allow_code_mismatch: bool = False) -> Any:
    """Restore a snapshot and run its recorded resume entrypoint to the end.

    The entrypoint receives the restored (and re-armed) world and returns
    the finished run's report — byte-identical to what the straight-through
    run would have produced.
    """
    snapshot = source if isinstance(source, Snapshot) else load(
        source, allow_code_mismatch=allow_code_mismatch)
    if not snapshot.resume:
        raise CheckpointError(
            "snapshot records no resume entrypoint; restore() it manually"
        )
    func = resolve_entrypoint(snapshot.resume)
    world = restore(snapshot)
    return func(world)


def dumps(snapshot: Snapshot) -> bytes:
    """Snapshot file bytes without touching disk (for tests and caches)."""
    buffer = io.BytesIO()
    pickle.dump(snapshot.header(), buffer, protocol=pickle.HIGHEST_PROTOCOL)
    buffer.write(snapshot.payload)
    return buffer.getvalue()
