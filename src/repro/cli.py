"""Command-line entry point: reproduce any paper figure from the shell.

Examples::

    repro-rla fig4
    repro-rla fig7 --duration 120 --warmup 20 --cases 1 3
    repro-rla fig9 --seed 7 --workers 4
    repro-rla fig10 --workers 4 --cache --metrics
    repro-rla fig5 --steps 100000
    repro-rla multisession --duration 150
    repro-rla sweep --counts 2 4 8 --workers 4
    repro-rla scenarios run tree-churn --checkpoint-at 15 --checkpoint-dir ck
    repro-rla resume ck/<key>.t15.ckpt
    repro-rla fork ck/<key>.t15.ckpt --branches 8

Simulation subcommands (fig7/8/9/10, sweep) accept:

* ``--workers N`` — fan independent runs out over N processes via
  :mod:`repro.runtime` (results byte-identical to serial);
* ``--cache [DIR]`` — reuse finished runs from the on-disk result cache
  (default directory ``$REPRO_CACHE_DIR`` or ``.repro-cache``); a second
  invocation with unchanged parameters does not re-simulate;
* ``--metrics`` — print a per-run runtime summary (wall time, events,
  events/s, drops, peak queue depth, cache hits);
* ``--audit`` — run under the :mod:`repro.audit` conservation auditor;
  any lost, duplicated or fabricated packet (or sender-state
  inconsistency) aborts the run with a diagnostic.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from .errors import ReproError
from .experiments import (
    fig7_table,
    fig8_table,
    fig9_table,
    fig10_table,
    render_field,
    run_fig7,
    run_multisession,
    run_particle_density,
    summarize,
)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=200.0,
                        help="measured seconds after warmup (paper: 2900)")
    parser.add_argument("--warmup", type=float, default=20.0,
                        help="discarded warmup seconds (paper: 100)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run independent simulations over N worker "
                             "processes (default: serial in-process)")
    parser.add_argument("--cache", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="serve unchanged runs from the on-disk result "
                             "cache (DIR defaults to $REPRO_CACHE_DIR or "
                             ".repro-cache)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the per-run runtime summary table")
    parser.add_argument("--audit", action="store_true",
                        help="run under the conservation auditor: track "
                             "every packet to its terminal fate and fail "
                             "loudly on any invariant violation")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-at", type=float, default=None,
                        metavar="T",
                        help="write a resumable snapshot of every run at "
                             "interior sim-time T (results unchanged); see "
                             "the 'resume' and 'fork' subcommands")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for snapshot files (defaults to "
                             "the --cache directory)")


def _runtime_kwargs(args: argparse.Namespace, outcomes: List[Any]) -> dict:
    """Translate --workers/--cache/--metrics into runner keyword arguments."""
    kwargs: dict = {}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.cache is not None:
        from .runtime import ResultCache

        kwargs["cache"] = ResultCache(args.cache or None)
    if getattr(args, "checkpoint_at", None) is not None:
        kwargs["checkpoint_at"] = args.checkpoint_at
        if args.checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = args.checkpoint_dir
        kwargs.setdefault("workers", 1)
    if not kwargs and getattr(args, "metrics", False):
        # --metrics alone still needs the runtime path to collect outcomes
        kwargs["workers"] = 1
    if kwargs:
        kwargs["outcomes"] = outcomes
    return kwargs


def _print_metrics(args: argparse.Namespace, outcomes: List[Any]) -> None:
    if getattr(args, "metrics", False) and outcomes:
        from .runtime import metrics_table

        print()
        print(metrics_table([outcome.metrics for outcome in outcomes]))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rla",
        description="Reproduce figures from Wang & Schwartz, SIGCOMM 1998.",
    )
    sub = parser.add_subparsers(dest="figure", required=True)

    sub.add_parser("fig4", help="drift field of two competing windows")

    fig5 = sub.add_parser("fig5", help="density of (cwnd1, cwnd2)")
    fig5.add_argument("--steps", type=int, default=200_000)
    fig5.add_argument("--seed", type=int, default=1)

    for name, help_text in (
        ("fig7", "drop-tail table (cases 1-5)"),
        ("fig8", "congestion-signal statistics"),
        ("fig9", "RED table (cases 1-5)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_run_args(p)
        _add_checkpoint_args(p)
        p.add_argument("--cases", type=int, nargs="+", default=[1, 2, 3, 4, 5])

    fig10 = sub.add_parser("fig10", help="different RTTs (generalized RLA)")
    _add_run_args(fig10)
    _add_checkpoint_args(fig10)
    fig10.add_argument("--cases", type=int, nargs="+", default=[1, 2])

    multi = sub.add_parser("multisession", help="two overlapping RLA sessions")
    _add_run_args(multi)

    sweep = sub.add_parser("sweep", help="fairness vs receiver count")
    _add_run_args(sweep)
    sweep.add_argument("--counts", type=int, nargs="+", default=[2, 4, 8])
    sweep.add_argument("--backend", choices=["packet", "fluid"],
                       default="packet",
                       help="packet simulation, or the mean-field fluid "
                            "model integrating the same symmetric system")

    scenarios = sub.add_parser(
        "scenarios", help="generated workloads: topologies, mice, churn")
    scen_sub = scenarios.add_subparsers(dest="action", required=True)
    scen_sub.add_parser("list", help="list the named scenario catalog")
    scen_run = scen_sub.add_parser("run", help="run named scenarios")
    scen_run.add_argument("names", nargs="+", metavar="NAME",
                          help="catalog scenario names (see 'scenarios list')")
    # duration/warmup default to None so each scenario's catalog values
    # survive unless explicitly overridden
    scen_run.add_argument("--duration", type=float, default=None,
                          help="override measured seconds after warmup")
    scen_run.add_argument("--warmup", type=float, default=None,
                          help="override discarded warmup seconds")
    scen_run.add_argument("--seed", type=int, default=None,
                          help="override the scenario seed")
    from .net.network import GATEWAY_DISCIPLINES

    scen_run.add_argument("--gateway", choices=list(GATEWAY_DISCIPLINES),
                          default=None, help="override the gateway type")
    scen_run.add_argument("--ecn", action="store_true", default=None,
                          help="CE-mark instead of early-dropping (needs an "
                               "AQM gateway) and let endpoints react to marks")
    scen_run.add_argument("--workers", type=int, default=None, metavar="N",
                          help="run scenarios over N worker processes")
    scen_run.add_argument("--cache", nargs="?", const="", default=None,
                          metavar="DIR",
                          help="serve unchanged runs from the on-disk result "
                               "cache (DIR defaults to $REPRO_CACHE_DIR or "
                               ".repro-cache)")
    scen_run.add_argument("--metrics", action="store_true",
                          help="print the per-run runtime summary table")
    scen_run.add_argument("--audit", action="store_true",
                          help="run under the conservation auditor")
    _add_checkpoint_args(scen_run)

    from .scenarios.grid import PACKET_MIXES, RTT_SPREADS

    scen_grid = scen_sub.add_parser(
        "grid", help="run the AQM x heterogeneity study matrix")
    scen_grid.add_argument("--gateways", nargs="+", metavar="GW",
                           choices=list(GATEWAY_DISCIPLINES), default=None,
                           help="restrict the queue-discipline axis "
                                "(default: all disciplines)")
    scen_grid.add_argument("--mixes", nargs="+", metavar="MIX",
                           choices=list(PACKET_MIXES), default=None,
                           help="restrict the packet-size-mix axis "
                                "(default: all mixes)")
    scen_grid.add_argument("--spreads", nargs="+", metavar="RTT",
                           choices=list(RTT_SPREADS), default=None,
                           help="restrict the RTT-spread axis "
                                "(default: all spreads)")
    scen_grid.add_argument("--ecn", choices=["off", "on", "both"],
                           default="both",
                           help="ECN axis (droptail+on cells are skipped)")
    scen_grid.add_argument("--duration", type=float, default=20.0,
                           help="measured seconds after warmup per cell")
    scen_grid.add_argument("--warmup", type=float, default=5.0,
                           help="discarded warmup seconds per cell")
    scen_grid.add_argument("--seed", type=int, default=1,
                           help="seed shared by every cell")
    scen_grid.add_argument("--workers", type=int, default=None, metavar="N",
                           help="run cells over N worker processes")
    scen_grid.add_argument("--cache", nargs="?", const="", default=None,
                           metavar="DIR",
                           help="serve unchanged runs from the on-disk "
                                "result cache")
    scen_grid.add_argument("--metrics", action="store_true",
                           help="print the per-run runtime summary table")
    scen_grid.add_argument("--audit", action="store_true",
                           help="run every cell under the conservation "
                                "auditor")
    scen_grid.add_argument("--backend", choices=["packet", "fluid"],
                           default="packet",
                           help="packet scenarios, or mean-field fluid "
                                "cells (droptail/red, uniform, no ECN)")
    scen_grid.add_argument("--scale", type=float, default=1.0,
                           metavar="X",
                           help="fluid-backend population multiplier "
                                "(e.g. 25000 for a 10^5-flow matrix)")

    fluid = sub.add_parser(
        "fluid", help="mean-field fluid backend: crossval and scaling")
    fluid_sub = fluid.add_subparsers(dest="action", required=True)
    fluid_cv = fluid_sub.add_parser(
        "crossval", help="fluid-vs-packet regression set with error tables")
    fluid_cv.add_argument("--cases", nargs="+", default=None,
                          metavar="SUBSTR",
                          help="only run cases whose name contains one of "
                               "these substrings (default: all)")
    fluid_cv.add_argument("--workers", type=int, default=None, metavar="N",
                          help="run the packet sides over N worker processes")
    fluid_cv.add_argument("--cache", nargs="?", const="", default=None,
                          metavar="DIR",
                          help="serve unchanged packet runs from the "
                               "on-disk result cache")
    fluid_scale = fluid_sub.add_parser(
        "scale", help="fairness bounds at 10^5-10^6 flows (fluid only)")
    fluid_scale.add_argument("--counts", type=int, nargs="+",
                             default=None, metavar="N",
                             help="total TCP flows per point (default: "
                                 "100 1k 10k 100k 1M)")
    fluid_scale.add_argument("--gateway", choices=["droptail", "red"],
                             default="red")
    fluid_scale.add_argument("--spread", choices=["narrow", "wide"],
                             default="wide",
                             help="RTT-cohort spread of the scaled dumbbell")
    fluid_scale.add_argument("--duration", type=float, default=20.0)
    fluid_scale.add_argument("--warmup", type=float, default=5.0)
    fluid_scale.add_argument("--seed", type=int, default=1)

    resume_p = sub.add_parser(
        "resume", help="restore a snapshot file and run it to completion")
    resume_p.add_argument("snapshot", metavar="SNAPSHOT.ckpt",
                          help="file written by --checkpoint-at")
    resume_p.add_argument("--out", default=None, metavar="FILE",
                          help="pickle the finished report to FILE")
    resume_p.add_argument("--allow-code-mismatch", action="store_true",
                          help="restore even if the snapshot was captured "
                               "under different simulator code")

    fork_p = sub.add_parser(
        "fork", help="branch N reseeded variant futures from one snapshot")
    fork_p.add_argument("snapshot", metavar="SNAPSHOT.ckpt",
                        help="file written by --checkpoint-at")
    fork_p.add_argument("--branches", type=int, default=4, metavar="N",
                        help="how many variant futures to run (default 4)")
    fork_p.add_argument("--prefix", default="fork",
                        help="branch label prefix (labels seed the branches)")
    fork_p.add_argument("--out", default=None, metavar="FILE",
                        help="pickle the [(label, report)] list to FILE")
    fork_p.add_argument("--allow-code-mismatch", action="store_true",
                        help="restore even if the snapshot was captured "
                             "under different simulator code")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.figure == "fig4":
        print(render_field())
    elif args.figure == "fig5":
        trace = run_particle_density(steps=args.steps, seed=args.seed)
        print(f"mean cwnds: ({trace.mean_w1:.1f}, {trace.mean_w2:.1f}); "
              f"fair point {trace.model.operating_point()}; "
              f"mass within radius 10: {trace.mass_within(10.0):.2%}")
    elif args.figure in ("fig7", "fig8"):
        outcomes: List[Any] = []
        results = run_fig7(duration=args.duration, warmup=args.warmup,
                           seed=args.seed, cases=args.cases,
                           audited=args.audit,
                           **_runtime_kwargs(args, outcomes))
        print(fig7_table(results) if args.figure == "fig7" else fig8_table(results))
        _print_metrics(args, outcomes)
    elif args.figure == "fig9":
        from .experiments import run_fig9
        outcomes = []
        results = run_fig9(duration=args.duration, warmup=args.warmup,
                           seed=args.seed, cases=args.cases,
                           audited=args.audit,
                           **_runtime_kwargs(args, outcomes))
        print(fig9_table(results))
        _print_metrics(args, outcomes)
    elif args.figure == "fig10":
        from .experiments import run_fig10
        outcomes = []
        results = run_fig10(duration=args.duration, warmup=args.warmup,
                            seed=args.seed, cases=args.cases,
                            audited=args.audit,
                            **_runtime_kwargs(args, outcomes))
        print(fig10_table(results))
        _print_metrics(args, outcomes)
    elif args.figure == "multisession":
        result = run_multisession(duration=args.duration, warmup=args.warmup,
                                  seed=args.seed, audited=args.audit)
        for metric, (measured, paper) in summarize(result).items():
            print(f"{metric}: measured {measured}, paper {paper}")
    elif args.figure == "sweep":
        from .experiments.sweeps import format_sweep, sweep_receiver_count
        outcomes = []
        rows = sweep_receiver_count(counts=args.counts,
                                    duration=args.duration,
                                    warmup=args.warmup, seed=args.seed,
                                    audited=args.audit,
                                    backend=args.backend,
                                    **_runtime_kwargs(args, outcomes))
        print(format_sweep(rows, "n_receivers"))
        _print_metrics(args, outcomes)
    elif args.figure == "fluid":
        return _dispatch_fluid(args)
    elif args.figure == "scenarios":
        from .scenarios import format_catalog, format_scenarios, get_scenario, run_scenarios

        if args.action == "list":
            print(format_catalog())
            return 0
        if args.action == "grid":
            from .scenarios.grid import GridSpec, format_grid, run_grid

            ecn_modes = {"off": (False,), "on": (True,),
                         "both": (False, True)}[args.ecn]
            if args.backend == "fluid" and args.ecn == "both":
                ecn_modes = (False,)  # the fluid model has no ECN axis
            grid = GridSpec(
                disciplines=tuple(args.gateways or ()),
                mixes=tuple(args.mixes or ()),
                spreads=tuple(args.spreads or ()),
                ecn_modes=ecn_modes,
                duration=args.duration, warmup=args.warmup,
                seed=args.seed, audited=args.audit,
                backend=args.backend, scale=args.scale,
            )
            outcomes = []
            specs, rows = run_grid(grid, **_runtime_kwargs(args, outcomes))
            if args.backend == "fluid":
                from .fluid.runner import format_fluid

                print(format_fluid(rows))
            else:
                print(format_grid(specs, rows))
            _print_metrics(args, outcomes)
            return 0
        overrides = {k: v for k, v in (
            ("duration", args.duration), ("warmup", args.warmup),
            ("seed", args.seed), ("gateway", args.gateway),
            ("ecn", args.ecn),
        ) if v is not None}
        if args.audit:
            overrides["audited"] = True
        specs = [get_scenario(name, **overrides) for name in args.names]
        outcomes = []
        rows = run_scenarios(specs, **_runtime_kwargs(args, outcomes))
        print(format_scenarios(rows))
        _print_metrics(args, outcomes)
    elif args.figure == "resume":
        from .checkpoint import load, resume

        snapshot = load(args.snapshot,
                        allow_code_mismatch=args.allow_code_mismatch)
        print(f"restoring {snapshot.label or args.snapshot} "
              f"at t={snapshot.sim_time:g} ...")
        report = resume(snapshot)
        print(_describe_report(report))
        _pickle_out(args.out, report)
    elif args.figure == "fork":
        from .checkpoint import branch_labels, load, run_fork_ensemble

        snapshot = load(args.snapshot,
                        allow_code_mismatch=args.allow_code_mismatch)
        labels = branch_labels(args.branches, prefix=args.prefix)
        print(f"forking {snapshot.label or args.snapshot} "
              f"at t={snapshot.sim_time:g} into {len(labels)} branches ...")
        results = run_fork_ensemble(snapshot, labels)
        for label, report in results:
            print(f"[{label}] {_describe_report(report)}")
        _pickle_out(args.out, results)
    return 0


def _dispatch_fluid(args: argparse.Namespace) -> int:
    """The ``fluid`` subcommand: crossval tables and population scaling."""
    if args.action == "crossval":
        from .errors import ConfigurationError
        from .fluid.crossval import (
            CROSSVAL_CASES,
            format_crossval,
            run_crossval,
        )

        cases = CROSSVAL_CASES
        if args.cases:
            cases = tuple(case for case in CROSSVAL_CASES
                          if any(sub in case.name for sub in args.cases))
            if not cases:
                known = ", ".join(case.name for case in CROSSVAL_CASES)
                raise ConfigurationError(
                    f"no crossval case matches {args.cases}; have: {known}")
        cache = None
        if args.cache is not None:
            from .runtime import ResultCache

            cache = ResultCache(args.cache or None)
        results = run_crossval(cases=cases, workers=args.workers,
                               cache=cache)
        print(format_crossval(results))
        failed = sum(1 for _, _, _, rows in results
                     for row in rows if not row.ok)
        if failed:
            print(f"\n{failed} metric(s) outside tolerance")
            return 1
        return 0
    from .experiments.population import (
        POPULATION_COUNTS,
        format_population,
        run_population,
    )

    rows = run_population(
        counts=args.counts or POPULATION_COUNTS,
        gateway=args.gateway, spread=args.spread,
        duration=args.duration, warmup=args.warmup, seed=args.seed,
    )
    print(format_population(rows))
    return 0


def _describe_report(report: Any) -> str:
    """One-line human summary of a resumed run's report."""
    if isinstance(report, dict) and "rla_pps" in report:
        return (f"scenario {report.get('scenario')}: "
                f"rla {report['rla_pps']:.2f} pkt/s, "
                f"wtcp {report['wtcp_pps']:.2f} pkt/s, "
                f"jain {report['jain']:.3f}")
    stats = getattr(report, "stats", None)
    if isinstance(stats, dict):
        return (f"{type(report).__name__}: {stats.get('events', 0):.0f} "
                f"events to t={stats.get('sim_time', 0):g}"
                + (f", violations {stats['violations']:.0f}"
                   if "violations" in stats else ""))
    return repr(report)


def _pickle_out(path: Optional[str], payload: Any) -> None:
    if path is None:
        return
    import pickle

    # Default protocol, not HIGHEST: the byte-identity oracle and the
    # checkpoint smoke diff these files against pickle.dumps(report),
    # which pickles at DEFAULT_PROTOCOL — a protocol mismatch would make
    # every comparison fail on the version byte alone.
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    print(f"report pickled to {path}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
