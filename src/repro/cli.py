"""Command-line entry point: reproduce any paper figure from the shell.

Examples::

    repro-rla fig4
    repro-rla fig7 --duration 120 --warmup 20 --cases 1 3
    repro-rla fig9 --seed 7
    repro-rla fig10
    repro-rla fig5 --steps 100000
    repro-rla multisession --duration 150
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .experiments import (
    fig7_table,
    fig8_table,
    fig9_table,
    fig10_table,
    render_field,
    run_fig7,
    run_multisession,
    run_particle_density,
    summarize,
)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=200.0,
                        help="measured seconds after warmup (paper: 2900)")
    parser.add_argument("--warmup", type=float, default=20.0,
                        help="discarded warmup seconds (paper: 100)")
    parser.add_argument("--seed", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rla",
        description="Reproduce figures from Wang & Schwartz, SIGCOMM 1998.",
    )
    sub = parser.add_subparsers(dest="figure", required=True)

    sub.add_parser("fig4", help="drift field of two competing windows")

    fig5 = sub.add_parser("fig5", help="density of (cwnd1, cwnd2)")
    fig5.add_argument("--steps", type=int, default=200_000)
    fig5.add_argument("--seed", type=int, default=1)

    for name, help_text in (
        ("fig7", "drop-tail table (cases 1-5)"),
        ("fig8", "congestion-signal statistics"),
        ("fig9", "RED table (cases 1-5)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_run_args(p)
        p.add_argument("--cases", type=int, nargs="+", default=[1, 2, 3, 4, 5])

    fig10 = sub.add_parser("fig10", help="different RTTs (generalized RLA)")
    _add_run_args(fig10)
    fig10.add_argument("--cases", type=int, nargs="+", default=[1, 2])

    multi = sub.add_parser("multisession", help="two overlapping RLA sessions")
    _add_run_args(multi)

    sweep = sub.add_parser("sweep", help="fairness vs receiver count")
    _add_run_args(sweep)
    sweep.add_argument("--counts", type=int, nargs="+", default=[2, 4, 8])
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "fig4":
        print(render_field())
    elif args.figure == "fig5":
        trace = run_particle_density(steps=args.steps, seed=args.seed)
        print(f"mean cwnds: ({trace.mean_w1:.1f}, {trace.mean_w2:.1f}); "
              f"fair point {trace.model.operating_point()}; "
              f"mass within radius 10: {trace.mass_within(10.0):.2%}")
    elif args.figure in ("fig7", "fig8"):
        results = run_fig7(duration=args.duration, warmup=args.warmup,
                           seed=args.seed, cases=args.cases)
        print(fig7_table(results) if args.figure == "fig7" else fig8_table(results))
    elif args.figure == "fig9":
        from .experiments import run_fig9
        results = run_fig9(duration=args.duration, warmup=args.warmup,
                           seed=args.seed, cases=args.cases)
        print(fig9_table(results))
    elif args.figure == "fig10":
        from .experiments import run_fig10
        results = run_fig10(duration=args.duration, warmup=args.warmup,
                            seed=args.seed, cases=args.cases)
        print(fig10_table(results))
    elif args.figure == "multisession":
        result = run_multisession(duration=args.duration, warmup=args.warmup,
                                  seed=args.seed)
        for metric, (measured, paper) in summarize(result).items():
            print(f"{metric}: measured {measured}, paper {paper}")
    elif args.figure == "sweep":
        from .experiments.sweeps import format_sweep, sweep_receiver_count
        rows = sweep_receiver_count(counts=args.counts,
                                    duration=args.duration,
                                    warmup=args.warmup, seed=args.seed)
        print(format_sweep(rows, "n_receivers"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
