"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class RoutingError(SimulationError):
    """A packet could not be forwarded (no route / unknown destination)."""


class TopologyError(ConfigurationError):
    """A topology builder was asked for an impossible network."""
