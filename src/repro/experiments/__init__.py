"""Experiment harness: one module per paper figure/table (DESIGN.md S14)."""

from .fig4_drift import drift_field, render_field
from .fig5_density import (
    PacketDensityResult,
    run_packet_density,
    run_particle_density,
)
from .fig7_droptail import fig7_table, run_fig7
from .fig8_signals import fig8_table, run_fig8
from .fig9_red import fig9_table, run_fig9
from .fig10_rtt import fig10_table, run_fig10
from .multisession import run_multisession, summarize
from .runner import (
    TreeExperimentResult,
    TreeExperimentSpec,
    run_tree_experiment,
    run_tree_experiments,
    tree_runspec,
)
from .sweeps import (
    format_sweep,
    run_symmetric_spec,
    sweep_buffer_size,
    sweep_receiver_count,
    sweep_share,
    symmetric_runspec,
)
from .tables import format_case_table, format_signals_table, render_grid

__all__ = [
    "PacketDensityResult",
    "TreeExperimentResult",
    "TreeExperimentSpec",
    "drift_field",
    "fig10_table",
    "fig7_table",
    "fig8_table",
    "fig9_table",
    "format_case_table",
    "format_signals_table",
    "format_sweep",
    "render_field",
    "render_grid",
    "sweep_buffer_size",
    "sweep_receiver_count",
    "sweep_share",
    "run_fig10",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_multisession",
    "run_packet_density",
    "run_particle_density",
    "run_symmetric_spec",
    "run_tree_experiment",
    "run_tree_experiments",
    "summarize",
    "symmetric_runspec",
    "tree_runspec",
]
