"""Experiment E6 — figure 10: different round-trip times, generalized RLA.

The figure 6 tree with the level-3 gateways G31..G39 joining as receivers
(36 total).  Leaf receivers sit behind 100 ms level-4 links; the G3x
receivers are ~10x closer, so the sender's listening probability is scaled
by ``(srtt_i / srtt_max)^2`` (§5.3).  Two cases: bottlenecks at level 2 or
level 3.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..topology.cases import RTT_CASES
from .paperdata import FIG10_RTT
from .runner import (
    TreeExperimentResult,
    TreeExperimentSpec,
    run_tree_experiment,
    run_tree_experiments,
)
from .tables import format_case_table


def run_fig10(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    cases: Iterable[int] = (1, 2),
    share_pps: float = 100.0,
    gateway: str = "droptail",
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict[int, TreeExperimentResult]:
    """Run the figure 10 cases (36 receivers, RTT-scaled listening).

    ``workers``/``cache`` fan the case grid out through
    :mod:`repro.runtime`, as in :func:`~repro.experiments.fig7_droptail.run_fig7`.
    """
    specs = {
        case_number: TreeExperimentSpec(
            case=RTT_CASES[case_number],
            gateway=gateway,
            duration=duration,
            warmup=warmup,
            seed=seed,
            share_pps=share_pps,
            generalized=True,
            audited=audited,
        )
        for case_number in cases
    }
    if workers is None and cache is None and checkpoint_at is None:
        return {number: run_tree_experiment(spec)
                for number, spec in specs.items()}
    return run_tree_experiments(specs, workers=workers, cache=cache,
                                outcomes=outcomes,
                                checkpoint_at=checkpoint_at,
                                checkpoint_dir=checkpoint_dir)


def fig10_table(results: Optional[Dict[int, TreeExperimentResult]] = None, **kwargs) -> str:
    """Render the figure 10 table with paper references."""
    if results is None:
        results = run_fig10(**kwargs)
    return format_case_table(
        results, paper=FIG10_RTT,
        title="Figure 10 - different round-trip times (generalized RLA)",
    )


def main() -> None:  # pragma: no cover
    print(fig10_table())


if __name__ == "__main__":  # pragma: no cover
    main()
