"""Experiment E1 — figure 4: average drift diagram of two competing cwnds.

Purely analytical: evaluates the §4.4 particle-model drift at every grid
point for the paper's setting ``n = 3``, ``pipe = 10``.  The rendered
ASCII field shows the uncongested diagonal growth region and the
congested region's pull toward the fair operating point (5, 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..models.particle import ParticleModel

PAPER_N = 3
PAPER_PIPE = 10.0


def drift_field(
    n: int = PAPER_N, pipe: float = PAPER_PIPE, w_max: float = 12.0, step: float = 1.0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The (X, Y, U, V) drift field of figure 4."""
    return ParticleModel.uniform(n, pipe).drift_field(w_max, step)


def render_field(
    n: int = PAPER_N, pipe: float = PAPER_PIPE, w_max: float = 12.0
) -> str:
    """ASCII rendering: one arrow glyph per grid point."""
    grid_x, grid_y, u, v = drift_field(n, pipe, w_max)
    glyphs = []
    for row in range(grid_x.shape[0] - 1, -1, -1):  # y decreasing downward
        line = []
        for col in range(grid_x.shape[1]):
            du, dv = u[row, col], v[row, col]
            line.append(_arrow(du, dv))
        glyphs.append(f"w2={grid_y[row, 0]:>4.0f} " + " ".join(line))
    glyphs.append("      " + " ".join(f"{grid_x[0, col]:.0f}".rjust(1)
                                      for col in range(grid_x.shape[1])))
    header = f"Figure 4 - drift field, n={n}, pipe={pipe:.0f} (fair point at {pipe/2:.0f},{pipe/2:.0f})"
    return header + "\n" + "\n".join(glyphs)


def _arrow(du: float, dv: float) -> str:
    eps = 1e-9
    if du > eps and dv > eps:
        return "↗"  # growing together (uncongested)
    if du < -eps and dv < -eps:
        return "↙"  # both being pushed down
    if du < -eps:
        return "←"
    if dv < -eps:
        return "↓"
    return "·"


def main() -> None:  # pragma: no cover
    print(render_field())


if __name__ == "__main__":  # pragma: no cover
    main()
