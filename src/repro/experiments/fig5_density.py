"""Experiment E2 — figure 5: density plot of (cwnd1, cwnd2).

The paper's figure comes from a packet-level NS2 run (footnote 11): two
RLA sessions with 27 receivers each on a figure 1 topology, one TCP per
branch, each path's delay-bandwidth product 60 packets shared by the 3
sessions — so each session should average cwnd ~= 20 and the density mass
should sit around (20, 20).

We provide both levels:

* :func:`run_particle_density` — the §4.4 Markov chain (fast, what the
  paper's *model* predicts);
* :func:`run_packet_density` — the packet-level reproduction: 2 RLA
  sessions + TCP on the restricted topology, sampling both senders'
  windows periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..models.particle import ParticleModel, ParticleTrace
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..topology.restricted import RestrictedSpec, build_restricted
from ..units import ms, transmission_time, pps_to_bps

PAPER_N = 27
#: Delay-bandwidth product of each path, shared by 2 RLA + 1 TCP sessions.
PAPER_PIPE_PER_SESSION = 20.0


def run_particle_density(
    n: int = PAPER_N,
    pipe: float = 2 * PAPER_PIPE_PER_SESSION,
    steps: int = 200_000,
    seed: int = 1,
) -> ParticleTrace:
    """The §4.4 model's density (figure 5 as the *model* predicts it)."""
    return ParticleModel.uniform(n, pipe).simulate(steps=steps, seed=seed)


@dataclass
class PacketDensityResult:
    """Packet-level density measurement for two RLA sessions."""

    counts: Dict[Tuple[int, int], int]
    mean_w1: float
    mean_w2: float
    samples: int

    def density(self, w_max: int) -> np.ndarray:
        """Occupancy histogram over ``[0, w_max]^2``."""
        grid = np.zeros((w_max + 1, w_max + 1))
        for (w1, w2), count in self.counts.items():
            if 0 <= w1 <= w_max and 0 <= w2 <= w_max:
                grid[w1, w2] = count
        return grid


def run_packet_density(
    n_receivers: int = PAPER_N,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    sample_interval: float = 0.1,
    branch_delay: float = ms(45),
) -> PacketDensityResult:
    """Packet-level figure 5: sample (cwnd1, cwnd2) of two RLA sessions.

    Per footnote 11: each branch's pipe is 60 packets for 3 sessions
    (2 RLA + 1 TCP).  With one-way branch delay ``d`` and access delay
    5 ms, RTT ~= 2(d + 5ms); capacity is set to 60 / RTT pkt/s.
    """
    rtt = 2.0 * (branch_delay + ms(5))
    mu_pps = 60.0 / rtt
    spec = RestrictedSpec(
        mu_pps=[mu_pps] * n_receivers,
        m=[1] * n_receivers,
        branch_delay=branch_delay,
        gateway="droptail",
    )
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, spec)
    jitter = transmission_time(spec.packet_size, pps_to_bps(mu_pps))
    start_rng = sim.rng.stream("fig5.start")
    for index, receiver in enumerate(receivers):
        flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                       config=TcpConfig(phase_jitter=jitter))
        flow.start(start_rng.uniform(0.0, 1.0))
    config = RLAConfig(phase_jitter=jitter)
    sessions = [
        RLASession(sim, net, f"rla-{k}", "S", receivers, config=config)
        for k in range(2)
    ]
    for session in sessions:
        session.start(start_rng.uniform(0.0, 1.0))

    counts: Dict[Tuple[int, int], int] = {}
    sums = [0.0, 0.0]
    samples = [0]

    def sample() -> None:
        w1 = sessions[0].sender.cwnd
        w2 = sessions[1].sender.cwnd
        cell = (int(round(w1)), int(round(w2)))
        counts[cell] = counts.get(cell, 0) + 1
        sums[0] += w1
        sums[1] += w2
        samples[0] += 1

    sampler = PeriodicProcess(sim, sample_interval, sample, name="fig5.sample",
                              start_offset=warmup)
    sampler.start()
    sim.run(until=warmup + duration)
    total = max(samples[0], 1)
    return PacketDensityResult(
        counts=counts, mean_w1=sums[0] / total, mean_w2=sums[1] / total,
        samples=samples[0],
    )


def main() -> None:  # pragma: no cover
    trace = run_particle_density()
    print(f"particle model: mean cwnds ({trace.mean_w1:.1f}, {trace.mean_w2:.1f}), "
          f"mass within 10 of fair point: {trace.mass_within(10.0):.2%}")
    packet = run_packet_density(duration=120.0)
    print(f"packet level:   mean cwnds ({packet.mean_w1:.1f}, {packet.mean_w2:.1f}) "
          f"over {packet.samples} samples (paper: ~20, 20)")


if __name__ == "__main__":  # pragma: no cover
    main()
