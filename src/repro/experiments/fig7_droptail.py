"""Experiment E3 — figure 7: RLA vs TCP through drop-tail gateways.

Five cases of the figure 6 tertiary tree, soft-bottleneck share 100 pkt/s,
27 receivers, one background TCP per receiver, 20-packet FIFO buffers,
phase-effect jitter enabled (§3.1).  The paper runs 3000 s discarding the
first 100 s; duration/warmup here are parameters so benchmarks can run a
scaled-down (but shape-preserving) version.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..topology.cases import TREE_CASES
from .paperdata import FIG7_DROPTAIL
from .runner import TreeExperimentResult, TreeExperimentSpec, run_tree_experiment
from .tables import format_case_table


def run_fig7(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    cases: Iterable[int] = (1, 2, 3, 4, 5),
    share_pps: float = 100.0,
    gateway: str = "droptail",
) -> Dict[int, TreeExperimentResult]:
    """Run the selected figure 7 cases; returns results keyed by case."""
    results: Dict[int, TreeExperimentResult] = {}
    for case_number in cases:
        spec = TreeExperimentSpec(
            case=TREE_CASES[case_number],
            gateway=gateway,
            duration=duration,
            warmup=warmup,
            seed=seed,
            share_pps=share_pps,
        )
        results[case_number] = run_tree_experiment(spec)
    return results


def fig7_table(results: Optional[Dict[int, TreeExperimentResult]] = None, **kwargs) -> str:
    """Render the figure 7 table with paper references."""
    if results is None:
        results = run_fig7(**kwargs)
    return format_case_table(
        results, paper=FIG7_DROPTAIL,
        title="Figure 7 - multicast sharing with TCP, drop-tail gateways",
    )


def main() -> None:  # pragma: no cover - exercised via CLI/examples
    print(fig7_table())


if __name__ == "__main__":  # pragma: no cover
    main()
