"""Experiment E3 — figure 7: RLA vs TCP through drop-tail gateways.

Five cases of the figure 6 tertiary tree, soft-bottleneck share 100 pkt/s,
27 receivers, one background TCP per receiver, 20-packet FIFO buffers,
phase-effect jitter enabled (§3.1).  The paper runs 3000 s discarding the
first 100 s; duration/warmup here are parameters so benchmarks can run a
scaled-down (but shape-preserving) version.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..topology.cases import TREE_CASES
from .paperdata import FIG7_DROPTAIL
from .runner import (
    TreeExperimentResult,
    TreeExperimentSpec,
    run_tree_experiment,
    run_tree_experiments,
)
from .tables import format_case_table


def run_fig7(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    cases: Iterable[int] = (1, 2, 3, 4, 5),
    share_pps: float = 100.0,
    gateway: str = "droptail",
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict[int, TreeExperimentResult]:
    """Run the selected figure 7 cases; returns results keyed by case.

    With ``workers`` and/or ``cache`` set, the case grid fans out through
    :mod:`repro.runtime` (byte-identical results, run in parallel and
    cached on disk); otherwise the cases run serially in-process.
    ``audited=True`` runs every case under the :mod:`repro.audit`
    conservation auditor.  ``checkpoint_at`` writes a resumable snapshot
    of every case at that interior sim-time on the way to the same result.
    """
    specs = {
        case_number: TreeExperimentSpec(
            case=TREE_CASES[case_number],
            gateway=gateway,
            duration=duration,
            warmup=warmup,
            seed=seed,
            share_pps=share_pps,
            audited=audited,
        )
        for case_number in cases
    }
    if workers is None and cache is None and checkpoint_at is None:
        return {number: run_tree_experiment(spec)
                for number, spec in specs.items()}
    return run_tree_experiments(specs, workers=workers, cache=cache,
                                outcomes=outcomes,
                                checkpoint_at=checkpoint_at,
                                checkpoint_dir=checkpoint_dir)


def fig7_table(results: Optional[Dict[int, TreeExperimentResult]] = None, **kwargs) -> str:
    """Render the figure 7 table with paper references."""
    if results is None:
        results = run_fig7(**kwargs)
    return format_case_table(
        results, paper=FIG7_DROPTAIL,
        title="Figure 7 - multicast sharing with TCP, drop-tail gateways",
    )


def main() -> None:  # pragma: no cover - exercised via CLI/examples
    print(fig7_table())


if __name__ == "__main__":  # pragma: no cover
    main()
