"""Experiment E4 — figure 8: congestion-signal statistics per branch.

Uses the same runs as figure 7 (drop-tail).  For each case it reports the
worst / best / average number of congestion signals the RLA sender saw
from receivers on equally-congested branches, next to the worst / best /
average window-cut counts of the competing TCP connections — the paper's
evidence that both sender types see the *same congestion frequency*
(§3.1, §5.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from .fig7_droptail import run_fig7
from .paperdata import FIG8_SIGNALS
from .runner import TreeExperimentResult
from .tables import format_signals_table


def run_fig8(**kwargs) -> Dict[int, TreeExperimentResult]:
    """Run the drop-tail cases that figure 8's statistics come from."""
    return run_fig7(**kwargs)


def fig8_table(results: Optional[Dict[int, TreeExperimentResult]] = None, **kwargs) -> str:
    """Render the figure 8 table with paper references.

    Pass the results of :func:`run_fig7` to avoid re-running the
    simulations (the paper derives figures 7 and 8 from the same runs).
    """
    if results is None:
        results = run_fig8(**kwargs)
    return format_signals_table(
        results, paper=FIG8_SIGNALS,
        title="Figure 8 - congestion signals per branch (drop-tail runs)",
    )


def main() -> None:  # pragma: no cover
    print(fig8_table())


if __name__ == "__main__":  # pragma: no cover
    main()
