"""Experiment E5 — figure 9: RLA vs TCP through RED gateways.

Identical setup to figure 7 except the gateways are RED (min 5 / max 15 /
buffer 20) and no phase-effect jitter is used — RED's randomized drops
eliminate phase effects by themselves (§3.1, §5.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .fig7_droptail import run_fig7
from .paperdata import FIG9_RED
from .runner import TreeExperimentResult
from .tables import format_case_table


def run_fig9(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    cases: Iterable[int] = (1, 2, 3, 4, 5),
    share_pps: float = 100.0,
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict[int, TreeExperimentResult]:
    """Run the selected figure 9 cases (RED gateways)."""
    return run_fig7(
        duration=duration, warmup=warmup, seed=seed, cases=cases,
        share_pps=share_pps, gateway="red",
        workers=workers, cache=cache, outcomes=outcomes, audited=audited,
        checkpoint_at=checkpoint_at, checkpoint_dir=checkpoint_dir,
    )


def fig9_table(results: Optional[Dict[int, TreeExperimentResult]] = None, **kwargs) -> str:
    """Render the figure 9 table with paper references."""
    if results is None:
        results = run_fig9(**kwargs)
    return format_case_table(
        results, paper=FIG9_RED,
        title="Figure 9 - multicast sharing with TCP, RED gateways",
    )


def main() -> None:  # pragma: no cover
    print(fig9_table())


if __name__ == "__main__":  # pragma: no cover
    main()
