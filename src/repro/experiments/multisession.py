"""Experiment E7 — §5.2: two overlapping multicast sessions.

Case-3 topology (27 congested leaf links) with *two* RLA sessions from the
same sender to the same receivers plus the background TCPs.  The paper
reports the sessions sharing almost equally: throughputs 65.1 / 65.9
pkt/s and mean windows 19.9 / 20.1 at full scale.
"""

from __future__ import annotations

from typing import Dict

from ..topology.cases import TREE_CASES
from .paperdata import MULTISESSION
from .runner import TreeExperimentResult, TreeExperimentSpec, run_tree_experiment


def run_multisession(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    case_number: int = 3,
    gateway: str = "droptail",
    audited: bool = False,
) -> TreeExperimentResult:
    """Run the two-session experiment; ``result.rla`` has two reports."""
    spec = TreeExperimentSpec(
        case=TREE_CASES[case_number],
        gateway=gateway,
        duration=duration,
        warmup=warmup,
        seed=seed,
        rla_sessions=2,
        audited=audited,
    )
    return run_tree_experiment(spec)


def summarize(result: TreeExperimentResult) -> Dict[str, tuple]:
    """Measured vs paper numbers for the two sessions."""
    return {
        "throughput_pps": (
            tuple(round(r["throughput_pps"], 1) for r in result.rla),
            MULTISESSION["throughput_pps"],
        ),
        "mean_cwnd": (
            tuple(round(r["mean_cwnd"], 1) for r in result.rla),
            MULTISESSION["mean_cwnd"],
        ),
    }


def main() -> None:  # pragma: no cover
    result = run_multisession()
    for metric, (measured, paper) in summarize(result).items():
        print(f"{metric}: measured {measured}, paper {paper}")


if __name__ == "__main__":  # pragma: no cover
    main()
