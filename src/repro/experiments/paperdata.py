"""The paper's published numbers, transcribed from figures 7-10 and §5.2.

Benchmarks print these next to our measurements so paper-vs-reproduced
comparisons live in one place (EXPERIMENTS.md summarizes them).  Absolute
numbers need not match — the paper ran 2900-second NS2 measurements; we
run a Python simulator, usually at shorter durations — but the *shape*
(who wins, rough factors, case ordering) should.
"""

from __future__ import annotations

#: Figure 7 — drop-tail gateways.  Per case: RLA row and worst/best TCP.
FIG7_DROPTAIL = {
    1: {
        "rla": {"thrput": 144.1, "cwnd": 33.9, "rtt": 0.234,
                "cong_signals": 23247, "wnd_cut": 840, "forced_cut": 0},
        "wtcp": {"thrput": 81.8, "cwnd": 20.2, "rtt": 0.233, "wnd_cut": 879},
        "btcp": {"thrput": 89.6, "cwnd": 22.3, "rtt": 0.233, "wnd_cut": 818},
    },
    2: {
        "rla": {"thrput": 105.1, "cwnd": 27.2, "rtt": 0.267,
                "cong_signals": 19797, "wnd_cut": 719, "forced_cut": 0},
        "wtcp": {"thrput": 83.0, "cwnd": 22.0, "rtt": 0.251, "wnd_cut": 722},
        "btcp": {"thrput": 87.8, "cwnd": 23.2, "rtt": 0.251, "wnd_cut": 688},
    },
    3: {
        "rla": {"thrput": 94.6, "cwnd": 26.0, "rtt": 0.270,
                "cong_signals": 17007, "wnd_cut": 651, "forced_cut": 0},
        "wtcp": {"thrput": 79.2, "cwnd": 22.4, "rtt": 0.269, "wnd_cut": 658},
        "btcp": {"thrput": 80.3, "cwnd": 23.2, "rtt": 0.270, "wnd_cut": 646},
    },
    4: {
        "rla": {"thrput": 153.0, "cwnd": 40.0, "rtt": 0.264,
                "cong_signals": 12759, "wnd_cut": 482, "forced_cut": 0},
        "wtcp": {"thrput": 68.2, "cwnd": 17.9, "rtt": 0.252, "wnd_cut": 842},
        "btcp": {"thrput": 170.7, "cwnd": 43.8, "rtt": 0.244, "wnd_cut": 405},
    },
    5: {
        "rla": {"thrput": 224.6, "cwnd": 53.7, "rtt": 0.238,
                "cong_signals": 11754, "wnd_cut": 442, "forced_cut": 0},
        "wtcp": {"thrput": 74.5, "cwnd": 18.9, "rtt": 0.238, "wnd_cut": 899},
        "btcp": {"thrput": 570.7, "cwnd": 134.8, "rtt": 0.231, "wnd_cut": 225},
    },
}

#: Figure 9 — RED gateways.
FIG9_RED = {
    1: {
        "rla": {"thrput": 118.0, "cwnd": 27.6, "rtt": 0.233,
                "cong_signals": 25272, "wnd_cut": 949, "forced_cut": 0},
        "wtcp": {"thrput": 84.9, "cwnd": 20.9, "rtt": 0.232, "wnd_cut": 862},
        "btcp": {"thrput": 88.3, "cwnd": 21.5, "rtt": 0.232, "wnd_cut": 812},
    },
    2: {
        "rla": {"thrput": 103.7, "cwnd": 27.0, "rtt": 0.264,
                "cong_signals": 19188, "wnd_cut": 729, "forced_cut": 0},
        "wtcp": {"thrput": 81.7, "cwnd": 21.4, "rtt": 0.249, "wnd_cut": 741},
        "btcp": {"thrput": 86.1, "cwnd": 22.6, "rtt": 0.249, "wnd_cut": 707},
    },
    3: {
        "rla": {"thrput": 88.3, "cwnd": 25.9, "rtt": 0.283,
                "cong_signals": 19895, "wnd_cut": 721, "forced_cut": 0},
        "wtcp": {"thrput": 74.1, "cwnd": 21.1, "rtt": 0.265, "wnd_cut": 714},
        "btcp": {"thrput": 74.0, "cwnd": 21.1, "rtt": 0.265, "wnd_cut": 702},
    },
    4: {
        "rla": {"thrput": 141.0, "cwnd": 36.3, "rtt": 0.261,
                "cong_signals": 13939, "wnd_cut": 545, "forced_cut": 0},
        "wtcp": {"thrput": 67.1, "cwnd": 17.3, "rtt": 0.250, "wnd_cut": 891},
        "btcp": {"thrput": 166.2, "cwnd": 41.8, "rtt": 0.243, "wnd_cut": 433},
    },
    5: {
        "rla": {"thrput": 209.2, "cwnd": 49.6, "rtt": 0.236,
                "cong_signals": 12132, "wnd_cut": 454, "forced_cut": 0},
        "wtcp": {"thrput": 73.1, "cwnd": 18.4, "rtt": 0.236, "wnd_cut": 902},
        "btcp": {"thrput": 576.4, "cwnd": 135.7, "rtt": 0.231, "wnd_cut": 178},
    },
}

#: Figure 8 — congestion-signal statistics, drop-tail runs.
#: Per case and tier: (worst, best, average) RLA branch signals and TCP cuts.
FIG8_SIGNALS = {
    1: {"all": {"rla": (861, 861, 861), "tcp": (879, 818, 851)}},
    2: {"all": {"rla": (762, 713, 707), "tcp": (722, 688, 709)}},
    3: {"all": {"rla": (650, 609, 630), "tcp": (657, 646, 652)}},
    4: {
        "more": {"rla": (952, 925, 938), "tcp": (842, 819, 831)},
        "less": {"rla": (384, 351, 367), "tcp": (413, 405, 409)},
    },
    5: {
        "more": {"rla": (1082, 1082, 1082), "tcp": (899, 869, 886)},
        "less": {"rla": (112, 112, 112), "tcp": (302, 225, 271)},
    },
}

#: Figure 10 — different round-trip times (generalized RLA, 36 receivers).
FIG10_RTT = {
    1: {
        "rla": {"thrput": 167.6, "cwnd": 39.1, "rtt": 0.240,
                "cong_signals": 32118, "wnd_cut": 609, "forced_cut": 0},
        "wtcp": {"thrput": 78.0, "cwnd": 19.7, "rtt": 0.238, "wnd_cut": 856},
        "btcp": {"thrput": 83.2, "cwnd": 20.8, "rtt": 0.238, "wnd_cut": 814},
    },
    2: {
        "rla": {"thrput": 161.6, "cwnd": 36.5, "rtt": 0.264,
                "cong_signals": 41175, "wnd_cut": 721, "forced_cut": 0},
        "wtcp": {"thrput": 64.2, "cwnd": 17.4, "rtt": 0.253, "wnd_cut": 879},
        "btcp": {"thrput": 67.7, "cwnd": 18.2, "rtt": 0.253, "wnd_cut": 844},
    },
}

#: §5.2 — two overlapping multicast sessions on the case-3 topology.
MULTISESSION = {
    "throughput_pps": (65.1, 65.9),
    "mean_cwnd": (19.9, 20.1),
}

#: The paper's measurement window: 3000 s runs, first 100 s discarded.
PAPER_DURATION = 2900.0
PAPER_WARMUP = 100.0
