"""Fairness bounds at 10⁵–10⁶ flows via the fluid backend.

The paper's evaluation tops out at a few dozen flows because every
packet is simulated.  The mean-field fluid model of :mod:`repro.fluid`
removes that ceiling: its state is O(cohorts), so a million-flow
population integrates in seconds.  This experiment reproduces the
essential-fairness table — RLA throughput vs the worst TCP cohort,
their ratio against the Theorem I/II bounds, and the population Jain
index — on the RTT-cohort dumbbell at populations the packet backend
could never reach, holding the *per-flow* operating point (share, RTT,
loss) fixed as everything scales together.

Each point also carries the Reynier stability margin of its RED
equilibrium, so the table shows not just *that* the bounds hold at
10⁶ flows but that the operating point the fluid model converged to is
the locally stable fixed point of the mean-field dynamics.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional

#: Default population ladder: packet-comparable up to a thousand, then
#: the mean-field-only territory the packet backend cannot reach.
POPULATION_COUNTS = (100, 1_000, 10_000, 100_000, 1_000_000)

#: TCP flows in the scale-1 cell (the packet grid's population).
BASE_FLOWS = 4


def population_spec(
    n_flows: int,
    gateway: str = "red",
    spread: str = "wide",
    duration: float = 20.0,
    warmup: float = 5.0,
    seed: int = 1,
):
    """The fluid spec for one population point.

    ``n_flows`` total TCP flows (split across the fast/slow cohorts);
    receivers, capacity and buffer scale in proportion so every point
    sits at the same per-flow share.
    """
    from ..errors import ConfigurationError
    from ..scenarios.grid import fluid_grid_cell

    if n_flows < BASE_FLOWS:
        raise ConfigurationError(
            f"population needs >= {BASE_FLOWS} flows: {n_flows}"
        )
    scale = n_flows / BASE_FLOWS
    spec = fluid_grid_cell(gateway, spread, duration=duration,
                           warmup=warmup, seed=seed, scale=scale)
    return spec.replace(name=f"population {gateway} n={n_flows}")


def run_population(
    counts: Iterable[int] = POPULATION_COUNTS,
    gateway: str = "red",
    spread: str = "wide",
    duration: float = 20.0,
    warmup: float = 5.0,
    seed: int = 1,
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
) -> List[Dict[str, Any]]:
    """Fluid fairness rows across the population ladder.

    Serial runs stamp each row's ``sim_stats`` with its wall-clock
    seconds (``wall_s``) — the number the benchmarks report — while
    runtime fan-out leaves timing to the outcome metrics.
    """
    from ..fluid.runner import run_fluid, run_fluids

    specs = [population_spec(n, gateway=gateway, spread=spread,
                             duration=duration, warmup=warmup, seed=seed)
             for n in counts]
    if workers is None and cache is None:
        rows = []
        for spec in specs:
            start = time.perf_counter()
            row = run_fluid(spec)
            row["sim_stats"]["wall_s"] = time.perf_counter() - start
            rows.append(row)
        return rows
    return run_fluids(specs, workers=workers, cache=cache,
                      outcomes=outcomes)


def format_population(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width population table: bounds, Jain, stability, wall time."""
    header = (f"{'flows':>9} {'recv':>9} {'rla':>9} {'wtcp':>8} "
              f"{'ratio':>7} {'bounds':>16} {'ok':>4} {'jain':>6} "
              f"{'margin':>9} {'wall':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lower = row.get("bound_lower")
        upper = row.get("bound_upper")
        bounds = (f"({lower:.2f}, {upper:.2f})"
                  if lower is not None and upper is not None else "-")
        bound_ok = row.get("bound_ok")
        ok = "-" if bound_ok is None else ("yes" if bound_ok else "NO")
        margin = row.get("equilibrium", {}).get("stability_margin")
        margin_s = f"{margin:9.3f}" if margin is not None else f"{'-':>9}"
        wall = row.get("sim_stats", {}).get("wall_s")
        wall_s = f"{wall:6.2f}s" if wall is not None else f"{'-':>7}"
        lines.append(
            f"{row['n_flows']:>9} {row['n_receivers']:>9} "
            f"{row['rla_pps']:9.2f} {row['wtcp_pps']:8.2f} "
            f"{row['ratio']:7.3f} {bounds:>16} {ok:>4} "
            f"{row['jain']:6.3f} {margin_s} {wall_s}"
        )
    return "\n".join(lines)
