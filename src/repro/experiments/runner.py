"""Generic runner for the tree experiments of §5 (figures 7-10).

One function, :func:`run_tree_experiment`, builds the figure 6 tree for a
:class:`TreeCase`, attaches one background TCP connection per receiver and
one (or more) RLA sessions, runs warmup + measurement, and returns all the
paper-reported metrics.  The figure modules parameterize it; benchmarks
call those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Union

from ..errors import ConfigurationError
from ..net.addressing import flow_id
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..topology.cases import (
    TreeCase,
    case_bandwidths,
    case_receivers,
    congestion_tiers,
)
from ..topology.tree import build_tertiary_tree, static_tree_info
from ..units import DEFAULT_PACKET_SIZE, bps_to_pps, transmission_time


@dataclass
class TreeExperimentSpec:
    """Everything needed to reproduce one column of a §5 table."""

    case: TreeCase
    gateway: str = "droptail"
    duration: float = 200.0
    warmup: float = 20.0
    seed: int = 1
    share_pps: float = 100.0
    tcp_per_receiver: int = 1
    rla_sessions: int = 1
    #: None = auto (generalized RLA iff the case mixes RTT tiers)
    generalized: Optional[bool] = None
    #: "auto" = one bottleneck service time for drop-tail, none for RED
    phase_jitter: Union[str, float, None] = "auto"
    buffer_pkts: int = 20
    eta: float = 20.0
    rexmit_thresh: int = 0
    forced_cut_enabled: bool = True
    packet_size: int = DEFAULT_PACKET_SIZE
    #: Receiver-advertised window for the TCP flows, packets.  The paper's
    #: BTCP reaches cwnd ~135 on uncongested branches, implying an NS2
    #: advertised window of this magnitude; without a cap, uncongested
    #: TCPs grow without bound and swamp the simulation.
    tcp_max_cwnd: float = 128.0
    #: Run under the :mod:`repro.audit` conservation auditor: every packet
    #: is tracked to its terminal fate, senders are sanity-checked per ACK,
    #: and end-of-run conservation is enforced (raises
    #: :class:`~repro.audit.InvariantViolation` on any inconsistency).
    audited: bool = False

    def validate(self) -> "TreeExperimentSpec":
        if self.gateway not in ("droptail", "red"):
            raise ConfigurationError(f"unknown gateway {self.gateway!r}")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigurationError("duration must be positive, warmup >= 0")
        if self.tcp_per_receiver < 0:
            raise ConfigurationError("tcp_per_receiver must be >= 0")
        if self.rla_sessions < 1:
            raise ConfigurationError("need at least one RLA session")
        return self

    def resolved_generalized(self) -> bool:
        if self.generalized is not None:
            return self.generalized
        return self.case.receivers != "leaves"

    def resolved_jitter(self, min_bottleneck_bps: float) -> Optional[float]:
        if self.phase_jitter == "auto":
            if self.gateway == "red":
                return None  # RED itself eliminates phase effects (§3.1)
            return transmission_time(self.packet_size, min_bottleneck_bps)
        if self.phase_jitter is None:
            return None
        return float(self.phase_jitter)


@dataclass
class TreeExperimentResult:
    """All measurements from one tree experiment."""

    spec: TreeExperimentSpec
    #: one report per RLA session (see RLASession.report)
    rla: List[dict]
    #: per-receiver report of its background TCP flow (first one if several)
    tcp: Dict[str, dict]
    #: receivers split into "more" / "less" congested tiers
    tiers: Dict[str, List[str]] = field(default_factory=dict)
    receivers: List[str] = field(default_factory=list)
    #: engine statistics for the runtime layer's metric tables:
    #: events executed, total gateway drops, peak queue depth
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def wtcp(self) -> dict:
        """The worst competing TCP connection (paper's WTCP row)."""
        return min(self.tcp.values(), key=lambda r: r["throughput_pps"])

    @property
    def btcp(self) -> dict:
        """The best competing TCP connection (paper's BTCP row)."""
        return max(self.tcp.values(), key=lambda r: r["throughput_pps"])

    def tcp_cuts_by_tier(self, tier: str) -> List[int]:
        """Window-cut counts of the TCP flows in one congestion tier.

        Receivers without a background TCP (figure 10's interior G3x
        members) are skipped.
        """
        return [self.tcp[r]["window_cuts"] for r in self.tiers.get(tier, ())
                if r in self.tcp]

    def rla_signals_by_tier(self, tier: str, session: int = 0) -> List[int]:
        """RLA per-branch congestion-signal counts in one tier."""
        signals = self.rla[session]["signals_by_receiver"]
        return [signals[r] for r in self.tiers.get(tier, ()) if r in signals]


@dataclass
class TreeWorld:
    """A live (or restored) §5 experiment: everything between build and report.

    This is the unit :mod:`repro.checkpoint` snapshots: the whole object
    graph hanging off these fields — simulator, network, flows, sessions,
    audit ledgers — pickles as one, so shared references survive restore.
    """

    spec: TreeExperimentSpec
    sim: Simulator
    net: Any
    info: Any
    receivers: List[str]
    gateways: List[Any]
    tcp_flows: Dict[str, TcpFlow]
    extra_flows: List[TcpFlow]
    sessions: List[RLASession]
    auditor: Any = None
    monitor: Any = None
    #: True once the warmup boundary has been crossed and counters marked.
    marked: bool = False

    @property
    def end_time(self) -> float:
        """Absolute sim-time at which the measurement window closes."""
        return self.spec.warmup + self.spec.duration

    def rearm(self) -> None:
        """Re-install process-global audit state after a restore."""
        if self.auditor is not None:
            self.auditor.rearm()

    def disarm(self) -> None:
        """Release process-global audit state (safe to call when unaudited)."""
        if self.auditor is not None:
            self.auditor.detach()
            self.sim.event_hook = None


def build_tree_world(spec: TreeExperimentSpec) -> TreeWorld:
    """Construct the tree, attach audit hooks, and start all traffic.

    On an audited spec this installs the process-global packet-creation
    hook: callers must eventually call :meth:`TreeWorld.disarm` (the run
    helpers below do so in ``finally`` blocks).
    """
    spec.validate()
    case = spec.case
    info = static_tree_info()
    bandwidths = case_bandwidths(
        case, info, share_pps=spec.share_pps,
        tcp_per_receiver=spec.tcp_per_receiver, packet_size=spec.packet_size,
    )
    sim = Simulator(seed=spec.seed)
    net, info = build_tertiary_tree(
        sim, gateway=spec.gateway,
        link_bandwidths=bandwidths, buffer_pkts=spec.buffer_pkts,
    )
    receivers = case_receivers(case, info)
    jitter = spec.resolved_jitter(min(bandwidths.values()))
    start_rng = sim.rng.stream("experiment.start")

    # Gateways track peak occupancy natively (Gateway.peak_depth), so the
    # runtime layer's load stats need no per-enqueue hook — leaving the
    # enqueue fast path hook-free for un-audited runs.
    gateways = [link.gateway for link in net.links.values()]

    auditor = monitor = None
    if spec.audited:
        from ..audit import ConservationAuditor, FlightRecorder, InvariantMonitor

        recorder = FlightRecorder()
        monitor = InvariantMonitor(recorder)
        auditor = ConservationAuditor(sim, monitor=monitor, recorder=recorder)
        auditor.attach(net)
        sim.event_hook = recorder.observe_event

    tcp_config = TcpConfig(
        packet_size=spec.packet_size, phase_jitter=jitter,
        max_cwnd=spec.tcp_max_cwnd,
    )
    try:
        # Background TCPs run to the leaf receivers only: in figure 10 the
        # interior G3x nodes join the multicast group but have no TCP of
        # their own (the paper's WTCP/BTCP rows show leaf RTTs).
        tcp_flows: Dict[str, TcpFlow] = {}
        extra_flows: List[TcpFlow] = []
        for receiver in info.leaves:
            for k in range(spec.tcp_per_receiver):
                name = flow_id("tcp", f"{receiver}.{k}")
                flow = TcpFlow(sim, net, name, info.root, receiver, config=tcp_config)
                flow.sender.monitor = monitor
                flow.start(start_rng.uniform(0.0, 1.0))
                if k == 0:
                    tcp_flows[receiver] = flow
                else:
                    extra_flows.append(flow)

        rla_config = RLAConfig(
            packet_size=spec.packet_size,
            phase_jitter=jitter,
            eta=spec.eta,
            rexmit_thresh=spec.rexmit_thresh,
            forced_cut_enabled=spec.forced_cut_enabled,
            rtt_scaled_pthresh=spec.resolved_generalized(),
        )
        sessions = []
        for s in range(spec.rla_sessions):
            session = RLASession(
                sim, net, flow_id("rla", s), info.root, receivers, config=rla_config
            )
            session.sender.monitor = monitor
            session.start(start_rng.uniform(0.0, 1.0))
            sessions.append(session)
    except BaseException:
        if auditor is not None:
            auditor.detach()
            sim.event_hook = None
        raise

    return TreeWorld(
        spec=spec, sim=sim, net=net, info=info, receivers=receivers,
        gateways=gateways, tcp_flows=tcp_flows, extra_flows=extra_flows,
        sessions=sessions, auditor=auditor, monitor=monitor,
    )


def advance_tree_world(world: TreeWorld, until: float) -> None:
    """Run the world forward to absolute sim-time ``until``.

    Handles the warmup boundary exactly like the straight-through run:
    events up to the warmup horizon execute first, throughput counters are
    marked once at the boundary, then measurement-window events run.
    Splitting the run at any interior time (including exactly at the
    boundary) executes the identical event sequence — that equivalence is
    what makes interior-time snapshots byte-identical to straight-through
    runs.
    """
    spec = world.spec
    if until > world.end_time:
        raise ConfigurationError(
            f"cannot advance to t={until}: run ends at t={world.end_time}"
        )
    if not world.marked:
        world.sim.run(until=min(until, spec.warmup))
        if until >= spec.warmup:
            for flow in list(world.tcp_flows.values()) + world.extra_flows:
                flow.mark()
            for session in world.sessions:
                session.mark()
            world.marked = True
    if until > spec.warmup:
        world.sim.run(until=until)


def finalize_tree_world(world: TreeWorld) -> TreeExperimentResult:
    """Collect reports and audit verdicts from a fully advanced world."""
    spec = world.spec
    sim = world.sim
    stats: Dict[str, float] = {
        "events": sim.events_executed,
        "drops": sum(gateway.dropped for gateway in world.gateways),
        "peak_queue_depth": max(gateway.peak_depth for gateway in world.gateways),
        "sim_time": sim.now,
    }
    if world.auditor is not None:
        monitor = world.monitor
        for flow in list(world.tcp_flows.values()) + world.extra_flows:
            monitor.check_tcp(flow.sender)
        for session in world.sessions:
            monitor.check_rla(session.sender)
        world.auditor.verify()
        stats["audit_checks"] = monitor.checks_run
        stats["violations"] = monitor.violation_count
    return TreeExperimentResult(
        spec=spec,
        rla=[session.report() for session in world.sessions],
        tcp={receiver: flow.report()
             for receiver, flow in world.tcp_flows.items()},
        tiers=congestion_tiers(spec.case, world.info, world.receivers),
        receivers=world.receivers,
        stats=stats,
    )


#: Resume entrypoint recorded in tree-experiment snapshots.
TREE_RESUME_ENTRYPOINT = "repro.experiments.runner:resume_tree_world"


def resume_tree_world(world: TreeWorld) -> TreeExperimentResult:
    """Finish a restored world: run to the end and report (then disarm)."""
    try:
        advance_tree_world(world, world.end_time)
        return finalize_tree_world(world)
    finally:
        world.disarm()


def run_tree_experiment(
    spec: TreeExperimentSpec,
    checkpoint_at: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
) -> TreeExperimentResult:
    """Build, warm up, measure, and report one §5 experiment.

    With ``checkpoint_at`` set, the run pauses at that interior sim-time,
    captures a :class:`repro.checkpoint.Snapshot` (written to
    ``checkpoint_path`` when given), and continues — the returned result
    is identical to an uncheckpointed run.
    """
    world = build_tree_world(spec)
    try:
        if checkpoint_at is not None:
            snapshot = snapshot_tree_world(world, at=checkpoint_at)
            if checkpoint_path is not None:
                from ..checkpoint import save

                save(snapshot, checkpoint_path)
        advance_tree_world(world, world.end_time)
        return finalize_tree_world(world)
    finally:
        world.disarm()


def snapshot_tree_world(world: TreeWorld, at: Optional[float] = None,
                        label: str = ""):
    """Advance to ``at`` (if given) and capture a resumable snapshot."""
    from ..checkpoint import capture

    if at is not None:
        if not 0.0 <= at < world.end_time:
            raise ConfigurationError(
                f"checkpoint time {at} outside [0, {world.end_time})"
            )
        advance_tree_world(world, at)
    return capture(
        world,
        label=label or f"{world.spec.case.name}/{world.spec.gateway}"
                       f"@t={world.sim.now:g}",
        resume=TREE_RESUME_ENTRYPOINT,
    )


def checkpoint_tree_experiment(spec: TreeExperimentSpec, at: float,
                               path: Optional[str] = None):
    """Run a fresh experiment up to ``at`` and return (and save) a snapshot.

    Unlike :func:`run_tree_experiment` with ``checkpoint_at``, this stops
    at the checkpoint — the warm-start entry for fork ensembles.
    """
    world = build_tree_world(spec)
    try:
        snapshot = snapshot_tree_world(world, at=at)
    finally:
        world.disarm()
    if path is not None:
        from ..checkpoint import save

        save(snapshot, path)
    return snapshot


# ----------------------------------------------------------------------
# parallel-runtime wiring
# ----------------------------------------------------------------------
#: Entrypoint path worker processes resolve to run one tree experiment.
TREE_ENTRYPOINT = "repro.experiments.runner:run_tree_spec"
TREE_CHECKPOINT_RUNNER = "repro.experiments.runner:run_tree_spec_checkpointed"


def run_tree_spec(params: Dict[str, Any]) -> TreeExperimentResult:
    """:mod:`repro.runtime` entrypoint: ``params['spec']`` is the spec."""
    return run_tree_experiment(params["spec"])


def run_tree_spec_checkpointed(
    params: Dict[str, Any],
    checkpoint_at: float,
    checkpoint_path: Optional[str] = None,
) -> TreeExperimentResult:
    """Checkpoint-capable variant of :func:`run_tree_spec` (see registry)."""
    return run_tree_experiment(
        params["spec"], checkpoint_at=checkpoint_at,
        checkpoint_path=checkpoint_path,
    )


def _register_checkpoint_runner() -> None:
    from ..checkpoint import register_checkpoint_runner

    register_checkpoint_runner(TREE_ENTRYPOINT, TREE_CHECKPOINT_RUNNER)


_register_checkpoint_runner()


def tree_runspec(spec: TreeExperimentSpec, label: str = ""):
    """Wrap a :class:`TreeExperimentSpec` as a content-addressed RunSpec."""
    from ..runtime import RunSpec

    return RunSpec(
        TREE_ENTRYPOINT, {"spec": spec},
        label=label or f"{spec.case.name}/{spec.gateway}/seed{spec.seed}",
    )


def run_tree_experiments(
    specs: Dict[Hashable, TreeExperimentSpec],
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    outcomes: Optional[List[Any]] = None,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict[Hashable, TreeExperimentResult]:
    """Run a keyed grid of tree experiments through the parallel runtime.

    Results come back keyed like the input, in input order, and are
    byte-identical to calling :func:`run_tree_experiment` serially: each
    run's randomness is fully determined by its spec.  ``outcomes``, if
    given, is extended with the :class:`~repro.runtime.RunOutcome`
    records (for metric tables / cache accounting).  ``checkpoint_at``
    makes every non-cached run write a resumable snapshot at that interior
    sim-time (to ``checkpoint_dir`` or the cache directory) on its way to
    the same result.
    """
    from ..runtime import run_specs

    keys = list(specs)
    runspecs = [tree_runspec(specs[key]) for key in keys]
    outs = run_specs(runspecs, workers=workers, cache=cache, timeout=timeout,
                     checkpoint_at=checkpoint_at,
                     checkpoint_dir=checkpoint_dir)
    if outcomes is not None:
        outcomes.extend(outs)
    return {key: out.result for key, out in zip(keys, outs)}
