"""Generic runner for the tree experiments of §5 (figures 7-10).

One function, :func:`run_tree_experiment`, builds the figure 6 tree for a
:class:`TreeCase`, attaches one background TCP connection per receiver and
one (or more) RLA sessions, runs warmup + measurement, and returns all the
paper-reported metrics.  The figure modules parameterize it; benchmarks
call those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Union

from ..errors import ConfigurationError
from ..net.addressing import flow_id
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..topology.cases import (
    TreeCase,
    case_bandwidths,
    case_receivers,
    congestion_tiers,
)
from ..topology.tree import build_tertiary_tree, static_tree_info
from ..units import DEFAULT_PACKET_SIZE, bps_to_pps, transmission_time


@dataclass
class TreeExperimentSpec:
    """Everything needed to reproduce one column of a §5 table."""

    case: TreeCase
    gateway: str = "droptail"
    duration: float = 200.0
    warmup: float = 20.0
    seed: int = 1
    share_pps: float = 100.0
    tcp_per_receiver: int = 1
    rla_sessions: int = 1
    #: None = auto (generalized RLA iff the case mixes RTT tiers)
    generalized: Optional[bool] = None
    #: "auto" = one bottleneck service time for drop-tail, none for RED
    phase_jitter: Union[str, float, None] = "auto"
    buffer_pkts: int = 20
    eta: float = 20.0
    rexmit_thresh: int = 0
    forced_cut_enabled: bool = True
    packet_size: int = DEFAULT_PACKET_SIZE
    #: Receiver-advertised window for the TCP flows, packets.  The paper's
    #: BTCP reaches cwnd ~135 on uncongested branches, implying an NS2
    #: advertised window of this magnitude; without a cap, uncongested
    #: TCPs grow without bound and swamp the simulation.
    tcp_max_cwnd: float = 128.0
    #: Run under the :mod:`repro.audit` conservation auditor: every packet
    #: is tracked to its terminal fate, senders are sanity-checked per ACK,
    #: and end-of-run conservation is enforced (raises
    #: :class:`~repro.audit.InvariantViolation` on any inconsistency).
    audited: bool = False

    def validate(self) -> "TreeExperimentSpec":
        if self.gateway not in ("droptail", "red"):
            raise ConfigurationError(f"unknown gateway {self.gateway!r}")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigurationError("duration must be positive, warmup >= 0")
        if self.tcp_per_receiver < 0:
            raise ConfigurationError("tcp_per_receiver must be >= 0")
        if self.rla_sessions < 1:
            raise ConfigurationError("need at least one RLA session")
        return self

    def resolved_generalized(self) -> bool:
        if self.generalized is not None:
            return self.generalized
        return self.case.receivers != "leaves"

    def resolved_jitter(self, min_bottleneck_bps: float) -> Optional[float]:
        if self.phase_jitter == "auto":
            if self.gateway == "red":
                return None  # RED itself eliminates phase effects (§3.1)
            return transmission_time(self.packet_size, min_bottleneck_bps)
        if self.phase_jitter is None:
            return None
        return float(self.phase_jitter)


@dataclass
class TreeExperimentResult:
    """All measurements from one tree experiment."""

    spec: TreeExperimentSpec
    #: one report per RLA session (see RLASession.report)
    rla: List[dict]
    #: per-receiver report of its background TCP flow (first one if several)
    tcp: Dict[str, dict]
    #: receivers split into "more" / "less" congested tiers
    tiers: Dict[str, List[str]] = field(default_factory=dict)
    receivers: List[str] = field(default_factory=list)
    #: engine statistics for the runtime layer's metric tables:
    #: events executed, total gateway drops, peak queue depth
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def wtcp(self) -> dict:
        """The worst competing TCP connection (paper's WTCP row)."""
        return min(self.tcp.values(), key=lambda r: r["throughput_pps"])

    @property
    def btcp(self) -> dict:
        """The best competing TCP connection (paper's BTCP row)."""
        return max(self.tcp.values(), key=lambda r: r["throughput_pps"])

    def tcp_cuts_by_tier(self, tier: str) -> List[int]:
        """Window-cut counts of the TCP flows in one congestion tier.

        Receivers without a background TCP (figure 10's interior G3x
        members) are skipped.
        """
        return [self.tcp[r]["window_cuts"] for r in self.tiers.get(tier, ())
                if r in self.tcp]

    def rla_signals_by_tier(self, tier: str, session: int = 0) -> List[int]:
        """RLA per-branch congestion-signal counts in one tier."""
        signals = self.rla[session]["signals_by_receiver"]
        return [signals[r] for r in self.tiers.get(tier, ()) if r in signals]


def run_tree_experiment(spec: TreeExperimentSpec) -> TreeExperimentResult:
    """Build, warm up, measure, and report one §5 experiment."""
    spec.validate()
    case = spec.case
    info = static_tree_info()
    bandwidths = case_bandwidths(
        case, info, share_pps=spec.share_pps,
        tcp_per_receiver=spec.tcp_per_receiver, packet_size=spec.packet_size,
    )
    sim = Simulator(seed=spec.seed)
    net, info = build_tertiary_tree(
        sim, gateway=spec.gateway,
        link_bandwidths=bandwidths, buffer_pkts=spec.buffer_pkts,
    )
    receivers = case_receivers(case, info)
    jitter = spec.resolved_jitter(min(bandwidths.values()))
    start_rng = sim.rng.stream("experiment.start")

    # Gateways track peak occupancy natively (Gateway.peak_depth), so the
    # runtime layer's load stats need no per-enqueue hook — leaving the
    # enqueue fast path hook-free for un-audited runs.
    gateways = [link.gateway for link in net.links.values()]

    # The auditor's creation hook is process-global, so it must be
    # uninstalled even when the run raises (try/finally below); parallel
    # audited runs are safe because the runtime fans out to processes.
    auditor = monitor = None
    if spec.audited:
        from ..audit import ConservationAuditor, FlightRecorder, InvariantMonitor

        recorder = FlightRecorder()
        monitor = InvariantMonitor(recorder)
        auditor = ConservationAuditor(sim, monitor=monitor, recorder=recorder)
        auditor.attach(net)
        sim.event_hook = recorder.observe_event

    tcp_config = TcpConfig(
        packet_size=spec.packet_size, phase_jitter=jitter,
        max_cwnd=spec.tcp_max_cwnd,
    )
    try:
        # Background TCPs run to the leaf receivers only: in figure 10 the
        # interior G3x nodes join the multicast group but have no TCP of
        # their own (the paper's WTCP/BTCP rows show leaf RTTs).
        tcp_flows: Dict[str, TcpFlow] = {}
        extra_flows: List[TcpFlow] = []
        for receiver in info.leaves:
            for k in range(spec.tcp_per_receiver):
                name = flow_id("tcp", f"{receiver}.{k}")
                flow = TcpFlow(sim, net, name, info.root, receiver, config=tcp_config)
                flow.sender.monitor = monitor
                flow.start(start_rng.uniform(0.0, 1.0))
                if k == 0:
                    tcp_flows[receiver] = flow
                else:
                    extra_flows.append(flow)

        rla_config = RLAConfig(
            packet_size=spec.packet_size,
            phase_jitter=jitter,
            eta=spec.eta,
            rexmit_thresh=spec.rexmit_thresh,
            forced_cut_enabled=spec.forced_cut_enabled,
            rtt_scaled_pthresh=spec.resolved_generalized(),
        )
        sessions = []
        for s in range(spec.rla_sessions):
            session = RLASession(
                sim, net, flow_id("rla", s), info.root, receivers, config=rla_config
            )
            session.sender.monitor = monitor
            session.start(start_rng.uniform(0.0, 1.0))
            sessions.append(session)

        sim.run(until=spec.warmup)
        for flow in list(tcp_flows.values()) + extra_flows:
            flow.mark()
        for session in sessions:
            session.mark()
        sim.run(until=spec.warmup + spec.duration)

        stats: Dict[str, float] = {
            "events": sim.events_executed,
            "drops": sum(gateway.dropped for gateway in gateways),
            "peak_queue_depth": max(gateway.peak_depth for gateway in gateways),
            "sim_time": sim.now,
        }
        if auditor is not None:
            for flow in list(tcp_flows.values()) + extra_flows:
                monitor.check_tcp(flow.sender)
            for session in sessions:
                monitor.check_rla(session.sender)
            auditor.verify()
            stats["audit_checks"] = monitor.checks_run
            stats["violations"] = monitor.violation_count
        return TreeExperimentResult(
            spec=spec,
            rla=[session.report() for session in sessions],
            tcp={receiver: flow.report() for receiver, flow in tcp_flows.items()},
            tiers=congestion_tiers(case, info, receivers),
            receivers=receivers,
            stats=stats,
        )
    finally:
        if auditor is not None:
            auditor.detach()
            sim.event_hook = None


# ----------------------------------------------------------------------
# parallel-runtime wiring
# ----------------------------------------------------------------------
#: Entrypoint path worker processes resolve to run one tree experiment.
TREE_ENTRYPOINT = "repro.experiments.runner:run_tree_spec"


def run_tree_spec(params: Dict[str, Any]) -> TreeExperimentResult:
    """:mod:`repro.runtime` entrypoint: ``params['spec']`` is the spec."""
    return run_tree_experiment(params["spec"])


def tree_runspec(spec: TreeExperimentSpec, label: str = ""):
    """Wrap a :class:`TreeExperimentSpec` as a content-addressed RunSpec."""
    from ..runtime import RunSpec

    return RunSpec(
        TREE_ENTRYPOINT, {"spec": spec},
        label=label or f"{spec.case.name}/{spec.gateway}/seed{spec.seed}",
    )


def run_tree_experiments(
    specs: Dict[Hashable, TreeExperimentSpec],
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    outcomes: Optional[List[Any]] = None,
) -> Dict[Hashable, TreeExperimentResult]:
    """Run a keyed grid of tree experiments through the parallel runtime.

    Results come back keyed like the input, in input order, and are
    byte-identical to calling :func:`run_tree_experiment` serially: each
    run's randomness is fully determined by its spec.  ``outcomes``, if
    given, is extended with the :class:`~repro.runtime.RunOutcome`
    records (for metric tables / cache accounting).
    """
    from ..runtime import run_specs

    keys = list(specs)
    runspecs = [tree_runspec(specs[key]) for key in keys]
    outs = run_specs(runspecs, workers=workers, cache=cache, timeout=timeout)
    if outcomes is not None:
        outcomes.extend(outs)
    return {key: out.result for key, out in zip(keys, outs)}
