"""Parameter sweeps around the paper's operating point.

The paper evaluates one share (100 pkt/s), one buffer (20 packets) and
two receiver populations (27 and 36).  These sweeps probe how the RLA's
fairness behaves as each knob moves — the sensitivity analysis a
deployment would want:

* :func:`sweep_receiver_count` — how the RLA/TCP ratio scales with the
  number of receivers (the ``n`` in the Theorem bounds);
* :func:`sweep_buffer_size` — robustness to gateway buffer provisioning;
* :func:`sweep_share` — robustness to the absolute bottleneck speed.

All sweeps run the symmetric restricted topology (figure 1) where the
expected outcome is near-absolute fairness at every point.

All sweeps accept ``workers``/``cache``: with either set they fan out
through :mod:`repro.runtime` (parallel execution + on-disk result
caching) and return rows byte-identical to the serial path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..models.fairness import check_essential_fairness
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..topology.restricted import RestrictedSpec, build_restricted
from ..units import pps_to_bps, transmission_time


def _run_symmetric(
    n_receivers: int,
    share_pps: float,
    buffer_pkts: int,
    duration: float,
    warmup: float,
    seed: int,
    gateway: str,
    audited: bool = False,
) -> Dict[str, float]:
    """One symmetric run: n branches at (1 TCP + RLA) * share each."""
    mu = 2 * share_pps  # 1 TCP + the multicast session per branch
    spec = RestrictedSpec(
        mu_pps=[mu] * n_receivers,
        m=[1] * n_receivers,
        gateway=gateway,
        buffer_pkts=buffer_pkts,
    )
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, spec)
    # Peak occupancy comes from the gateways' native counters; no
    # per-enqueue hook means the enqueue fast path stays hook-free.
    gateways = [link.gateway for link in net.links.values()]
    auditor = monitor = None
    if audited:
        from ..audit import ConservationAuditor, FlightRecorder, InvariantMonitor

        recorder = FlightRecorder()
        monitor = InvariantMonitor(recorder)
        auditor = ConservationAuditor(sim, monitor=monitor, recorder=recorder)
        auditor.attach(net)
        sim.event_hook = recorder.observe_event
    jitter = (transmission_time(spec.packet_size, pps_to_bps(mu))
              if gateway == "droptail" else None)
    try:
        flows: List[TcpFlow] = []
        for index, receiver in enumerate(receivers):
            flow = TcpFlow(sim, net, f"tcp-{index}", "S", receiver,
                           config=TcpConfig(phase_jitter=jitter))
            flow.sender.monitor = monitor
            flow.start(0.1 * index)
            flows.append(flow)
        session = RLASession(sim, net, "rla-0", "S", receivers,
                             config=RLAConfig(phase_jitter=jitter))
        session.sender.monitor = monitor
        session.start(0.05)
        sim.run(until=warmup)
        session.mark()
        for flow in flows:
            flow.mark()
        sim.run(until=warmup + duration)
        rla = session.report()
        tcp_rates = [flow.report()["throughput_pps"] for flow in flows]
        wtcp = min(tcp_rates)
        n = max(rla["num_trouble"], 1)
        verdict = check_essential_fairness(
            max(rla["throughput_pps"], 1e-9), max(wtcp, 1e-9), n, gateway
        )
        sim_stats: Dict[str, float] = {
            "events": sim.events_executed,
            "drops": sum(gw.dropped for gw in gateways),
            "peak_queue_depth": max(gw.peak_depth for gw in gateways),
            "sim_time": sim.now,
        }
        if auditor is not None:
            for flow in flows:
                monitor.check_tcp(flow.sender)
            monitor.check_rla(session.sender)
            auditor.verify()
            sim_stats["audit_checks"] = monitor.checks_run
            sim_stats["violations"] = monitor.violation_count
        return {
            "n_receivers": n_receivers,
            "share_pps": share_pps,
            "buffer_pkts": buffer_pkts,
            "rla_pps": rla["throughput_pps"],
            "rla_cwnd": rla["mean_cwnd"],
            "wtcp_pps": wtcp,
            "ratio": verdict.ratio,
            "fair": verdict.fair,
            "lower": verdict.lower,
            "upper": verdict.upper,
            "num_trouble": n,
            "window_cuts": rla["window_cuts"],
            "signals": rla["congestion_signals"],
            "sim_stats": sim_stats,
        }
    finally:
        if auditor is not None:
            auditor.detach()
            sim.event_hook = None


# ----------------------------------------------------------------------
# parallel-runtime wiring
# ----------------------------------------------------------------------
#: Entrypoint path worker processes resolve to run one symmetric point.
SYMMETRIC_ENTRYPOINT = "repro.experiments.sweeps:run_symmetric_spec"

#: Sweep backends: packet-level simulation, or the mean-field fluid
#: model of :mod:`repro.fluid` integrating the same symmetric system.
SWEEP_BACKENDS = ("packet", "fluid")


def run_symmetric_spec(params: Dict[str, Any]) -> Dict[str, float]:
    """:mod:`repro.runtime` entrypoint for one symmetric sweep point."""
    return _run_symmetric(
        n_receivers=int(params["n_receivers"]),
        share_pps=float(params["share_pps"]),
        buffer_pkts=int(params["buffer_pkts"]),
        duration=float(params["duration"]),
        warmup=float(params["warmup"]),
        seed=int(params["seed"]),
        gateway=str(params["gateway"]),
        audited=bool(params.get("audited", False)),
    )


def _backend_entrypoint(backend: str) -> str:
    """The runtime entrypoint implementing one sweep point on ``backend``."""
    if backend == "packet":
        return SYMMETRIC_ENTRYPOINT
    if backend == "fluid":
        from ..fluid.adapters import FLUID_SYMMETRIC_ENTRYPOINT

        return FLUID_SYMMETRIC_ENTRYPOINT
    from ..errors import ConfigurationError

    raise ConfigurationError(
        f"unknown sweep backend {backend!r}; expected one of {SWEEP_BACKENDS}"
    )


def symmetric_runspec(label_knob: str, entrypoint: str = SYMMETRIC_ENTRYPOINT,
                      **params):
    """A content-addressed RunSpec for one symmetric sweep point."""
    from ..runtime import RunSpec

    return RunSpec(entrypoint, params,
                   label=f"sweep {label_knob}={params[label_knob]} "
                         f"({params['gateway']})")


def _run_points(
    points: List[Dict[str, Any]],
    label_knob: str,
    workers: Optional[int],
    cache,
    outcomes: Optional[List[Any]],
    backend: str = "packet",
) -> List[Dict[str, float]]:
    """Serial loop when the runtime is not requested, fan-out when it is."""
    entrypoint = _backend_entrypoint(backend)
    if backend == "fluid" and any(p.get("audited") for p in points):
        from ..errors import ConfigurationError

        raise ConfigurationError(
            "the conservation auditor tracks packets; a fluid run has "
            "none to audit"
        )
    if workers is None and cache is None:
        if backend == "fluid":
            from ..fluid.adapters import run_symmetric_fluid_spec

            return [run_symmetric_fluid_spec(point) for point in points]
        return [run_symmetric_spec(point) for point in points]
    from ..runtime import run_specs

    specs = [symmetric_runspec(label_knob, entrypoint, **point)
             for point in points]
    outs = run_specs(specs, workers=workers, cache=cache)
    if outcomes is not None:
        outcomes.extend(outs)
    return [out.result for out in outs]


def sweep_receiver_count(
    counts: Iterable[int] = (2, 4, 8, 12),
    share_pps: float = 100.0,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    gateway: str = "droptail",
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    backend: str = "packet",
) -> List[Dict[str, float]]:
    """Fairness ratio as the receiver population grows."""
    points = [
        dict(n_receivers=n, share_pps=share_pps, buffer_pkts=20,
             duration=duration, warmup=warmup, seed=seed, gateway=gateway,
             **({"audited": True} if audited else {}))
        for n in counts
    ]
    return _run_points(points, "n_receivers", workers, cache, outcomes,
                       backend=backend)


def sweep_buffer_size(
    buffers: Iterable[int] = (5, 10, 20, 40),
    n_receivers: int = 3,
    share_pps: float = 100.0,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    gateway: str = "droptail",
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    backend: str = "packet",
) -> List[Dict[str, float]]:
    """Fairness ratio across gateway buffer sizes."""
    points = [
        dict(n_receivers=n_receivers, share_pps=share_pps, buffer_pkts=buffer,
             duration=duration, warmup=warmup, seed=seed, gateway=gateway,
             **({"audited": True} if audited else {}))
        for buffer in buffers
    ]
    return _run_points(points, "buffer_pkts", workers, cache, outcomes,
                       backend=backend)


def sweep_share(
    shares: Iterable[float] = (50.0, 100.0, 200.0),
    n_receivers: int = 3,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    gateway: str = "droptail",
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    audited: bool = False,
    backend: str = "packet",
) -> List[Dict[str, float]]:
    """Fairness ratio across absolute bottleneck speeds."""
    points = [
        dict(n_receivers=n_receivers, share_pps=share, buffer_pkts=20,
             duration=duration, warmup=warmup, seed=seed, gateway=gateway,
             **({"audited": True} if audited else {}))
        for share in shares
    ]
    return _run_points(points, "share_pps", workers, cache, outcomes,
                       backend=backend)


def format_sweep(rows: List[Dict[str, float]], knob: str) -> str:
    """Compact text table of a sweep's outcome."""
    lines = [f"{knob:>12s}  {'RLA pkt/s':>10s}  {'WTCP':>8s}  {'ratio':>6s}  "
             f"{'bounds':>16s}  fair"]
    for row in rows:
        bounds = f"({row['lower']:.2f}, {row['upper']:.2f})"
        lines.append(
            f"{row[knob]:>12.0f}  {row['rla_pps']:>10.1f}  "
            f"{row['wtcp_pps']:>8.1f}  {row['ratio']:>6.2f}  "
            f"{bounds:>16s}  {'yes' if row['fair'] else 'NO'}"
        )
    return "\n".join(lines)
