"""Text-table rendering of experiment results, in the paper's layout.

:func:`format_case_table` renders the figure 7/9/10 layout — cases as
columns; RLA / WTCP / BTCP blocks as rows — with the paper's reference
numbers interleaved when provided.  :func:`format_signals_table` renders
the figure 8 layout (per-branch congestion-signal statistics).
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from .runner import TreeExperimentResult


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_grid(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align a list of rows under a header into a monospace grid."""
    table = [list(header)] + [list(row) for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


_RLA_ROWS = (
    ("thrput (pkt/s)", "throughput_pps", 1),
    ("cwnd", "mean_cwnd", 1),
    ("RTT (s)", "mean_rtt", 3),
    ("# cong signals", "congestion_signals", 0),
    ("# wnd cut", "window_cuts", 0),
    ("# forced cut", "forced_cuts", 0),
)

_TCP_ROWS = (
    ("thrput (pkt/s)", "throughput_pps", 1),
    ("cwnd", "mean_cwnd", 1),
    ("RTT (s)", "mean_rtt", 3),
    ("# wnd cut", "window_cuts", 0),
)

_PAPER_KEYS = {
    "throughput_pps": "thrput",
    "mean_cwnd": "cwnd",
    "mean_rtt": "rtt",
    "congestion_signals": "cong_signals",
    "window_cuts": "wnd_cut",
    "forced_cuts": "forced_cut",
}


def format_case_table(
    results: Dict[int, TreeExperimentResult],
    paper: Optional[Dict[int, dict]] = None,
    title: str = "",
) -> str:
    """Render the figure 7/9/10 table (cases as columns).

    When ``paper`` is given (a FIG7/FIG9/FIG10 dict from
    :mod:`repro.experiments.paperdata`), each measured value is followed
    by the paper's number in brackets.
    """
    cases = sorted(results)
    header = ["section", "metric"] + [f"case {c}" for c in cases]
    rows: List[List[str]] = []

    def cell(case: int, block: str, key: str, digits: int) -> str:
        result = results[case]
        if block == "rla":
            measured = result.rla[0][key]
        elif block == "wtcp":
            measured = result.wtcp.get(key)
        else:
            measured = result.btcp.get(key)
        text = _fmt(measured, digits)
        if paper and case in paper:
            ref = paper[case][block].get(_PAPER_KEYS.get(key, key))
            if ref is not None:
                text += f" [{_fmt(ref, digits)}]"
        return text

    for label, key, digits in _RLA_ROWS:
        rows.append(["RLA", label] + [cell(c, "rla", key, digits) for c in cases])
    for label, key, digits in _TCP_ROWS:
        rows.append(["WTCP", label] + [cell(c, "wtcp", key, digits) for c in cases])
    for label, key, digits in _TCP_ROWS:
        rows.append(["BTCP", label] + [cell(c, "btcp", key, digits) for c in cases])

    grid = render_grid(header, rows)
    note = "measured [paper]" if paper else "measured"
    prefix = f"{title}\n" if title else ""
    return f"{prefix}{grid}\n({note})"


def _tier_stats(values: Sequence[int]):
    if not values:
        return None, None, None
    return max(values), min(values), mean(values)


def format_signals_table(
    results: Dict[int, TreeExperimentResult],
    paper: Optional[Dict[int, dict]] = None,
    title: str = "",
) -> str:
    """Render the figure 8 table: per-branch congestion-signal statistics.

    Per case and congestion tier: worst/best/average RLA branch signal
    counts and worst/best/average TCP window cuts.
    """
    header = [
        "case", "links",
        "RLA worst", "RLA best", "RLA avg",
        "TCP worst", "TCP best", "TCP avg",
    ]
    rows: List[List[str]] = []
    for case in sorted(results):
        result = results[case]
        tiers = [("more", "more congested"), ("less", "less congested")]
        if not result.tiers.get("less"):
            tiers = [("more", "all links")]
        for tier_key, tier_label in tiers:
            rla_w, rla_b, rla_a = _tier_stats(result.rla_signals_by_tier(tier_key))
            tcp_w, tcp_b, tcp_a = _tier_stats(result.tcp_cuts_by_tier(tier_key))
            row = [
                str(case), tier_label,
                _fmt(rla_w, 0), _fmt(rla_b, 0), _fmt(rla_a, 0),
                _fmt(tcp_w, 0), _fmt(tcp_b, 0), _fmt(tcp_a, 0),
            ]
            if paper and case in paper:
                ref_tier = "all" if tier_label == "all links" else tier_key
                ref = paper[case].get(ref_tier)
                if ref:
                    row[2] += f" [{ref['rla'][0]}]"
                    row[3] += f" [{ref['rla'][1]}]"
                    row[4] += f" [{ref['rla'][2]}]"
                    row[5] += f" [{ref['tcp'][0]}]"
                    row[6] += f" [{ref['tcp'][1]}]"
                    row[7] += f" [{ref['tcp'][2]}]"
            rows.append(row)
    grid = render_grid(header, rows)
    note = "measured [paper]" if paper else "measured"
    prefix = f"{title}\n" if title else ""
    return f"{prefix}{grid}\n({note})"
