"""Mean-field fluid backend: population-scale runs without packets.

Models heterogeneous TCP and RLA flow populations sharing drop-tail/RED
bottlenecks as a deterministic ODE system (the McDonald-Reynier
mean-field limit), cross-validated against the packet simulator at
10-100 flows and used to extend the paper's fairness-bound figures to
10⁵-10⁶ flows.  See docs/FLUID.md for the derivation, validity
envelope, and measured tolerances.
"""

from .adapters import (
    FLUID_SYMMETRIC_ENTRYPOINT,
    cohort_fluid_spec,
    mean_field_w_q,
    run_symmetric_fluid_spec,
    scaled_bottleneck,
    symmetric_fluid_spec,
)
from .crossval import (
    CROSSVAL_CASES,
    CrossvalCase,
    CrossvalRow,
    crossval_case,
    format_crossval,
    run_crossval,
)
from .integrate import FluidResult, integrate, rk4_step
from .model import (
    MIN_WINDOW,
    FluidModel,
    overflow_loss,
    red_drop_probability,
)
from .runner import (
    FLUID_ENTRYPOINT,
    fluid_runspec,
    format_fluid,
    run_fluid,
    run_fluid_spec,
    run_fluids,
)
from .spec import (
    DROPTAIL_RAMP,
    FLUID_DISCIPLINES,
    BottleneckSpec,
    FluidSpec,
    RlaCohortSpec,
    TcpCohortSpec,
)
from .stability import (
    EquilibriumReport,
    equilibrium_state,
    reynier_check,
    solve_equilibrium,
    stability_margin,
)

__all__ = [
    "CROSSVAL_CASES",
    "DROPTAIL_RAMP",
    "FLUID_DISCIPLINES",
    "FLUID_ENTRYPOINT",
    "FLUID_SYMMETRIC_ENTRYPOINT",
    "MIN_WINDOW",
    "BottleneckSpec",
    "CrossvalCase",
    "CrossvalRow",
    "EquilibriumReport",
    "FluidModel",
    "FluidResult",
    "FluidSpec",
    "RlaCohortSpec",
    "TcpCohortSpec",
    "cohort_fluid_spec",
    "crossval_case",
    "equilibrium_state",
    "mean_field_w_q",
    "fluid_runspec",
    "format_crossval",
    "format_fluid",
    "integrate",
    "overflow_loss",
    "red_drop_probability",
    "reynier_check",
    "rk4_step",
    "run_crossval",
    "run_fluid",
    "run_fluid_spec",
    "run_fluids",
    "run_symmetric_fluid_spec",
    "scaled_bottleneck",
    "solve_equilibrium",
    "stability_margin",
    "symmetric_fluid_spec",
]
