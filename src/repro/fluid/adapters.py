"""Fluid twins of the packet experiment surfaces.

The fluid backend earns its keep by sliding in *behind* existing
experiments, so every adapter here mirrors one packet-side builder
exactly — same capacities, buffers, RED parameterization and RTTs —
and differs only in being a population description:

* :func:`symmetric_fluid_spec` twins the figure 1 restricted topology
  of :func:`repro.topology.restricted.build_restricted`, one branch
  bottleneck per receiver, which is what ``repro-rla sweep --backend
  fluid`` integrates instead of simulating;
* :func:`cohort_fluid_spec` twins the fast/slow
  :class:`repro.scenarios.topologies.RttCohortTopology` dumbbell, with
  a ``scale`` knob that multiplies populations *and* capacity together
  — the road to the 10⁵–10⁶-flow grid and fairness figures, where the
  ODE state stays O(cohorts) no matter how many flows a cohort holds.

Scaling keeps the *per-flow* operating point fixed (share, RTT, loss),
so a 10⁶-flow cell is the same physics as its 8-flow packet twin; the
RED averaging gain follows the mean-field scaling ``w_q ∝ 1/scale``
(:func:`mean_field_w_q`), the many-flows limit under which McDonald &
Reynier derive the averaged-queue ODE — and, practically, what keeps
``w_q · A · dt`` bounded so the fixed-step RK4 stays stable.
"""

from __future__ import annotations

from typing import Any, Dict

from ..models.fairness import check_essential_fairness
from ..scenarios.topologies import RttCohortTopology
from ..units import bps_to_pps, mbps, ms
from .runner import run_fluid
from .spec import BottleneckSpec, FluidSpec, RlaCohortSpec, TcpCohortSpec

#: Packet-mode RED averaging gain (``repro.net.network.red_factory``).
W_Q_REFERENCE = 0.002


def mean_field_w_q(scale: float) -> float:
    """RED averaging gain at population ``scale`` (mean-field ``1/scale``).

    At ``scale = 1`` this is the packet simulator's ``w_q = 0.002``; as
    the population (and capacity) grow N-fold the gain shrinks N-fold,
    keeping the averaged queue's time constant — ``1/(w_q A)`` — fixed
    in seconds, exactly the regime of the mean-field limit.
    """
    return W_Q_REFERENCE / scale


def scaled_bottleneck(
    capacity_pps: float,
    buffer_pkts: float,
    discipline: str,
    scale: float = 1.0,
    label: str = "",
) -> BottleneckSpec:
    """A bottleneck mirroring :func:`repro.net.network.discipline_factory`.

    RED thresholds sit at 25% / 75% of the physical buffer — the packet
    stack's scaling — and everything (capacity, buffer, thresholds)
    multiplies by ``scale`` while ``w_q`` divides by it.
    """
    capacity = capacity_pps * scale
    buffer = buffer_pkts * scale
    min_th = max(1.0, 0.25 * buffer)
    return BottleneckSpec(
        capacity_pps=capacity,
        buffer_pkts=buffer,
        discipline=discipline,
        min_th=min_th,
        max_th=max(min_th + 1.0, 0.75 * buffer),
        w_q=mean_field_w_q(scale),
        label=label,
    )


# ----------------------------------------------------------------------
# symmetric restricted topology (figure 1) — the sweeps backend
# ----------------------------------------------------------------------
#: Branch and access one-way delays of the packet-side restricted
#: topology (``repro.topology.restricted.RestrictedSpec`` defaults).
SYMMETRIC_BRANCH_DELAY = ms(50)
SYMMETRIC_ACCESS_DELAY = ms(5)


def symmetric_fluid_spec(
    n_receivers: int,
    share_pps: float,
    buffer_pkts: int,
    duration: float,
    warmup: float,
    seed: int,
    gateway: str,
) -> FluidSpec:
    """Fluid twin of one symmetric sweep point.

    ``n_receivers`` branch bottlenecks of capacity ``2 * share_pps``
    (one TCP flow plus the multicast copy per branch, as in
    :func:`repro.experiments.sweeps._run_symmetric`), every branch at
    the same RTT.  The restricted topology's RED gateways use the
    packet defaults (``min_th=5, max_th=15``), not the 25/75% scaling,
    so this builder pins those explicitly.
    """
    rtt = 2.0 * (SYMMETRIC_ACCESS_DELAY + SYMMETRIC_BRANCH_DELAY)
    bottlenecks = tuple(
        BottleneckSpec(
            capacity_pps=2.0 * share_pps,
            buffer_pkts=float(buffer_pkts),
            discipline=gateway,
            label=f"branch-{b}",
        )
        for b in range(n_receivers)
    )
    return FluidSpec(
        name=f"symmetric n={n_receivers} share={share_pps:g}"
             f" buf={buffer_pkts}",
        bottlenecks=bottlenecks,
        tcp_cohorts=tuple(TcpCohortSpec(1, rtt, b)
                          for b in range(n_receivers)),
        rla_cohorts=tuple(RlaCohortSpec(1, rtt, b)
                          for b in range(n_receivers)),
        duration=duration,
        warmup=warmup,
        seed=seed,
    ).validate()


#: Entrypoint path worker processes resolve for fluid sweep points.
FLUID_SYMMETRIC_ENTRYPOINT = "repro.fluid.adapters:run_symmetric_fluid_spec"


def run_symmetric_fluid_spec(params: Dict[str, Any]) -> Dict[str, Any]:
    """:mod:`repro.runtime` entrypoint: one fluid symmetric sweep point.

    Returns a row shaped like the packet sweep's
    (:func:`repro.experiments.sweeps.run_symmetric_spec`) — same
    fairness columns, so :func:`repro.experiments.sweeps.format_sweep`
    renders either backend — plus ``backend: "fluid"``.
    """
    n_receivers = int(params["n_receivers"])
    share_pps = float(params["share_pps"])
    buffer_pkts = int(params["buffer_pkts"])
    gateway = str(params["gateway"])
    spec = symmetric_fluid_spec(
        n_receivers=n_receivers,
        share_pps=share_pps,
        buffer_pkts=buffer_pkts,
        duration=float(params["duration"]),
        warmup=float(params["warmup"]),
        seed=int(params["seed"]),
        gateway=gateway,
    )
    row = run_fluid(spec)
    verdict = check_essential_fairness(
        max(row["rla_pps"], 1e-9), max(row["wtcp_pps"], 1e-9),
        n_receivers, gateway,
    )
    return {
        "n_receivers": n_receivers,
        "share_pps": share_pps,
        "buffer_pkts": buffer_pkts,
        "backend": "fluid",
        "rla_pps": row["rla_pps"],
        "rla_cwnd": row["rla_window"],
        "wtcp_pps": row["wtcp_pps"],
        "ratio": verdict.ratio,
        "fair": verdict.fair,
        "lower": verdict.lower,
        "upper": verdict.upper,
        "num_trouble": n_receivers,
        "sim_stats": row["sim_stats"],
    }


# ----------------------------------------------------------------------
# RTT-cohort dumbbell — the grid / population-scaling backend
# ----------------------------------------------------------------------
#: Source-feed one-way delay of the packet RTT-cohort builder.
COHORT_SOURCE_DELAY = ms(1)


def cohort_fluid_spec(
    topology: RttCohortTopology,
    gateway: str,
    tcp_flows: int = 4,
    receivers: int = 4,
    duration: float = 20.0,
    warmup: float = 5.0,
    seed: int = 1,
    scale: float = 1.0,
    name: str = "",
) -> FluidSpec:
    """Fluid twin of an RTT-cohort dumbbell scenario, scalable to 10⁶.

    ``tcp_flows`` and ``receivers`` split evenly across the fast and
    slow cohorts (the expectation of the packet scenario's random
    placement); ``scale`` multiplies populations, capacity and buffer
    together so the per-flow operating point is invariant — a
    ``scale=250_000`` cell is the 10⁶-flow version of the same physics.
    Access-delay jitter is averaged away (its mean multiplier is 1).
    """
    topology.validate()
    fast_flows = (tcp_flows + 1) // 2
    slow_flows = tcp_flows - fast_flows
    fast_recv = (receivers + 1) // 2
    slow_recv = receivers - fast_recv
    bottleneck = scaled_bottleneck(
        capacity_pps=bps_to_pps(mbps(topology.bottleneck_mbps)),
        buffer_pkts=float(topology.buffer_pkts),
        discipline=gateway,
        scale=scale,
    )
    base_delay = COHORT_SOURCE_DELAY + ms(topology.bottleneck_delay_ms)
    fast_rtt = 2.0 * (base_delay + ms(topology.fast_delay_ms))
    slow_rtt = 2.0 * (base_delay + ms(topology.slow_delay_ms))

    def scaled(count: int) -> int:
        return max(1, round(count * scale)) if count > 0 else 0

    tcp_cohorts = tuple(
        TcpCohortSpec(scaled(count), rtt, 0, label)
        for count, rtt, label in ((fast_flows, fast_rtt, "fast"),
                                  (slow_flows, slow_rtt, "slow"))
        if count > 0
    )
    rla_cohorts = tuple(
        RlaCohortSpec(scaled(count), rtt, 0, label)
        for count, rtt, label in ((fast_recv, fast_rtt, "fast"),
                                  (slow_recv, slow_rtt, "slow"))
        if count > 0
    )
    return FluidSpec(
        name=name or f"cohorts {gateway} scale={scale:g}",
        bottlenecks=(bottleneck,),
        tcp_cohorts=tcp_cohorts,
        rla_cohorts=rla_cohorts,
        duration=duration,
        warmup=warmup,
        seed=seed,
    ).validate()
