"""Fluid-vs-packet cross-validation harness.

Every fluid claim in this repo rests on the same experiment: build a
deterministic dumbbell (:mod:`repro.topology.dumbbell`), run it through
the packet simulator, run the *same system* as a :class:`FluidSpec`,
and compare metric by metric.  :data:`CROSSVAL_CASES` pins the n ∈
{10, 40, 100} single-cohort and RTT-cohort cases the regression suite
asserts on; :data:`TOLERANCES` is the documented accuracy envelope
(docs/FLUID.md reproduces the measured errors behind each number).

The comparison is honest about what a mean-field model is: it predicts
*time averages of populations*, not per-packet behaviour, so tolerances
are tightest on aggregate shares and loosest on the RLA session (a
single flow — the n → ∞ limit does not help it) and on drop-tail queue
depth (a deterministic fluid queue parks near the top of the buffer
while the packet queue oscillates below it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..models.fairness import (
    DROPTAIL,
    RED,
    check_essential_fairness,
    jain_index,
)
from ..net.monitor import QueueMonitor
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..topology.dumbbell import DumbbellCohort, DumbbellSpec, build_dumbbell
from ..units import pps_to_bps, transmission_time
from .runner import run_fluid
from .spec import BottleneckSpec, FluidSpec, RlaCohortSpec, TcpCohortSpec

#: Topology families the harness builds.
CROSSVAL_TOPOLOGIES = ("dumbbell", "rtt_cohorts")

#: One-way access propagation per cohort, seconds.  Chosen with the
#: per-flow share so the cases equilibrate at p ≈ 2% loss — inside the
#: paper's moderate-congestion envelope (p < 5%), where the PA-window
#: drift holds on both backends.  (At p ≈ 10% the packet TCPs go
#: timeout-dominated and no window model fits them.)
FAST_ACCESS_DELAY = 0.045
SLOW_ACCESS_DELAY = 0.120

#: Per-metric agreement envelope.  ``rel`` entries are relative error
#: against the packet value, ``abs`` entries absolute differences of a
#: bounded quantity, ``buffer_frac`` absolute differences scaled by the
#: bottleneck buffer, ``eq`` exact equality.  Calibrated from the
#: committed case set (see docs/FLUID.md for the measured table and
#: why each bound is what it is) with headroom for seed variation.
#:
#: ``ratio`` compares the RLA session against the slowest *cohort
#: mean*, not the single slowest packet flow: a fluid cohort is
#: homogeneous by construction, so the within-cohort spread that
#: determines the min-flow statistic is exactly what the mean-field
#: limit averages away (the raw min is still reported as ``wtcp_pps``,
#: unasserted).
TOLERANCES: Dict[str, Tuple[str, float]] = {
    "tcp_share": ("rel", 0.25),
    "rla_pps": ("rel", 0.60),
    "ratio": ("rel", 0.60),
    "jain": ("abs", 0.10),
    "mean_queue": ("buffer_frac", 0.15),
    "bound_ok": ("eq", 0.0),
}

#: Drop-tail queue depth keeps the buffer-fraction kind but with a much
#: looser bound: the deterministic fluid queue parks near the top of
#: the buffer while the packet sawtooth averages well below it — a
#: documented upper bias of the mean-field drop-tail model.  (RED has
#: no such bias; its 0.15 bound above covers errors measured ≤ 0.09.)
DROPTAIL_QUEUE_TOLERANCE: Tuple[str, float] = ("buffer_frac", 0.75)


@dataclass(frozen=True)
class CrossvalCase:
    """One fluid-vs-packet comparison: population, topology, discipline."""

    name: str
    topology: str
    flows: int
    receivers: int
    gateway: str = "droptail"
    per_flow_pps: float = 100.0
    duration: float = 15.0
    warmup: float = 6.0
    seed: int = 1

    def validate(self) -> "CrossvalCase":
        """Check the case parameters; returns self for chaining."""
        if self.topology not in CROSSVAL_TOPOLOGIES:
            raise ConfigurationError(
                f"unknown crossval topology {self.topology!r}; "
                f"expected one of {CROSSVAL_TOPOLOGIES}"
            )
        if self.flows < 2:
            raise ConfigurationError(f"need >= 2 flows: {self.flows}")
        if self.receivers < 1 or self.receivers > self.flows:
            raise ConfigurationError(
                f"receivers must be in [1, flows]: {self.receivers}"
            )
        if self.gateway not in ("droptail", "red"):
            raise ConfigurationError(
                f"crossval gateways are droptail/red: {self.gateway!r}"
            )
        return self


@dataclass
class CrossvalRow:
    """One metric's packet/fluid values and its verdict."""

    metric: str
    packet: float
    fluid: float
    error: float
    kind: str
    tolerance: float
    ok: bool


def dumbbell_spec(case: CrossvalCase) -> DumbbellSpec:
    """The packet-side dumbbell a case describes.

    Capacity scales with the population (one equal share per TCP flow
    plus one for the multicast session) and the buffer with the flow
    count, so every case sits at the same moderate-congestion operating
    point regardless of n.
    """
    case.validate()
    if case.topology == "dumbbell":
        cohorts = (DumbbellCohort(case.flows, FAST_ACCESS_DELAY, "all"),)
    else:
        fast = case.flows // 2
        cohorts = (
            DumbbellCohort(fast, FAST_ACCESS_DELAY, "fast"),
            DumbbellCohort(case.flows - fast, SLOW_ACCESS_DELAY, "slow"),
        )
    return DumbbellSpec(
        capacity_pps=case.per_flow_pps * (case.flows + 1),
        cohorts=cohorts,
        buffer_pkts=max(25, case.flows),
        gateway=case.gateway,
    ).validate()


def _receiver_split(case: CrossvalCase,
                    spec: DumbbellSpec) -> List[int]:
    """RLA receivers per cohort: round-robin over cohorts, in order."""
    counts = [0] * len(spec.cohorts)
    remaining = case.receivers
    slot = 0
    while remaining > 0:
        c = slot % len(spec.cohorts)
        if counts[c] < spec.cohorts[c].hosts:
            counts[c] += 1
            remaining -= 1
        slot += 1
    return counts


def fluid_twin(case: CrossvalCase) -> FluidSpec:
    """The :class:`FluidSpec` describing the same system as the dumbbell.

    Mirrors :func:`repro.net.network.discipline_factory`'s RED
    parameterization (thresholds at 25% / 75% of the physical buffer)
    so both backends model the same gateway.
    """
    spec = dumbbell_spec(case)
    buffer_pkts = float(spec.buffer_pkts)
    min_th = max(1.0, 0.25 * buffer_pkts)
    bottleneck = BottleneckSpec(
        capacity_pps=spec.capacity_pps,
        buffer_pkts=buffer_pkts,
        discipline=case.gateway,
        min_th=min_th,
        max_th=max(min_th + 1.0, 0.75 * buffer_pkts),
    )
    tcp_cohorts = tuple(
        TcpCohortSpec(cohort.hosts, spec.host_rtt(c), 0, cohort.label)
        for c, cohort in enumerate(spec.cohorts)
    )
    rla_counts = _receiver_split(case, spec)
    rla_cohorts = tuple(
        RlaCohortSpec(count, spec.host_rtt(c), 0, spec.cohorts[c].label)
        for c, count in enumerate(rla_counts) if count > 0
    )
    return FluidSpec(
        name=f"crossval {case.name}",
        bottlenecks=(bottleneck,),
        tcp_cohorts=tcp_cohorts,
        rla_cohorts=rla_cohorts,
        duration=case.duration,
        warmup=case.warmup,
        seed=case.seed,
    ).validate()


def run_packet_case(params: Dict[str, Any]) -> Dict[str, Any]:
    """:mod:`repro.runtime` entrypoint: packet-level run of one case.

    One long-lived TCP flow per host, the RLA session over a
    deterministic receiver subset, and a :class:`QueueMonitor` on the
    bottleneck attached at the warmup mark so the mean depth covers
    exactly the measured window.
    """
    case: CrossvalCase = params["case"]
    spec = dumbbell_spec(case)
    sim = Simulator(seed=case.seed)
    net, cohort_hosts = build_dumbbell(sim, spec)
    jitter = (transmission_time(spec.packet_size,
                                pps_to_bps(spec.capacity_pps))
              if case.gateway == "droptail" else None)
    flows: List[List[TcpFlow]] = []
    index = 0
    for hosts in cohort_hosts:
        cohort_flows = []
        for host in hosts:
            flow = TcpFlow(sim, net, f"tcp-{index}", "S", host,
                           config=TcpConfig(phase_jitter=jitter))
            # Spread starts across the first second so a 100-flow case
            # is fully started long before the warmup mark.
            flow.start(0.5 * index / max(1, case.flows))
            cohort_flows.append(flow)
            index += 1
        flows.append(cohort_flows)
    rla_counts = _receiver_split(case, spec)
    members = [host
               for hosts, count in zip(cohort_hosts, rla_counts)
               for host in hosts[:count]]
    session = RLASession(sim, net, "rla-0", "S", members,
                         config=RLAConfig(phase_jitter=jitter))
    session.start(0.05)

    sim.run(until=case.warmup)
    session.mark()
    for cohort_flows in flows:
        for flow in cohort_flows:
            flow.mark()
    monitor = QueueMonitor(sim, net.links[("GL", "GR")].gateway)
    sim.run(until=case.warmup + case.duration)

    cohort_rates = [[flow.report()["throughput_pps"] for flow in cohort]
                    for cohort in flows]
    all_rates = [rate for cohort in cohort_rates for rate in cohort]
    rla_pps = max(session.report()["throughput_pps"], 0.0)
    shares = [sum(rates) / len(rates) for rates in cohort_rates]
    slowest_mean = min(shares)
    return {
        "case": case.name,
        "backend": "packet",
        "tcp_share": shares,
        "wtcp_pps": min(all_rates),
        "rla_pps": rla_pps,
        "ratio": (rla_pps / slowest_mean if slowest_mean > 0
                  else float("nan")),
        "jain": jain_index([rla_pps] + [max(r, 0.0) for r in all_rates]),
        "mean_queue": monitor.mean_depth(),
        "bound_ok": _bound_ok(case, rla_pps, slowest_mean),
        "sim_stats": {"events": sim.events_executed,
                      "drops": monitor.total_drops,
                      "sim_time": sim.now},
    }


def _bound_ok(case: CrossvalCase, rla_pps: float,
              wtcp: float) -> Optional[bool]:
    """Theorem I/II verdict with ``n = receivers``, or None on zeros."""
    if not rla_pps > 0 or not wtcp > 0:
        return None
    gateway = DROPTAIL if case.gateway == "droptail" else RED
    return check_essential_fairness(rla_pps, wtcp, case.receivers,
                                    gateway).fair


#: Entrypoint path worker processes resolve for the packet side.
CROSSVAL_PACKET_ENTRYPOINT = "repro.fluid.crossval:run_packet_case"


def _fluid_comparable(case: CrossvalCase) -> Dict[str, Any]:
    """Fluid run of a case, reduced to the packet row's metric keys.

    A fluid cohort's per-flow goodput *is* its cohort mean, so
    ``wtcp_pps``, the slowest cohort mean, and ``ratio`` all coincide
    with the packet row's mean-based definitions.
    """
    row = run_fluid(fluid_twin(case))
    rla_pps = row["rla_pps"]
    slowest_mean = min(row["tcp_goodput_pps"])
    return {
        "case": case.name,
        "backend": "fluid",
        "tcp_share": row["tcp_goodput_pps"],
        "wtcp_pps": slowest_mean,
        "rla_pps": rla_pps,
        "ratio": row["ratio"],
        "jain": row["jain"],
        "mean_queue": row["mean_queue"][0],
        "bound_ok": _bound_ok(case, rla_pps, slowest_mean),
        "sim_stats": row["sim_stats"],
    }


def _compare(metric: str, packet: Any, fluid: Any,
             kind_tol: Tuple[str, float],
             buffer_pkts: float = 1.0) -> CrossvalRow:
    kind, tol = kind_tol
    if kind == "eq":
        error = 0.0 if packet == fluid else 1.0
        packet_f = float("nan") if packet is None else float(packet)
        fluid_f = float("nan") if fluid is None else float(fluid)
        return CrossvalRow(metric, packet_f, fluid_f, error, kind, tol,
                           error == 0.0)
    packet_f, fluid_f = float(packet), float(fluid)
    if kind == "abs":
        error = abs(fluid_f - packet_f)
    elif kind == "buffer_frac":
        error = abs(fluid_f - packet_f) / buffer_pkts
    else:
        denom = abs(packet_f)
        error = abs(fluid_f - packet_f) / denom if denom > 0 else math.inf
    return CrossvalRow(metric, packet_f, fluid_f, error, kind, tol,
                       error <= tol)


def crossval_case(case: CrossvalCase,
                  packet_row: Optional[Dict[str, Any]] = None
                  ) -> Tuple[Dict[str, Any], Dict[str, Any],
                             List[CrossvalRow]]:
    """Run one case on both backends; returns (packet, fluid, rows).

    ``packet_row`` short-circuits the (slow) packet side when the
    caller already has it — e.g. from the cached parallel runtime.
    """
    case.validate()
    if packet_row is None:
        packet_row = run_packet_case({"case": case, "seed": case.seed})
    fluid_row = _fluid_comparable(case)
    buffer_pkts = float(dumbbell_spec(case).buffer_pkts)
    rows = []
    for c, (p_share, f_share) in enumerate(zip(packet_row["tcp_share"],
                                               fluid_row["tcp_share"])):
        row = _compare("tcp_share", p_share, f_share,
                       TOLERANCES["tcp_share"])
        row.metric = f"tcp_share[{c}]"
        rows.append(row)
    for metric in ("rla_pps", "ratio", "jain", "mean_queue", "bound_ok"):
        kind_tol = TOLERANCES[metric]
        if metric == "mean_queue" and case.gateway == "droptail":
            kind_tol = DROPTAIL_QUEUE_TOLERANCE
        rows.append(_compare(metric, packet_row[metric],
                             fluid_row[metric], kind_tol, buffer_pkts))
    return packet_row, fluid_row, rows


#: The committed regression set: n ∈ {10, 40, 100} across both topology
#: families and both disciplines.
CROSSVAL_CASES: Tuple[CrossvalCase, ...] = (
    CrossvalCase("dumbbell-10-red", "dumbbell", 10, 4, "red"),
    CrossvalCase("dumbbell-40-droptail", "dumbbell", 40, 8, "droptail"),
    CrossvalCase("dumbbell-100-droptail", "dumbbell", 100, 16, "droptail"),
    CrossvalCase("cohorts-10-droptail", "rtt_cohorts", 10, 4, "droptail"),
    CrossvalCase("cohorts-40-red", "rtt_cohorts", 40, 8, "red"),
    CrossvalCase("cohorts-100-red", "rtt_cohorts", 100, 16, "red"),
)


def run_crossval(
    cases: Tuple[CrossvalCase, ...] = CROSSVAL_CASES,
    workers: Optional[int] = None,
    cache=None,
) -> List[Tuple[CrossvalCase, Dict[str, Any], Dict[str, Any],
                List[CrossvalRow]]]:
    """Run the case set; packet runs optionally fan out via the runtime."""
    packet_rows: List[Optional[Dict[str, Any]]]
    if workers is None and cache is None:
        packet_rows = [None] * len(cases)
    else:
        from ..runtime import RunSpec, run_specs

        specs = [RunSpec(CROSSVAL_PACKET_ENTRYPOINT,
                         {"case": case, "seed": case.seed},
                         label=f"crossval {case.name}")
                 for case in cases]
        outs = run_specs(specs, workers=workers, cache=cache)
        packet_rows = [out.result for out in outs]
    results = []
    for case, packet_row in zip(cases, packet_rows):
        packet, fluid, rows = crossval_case(case, packet_row)
        results.append((case, packet, fluid, rows))
    return results


def format_crossval(
    results: List[Tuple[CrossvalCase, Dict[str, Any], Dict[str, Any],
                        List[CrossvalRow]]]
) -> str:
    """Per-case fixed-width error tables (printed on assertion failure)."""
    lines = []
    for case, _, _, rows in results:
        lines.append(f"== {case.name}  ({case.topology}, {case.gateway}, "
                     f"{case.flows} flows, {case.receivers} receivers)")
        lines.append(f"   {'metric':<14} {'packet':>10} {'fluid':>10} "
                     f"{'error':>8} {'tol':>6}  verdict")
        for row in rows:
            err = f"{row.error:8.3f}" if math.isfinite(row.error) else "     inf"
            lines.append(
                f"   {row.metric:<14} {row.packet:10.3f} {row.fluid:10.3f} "
                f"{err} {row.tolerance:6.2f}  "
                f"{'ok' if row.ok else 'FAIL'} ({row.kind})"
            )
    return "\n".join(lines)
