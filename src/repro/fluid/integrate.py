"""Fixed-step RK4 integration of the fluid vector field.

Everything here is deliberately boring: a classical Runge-Kutta 4 step
with a fixed ``dt``, a fixed step count derived from the spec horizon,
and rectangle-rule time averages over the measured window.  No adaptive
stepping, no RNG, no wall-clock reads — the result is a pure function
of the :class:`FluidSpec`, byte-identical across processes, interpreter
restarts, and serial/parallel executors (locked by the byte-identity
suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .model import FluidModel
from .spec import FluidSpec


@dataclass
class FluidResult:
    """Time-averaged outcome of one fluid integration.

    ``means`` maps each observable of
    :meth:`FluidModel.instantaneous` to its per-component time average
    over the measured (post-warmup) window; ``peak_queue`` is the
    per-bottleneck maximum instantaneous depth in the same window.
    ``steps`` counts RK4 steps over the whole horizon (the fluid
    analogue of the packet engine's event count).
    """

    means: Dict[str, Tuple[float, ...]]
    peak_queue: Tuple[float, ...]
    final_state: Tuple[float, ...]
    steps: int
    measured_s: float


def rk4_step(model: FluidModel, state: List[float], dt: float) -> List[float]:
    """One classical RK4 step; the result is clamped into the physical set."""
    k1 = model.derivatives(state)
    mid1 = [s + 0.5 * dt * d for s, d in zip(state, k1)]
    model.clamp(mid1)
    k2 = model.derivatives(mid1)
    mid2 = [s + 0.5 * dt * d for s, d in zip(state, k2)]
    model.clamp(mid2)
    k3 = model.derivatives(mid2)
    end = [s + dt * d for s, d in zip(state, k3)]
    model.clamp(end)
    k4 = model.derivatives(end)
    nxt = [
        s + (dt / 6.0) * (a + 2.0 * b + 2.0 * c + d)
        for s, a, b, c, d in zip(state, k1, k2, k3, k4)
    ]
    model.clamp(nxt)
    return nxt


def integrate(spec: FluidSpec) -> FluidResult:
    """Integrate ``spec`` over its horizon and average the measured window.

    The step count is fixed up front (``round(horizon / dt)``), so two
    runs of the same spec execute the identical float-op sequence.
    """
    model = FluidModel(spec)
    dt = spec.dt
    total_steps = round(spec.horizon / dt)
    warmup_steps = round(spec.warmup / dt)
    if total_steps <= warmup_steps:
        raise ConfigurationError(
            f"horizon {spec.horizon}s leaves no measured steps at dt={dt}"
        )

    state = model.initial_state()
    sums: Dict[str, List[float]] = {}
    peak_queue: List[float] = [0.0] * model.n_bottlenecks
    measured = 0

    for step in range(total_steps):
        state = rk4_step(model, state, dt)
        if step < warmup_steps:
            continue
        measured += 1
        obs = model.instantaneous(state)
        for key, values in obs.items():
            acc = sums.get(key)
            if acc is None:
                sums[key] = list(values)
            else:
                for i, v in enumerate(values):
                    acc[i] += v
        for b, depth in enumerate(obs["queue"]):
            if depth > peak_queue[b]:
                peak_queue[b] = depth

    means = {
        key: tuple(total / measured for total in acc)
        for key, acc in sums.items()
    }
    return FluidResult(
        means=means,
        peak_queue=tuple(peak_queue),
        final_state=tuple(state),
        steps=total_steps,
        measured_s=measured * dt,
    )
