"""Mean-field dynamics: the coupled window/queue ODE system.

The fluid backend replaces per-packet simulation with the deterministic
mean-field limit of the same protocols (McDonald & Reynier, *Ann. Appl.
Prob.* 2006): as the number of flows grows, the empirical window
distribution of TCP connections through a RED buffer converges to the
solution of an ODE system, so accuracy *improves* exactly where the
packet simulator becomes infeasible.

State vector (plain floats, no RNG anywhere):

``[W_0 .. W_{k-1}, W_rla?, q_0 .. q_{B-1}, avg_0 .. avg_{B-1}]``

* ``W_c`` — per-flow congestion window of TCP cohort ``c`` (packets),
* ``W_rla`` — the RLA session window (present iff the spec has RLA
  cohorts),
* ``q_b`` — instantaneous queue depth of bottleneck ``b`` (packets),
* ``avg_b`` — RED's exponentially-averaged depth (present for every
  bottleneck; frozen at 0 unless the discipline is ``"red"``).

The drift terms are chosen so the fixed points coincide *exactly* with
the closed forms of :mod:`repro.models` (see docs/FLUID.md for the full
derivation):

* TCP:  ``dW/dt = [(1-p) - p W²/2] / R`` — equilibrium
  ``W* = sqrt(2(1-p)/p)``, equation 1 via
  :func:`repro.models.pa_window`;
* RLA:  ``dW/dt = [G - W² (1-H)] / R_rla`` with
  ``G = prod_j (1 - p_j/N)^{n_j}`` and
  ``H = prod_j (1 - p_j/(2N))^{n_j}`` — equilibrium
  ``W* = sqrt(G / (1-H))``, the §4.2 drift balance via
  :func:`repro.models.rla_window_cohorts`; ``R_rla`` is the *worst*
  (largest) receiver RTT, the worst-receiver coupling of equation 5;
* queue: ``dq/dt = A (1-p) - C`` clamped to ``[0, buffer]``;
* RED average: ``d(avg)/dt = w_q A (q - avg)`` — the fluid limit of the
  per-arrival EWMA update.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import DROPTAIL_RAMP, FluidSpec

#: Window floor, matching the jump-chain clamp ``max(W/2, 1)``.
MIN_WINDOW = 1.0


def red_drop_probability(avg: float, min_th: float, max_th: float,
                         max_p: float) -> float:
    """RED's early-drop profile ``p_b(avg)`` (no count correction).

    Zero below ``min_th``, linear up to ``max_p`` at ``max_th``, and 1.0
    at or above ``max_th`` — the same profile
    :class:`repro.net.red.REDQueue` applies per packet; the fluid limit
    drops the per-packet count correction, whose mean effect is already
    the marked fraction.
    """
    if avg < min_th:
        return 0.0
    if avg >= max_th:
        return 1.0
    return max_p * (avg - min_th) / (max_th - min_th)


def overflow_loss(q: float, buffer_pkts: float, arrival: float,
                  capacity: float) -> float:
    """Continuous drop-tail loss: the buffer cliff, regularized.

    A drop-tail queue pinned at its buffer limit drops exactly the
    excess-rate fraction ``1 - C/A``.  The fluid model ramps that loss
    in linearly over the top ``(1 - DROPTAIL_RAMP)`` of the buffer so
    the ODE field stays continuous; at ``q = buffer`` the loss equals
    the exact excess fraction.
    """
    if arrival <= capacity:
        return 0.0
    ramp_start = DROPTAIL_RAMP * buffer_pkts
    if q <= ramp_start:
        return 0.0
    ramp = min(1.0, (q - ramp_start) / (buffer_pkts - ramp_start))
    return ramp * (1.0 - capacity / arrival)


class FluidModel:
    """A :class:`FluidSpec` compiled to an ODE vector field.

    Precomputes the state layout and cohort constants once; the
    per-step cost of :meth:`derivatives` is O(cohorts + bottlenecks)
    regardless of how many flows the cohorts describe.
    """

    def __init__(self, spec: FluidSpec):
        spec.validate()
        self.spec = spec
        self.n_tcp = len(spec.tcp_cohorts)
        self.has_rla = bool(spec.rla_cohorts)
        self.n_bottlenecks = len(spec.bottlenecks)
        self.idx_rla = self.n_tcp if self.has_rla else -1
        self.base_q = self.n_tcp + (1 if self.has_rla else 0)
        self.base_avg = self.base_q + self.n_bottlenecks
        self.n_state = self.base_avg + self.n_bottlenecks
        #: Total RLA receivers N (the listening coin is 1/N).
        self.n_receivers = spec.n_receivers
        #: Bottlenecks carrying RLA traffic (one multicast copy each),
        #: with the receiver count behind each.  Receivers behind one
        #: bottleneck lose *together* (one dropped copy deprives them
        #: all), so the drift groups them — the §4.2 Lemma's correlated
        #: case, which the dumbbell cross-validation confirms matters.
        counts: Dict[int, int] = {}
        for cohort in spec.rla_cohorts:
            counts[cohort.bottleneck] = (counts.get(cohort.bottleneck, 0)
                                         + cohort.receivers)
        self.rla_groups = sorted(counts.items())
        self.rla_bottlenecks = [b for b, _ in self.rla_groups]

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def initial_state(self) -> List[float]:
        """All windows at the floor, all queues and averages empty."""
        state = [0.0] * self.n_state
        for c in range(self.n_tcp):
            state[c] = MIN_WINDOW
        if self.has_rla:
            state[self.idx_rla] = MIN_WINDOW
        return state

    # ------------------------------------------------------------------
    # Instantaneous quantities (shared by derivatives and measurement)
    # ------------------------------------------------------------------
    def rtts(self, state: List[float]) -> Tuple[List[float], float]:
        """Effective RTTs: propagation plus queueing delay ``q/C``.

        Returns ``(per-TCP-cohort RTTs, RLA session RTT)``; the RLA RTT
        is the *maximum* over its cohorts' effective RTTs (the sender
        clocks on the worst receiver), or 0.0 with no RLA cohorts.
        """
        spec = self.spec
        tcp_rtts = []
        for cohort in spec.tcp_cohorts:
            bn = spec.bottlenecks[cohort.bottleneck]
            q = state[self.base_q + cohort.bottleneck]
            tcp_rtts.append(cohort.rtt_s + q / bn.capacity_pps)
        rla_rtt = 0.0
        for cohort in spec.rla_cohorts:
            bn = spec.bottlenecks[cohort.bottleneck]
            q = state[self.base_q + cohort.bottleneck]
            rla_rtt = max(rla_rtt, cohort.rtt_s + q / bn.capacity_pps)
        return tcp_rtts, spec.rla_rtt_factor * rla_rtt

    def arrivals(self, state: List[float],
                 tcp_rtts: List[float], rla_rtt: float) -> List[float]:
        """Offered load per bottleneck: ``sum flows * W/R`` plus RLA."""
        loads = [0.0] * self.n_bottlenecks
        for c, cohort in enumerate(self.spec.tcp_cohorts):
            loads[cohort.bottleneck] += cohort.flows * state[c] / tcp_rtts[c]
        if self.has_rla and rla_rtt > 0.0:
            rla_rate = state[self.idx_rla] / rla_rtt
            for b in self.rla_bottlenecks:
                loads[b] += rla_rate
        return loads

    def losses(self, state: List[float], loads: List[float]) -> List[float]:
        """Per-bottleneck drop probability under its discipline."""
        ps = []
        for b, bn in enumerate(self.spec.bottlenecks):
            if bn.discipline == "fixed":
                ps.append(bn.loss_p)
                continue
            q = state[self.base_q + b]
            p_of = overflow_loss(q, bn.buffer_pkts, loads[b],
                                 bn.capacity_pps)
            if bn.discipline == "red":
                avg = state[self.base_avg + b]
                p_red = red_drop_probability(avg, bn.min_th, bn.max_th,
                                             bn.max_p)
                ps.append(1.0 - (1.0 - p_red) * (1.0 - p_of))
            else:
                ps.append(p_of)
        return ps

    def rla_drift_terms(self, ps: List[float]) -> Tuple[float, float]:
        """``(G, H)``: no-cut and expected-halving products over groups.

        Receivers behind bottleneck ``b`` signal *together* with its
        loss probability ``p_b`` (common loss within the group,
        independent across bottlenecks), so
        ``G = prod_b [(1-p_b) + p_b (1 - 1/N)^{n_b}]`` and
        ``H = prod_b [(1-p_b) + p_b (1 - 1/(2N))^{n_b}]`` with ``N``
        the total receiver count — O(bottlenecks) exponent products,
        the same algebra as :func:`repro.models.rla_window_groups`.
        """
        big_n = self.n_receivers
        g = 1.0
        h = 1.0
        for b, count in self.rla_groups:
            p = ps[b]
            g *= (1.0 - p) + p * (1.0 - 1.0 / big_n) ** count
            h *= (1.0 - p) + p * (1.0 - 1.0 / (2.0 * big_n)) ** count
        return g, h

    # ------------------------------------------------------------------
    # The vector field
    # ------------------------------------------------------------------
    def derivatives(self, state: List[float]) -> List[float]:
        """Time derivative of the full state vector at ``state``."""
        spec = self.spec
        tcp_rtts, rla_rtt = self.rtts(state)
        loads = self.arrivals(state, tcp_rtts, rla_rtt)
        ps = self.losses(state, loads)
        deriv = [0.0] * self.n_state

        for c, cohort in enumerate(spec.tcp_cohorts):
            p = ps[cohort.bottleneck]
            w = state[c]
            dw = ((1.0 - p) - p * w * w / 2.0) / tcp_rtts[c]
            if w <= MIN_WINDOW and dw < 0.0:
                dw = 0.0
            deriv[c] = dw

        if self.has_rla:
            g, h = self.rla_drift_terms(ps)
            w = state[self.idx_rla]
            dw = (g - w * w * (1.0 - h)) / rla_rtt
            if w <= MIN_WINDOW and dw < 0.0:
                dw = 0.0
            deriv[self.idx_rla] = dw

        for b, bn in enumerate(spec.bottlenecks):
            if bn.discipline == "fixed":
                continue  # no queue feedback for the validation discipline
            q = state[self.base_q + b]
            dq = loads[b] * (1.0 - ps[b]) - bn.capacity_pps
            if (q <= 0.0 and dq < 0.0) or (q >= bn.buffer_pkts and dq > 0.0):
                dq = 0.0
            deriv[self.base_q + b] = dq
            if bn.discipline == "red":
                avg = state[self.base_avg + b]
                deriv[self.base_avg + b] = bn.w_q * loads[b] * (q - avg)

        return deriv

    def clamp(self, state: List[float]) -> None:
        """Project a state back into the physical region, in place."""
        for c in range(self.n_tcp):
            if state[c] < MIN_WINDOW:
                state[c] = MIN_WINDOW
        if self.has_rla and state[self.idx_rla] < MIN_WINDOW:
            state[self.idx_rla] = MIN_WINDOW
        for b, bn in enumerate(self.spec.bottlenecks):
            qi = self.base_q + b
            state[qi] = min(max(state[qi], 0.0), bn.buffer_pkts)
            ai = self.base_avg + b
            state[ai] = min(max(state[ai], 0.0), bn.buffer_pkts)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def instantaneous(self, state: List[float]) -> Dict[str, Tuple[float, ...]]:
        """Instantaneous observables for time-averaging by the integrator.

        Goodputs are per-flow (per-receiver for RLA): the delivered rate
        ``(1-p) W / R``.  The RLA goodput tuple is per *cohort*; the
        session-level figure of merit is its min (worst receiver).
        """
        tcp_rtts, rla_rtt = self.rtts(state)
        loads = self.arrivals(state, tcp_rtts, rla_rtt)
        ps = self.losses(state, loads)
        tcp_goodput = tuple(
            (1.0 - ps[cohort.bottleneck]) * state[c] / tcp_rtts[c]
            for c, cohort in enumerate(self.spec.tcp_cohorts)
        )
        if self.has_rla:
            rla_send = state[self.idx_rla] / rla_rtt
            rla_goodput = tuple(
                (1.0 - ps[cohort.bottleneck]) * rla_send
                for cohort in self.spec.rla_cohorts
            )
            rla_window = (state[self.idx_rla],)
        else:
            rla_goodput = ()
            rla_window = ()
        return {
            "tcp_window": tuple(state[: self.n_tcp]),
            "tcp_goodput": tcp_goodput,
            "rla_window": rla_window,
            "rla_goodput": rla_goodput,
            "queue": tuple(
                state[self.base_q: self.base_q + self.n_bottlenecks]
            ),
            "avg_queue": tuple(
                state[self.base_avg: self.base_avg + self.n_bottlenecks]
            ),
            "loss": tuple(ps),
            "arrival": tuple(loads),
            "drop_rate": tuple(a * p for a, p in zip(loads, ps)),
        }
