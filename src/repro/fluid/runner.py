"""Fluid-run execution and :mod:`repro.runtime` wiring.

:func:`run_fluid` turns one :class:`FluidSpec` into the same kind of
JSON-friendly report row the packet-level runners emit — ``rla_pps``,
``wtcp_pps``, ``ratio``, ``jain``, an essential-fairness verdict and a
``sim_stats`` block — so :class:`repro.runtime.RunMetrics`, the result
cache, and every table formatter downstream work on fluid rows without
modification.  ``sim_stats["events"]`` counts RK4 steps (the fluid
analogue of engine events), and each row carries ``backend: "fluid"``
plus the population totals, which is how a 10⁶-flow row announces that
no packet was harmed in its making.

:func:`fluid_runspec` compiles the spec to a content-addressed
:class:`repro.runtime.RunSpec`, so fluid sweeps inherit the process
pool and the on-disk cache; the integration is RNG-free, making the
serial/parallel byte-identity trivial to uphold (and locked by test).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..models.fairness import (
    DROPTAIL,
    RED,
    check_essential_fairness,
    jain_index_weighted,
)
from .integrate import FluidResult, integrate
from .spec import FluidSpec
from .stability import reynier_check

#: Entrypoint path worker processes resolve to run one fluid spec.
FLUID_ENTRYPOINT = "repro.fluid.runner:run_fluid_spec"


def _bound_gateway(spec: FluidSpec) -> str:
    """Which theorem's constants apply: drop-tail iff every queue is."""
    disciplines = {bn.discipline for bn in spec.bottlenecks}
    return DROPTAIL if disciplines == {"droptail"} else RED


def _fairness_block(spec: FluidSpec, rla_pps: float,
                    wtcp: float) -> Dict[str, Any]:
    """Essential-fairness verdict for the population, or nulls."""
    if (not spec.rla_cohorts or not spec.tcp_cohorts
            or not rla_pps > 0 or not wtcp > 0):
        return {"bound_ok": None}
    n = max(1, spec.n_receivers)
    verdict = check_essential_fairness(rla_pps, wtcp, n,
                                       _bound_gateway(spec))
    return {
        "bound_ok": verdict.fair,
        "bound_lower": verdict.lower,
        "bound_upper": verdict.upper,
    }


def _population_jain(spec: FluidSpec, result: FluidResult,
                     rla_pps: float) -> float:
    """Weighted Jain index over every flow the cohorts describe."""
    values: List[float] = []
    weights: List[int] = []
    for cohort, goodput in zip(spec.tcp_cohorts,
                               result.means["tcp_goodput"]):
        values.append(max(goodput, 0.0))
        weights.append(cohort.flows)
    if spec.rla_cohorts:
        values.append(max(rla_pps, 0.0))
        weights.append(1)
    return jain_index_weighted(values, weights) if values else 1.0


def run_fluid(spec: FluidSpec) -> Dict[str, Any]:
    """Integrate one fluid spec and return its report row.

    A pure, RNG-free function of the spec: the same ``FluidSpec``
    yields a byte-identical row in any process or interpreter.
    """
    spec.validate()
    result = integrate(spec)
    means = result.means

    tcp_goodput = means["tcp_goodput"]
    rla_pps = min(means["rla_goodput"]) if spec.rla_cohorts else 0.0
    wtcp = min(tcp_goodput) if spec.tcp_cohorts else float("nan")
    ratio = (rla_pps / wtcp
             if spec.rla_cohorts and spec.tcp_cohorts and wtcp > 0
             else float("nan"))

    sim_stats: Dict[str, Any] = {
        "events": result.steps,
        "drops": sum(means["drop_rate"]) * result.measured_s,
        "peak_queue_depth": max(result.peak_queue),
        "sim_time": spec.horizon,
        "backend": "fluid",
    }

    row: Dict[str, Any] = {
        "scenario": spec.name,
        "backend": "fluid",
        "gateway": "+".join(sorted({bn.discipline
                                    for bn in spec.bottlenecks})),
        "seed": spec.seed,
        "n_flows": spec.n_tcp_flows,
        "n_receivers": spec.n_receivers,
        "rla_pps": rla_pps,
        "wtcp_pps": wtcp,
        "ratio": ratio,
        "jain": _population_jain(spec, result, rla_pps),
        "tcp_goodput_pps": list(tcp_goodput),
        "tcp_windows": list(means["tcp_window"]),
        "rla_window": (means["rla_window"][0]
                       if spec.rla_cohorts else float("nan")),
        "mean_queue": list(means["queue"]),
        "mean_avg_queue": list(means["avg_queue"]),
        "mean_loss": list(means["loss"]),
        "sim_stats": sim_stats,
    }
    row.update(_fairness_block(spec, rla_pps, wtcp))

    if len(spec.bottlenecks) == 1:
        eq = reynier_check(spec)
        row["equilibrium"] = {
            "status": eq.status,
            "p": eq.p,
            "queue": eq.queue,
            "stability_margin": eq.stability_margin,
        }
    return row


# ----------------------------------------------------------------------
# parallel-runtime wiring
# ----------------------------------------------------------------------
def run_fluid_spec(params: Dict[str, Any]) -> Dict[str, Any]:
    """:mod:`repro.runtime` entrypoint: ``params = {"spec": FluidSpec}``."""
    return run_fluid(params["spec"])


def fluid_runspec(spec: FluidSpec):
    """A content-addressed RunSpec for one fluid run."""
    from ..runtime import RunSpec

    return RunSpec(
        FLUID_ENTRYPOINT,
        {"spec": spec, "seed": spec.seed},
        label=f"fluid {spec.name} n={spec.n_tcp_flows}+{spec.n_receivers}",
    )


def run_fluids(
    specs: List[FluidSpec],
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
) -> List[Dict[str, Any]]:
    """Run fluid specs serially or through the parallel runtime.

    Workers and the content-addressed cache behave exactly as for the
    packet runners; fluid rows are byte-identical either way because
    the integration is a pure function of the spec.
    """
    if workers is None and cache is None:
        return [run_fluid(spec) for spec in specs]
    from ..runtime import run_specs

    outs = run_specs([fluid_runspec(spec) for spec in specs],
                     workers=workers, cache=cache)
    if outcomes is not None:
        outcomes.extend(outs)
    return [out.result for out in outs]


def format_fluid(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width fluid table: populations, rates, bounds, stability."""
    header = (f"{'name':<26} {'gateway':<9} {'flows':>9} {'recv':>9} "
              f"{'rla':>9} {'wtcp':>9} {'ratio':>7} {'jain':>6} "
              f"{'bound':>5} {'margin':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row["ratio"]
        ratio_s = f"{ratio:7.3f}" if not math.isnan(ratio) else f"{'-':>7}"
        wtcp = row["wtcp_pps"]
        wtcp_s = f"{wtcp:9.2f}" if not math.isnan(wtcp) else f"{'-':>9}"
        bound = row.get("bound_ok")
        bound_s = "-" if bound is None else ("ok" if bound else "FAIL")
        margin = row.get("equilibrium", {}).get("stability_margin")
        margin_s = f"{margin:9.3f}" if margin is not None else f"{'-':>9}"
        lines.append(
            f"{row['scenario']:<26} {row['gateway']:<9} "
            f"{row['n_flows']:>9} {row['n_receivers']:>9} "
            f"{row['rla_pps']:9.2f} {wtcp_s} {ratio_s} {row['jain']:6.3f} "
            f"{bound_s:>5} {margin_s}"
        )
    return "\n".join(lines)
