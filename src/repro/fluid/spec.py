"""Declarative specifications for the mean-field fluid backend.

A :class:`FluidSpec` describes a *population* workload — cohorts of TCP
flows and RLA receivers sharing one or more bottleneck queues — as a
frozen, canonicalizable dataclass tree, exactly the contract
:class:`repro.runtime.RunSpec` params require.  The key scaling property
of the fluid backend lives here: cohort sizes are plain integers, so a
spec describing 10⁶ flows is the same few bytes as one describing 10,
and the ODE state it compiles to is O(cohorts + bottlenecks), never
O(flows).

Disciplines understood by the fluid queue dynamics:

* ``"droptail"`` — loss ramps up as the instantaneous queue approaches
  the physical buffer (a continuous regularization of the cliff);
* ``"red"`` — the averaged-queue ODE plus the RED drop profile
  (min_th/max_th/max_p), the system of McDonald & Reynier's mean-field
  limit;
* ``"fixed"`` — a constant loss probability, no queue feedback.  Not a
  real gateway: it exists so the validation suite can pin the window
  ODEs against the closed forms of :mod:`repro.models` at a known ``p``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError

#: Queue disciplines the fluid dynamics model.
FLUID_DISCIPLINES: Tuple[str, ...] = ("droptail", "red", "fixed")

#: Fraction of the physical buffer where the drop-tail loss ramp starts.
#: Below ``DROPTAIL_RAMP * buffer`` the fluid drop-tail queue is lossless;
#: from there the loss probability rises linearly to the full excess-rate
#: loss at ``q = buffer`` (see docs/FLUID.md for the derivation).
DROPTAIL_RAMP = 0.85


@dataclass(frozen=True)
class BottleneckSpec:
    """One shared queue: capacity, buffer, and its loss model.

    ``capacity_pps`` is in data packets/second (the paper's unit).  The
    RED fields are read only when ``discipline == "red"``; ``loss_p``
    only for ``"fixed"``.
    """

    capacity_pps: float
    buffer_pkts: float = 20.0
    discipline: str = "droptail"
    #: RED thresholds/gain, in packets (the packet simulator's defaults).
    min_th: float = 5.0
    max_th: float = 15.0
    w_q: float = 0.002
    max_p: float = 0.1
    #: Constant loss probability for the ``"fixed"`` validation discipline.
    loss_p: float = 0.0
    label: str = ""

    def validate(self) -> "BottleneckSpec":
        """Check field sanity; returns self for chaining."""
        if self.capacity_pps <= 0:
            raise ConfigurationError(
                f"bottleneck capacity must be positive: {self.capacity_pps}"
            )
        if self.discipline not in FLUID_DISCIPLINES:
            raise ConfigurationError(
                f"fluid backend models disciplines {FLUID_DISCIPLINES}, "
                f"not {self.discipline!r}"
            )
        if self.discipline != "fixed" and self.buffer_pkts <= 1:
            raise ConfigurationError(
                f"buffer must exceed one packet: {self.buffer_pkts}"
            )
        if self.discipline == "red":
            if not 0 < self.min_th < self.max_th:
                raise ConfigurationError(
                    f"need 0 < min_th < max_th: {self.min_th}, {self.max_th}"
                )
            if not 0 < self.w_q <= 1:
                raise ConfigurationError(f"w_q out of (0, 1]: {self.w_q}")
            if not 0 < self.max_p <= 1:
                raise ConfigurationError(f"max_p out of (0, 1]: {self.max_p}")
        if self.discipline == "fixed" and not 0 <= self.loss_p < 1:
            raise ConfigurationError(f"loss_p out of [0, 1): {self.loss_p}")
        return self


@dataclass(frozen=True)
class TcpCohortSpec:
    """``flows`` identical long-lived TCP connections behind one bottleneck.

    ``rtt_s`` is the two-way *propagation* round-trip time; queueing
    delay at the cohort's bottleneck is added by the model as ``q/C``.
    """

    flows: int
    rtt_s: float
    bottleneck: int = 0
    label: str = ""

    def validate(self, n_bottlenecks: int) -> "TcpCohortSpec":
        """Check counts, RTT, and the bottleneck reference."""
        if self.flows < 1:
            raise ConfigurationError(f"cohort needs >= 1 flow: {self.flows}")
        if self.rtt_s <= 0:
            raise ConfigurationError(f"non-positive RTT: {self.rtt_s}")
        if not 0 <= self.bottleneck < n_bottlenecks:
            raise ConfigurationError(
                f"cohort references bottleneck {self.bottleneck}, "
                f"spec has {n_bottlenecks}"
            )
        return self


@dataclass(frozen=True)
class RlaCohortSpec:
    """``receivers`` RLA receivers behind one bottleneck.

    The (single) RLA session spans every RLA cohort in the spec: its
    traffic crosses each referenced bottleneck once (multicast sends one
    copy per tree branch), each receiver sees its own bottleneck's loss
    probability, and the session clocks on the *worst* receiver RTT —
    the worst-receiver coupling of :mod:`repro.models.rla_drift`.
    """

    receivers: int
    rtt_s: float
    bottleneck: int = 0
    label: str = ""

    def validate(self, n_bottlenecks: int) -> "RlaCohortSpec":
        """Check counts, RTT, and the bottleneck reference."""
        if self.receivers < 1:
            raise ConfigurationError(
                f"cohort needs >= 1 receiver: {self.receivers}"
            )
        if self.rtt_s <= 0:
            raise ConfigurationError(f"non-positive RTT: {self.rtt_s}")
        if not 0 <= self.bottleneck < n_bottlenecks:
            raise ConfigurationError(
                f"cohort references bottleneck {self.bottleneck}, "
                f"spec has {n_bottlenecks}"
            )
        return self


@dataclass(frozen=True)
class FluidSpec:
    """One deterministic fluid run: populations, bottlenecks, horizon.

    ``duration`` is the measured window after ``warmup`` seconds of
    transient (time averages are taken over the measured window only,
    mirroring the packet experiments' mark protocol).  ``dt`` is the
    fixed RK4 step.  ``seed`` exists purely so the spec slots into the
    seed-replication machinery of :mod:`repro.runtime`; the dynamics
    draw no random numbers at all.
    """

    name: str
    bottlenecks: Tuple[BottleneckSpec, ...]
    tcp_cohorts: Tuple[TcpCohortSpec, ...] = ()
    rla_cohorts: Tuple[RlaCohortSpec, ...] = ()
    duration: float = 30.0
    warmup: float = 10.0
    dt: float = 1e-3
    seed: int = 1
    #: The RLA sender clocks on the worst receiver, but its effective
    #: round-trip sits *above* that receiver's RTT — equation 5 bounds
    #: it in (RTT, 2 RTT).  The model multiplies the worst effective
    #: RTT by this factor; 1.5 is the midpoint of the equation 5 band
    #: and matches the packet cross-validation.
    rla_rtt_factor: float = 1.5

    def validate(self) -> "FluidSpec":
        """Check the whole tree (nested specs included); returns self."""
        if not self.name:
            raise ConfigurationError("fluid spec needs a name")
        if not self.bottlenecks:
            raise ConfigurationError("fluid spec needs >= 1 bottleneck")
        if not self.tcp_cohorts and not self.rla_cohorts:
            raise ConfigurationError("fluid spec needs at least one cohort")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigurationError(
                f"need duration > 0 and warmup >= 0: "
                f"duration={self.duration}, warmup={self.warmup}"
            )
        if self.dt <= 0 or self.dt > self.duration:
            raise ConfigurationError(f"bad integration step: {self.dt}")
        if not 1.0 <= self.rla_rtt_factor <= 2.0:
            raise ConfigurationError(
                f"rla_rtt_factor outside equation 5's [1, 2] band: "
                f"{self.rla_rtt_factor}"
            )
        for bottleneck in self.bottlenecks:
            bottleneck.validate()
        for cohort in self.tcp_cohorts:
            cohort.validate(len(self.bottlenecks))
        for cohort in self.rla_cohorts:
            cohort.validate(len(self.bottlenecks))
        return self

    @property
    def horizon(self) -> float:
        """Total integrated time: warmup plus the measured window."""
        return self.warmup + self.duration

    @property
    def n_tcp_flows(self) -> int:
        """Total TCP flows across cohorts (may be millions)."""
        return sum(cohort.flows for cohort in self.tcp_cohorts)

    @property
    def n_receivers(self) -> int:
        """Total RLA receivers across cohorts (may be millions)."""
        return sum(cohort.receivers for cohort in self.rla_cohorts)

    def replace(self, **overrides) -> "FluidSpec":
        """A copy with some fields overridden (``dataclasses.replace``)."""
        return dataclasses.replace(self, **overrides)
