"""Equilibrium solver and Reynier-style stability diagnostic.

Reynier's companion result to the mean-field limit (``cs/0609014``) is a
*simple stability condition* for many TCP flows through a RED buffer:
the deterministic limit has a unique fixed point, and whether the
populations settle there or orbit it in a limit cycle is decided by the
linearization around that fixed point.  This module implements that
check constructively for a single-bottleneck :class:`FluidSpec`:

1. solve the fixed point exactly — windows from the closed forms of
   :mod:`repro.models` (which *are* the ODE equilibria by construction),
   the queue from inverting the drop profile, and the residual
   ``A(p) (1-p) - C`` bisected over the drop probability (the residual
   is strictly decreasing in ``p``: higher loss shrinks every window
   and, through the queue, stretches every RTT);
2. linearize :meth:`FluidModel.derivatives` at the fixed point by
   central finite differences and report the **stability margin**
   ``-max Re(eig(J))`` — positive means locally asymptotically stable,
   negative flags the oscillatory regime Reynier's condition excludes.

Both the equilibrium and the margin are surfaced in fluid report rows
as a diagnostic, so a sweep can tell at a glance when a RED operating
point has left the stable region (where the time averages are still
well-defined but no longer sit on the fixed point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..models.rla_drift import rla_window_groups
from ..models.tcp_formula import pa_window
from .model import FluidModel
from .spec import FluidSpec

#: Bisection iterations for the equilibrium drop probability.  Fixed
#: (not tolerance-driven) so the solve is deterministic bit-for-bit.
BISECT_ITERATIONS = 200

#: Smallest drop probability the bracket considers.
P_FLOOR = 1e-12


@dataclass
class EquilibriumReport:
    """Fixed point of a single-bottleneck fluid system, plus its margin.

    ``status`` is ``"interior"`` (a genuine fixed point on the drop
    profile), ``"lossless"`` (demand never fills the queue; ``p = 0``),
    or ``"saturated"`` (demand exceeds capacity even at the top of the
    drop profile; RED operates on its ``max_th`` cliff).
    ``stability_margin`` is ``-max Re(eig(J))`` at the fixed point —
    positive for locally stable — and ``None`` when the fixed point
    sits on a state-space boundary (drop-tail's full buffer) where the
    linearization is one-sided.
    """

    status: str
    p: float
    queue: float
    tcp_windows: Tuple[float, ...]
    rla_window: Optional[float]
    arrival_pps: float
    stability_margin: Optional[float]


def _single_bottleneck(spec: FluidSpec):
    if len(spec.bottlenecks) != 1:
        raise ConfigurationError(
            "equilibrium solver handles single-bottleneck specs; "
            f"got {len(spec.bottlenecks)}"
        )
    return spec.bottlenecks[0]


def _equilibrium_windows(
    spec: FluidSpec, p: float
) -> Tuple[List[float], Optional[float]]:
    """Cohort windows at loss ``p`` from the closed-form equilibria."""
    if p <= 0.0:
        raise ConfigurationError(f"need positive loss for windows: {p}")
    tcp = [pa_window(p)] * len(spec.tcp_cohorts)
    rla = None
    if spec.rla_cohorts:
        # Single bottleneck: every receiver loses together — one group.
        rla = rla_window_groups([(sum(c.receivers
                                      for c in spec.rla_cohorts), p)])
    return tcp, rla


def _queue_at(spec: FluidSpec, p: float) -> float:
    """Equilibrium queue depth implied by loss ``p`` on the profile."""
    bn = _single_bottleneck(spec)
    if bn.discipline == "fixed":
        return 0.0
    if bn.discipline == "droptail":
        return bn.buffer_pkts
    # RED: avg == q at equilibrium, and p = max_p (q - min)/(max - min).
    return bn.min_th + (p / bn.max_p) * (bn.max_th - bn.min_th)


def _arrival_at(spec: FluidSpec, p: float) -> float:
    """Offered load at loss ``p`` with equilibrium windows and queue."""
    bn = _single_bottleneck(spec)
    q = _queue_at(spec, p)
    tcp_windows, rla_window = _equilibrium_windows(spec, p)
    load = 0.0
    for cohort, w in zip(spec.tcp_cohorts, tcp_windows):
        load += cohort.flows * w / (cohort.rtt_s + q / bn.capacity_pps)
    if rla_window is not None:
        rla_rtt = spec.rla_rtt_factor * max(
            cohort.rtt_s + q / bn.capacity_pps
            for cohort in spec.rla_cohorts
        )
        load += rla_window / rla_rtt
    return load


def _residual(spec: FluidSpec, p: float) -> float:
    """Queue balance ``A(p)(1-p) - C``; zero at the fixed point."""
    bn = _single_bottleneck(spec)
    return _arrival_at(spec, p) * (1.0 - p) - bn.capacity_pps


def solve_equilibrium(spec: FluidSpec) -> EquilibriumReport:
    """Fixed point of a single-bottleneck spec (no stability analysis)."""
    spec.validate()
    bn = _single_bottleneck(spec)

    if bn.discipline == "fixed":
        p = bn.loss_p
        if p <= 0.0:
            return EquilibriumReport("lossless", 0.0, 0.0, (), None,
                                     0.0, None)
        tcp_windows, rla_window = _equilibrium_windows(spec, p)
        return EquilibriumReport(
            status="interior", p=p, queue=0.0,
            tcp_windows=tuple(tcp_windows), rla_window=rla_window,
            arrival_pps=_arrival_at(spec, p), stability_margin=None,
        )

    # The top of the continuous drop profile: RED's linear region ends
    # at max_p; drop-tail's excess-rate loss is bounded below 1.
    p_hi = bn.max_p if bn.discipline == "red" else 1.0 - 1e-9
    if _residual(spec, P_FLOOR) <= 0.0:
        # Demand never fills the profile: effectively lossless.
        return EquilibriumReport(
            "lossless", 0.0, 0.0 if bn.discipline == "red"
            else min(bn.buffer_pkts, 0.0), (), None,
            _arrival_at(spec, P_FLOOR), None,
        )
    if _residual(spec, p_hi) >= 0.0:
        # Even maximal profile loss can't absorb the demand.
        tcp_windows, rla_window = _equilibrium_windows(spec, p_hi)
        return EquilibriumReport(
            "saturated", p_hi, _queue_at(spec, p_hi),
            tuple(tcp_windows), rla_window,
            _arrival_at(spec, p_hi), None,
        )

    lo, hi = P_FLOOR, p_hi
    for _ in range(BISECT_ITERATIONS):
        mid = 0.5 * (lo + hi)
        if _residual(spec, mid) > 0.0:
            lo = mid
        else:
            hi = mid
    p = 0.5 * (lo + hi)
    tcp_windows, rla_window = _equilibrium_windows(spec, p)
    return EquilibriumReport(
        status="interior", p=p, queue=_queue_at(spec, p),
        tcp_windows=tuple(tcp_windows), rla_window=rla_window,
        arrival_pps=_arrival_at(spec, p), stability_margin=None,
    )


def equilibrium_state(spec: FluidSpec,
                      report: EquilibriumReport) -> List[float]:
    """The full ODE state vector corresponding to an equilibrium report."""
    model = FluidModel(spec)
    state = model.initial_state()
    for c, w in enumerate(report.tcp_windows):
        state[c] = w
    if report.rla_window is not None and model.has_rla:
        state[model.idx_rla] = report.rla_window
    state[model.base_q] = report.queue
    if spec.bottlenecks[0].discipline == "red":
        state[model.base_avg] = report.queue
    return state


def stability_margin(spec: FluidSpec,
                     report: EquilibriumReport) -> Optional[float]:
    """``-max Re(eig(J))`` of the linearization at the fixed point.

    Positive margins mean the fixed point is locally asymptotically
    stable (Reynier's stable regime); negative margins mean the
    deterministic system spirals away into the RED limit cycle.
    Returns ``None`` for fixed points on a boundary of the state space
    (drop-tail's full buffer, the lossless corner), where a two-sided
    linearization does not exist.
    """
    bn = _single_bottleneck(spec)
    if report.status != "interior" or bn.discipline != "red":
        return None
    import numpy as np

    model = FluidModel(spec)
    x0 = equilibrium_state(spec, report)
    n = model.n_state
    jac = np.zeros((n, n))
    for j in range(n):
        eps = 1e-6 * max(1.0, abs(x0[j]))
        hi = list(x0)
        lo = list(x0)
        hi[j] += eps
        lo[j] -= eps
        f_hi = model.derivatives(hi)
        f_lo = model.derivatives(lo)
        for i in range(n):
            jac[i, j] = (f_hi[i] - f_lo[i]) / (2.0 * eps)
    eigenvalues = np.linalg.eigvals(jac)
    return float(-max(ev.real for ev in eigenvalues))


def reynier_check(spec: FluidSpec) -> EquilibriumReport:
    """Solve the fixed point and attach its stability margin."""
    report = solve_equilibrium(spec)
    margin = stability_margin(spec, report)
    if margin is None:
        return report
    return EquilibriumReport(
        status=report.status, p=report.p, queue=report.queue,
        tcp_windows=report.tcp_windows, rla_window=report.rla_window,
        arrival_pps=report.arrival_pps, stability_margin=margin,
    )
