"""Fairness definitions and theorem bounds (§2 and §4 of the paper).

Implements the paper's three key concepts on the restricted topology:

* the **soft bottleneck** — the branch minimizing ``mu_i / (m_i + 1)``;
* **absolute fairness** — multicast throughput equal to the soft
  bottleneck's equal share;
* **essential fairness** — ``a * lambda_TCP < lambda_RLA < b * lambda_TCP``
  with Theorem I giving ``(a, b) = (1/3, sqrt(3 n))`` for RED gateways and
  Theorem II giving ``(a, b) = (1/4, 2 n)`` for drop-tail gateways with
  phase effects eliminated.

These functions power the E9 bound checks run inside the figure-7/9
benchmarks, and are usable on measurements of *any* multicast scheme — the
paper offers essential fairness as a yardstick for comparing algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError

RED = "red"
DROPTAIL = "droptail"


def soft_bottleneck(mu: Sequence[float], m: Sequence[int]) -> int:
    """Index of the soft bottleneck branch: argmin ``mu_i / (m_i + 1)``."""
    if len(mu) != len(m) or not mu:
        raise ConfigurationError("mu and m must be equal-length, non-empty")
    shares = [capacity / (tcp_count + 1) for capacity, tcp_count in zip(mu, m)]
    return min(range(len(shares)), key=shares.__getitem__)


def soft_bottleneck_share(mu: Sequence[float], m: Sequence[int]) -> float:
    """The equal share ``min_i mu_i / (m_i + 1)`` on the soft bottleneck."""
    index = soft_bottleneck(mu, m)
    return mu[index] / (m[index] + 1)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    The quantitative fairness measure of Jain, Chiu & Hawe: 1.0 when all
    allocations are equal, approaching ``1/n`` as one allocation takes
    everything.  Used by the scenario suite to score how evenly the RLA
    session and its competing TCP flows share a generated topology.

    All values must be non-negative; an all-zero allocation is perfectly
    equal, so it scores 1.0.
    """
    xs = [float(v) for v in values]
    if not xs:
        raise ConfigurationError("jain_index needs at least one allocation")
    if any(v < 0 for v in xs):
        raise ConfigurationError(f"negative allocation in {xs!r}")
    total = sum(xs)
    squares = sum(v * v for v in xs)
    if total == 0.0 or squares == 0.0:
        # All-zero is perfectly equal.  squares can also underflow to 0
        # for subnormal allocations whose sum is still positive; at that
        # magnitude the allocations are indistinguishable from equal.
        return 1.0
    return (total * total) / (len(xs) * squares)


def jain_index_weighted(
    values: Sequence[float], weights: Sequence[int]
) -> float:
    """Jain's index over a population given as ``(value, multiplicity)``.

    Equivalent to :func:`jain_index` on the expanded list where
    ``values[i]`` appears ``weights[i]`` times, but costs O(cohorts)
    instead of O(population) — how the fluid backend scores 10⁶ flows
    held in a handful of cohorts.
    """
    if len(values) != len(weights) or not values:
        raise ConfigurationError(
            "values and weights must be equal-length, non-empty"
        )
    xs = [float(v) for v in values]
    if any(v < 0 for v in xs):
        raise ConfigurationError(f"negative allocation in {xs!r}")
    for w in weights:
        if w < 1:
            raise ConfigurationError(f"multiplicity must be >= 1: {w}")
    population = sum(weights)
    total = sum(w * v for w, v in zip(weights, xs))
    squares = sum(w * v * v for w, v in zip(weights, xs))
    if total == 0.0 or squares == 0.0:
        # Same convention as jain_index: all-zero is perfectly equal.
        return 1.0
    return (total * total) / (population * squares)


def essential_fairness_bounds(n: int, gateway: str) -> Tuple[float, float]:
    """Theorem I/II factors ``(a, b)`` for ``n`` troubled receivers."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n}")
    if gateway == RED:
        return 1.0 / 3.0, math.sqrt(3.0 * n)
    if gateway == DROPTAIL:
        return 0.25, 2.0 * n
    raise ConfigurationError(f"unknown gateway type: {gateway!r}")


def window_ratio_bounds(n: int) -> Tuple[float, float]:
    """Equation 4 factors: ``2/3 < W_RLA / W_TCP < sqrt(3 n)`` (RED case)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n}")
    return 2.0 / 3.0, math.sqrt(3.0 * n)


def rtt_ratio_bounds() -> Tuple[float, float]:
    """Equation 5: ``RTT < RTT_RLA < 2 RTT`` on the restricted topology."""
    return 1.0, 2.0


@dataclass
class FairnessVerdict:
    """Outcome of an essential-fairness check on one measurement."""

    ratio: float          # lambda_RLA / lambda_TCP on the soft bottleneck
    lower: float          # a
    upper: float          # b
    fair: bool            # a < ratio < b
    gateway: str
    n: int

    def __str__(self) -> str:
        status = "ESSENTIALLY FAIR" if self.fair else "OUT OF BOUNDS"
        return (
            f"{status}: ratio={self.ratio:.3f} within ({self.lower:.3f}, "
            f"{self.upper:.3f}) for n={self.n} ({self.gateway})"
        )


def check_essential_fairness(
    lambda_rla: float,
    lambda_tcp: float,
    n: int,
    gateway: str,
) -> FairnessVerdict:
    """Check the Theorem I/II inequality on measured throughputs.

    ``lambda_tcp`` must be the competing TCP throughput on the *soft
    bottleneck* branch (the paper's WTCP row).
    """
    if lambda_rla <= 0 or lambda_tcp <= 0:
        raise ConfigurationError("throughputs must be positive")
    lower, upper = essential_fairness_bounds(n, gateway)
    ratio = lambda_rla / lambda_tcp
    return FairnessVerdict(
        ratio=ratio,
        lower=lower,
        upper=upper,
        fair=lower < ratio < upper,
        gateway=gateway,
        n=n,
    )


def is_absolutely_fair(
    lambda_rla: float,
    mu: Sequence[float],
    m: Sequence[int],
    tolerance: float = 0.2,
) -> bool:
    """True if the multicast throughput sits at the soft-bottleneck share.

    ``tolerance`` is the acceptable relative deviation; absolute fairness
    is essential fairness with ``a = b = 1``, impossible to hit exactly in
    finite measurements.
    """
    share = soft_bottleneck_share(mu, m)
    return abs(lambda_rla - share) <= tolerance * share
