"""The two-session Markov "particle" model of §4.4 (figures 3, 4, 5).

Two RLA senders share the same restricted topology (same receivers, same
bottlenecks, no feedback delay).  Their congestion windows ``(W1, W2)``
form a particle moving on the plane:

* while ``W1 + W2 < pipe`` nobody is congested and both windows grow by 2
  per time step (the step is ``2 RTT``, the loss-grouping interval);
* beyond a pipe boundary, every troubled receiver behind it signals, and
  each sender *independently* halves once per signal with probability
  ``1/n`` — so the cut count per sender is Binomial(#signals, 1/n).

The model yields the drift field of figure 4 and, simulated, the density
plot of figure 5 whose mass concentrates around the fair operating point
``(pipe/2, pipe/2)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


def binomial_pmf(n: int, p: float) -> List[float]:
    """PMF of Binomial(n, p) as a list indexed by the outcome."""
    if n < 0 or not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"bad binomial parameters: n={n}, p={p}")
    return [math.comb(n, i) * p**i * (1.0 - p) ** (n - i) for i in range(n + 1)]


@dataclass
class ParticleModel:
    """Two competing RLA sessions with ``n`` troubled receivers each.

    ``pipes`` lists the pipe size of each distinct bottleneck tier together
    with how many receivers sit behind it; the figure 4/5 setting is a
    single tier: ``pipes = [(pipe, n)]``.
    """

    n: int
    pipes: Sequence[Tuple[float, int]]
    growth: float = 2.0  # window growth per 2-RTT step

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1: {self.n}")
        if not self.pipes:
            raise ConfigurationError("need at least one pipe tier")
        total = sum(count for _, count in self.pipes)
        if total != self.n:
            raise ConfigurationError(
                f"pipe tier receiver counts {total} != n {self.n}"
            )
        self._sorted_pipes = sorted(self.pipes)

    @classmethod
    def uniform(cls, n: int, pipe: float) -> "ParticleModel":
        """The figure 4/5 case: all ``n`` links share one pipe size."""
        return cls(n=n, pipes=[(pipe, n)])

    # ------------------------------------------------------------------
    def signals(self, total_window: float) -> int:
        """Congestion signals per step when the sum of windows is given.

        §4.4: receivers behind ``pipe_i`` signal when the window sum
        *exceeds* the pipe size (strictly).
        """
        return sum(count for pipe, count in self._sorted_pipes if total_window > pipe)

    def cut_pmf(self, signal_count: int) -> List[float]:
        """Distribution of the per-sender halving count for one step."""
        return binomial_pmf(signal_count, 1.0 / self.n)

    def drift(self, w_own: float, w_total: float) -> float:
        """Expected one-step change of one sender's window (figure 4).

        ``2 p0 - sum_i w (1 - 2^-i) p_i`` in the congested region, where
        ``p_i`` is the probability of ``i`` halvings.
        """
        s = self.signals(w_total)
        if s == 0:
            return self.growth
        pmf = self.cut_pmf(s)
        change = self.growth * pmf[0]
        for i in range(1, s + 1):
            change -= w_own * (1.0 - 2.0 ** (-i)) * pmf[i]
        return change

    def drift_field(
        self, w_max: float, step: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vector field ``(X, Y, U, V)`` over the window plane (figure 4)."""
        if w_max <= 0 or step <= 0:
            raise ConfigurationError("w_max and step must be positive")
        axis = np.arange(step, w_max + step / 2, step)
        grid_x, grid_y = np.meshgrid(axis, axis)
        u = np.empty_like(grid_x)
        v = np.empty_like(grid_y)
        for row in range(grid_x.shape[0]):
            for col in range(grid_x.shape[1]):
                w1 = float(grid_x[row, col])
                w2 = float(grid_y[row, col])
                u[row, col] = self.drift(w1, w1 + w2)
                v[row, col] = self.drift(w2, w1 + w2)
        return grid_x, grid_y, u, v

    def operating_point(self) -> Tuple[float, float]:
        """The desired fair point: the smallest pipe split equally."""
        pipe = self._sorted_pipes[0][0]
        return pipe / 2.0, pipe / 2.0

    # ------------------------------------------------------------------
    def simulate(
        self,
        steps: int = 100_000,
        seed: int = 1,
        w_start: Tuple[float, float] = (1.0, 1.0),
        w_floor: float = 1.0,
    ) -> "ParticleTrace":
        """Run the Markov chain and collect the visit density (figure 5)."""
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive: {steps}")
        rng = random.Random(seed)
        w1, w2 = float(w_start[0]), float(w_start[1])
        listen = 1.0 / self.n
        counts: Dict[Tuple[int, int], int] = {}
        sum1 = sum2 = 0.0
        for _ in range(steps):
            s = self.signals(w1 + w2)
            if s == 0:
                w1 += self.growth
                w2 += self.growth
            else:
                cuts1 = sum(1 for _ in range(s) if rng.random() < listen)
                cuts2 = sum(1 for _ in range(s) if rng.random() < listen)
                w1 = max(w1 / 2.0**cuts1, w_floor) if cuts1 else w1 + self.growth
                w2 = max(w2 / 2.0**cuts2, w_floor) if cuts2 else w2 + self.growth
            sum1 += w1
            sum2 += w2
            cell = (int(round(w1)), int(round(w2)))
            counts[cell] = counts.get(cell, 0) + 1
        return ParticleTrace(
            counts=counts, mean_w1=sum1 / steps, mean_w2=sum2 / steps, steps=steps,
            model=self,
        )


@dataclass
class ParticleTrace:
    """Result of a particle-model simulation."""

    counts: Dict[Tuple[int, int], int]
    mean_w1: float
    mean_w2: float
    steps: int
    model: ParticleModel = field(repr=False)

    def density(self, w_max: int) -> np.ndarray:
        """Occupancy histogram over ``[0, w_max] x [0, w_max]`` (figure 5)."""
        grid = np.zeros((w_max + 1, w_max + 1))
        for (w1, w2), count in self.counts.items():
            if 0 <= w1 <= w_max and 0 <= w2 <= w_max:
                grid[w1, w2] = count
        return grid

    def mass_within(self, radius: float) -> float:
        """Fraction of time spent within ``radius`` of the fair point."""
        cx, cy = self.model.operating_point()
        inside = sum(
            count
            for (w1, w2), count in self.counts.items()
            if (w1 - cx) ** 2 + (w2 - cy) ** 2 <= radius**2
        )
        return inside / self.steps
