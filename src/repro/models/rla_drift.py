"""Drift analysis of the RLA window process (§4.2 of the paper).

This module provides closed forms and Monte-Carlo validators for:

* equation 3 — the two-receiver independent-loss PA window,
* its n-receiver generalization (derived with the same drift argument),
* the common-loss (fully correlated) PA window,
* equation 2 — the Proposition's lower/upper bounds
  ``sqrt(2(1-p_max)/p_max) < W̄ < sqrt(n) * sqrt(2(1-p_max)/p_max)``,
* the §4.2 Lemma (correlation increases the average window), checkable
  numerically.

Derivation sketch for the n-receiver independent case: per packet,
receiver ``i`` emits a congestion signal with probability ``p_i``; each
signal independently triggers a halving with probability ``1/n``.  The
window increases by ``1/W`` only when no halving fires, which happens with
probability ``prod_i (1 - p_i/n)``, and the expected multiplicative loss is
``E[1 - 2^-J] = 1 - prod_i (1 - p_i/(2n))`` where ``J`` counts halvings.
Setting positive and negative drift equal gives

    W̄² = prod_i (1 - p_i/n) / (1 - prod_i (1 - p_i/(2n)))

which reduces exactly to the paper's equation 3 for ``n = 2``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from .tcp_formula import pa_window


def _check_probs(ps: Sequence[float]) -> None:
    if not ps:
        raise ConfigurationError("need at least one congestion probability")
    for p in ps:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"congestion probability out of (0,1): {p}")


def rla_window_two_receivers(p1: float, p2: float) -> float:
    """Equation 3: the PA window for two receivers with independent losses."""
    _check_probs((p1, p2))
    num = 4.0 * (1.0 - 0.5 * (p1 + p2) + 0.25 * p1 * p2)
    den = p1 + p2 - 0.25 * p1 * p2
    return math.sqrt(num / den)


def rla_window_independent(ps: Sequence[float]) -> float:
    """n-receiver independent-loss PA window (reduces to eq 3 at n = 2)."""
    _check_probs(ps)
    n = len(ps)
    p_no_cut = 1.0
    p_half = 1.0
    for p in ps:
        p_no_cut *= 1.0 - p / n
        p_half *= 1.0 - p / (2.0 * n)
    return math.sqrt(p_no_cut / (1.0 - p_half))


def rla_window_cohorts(cohorts: Sequence[Tuple[int, float]]) -> float:
    """Independent-loss PA window for receivers grouped into cohorts.

    ``cohorts`` is a sequence of ``(count, p)`` pairs: ``count`` receivers
    each with congestion probability ``p``.  Algebraically identical to
    :func:`rla_window_independent` on the expanded list (the products are
    just taken with exponents), but costs O(cohorts) instead of
    O(receivers) — the form the fluid backend needs when a cohort holds
    10⁶ receivers.
    """
    if not cohorts:
        raise ConfigurationError("need at least one cohort")
    n = 0
    for count, _ in cohorts:
        if count < 1:
            raise ConfigurationError(f"cohort count must be >= 1: {count}")
        n += count
    _check_probs([p for _, p in cohorts])
    p_no_cut = 1.0
    p_half = 1.0
    for count, p in cohorts:
        p_no_cut *= (1.0 - p / n) ** count
        p_half *= (1.0 - p / (2.0 * n)) ** count
    return math.sqrt(p_no_cut / (1.0 - p_half))


def rla_window_groups(groups: Sequence[Tuple[int, float]]) -> float:
    """PA window for receiver groups with *common loss within a group*.

    ``groups`` is a sequence of ``(count, p)`` pairs: a group of
    ``count`` receivers behind one shared bottleneck that loses (and so
    signals) together with probability ``p``, independently of other
    groups — the loss geometry of a multicast tree, where one dropped
    copy deprives every receiver downstream of the drop.  This is
    :func:`rla_window_grouped` generalized to unequal group sizes and
    probabilities: ``(1, p)`` groups reduce it to
    :func:`rla_window_independent` and a single ``(n, p)`` group to
    :func:`rla_window_common`.  The fluid backend's RLA drift uses
    exactly these products, grouping receiver cohorts by bottleneck.
    """
    if not groups:
        raise ConfigurationError("need at least one group")
    n = 0
    for count, _ in groups:
        if count < 1:
            raise ConfigurationError(f"group count must be >= 1: {count}")
        n += count
    _check_probs([p for _, p in groups])
    p_no_cut = 1.0
    p_half = 1.0
    for count, p in groups:
        p_no_cut *= (1.0 - p) + p * (1.0 - 1.0 / n) ** count
        p_half *= (1.0 - p) + p * (1.0 - 1.0 / (2.0 * n)) ** count
    return math.sqrt(p_no_cut / (1.0 - p_half))


def rla_window_common(p: float, n: int) -> float:
    """Common-loss PA window: every loss signals all ``n`` receivers at once.

    Per packet: with probability ``p`` all n receivers signal and the cut
    count is Binomial(n, 1/n); with probability ``1 - p`` the window grows.
    """
    _check_probs((p,))
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n}")
    no_cut_given_loss = (1.0 - 1.0 / n) ** n
    half_given_loss = (1.0 - 1.0 / (2.0 * n)) ** n
    p_grow = (1.0 - p) + p * no_cut_given_loss
    expected_loss_factor = p * (1.0 - half_given_loss)
    return math.sqrt(p_grow / expected_loss_factor)


def rla_window_grouped(p: float, group_size: int, groups: int) -> float:
    """PA window with *grouped* losses: ``groups`` independent subtrees of
    ``group_size`` receivers each lose together (case-2-style topology).

    Per packet each group signals — all its members at once — with
    probability ``p``, independently of other groups.  ``group_size = 1``
    recovers :func:`rla_window_independent` (equal probabilities) and
    ``groups = 1`` recovers :func:`rla_window_common`, so this closed form
    interpolates the §4.2 Lemma between the paper's two extremes, exactly
    the ordering the figure 7 cases 1/2/3 exhibit.
    """
    _check_probs((p,))
    if group_size < 1 or groups < 1:
        raise ConfigurationError(
            f"need positive group_size and groups: {group_size}, {groups}"
        )
    n = group_size * groups
    no_cut_one_group = (1.0 - p) + p * (1.0 - 1.0 / n) ** group_size
    half_one_group = (1.0 - p) + p * (1.0 - 1.0 / (2.0 * n)) ** group_size
    p_no_cut = no_cut_one_group ** groups
    expected_loss_factor = 1.0 - half_one_group ** groups
    return math.sqrt(p_no_cut / expected_loss_factor)


def proposition_bounds(p_max: float, n: int) -> Tuple[float, float]:
    """Equation 2: (lower, upper) bounds on the RLA PA window."""
    _check_probs((p_max,))
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n}")
    lower = pa_window(p_max)
    return lower, math.sqrt(n) * lower


def eta_condition(p1: float, eta: float = 20.0) -> float:
    """§4.2's f(p1) = p1 / (2 - 1.5 p1): x >= f(p1) keeps the bound valid.

    Returns ``f(p1)``; the RLA guarantees ``x = p2/p1 >= 1/eta``, and the
    paper picks ``eta = 20`` so ``1/eta = 0.05`` clears ``f(0.05) ~= 0.026``.
    """
    _check_probs((p1,))
    if eta < 1:
        raise ConfigurationError(f"eta must be >= 1: {eta}")
    return p1 / (2.0 - 1.5 * p1)


# ----------------------------------------------------------------------
# Monte-Carlo validation of the closed forms
# ----------------------------------------------------------------------
def simulate_window_chain(
    ps: Sequence[float],
    steps: int = 200_000,
    seed: int = 1,
    correlated: bool = False,
    w0: float = 10.0,
) -> float:
    """Simulate the §4.2 jump chain and return the time-average window.

    ``correlated=True`` uses the common-loss model (one coin decides all
    receivers' signals); otherwise losses are independent per receiver.
    The cut coin is ``1/n`` per signal, as in the RLA with ``n`` troubled
    receivers.
    """
    _check_probs(ps)
    if steps <= 0:
        raise ConfigurationError(f"steps must be positive: {steps}")
    rng = random.Random(seed)
    n = len(ps)
    listen = 1.0 / n
    w = w0
    total = 0.0
    for _ in range(steps):
        if correlated:
            signals = n if rng.random() < ps[0] else 0
        else:
            signals = sum(1 for p in ps if rng.random() < p)
        cuts = sum(1 for _ in range(signals) if rng.random() < listen)
        if cuts:
            w = max(w / (2.0 ** cuts), 1.0)
        else:
            w += 1.0 / w
        total += w
    return total / steps


def simulate_grouped_chain(
    p: float,
    group_size: int,
    groups: int,
    steps: int = 200_000,
    seed: int = 1,
    w0: float = 10.0,
) -> float:
    """Monte-Carlo twin of :func:`rla_window_grouped`."""
    _check_probs((p,))
    if steps <= 0:
        raise ConfigurationError(f"steps must be positive: {steps}")
    if group_size < 1 or groups < 1:
        raise ConfigurationError(
            f"need positive group_size and groups: {group_size}, {groups}"
        )
    rng = random.Random(seed)
    n = group_size * groups
    listen = 1.0 / n
    w = w0
    total = 0.0
    for _ in range(steps):
        signals = sum(group_size for _ in range(groups) if rng.random() < p)
        cuts = sum(1 for _ in range(signals) if rng.random() < listen)
        if cuts:
            w = max(w / (2.0 ** cuts), 1.0)
        else:
            w += 1.0 / w
        total += w
    return total / steps


def lemma_correlation_gap(p: float, n: int) -> float:
    """Lemma check: common-loss window minus independent-loss window.

    Positive values confirm "a higher degree of correlation in loss ...
    results in a larger average congestion window" for equal per-receiver
    congestion probability ``p``.
    """
    return rla_window_common(p, n) - rla_window_independent([p] * n)
