"""Analytical TCP throughput/window estimates (§4.1 of the paper).

* Equation 1 — the "proportional average (PA) window size" from the drift
  analysis of the congestion-avoidance jump chain (Ott/Kemperman/Mathis):
  ``W̄ = sqrt(2 (1-p) / p)`` packets at congestion probability ``p``.
* The Mahdavi-Floyd rule of thumb ``bandwidth = 1.3 / (RTT sqrt(p))``.

Both hold for *moderate congestion* only; the paper restricts all of its
analysis to ``p < 5%``, exposed here as :data:`MODERATE_CONGESTION_LIMIT`.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

#: The paper analyses only p below this ("moderate congestion", §4.1).
MODERATE_CONGESTION_LIMIT = 0.05


def _check_probability(p: float) -> None:
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"congestion probability out of (0,1): {p}")


def pa_window(p: float) -> float:
    """Equation 1: PA window size ``sqrt(2(1-p)/p)`` in packets."""
    _check_probability(p)
    return math.sqrt(2.0 * (1.0 - p)) / math.sqrt(p)


def pa_window_simplified(p: float) -> float:
    """The ``p << 1`` simplification ``sqrt(2)/sqrt(p)`` of equation 1."""
    _check_probability(p)
    return math.sqrt(2.0) / math.sqrt(p)


def mahdavi_floyd_bandwidth(rtt: float, p: float) -> float:
    """The [11] rule of thumb: ``1.3 / (RTT * sqrt(p))`` packets/second."""
    _check_probability(p)
    if rtt <= 0:
        raise ConfigurationError(f"non-positive RTT: {rtt}")
    return 1.3 / (rtt * math.sqrt(p))


def tcp_throughput(rtt: float, p: float) -> float:
    """PA-window throughput estimate ``pa_window(p) / RTT`` (pkt/s)."""
    if rtt <= 0:
        raise ConfigurationError(f"non-positive RTT: {rtt}")
    return pa_window(p) / rtt


def congestion_probability_for_window(w: float) -> float:
    """Invert equation 1: the ``p`` that yields PA window ``w``."""
    if w <= 0:
        raise ConfigurationError(f"non-positive window: {w}")
    # w^2 = 2(1-p)/p  =>  p = 2 / (w^2 + 2)
    return 2.0 / (w * w + 2.0)


def drift(w: float, p: float) -> float:
    """Average per-ACK drift ``D(w) = (1-p)/w - p*w/2`` of the TCP chain."""
    _check_probability(p)
    if w <= 0:
        raise ConfigurationError(f"non-positive window: {w}")
    return (1.0 - p) / w - p * w / 2.0
