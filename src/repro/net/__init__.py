"""Packet-level network substrate: packets, queues, links, nodes, routing.

Public surface re-exported here; see DESIGN.md systems S2-S5.
"""

from .addressing import flow_id, group_address, is_multicast
from .apps import CbrSource, PacketSink
from .codel import CoDelQueue
from .droptail import DropTailQueue
from .faults import RandomDropQueue, random_drop_factory
from .link import Link
from .monitor import QueueMonitor
from .multicast import shortest_path_tree, tree_edges
from .network import (
    GATEWAY_DISCIPLINES,
    Network,
    QueueFactory,
    codel_factory,
    discipline_factory,
    droptail_factory,
    pie_factory,
    red_factory,
)
from .node import Node
from .packet import ACK, DATA, Packet, SackBlock
from .pie import PIEQueue
from .queue import Gateway
from .red import AdaptiveREDQueue, REDQueue

__all__ = [
    "ACK",
    "DATA",
    "AdaptiveREDQueue",
    "CbrSource",
    "CoDelQueue",
    "DropTailQueue",
    "GATEWAY_DISCIPLINES",
    "Gateway",
    "Link",
    "Network",
    "Node",
    "PIEQueue",
    "Packet",
    "PacketSink",
    "QueueFactory",
    "QueueMonitor",
    "REDQueue",
    "RandomDropQueue",
    "random_drop_factory",
    "SackBlock",
    "codel_factory",
    "discipline_factory",
    "droptail_factory",
    "flow_id",
    "group_address",
    "is_multicast",
    "pie_factory",
    "red_factory",
    "shortest_path_tree",
    "tree_edges",
]
