"""Packet-level network substrate: packets, queues, links, nodes, routing.

Public surface re-exported here; see DESIGN.md systems S2-S5.
"""

from .addressing import flow_id, group_address, is_multicast
from .apps import CbrSource, PacketSink
from .droptail import DropTailQueue
from .faults import RandomDropQueue, random_drop_factory
from .link import Link
from .monitor import QueueMonitor
from .multicast import shortest_path_tree, tree_edges
from .network import Network, QueueFactory, droptail_factory, red_factory
from .node import Node
from .packet import ACK, DATA, Packet, SackBlock
from .queue import Gateway
from .red import REDQueue

__all__ = [
    "ACK",
    "DATA",
    "CbrSource",
    "DropTailQueue",
    "Gateway",
    "Link",
    "Network",
    "Node",
    "Packet",
    "PacketSink",
    "QueueFactory",
    "QueueMonitor",
    "REDQueue",
    "RandomDropQueue",
    "random_drop_factory",
    "SackBlock",
    "droptail_factory",
    "flow_id",
    "group_address",
    "is_multicast",
    "red_factory",
    "shortest_path_tree",
    "tree_edges",
]
