"""Addresses and identifiers used by the network layer.

Node identifiers are plain strings (``"S"``, ``"G21"``, ``"R7"``).  Unicast
destinations are node identifiers; multicast destinations are *group
addresses*, marked by the ``group:`` prefix, mirroring the class-D address
split in IP.  Flows (a TCP connection, an RLA session, a CBR stream) are
identified by string flow-ids which both endpoints bind to.
"""

from __future__ import annotations

GROUP_PREFIX = "group:"


def group_address(name: str) -> str:
    """Return the group address for a human-readable group ``name``."""
    return name if name.startswith(GROUP_PREFIX) else GROUP_PREFIX + name


def is_multicast(address: str) -> bool:
    """True if ``address`` names a multicast group rather than a node."""
    return address.startswith(GROUP_PREFIX)


def flow_id(kind: str, index: object) -> str:
    """Canonical flow-id, e.g. ``flow_id('tcp', 3) == 'tcp-3'``."""
    return f"{kind}-{index}"
