"""Minimal traffic agents: a constant-bit-rate source and a counting sink.

These are not part of the paper's algorithms — they exist so the network
substrate can be exercised and tested in isolation (queue behaviour, link
timing, multicast replication) and so the rate-based baselines have a
packet pump to drive.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..units import DEFAULT_PACKET_SIZE
from .node import Node
from .packet import DATA, Packet


class CbrSource:
    """Sends fixed-size packets at a constant rate until stopped."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        dst: str,
        rate_pps: float,
        packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"non-positive CBR rate: {rate_pps}")
        self.sim = sim
        self.node = node
        self.flow = flow
        self.dst = dst
        self.packet_size = packet_size
        self.interval = 1.0 / rate_pps
        self.next_seq = 0
        self._running = False
        # Emission-chain epoch: each start() begins a new chain and stale
        # events from earlier chains identify themselves by epoch.  Without
        # this, stop() followed by start() before the stale _emit fires
        # would leave two chains running at double rate.
        self._epoch = 0

    def set_rate(self, rate_pps: float) -> None:
        """Change the sending rate (takes effect from the next packet)."""
        if rate_pps <= 0:
            raise ConfigurationError(f"non-positive CBR rate: {rate_pps}")
        self.interval = 1.0 / rate_pps

    def start(self, offset: float = 0.0) -> None:
        """Begin sending; the first packet leaves after ``offset`` seconds.

        Safe to call after :meth:`stop` at any time — a restart starts a
        fresh emission chain and orphans any still-scheduled event of the
        previous one.
        """
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.sim.schedule_after(offset, self._emit, self._epoch,
                                name=f"{self.flow}.cbr")

    def stop(self) -> None:
        """Stop sending; the already-scheduled next emission is discarded."""
        self._running = False

    def _emit(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        packet = Packet(
            DATA,
            self.flow,
            self.node.id,
            self.dst,
            self.next_seq,
            self.packet_size,
            sent_time=self.sim.now,
        )
        self.next_seq += 1
        self.node.send(packet)
        self.sim.schedule_after(self.interval, self._emit, epoch,
                                name=f"{self.flow}.cbr")


class PacketSink:
    """Counts and optionally records arriving packets for one flow.

    With ``record=True`` every arrival is stored as an
    ``(arrival_time, seq)`` tuple — churn and burst analysis need the
    times, not just the order.  Recording requires the simulator for its
    clock, so ``sim`` must be passed alongside ``record=True``.
    """

    def __init__(
        self,
        node: Node,
        flow: str,
        record: bool = False,
        sim: Optional[Simulator] = None,
    ) -> None:
        if record and sim is None:
            raise ConfigurationError(
                "PacketSink(record=True) needs sim= to timestamp arrivals"
            )
        self.node = node
        self.flow = flow
        self.record = record
        self.sim = sim
        self.received = 0
        self.bytes = 0
        self.last_seq: Optional[int] = None
        self.arrivals: list = []  # [(arrival_time, seq)] when record=True
        node.bind(flow, self.on_packet)

    def on_packet(self, packet: Packet) -> None:
        """Handler invoked by the owning node for each delivered packet."""
        self.received += 1
        self.bytes += packet.size
        self.last_seq = packet.seq
        if self.record:
            self.arrivals.append((self.sim.now, packet.seq))
