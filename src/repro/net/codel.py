"""CoDel — Controlled Delay AQM (Nichols & Jacobson, RFC 8289).

Unlike RED, CoDel keys on *sojourn time* (how long the head-of-line
packet actually waited) instead of queue length, and it drops at
**dequeue** time: when the minimum sojourn has stayed above ``target``
(default 5 ms) for a whole ``interval`` (default 100 ms), the gateway
enters a dropping state and discards head packets at intervals of
``interval / sqrt(count)`` until the standing queue drains.  The control
law is deterministic — no RNG is involved.

Dequeue-time discards are a new lifecycle for this simulator: the packet
*was* accepted, so they are accounted in :attr:`Gateway.evicted` (cause
``"sojourn"``) and occupancy conservation becomes
``enqueued - dequeued - evicted == depth``; `repro.audit` understands
this taxonomy.

With ``mark_ecn=True`` the control law sets CE on ECT packets instead of
evicting them (RFC 8289 §3; the count/state machinery advances the same
way), matching the ECN extension on the RED variants.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from ..units import ms
from .packet import Packet
from .queue import Gateway


class CoDelQueue(Gateway):
    """A CoDel gateway: sojourn-time controlled, drop-at-dequeue."""

    discipline = "codel"

    def __init__(
        self,
        capacity: int = 20,
        target: float = ms(5),
        interval: float = ms(100),
        mark_ecn: bool = False,
    ) -> None:
        super().__init__(capacity)
        if target <= 0:
            raise ValueError(f"non-positive sojourn target: {target}")
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        #: Acceptable standing sojourn time (RFC 8289 default 5 ms).
        self.target = target
        #: Sliding window over which the minimum sojourn must exceed
        #: ``target`` before dropping starts (default 100 ms ~ worst RTT).
        self.interval = interval
        self.mark_ecn = mark_ecn
        #: Arrival timestamp for each queued packet, parallel to ``_queue``.
        self._arrival: Deque[float] = deque()
        # RFC 8289 control-law state.
        self._first_above_time = 0.0
        self._drop_next = 0.0
        self._count = 0
        self._lastcount = 0
        self._dropping = False
        # statistics
        self.sojourn_drops = 0
        self.ecn_marks = 0

    # ------------------------------------------------------------------
    def enqueue(self, now: float, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            self._notify_drop(now, packet, "overflow")
            return False
        self._arrival.append(now)
        self._accept(now, packet)
        return True

    # ------------------------------------------------------------------
    def _pop_head(self, now: float) -> Tuple[Packet, float]:
        """Remove the head packet and its arrival time (caller accounts it)."""
        packet = self._queue.popleft()
        arrived = self._arrival.popleft()
        self.bytes_queued -= packet.size
        return packet, arrived

    def _evict(self, now: float, packet: Packet) -> None:
        """Discard an already-queued packet per the control law."""
        self.evicted += 1
        self.sojourn_drops += 1
        self._notify_drop(now, packet, "sojourn")

    def _deliver(self, now: float, packet: Packet) -> Packet:
        self.dequeued += 1
        if self._dequeue_hooks:
            self._notify_dequeue(now, packet)
        return packet

    def _should_drop(self, now: float, sojourn: float) -> bool:
        """RFC 8289 ``ok_to_drop``: sojourn above target for a full interval.

        The byte-backlog escape hatch (never drop when less than one MTU
        is queued) is expressed in packets here — a single queued packet
        is always delivered untouched.
        """
        if sojourn < self.target or len(self._queue) == 0:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def _control_law(self, now: float) -> float:
        """Next drop time: ``interval / sqrt(count)`` after ``now``."""
        return now + self.interval / math.sqrt(self._count)

    def _notify_congestion(self, now: float, packet: Packet) -> bool:
        """Evict or CE-mark one packet; True if it was consumed (evicted)."""
        if self.mark_ecn and packet.ect:
            self.ecn_marks += 1
            packet.ce = True
            return False
        self._evict(now, packet)
        return True

    # ------------------------------------------------------------------
    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            self._first_above_time = 0.0
            self._dropping = False
            return None
        packet, arrived = self._pop_head(now)
        ok_to_drop = self._should_drop(now, now - arrived)

        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            else:
                # Evict heads on the interval/sqrt(count) schedule until the
                # sojourn falls back under target or the queue drains.
                while self._dropping and now >= self._drop_next:
                    self._count += 1
                    if not self._notify_congestion(now, packet):
                        # CE-marked: the notification is carried by this
                        # packet — deliver it, next one due at drop_next.
                        self._drop_next = self._control_law(self._drop_next)
                        break
                    if not self._queue:
                        self._dropping = False
                        return None
                    packet, arrived = self._pop_head(now)
                    ok_to_drop = self._should_drop(now, now - arrived)
                    if not ok_to_drop:
                        self._dropping = False
                        break
                    self._drop_next = self._control_law(self._drop_next)
        elif ok_to_drop:
            consumed = self._notify_congestion(now, packet)
            self._dropping = True
            # RFC 8289: restart count near its prior value when the last
            # dropping state ended recently — keeps the drop rate adapted
            # to a persistent bottleneck instead of relearning each cycle.
            delta = self._count - self._lastcount
            if delta > 1 and now - self._drop_next < 16.0 * self.interval:
                self._count = delta
            else:
                self._count = 1
            self._lastcount = self._count
            self._drop_next = self._control_law(now)
            if consumed:
                if not self._queue:
                    self._dropping = False
                    return None
                packet, arrived = self._pop_head(now)
                self._should_drop(now, now - arrived)

        return self._deliver(now, packet)

    # ------------------------------------------------------------------
    def contents(self) -> Tuple[Packet, ...]:
        return tuple(self._queue)
