"""The drop-tail (FIFO, tail-drop) gateway.

This is the router type the paper calls "the toughest barrier to designing
a fair multicast congestion control algorithm" (§1): a finite FIFO that
drops arrivals once full, makes loss patterns phase-sensitive, and enforces
no per-flow fairness at all.
"""

from __future__ import annotations

from .packet import Packet
from .queue import Gateway


class DropTailQueue(Gateway):
    """Finite FIFO buffer; arrivals beyond ``capacity`` packets are dropped."""

    discipline = "droptail"

    def enqueue(self, now: float, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            self._notify_drop(now, packet, "overflow")
            return False
        self._accept(now, packet)
        return True
