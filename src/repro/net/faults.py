"""Failure injection for robustness testing.

:class:`RandomDropQueue` wraps any gateway discipline with a Bernoulli
loss channel: each arrival is dropped with probability ``drop_prob``
*before* the underlying discipline sees it, modelling random corruption /
wireless loss independent of congestion.  The paper's algorithms must
stay live under such loss (TCP via retransmission, the RLA via its
repair machinery) — the failure-injection tests drive exactly that.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..errors import ConfigurationError
from .packet import Packet
from .queue import DequeueHook, DropHook, EnqueueHook, Gateway


class RandomDropQueue(Gateway):
    """A gateway that loses each arriving packet with fixed probability."""

    discipline = "randomdrop"

    def __init__(
        self,
        inner: Gateway,
        drop_prob: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ConfigurationError(f"drop_prob out of [0,1): {drop_prob}")
        if rng is None:
            # A silent random.Random(0) default would bypass the simulator's
            # seeded streams — the exact pattern REDQueue rejects: every
            # directly constructed fault queue would share one drop sequence
            # and same-seed replay would diverge across runs.
            raise ConfigurationError(
                "RandomDropQueue requires an injected rng; use "
                "sim.rng.stream('drop.<name>') or net.random_drop_factory(...)"
            )
        super().__init__(inner.capacity)
        self.inner = inner
        self.drop_prob = drop_prob
        self.rng = rng
        self.random_drops = 0

    # Delegate storage to the inner gateway; this class only adds the coin.
    def enqueue(self, now: float, packet: Packet) -> bool:
        if self.rng.random() < self.drop_prob:
            self.random_drops += 1
            # Fire the wrapper's own hook list directly: `dropped` is a
            # derived property (random_drops + inner.dropped), so the
            # counter bump inside _notify_drop must not run.
            hooks = self._drop_hooks
            if hooks:
                for hook in hooks:
                    hook(now, packet, "random")
            return False
        accepted = self.inner.enqueue(now, packet)
        if accepted:
            self.enqueued += 1
        # Inner rejections are NOT re-reported here: the inner discipline
        # already notified its drop hooks with the true cause ("early",
        # "forced", "overflow") and bumped inner.dropped.  Re-notifying as
        # "overflow" masked RED's causes and double-counted every loss.
        return accepted

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self.inner.dequeue(now)
        if packet is not None:
            self.dequeued += 1
        return packet

    # Storage lives in the inner gateway, so observers of arrivals and
    # removals must be registered where `_accept`/`dequeue` actually run.
    # Drop hooks register in BOTH places: the inner discipline reports its
    # own losses with their true causes, the wrapper adds only the
    # Bernoulli "random" coin losses the inner queue never sees.
    def on_enqueue(self, hook: EnqueueHook) -> None:
        self.inner.on_enqueue(hook)

    def on_dequeue(self, hook: DequeueHook) -> None:
        self.inner.on_dequeue(hook)

    def on_drop(self, hook: DropHook) -> None:
        self.inner.on_drop(hook)
        self._drop_hooks.append(hook)

    def contents(self) -> Tuple[Packet, ...]:
        return self.inner.contents()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def depth(self) -> int:
        """Current inner queue length in packets."""
        return self.inner.depth

    @property
    def dropped(self) -> int:
        """Total losses: the wrapper's coin plus the inner discipline's."""
        return self.random_drops + self.inner.dropped

    @dropped.setter
    def dropped(self, value: int) -> None:
        # Assigned by Gateway.__init__ before `inner` exists.  The composite
        # is derived (random_drops + inner.dropped), so the base-class zero
        # is simply discarded; later assignment would corrupt the split.
        if "inner" in self.__dict__:
            raise AttributeError(
                "RandomDropQueue.dropped is derived; set random_drops or "
                "inner.dropped instead"
            )

    @property
    def bytes_queued(self) -> int:
        """Bytes held in the inner queue (storage lives inside)."""
        return self.inner.bytes_queued

    @bytes_queued.setter
    def bytes_queued(self, value: int) -> None:
        # Assigned by Gateway.__init__ before `inner` exists; the inner
        # gateway tracks the real value, so the base-class zero is discarded.
        if "inner" in self.__dict__:
            self.inner.bytes_queued = value

    @property
    def evicted(self) -> int:
        """Dequeue-time evictions by the inner discipline (e.g. CoDel)."""
        return self.inner.evicted

    @evicted.setter
    def evicted(self, value: int) -> None:
        # Same pre-`inner` guard as peak_depth/bytes_queued.
        if "inner" in self.__dict__:
            self.inner.evicted = value

    @property
    def peak_depth(self) -> int:
        """Largest inner queue depth reached (storage lives inside)."""
        return self.inner.peak_depth

    @peak_depth.setter
    def peak_depth(self, value: int) -> None:
        # Assigned by Gateway.__init__ before `inner` exists; the inner
        # gateway initializes its own counter, so the base-class zero is
        # simply discarded.
        if "inner" in self.__dict__:
            self.inner.peak_depth = value

    @property
    def mean_pkt_time(self) -> float:  # noqa: D401 - property pair
        """Mean packet service time, proxied to the inner discipline."""
        return self.inner.mean_pkt_time

    @mean_pkt_time.setter
    def mean_pkt_time(self, value: float) -> None:
        # Called from Gateway.__init__ before `inner` exists; stash on the
        # inner gateway once available.
        if "inner" in self.__dict__:
            self.inner.mean_pkt_time = value
        else:
            self.__dict__["_pending_mean_pkt_time"] = value


class RandomDropFactory:
    """Picklable factory wrapping an inner queue factory with loss.

    Each produced queue draws from its own ``drop.<link-name>`` stream of
    the simulator's seeded RNG registry, so fault injection is part of the
    same-seed replay contract like every other source of randomness.
    """

    def __init__(self, inner_factory, drop_prob: float, sim) -> None:
        if sim is None:
            raise ConfigurationError(
                "random_drop_factory requires the simulator: per-queue drop "
                "rngs must come from its seeded stream registry"
            )
        self.inner_factory = inner_factory
        self.drop_prob = drop_prob
        self.sim = sim

    def __call__(self, name: str) -> RandomDropQueue:
        rng = self.sim.rng.stream(f"drop.{name}")
        return RandomDropQueue(self.inner_factory(name), self.drop_prob, rng=rng)


def random_drop_factory(inner_factory, drop_prob: float, sim=None):
    """Wrap a queue factory with a Bernoulli loss channel.

    ``sim`` is required: it supplies the per-queue seeded RNG streams that
    keep fault injection deterministic across same-seed runs.
    """
    return RandomDropFactory(inner_factory, drop_prob, sim)
