"""Unidirectional links: a gateway queue + serializing transmitter + wire.

The model matches NS2's SimpleLink: a router hands a packet to the link; if
the transmitter is idle it starts serializing immediately, otherwise the
packet is offered to the gateway queue (where drop-tail/RED policy
applies).  After ``size/bandwidth`` seconds of serialization the packet
spends ``delay`` seconds propagating, then arrives at the downstream node.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..errors import ConfigurationError
from ..units import BITS_PER_BYTE, DEFAULT_PACKET_SIZE, transmission_time
from ..sim.engine import Simulator
from .packet import Packet
from .queue import Gateway

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

DeliverHook = Callable[[float, Packet], None]


class Link:
    """One direction of a point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src: "Node",
        dst: "Node",
        bandwidth_bps: float,
        delay_s: float,
        gateway: Gateway,
        mean_packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"link {name}: non-positive bandwidth")
        if delay_s < 0:
            raise ConfigurationError(f"link {name}: negative delay")
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.gateway = gateway
        self._busy = False
        self._tx_start = 0.0
        self._tx_size = 0
        # lifetime statistics
        self.packets_sent = 0
        self.bytes_sent = 0
        self._deliver_hooks: List[DeliverHook] = []
        # Event labels, precomputed: building two f-strings per forwarded
        # packet showed up in figure-7 profiles.
        self._tx_name = f"{name}.tx"
        self._rx_name = f"{name}.rx"
        if mean_packet_size <= 0:
            raise ConfigurationError(
                f"link {name}: non-positive mean_packet_size"
            )
        #: Mean packet size this link is provisioned for; RED ages its
        #: average — and byte-mode RED scales its thresholds — by the
        #: matching service time, so mixed-size scenarios must pass their
        #: configured mean instead of inheriting the 1000-byte default.
        self.mean_packet_size = mean_packet_size
        gateway.mean_pkt_time = transmission_time(mean_packet_size, bandwidth_bps)

    # ------------------------------------------------------------------
    def on_deliver(self, hook: DeliverHook) -> None:
        """Register ``hook(now, packet)`` to observe downstream arrivals.

        Hooks fire after propagation, just before the destination node's
        ``receive``.  Register before traffic starts: packets already
        propagating when the first hook is added are delivered unobserved.
        """
        self._deliver_hooks.append(hook)

    def send(self, packet: Packet) -> None:
        """Entry point used by the upstream node's forwarding logic."""
        accepted = self.gateway.enqueue(self.sim.now, packet)
        if accepted and not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        sim = self.sim
        packet = self.gateway.dequeue(sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._tx_start = sim.now
        size = packet.size
        self._tx_size = size
        # Inlined transmission_time(size, bandwidth): same arithmetic, no
        # call overhead on the per-packet path (bandwidth was validated
        # positive at construction).
        tx = size * BITS_PER_BYTE / self.bandwidth_bps
        sim.schedule_after(tx, self._transmission_done, packet,
                           name=self._tx_name)

    def _transmission_done(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        receive = self._arrive if self._deliver_hooks else self.dst.receive
        self.sim.schedule_after(
            self.delay_s, receive, packet, name=self._rx_name
        )
        self._serve_next()

    def _arrive(self, packet: Packet) -> None:
        for hook in self._deliver_hooks:
            hook(self.sim.now, packet)
        self.dst.receive(packet)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting bits.

        ``bytes_sent`` is credited at serialization *end*, so the packet
        currently in service would be invisible to short measurement
        windows; its already-serialized fraction is added at read time.
        """
        if elapsed <= 0:
            return 0.0
        bits = self.bytes_sent * 8.0
        if self._busy:
            progress = max(0.0, self.sim.now - self._tx_start)
            bits += min(self._tx_size * 8.0, self.bandwidth_bps * progress)
        return min(1.0, bits / (self.bandwidth_bps * elapsed))

    def __repr__(self) -> str:
        return (
            f"Link({self.name}, {self.bandwidth_bps/1e6:.3f} Mbps, "
            f"{self.delay_s*1e3:.1f} ms, q={self.gateway.discipline})"
        )
