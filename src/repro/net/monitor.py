"""Measurement probes for gateways and links.

:class:`QueueMonitor` observes one gateway: per-flow drop counts, a drop
event log, and a time-weighted average queue depth (updated lazily at each
enqueue/dequeue/drop observation and folded forward at each read, so the
statistics are correct with or without an explicit :meth:`finish`).  The
experiments use these to verify buffer-period behaviour (§3.1) and to
report loss rates per branch; ``sample_depth=True`` additionally keeps a
(time, depth) series for the audit layer's JSONL exporter.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from .packet import Packet
from .queue import Gateway

DropEvent = Tuple[float, str, int, str]  # (time, flow, seq, reason)


class QueueMonitor:
    """Attach to a gateway and accumulate occupancy/drop statistics."""

    def __init__(
        self,
        sim: Simulator,
        gateway: Gateway,
        log_drops: bool = False,
        sample_depth: bool = False,
    ) -> None:
        self.sim = sim
        self.gateway = gateway
        self.log_drops = log_drops
        self.sample_depth = sample_depth
        self.drops_by_flow: Counter = Counter()
        self.enqueues_by_flow: Counter = Counter()
        self.drop_log: List[DropEvent] = []
        #: (time, depth) at each observed depth change (when sample_depth)
        self.depth_samples: List[Tuple[float, int]] = []
        self._last_time = sim.now
        self._last_depth = gateway.depth
        self._area = 0.0  # integral of depth over time
        self._max_depth = gateway.depth
        self._start = sim.now
        gateway.on_drop(self._observe_drop)
        gateway.on_enqueue(self._observe_enqueue)
        gateway.on_dequeue(self._observe_dequeue)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        self._area += self._last_depth * (now - self._last_time)
        self._last_time = now
        depth = self.gateway.depth
        if self.sample_depth and depth != self._last_depth:
            self.depth_samples.append((now, depth))
        self._last_depth = depth
        if self._last_depth > self._max_depth:
            self._max_depth = self._last_depth

    def _observe_drop(self, now: float, packet: Packet, reason: str) -> None:
        self._advance()
        self.drops_by_flow[packet.flow] += 1
        if self.log_drops:
            self.drop_log.append((now, packet.flow, packet.seq, reason))

    def _observe_enqueue(self, now: float, packet: Packet, depth: int) -> None:
        self._advance()
        self.enqueues_by_flow[packet.flow] += 1

    def _observe_dequeue(self, now: float, packet: Packet) -> None:
        self._advance()

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Fold in the time since the last observation (call at run end)."""
        self._advance()

    @property
    def total_drops(self) -> int:
        """Total packets dropped at this gateway since attachment."""
        return sum(self.drops_by_flow.values())

    @property
    def max_depth(self) -> int:
        """Largest queue depth observed (folds in time since last event)."""
        self._advance()
        return self._max_depth

    def mean_depth(self) -> float:
        """Time-weighted average queue depth since attachment.

        Reads fold the idle tail in themselves (``_advance``), so the
        value is correct even without an explicit :meth:`finish` after the
        last enqueue/drop.
        """
        self._advance()
        elapsed = self._last_time - self._start
        if elapsed <= 0:
            return float(self._last_depth)
        return self._area / elapsed

    def loss_rate(self, flow: Optional[str] = None) -> float:
        """Fraction of offered packets dropped (per flow or overall)."""
        if flow is not None:
            offered = self.enqueues_by_flow[flow] + self.drops_by_flow[flow]
            return self.drops_by_flow[flow] / offered if offered else 0.0
        offered = sum(self.enqueues_by_flow.values()) + self.total_drops
        return self.total_drops / offered if offered else 0.0
