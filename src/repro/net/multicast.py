"""Multicast tree construction.

Given a source and a member set, we build the union of unicast shortest
paths (by propagation delay) from source to each member — i.e. a
source-based shortest-path tree, the same tree dense-mode protocols like
DVMRP/PIM-DM converge to on these topologies.  The tree is returned as a
parent/children structure so the network builder can install per-node
multicast forwarding entries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from ..errors import TopologyError


def shortest_path_tree(
    graph: "nx.Graph",
    source: str,
    members: Iterable[str],
    weight: str = "delay",
) -> Dict[str, List[str]]:
    """Return ``{node: [children...]}`` for the source-based multicast tree.

    ``graph`` is an undirected networkx graph whose edges carry a ``weight``
    attribute (propagation delay by default).  Every member must be
    reachable from ``source``; interior nodes may themselves be members.
    """
    members = list(members)
    if not members:
        raise TopologyError("multicast group with no members")
    children: Dict[str, List[str]] = {}
    for member in members:
        if member == source:
            continue
        try:
            path = nx.shortest_path(graph, source, member, weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(f"member {member!r} unreachable from {source!r}") from exc
        for parent, child in zip(path, path[1:]):
            branch = children.setdefault(parent, [])
            if child not in branch:
                branch.append(child)
    return children


def tree_edges(children: Dict[str, List[str]]) -> List[Tuple[str, str]]:
    """Flatten a children map into a list of (parent, child) edges."""
    return [(parent, child) for parent, kids in children.items() for child in kids]
