"""The network builder: nodes + links + routing in one object.

Typical use::

    net = Network(sim)
    net.add_link("S", "G1", bandwidth_bps=mbps(100), delay_s=ms(5))
    ...
    net.build_routes()
    net.join_group("group:rla", source="S", members=["R1", "R2"])

Links are bidirectional by default (two independent :class:`Link` objects,
each with its own gateway queue), matching NS2 duplex links.  Unicast routes
are delay-weighted shortest paths computed with networkx and installed as
static per-destination next hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..errors import TopologyError
from ..sim.engine import Simulator
from ..units import DEFAULT_PACKET_SIZE
from .codel import CoDelQueue
from .droptail import DropTailQueue
from .link import Link
from .multicast import shortest_path_tree
from .node import Node
from .pie import PIEQueue
from .queue import Gateway
from .red import AdaptiveREDQueue, REDQueue

#: A factory receives the directed link name (e.g. "S->G1") and returns a
#: fresh gateway for that direction.
QueueFactory = Callable[[str], Gateway]


@dataclass
class DropTailFactory:
    """Picklable queue factory producing drop-tail gateways.

    A class rather than a closure so a built :class:`Network` (which keeps
    its ``default_queue`` factory) stays picklable for
    :mod:`repro.checkpoint` snapshots.
    """

    capacity: int = 20

    def __call__(self, name: str) -> DropTailQueue:
        return DropTailQueue(self.capacity)


def droptail_factory(capacity: int = 20) -> QueueFactory:
    """Queue factory producing drop-tail gateways of ``capacity`` packets."""
    return DropTailFactory(capacity)


@dataclass
class REDFactory:
    """Picklable queue factory producing RED gateways seeded from ``sim.rng``.

    ``byte_mode`` switches the produced gateways to byte-based averaging
    (thresholds here stay in *packets* and are scaled to bytes by
    ``mean_packet_size`` at construction, so one parameterization serves
    both modes); ``adaptive`` produces :class:`AdaptiveREDQueue`.
    """

    sim: Simulator
    capacity: int = 20
    min_th: float = 5.0
    max_th: float = 15.0
    w_q: float = 0.002
    max_p: float = 0.1
    mark_ecn: bool = False
    byte_mode: bool = False
    adaptive: bool = False
    mean_packet_size: int = DEFAULT_PACKET_SIZE

    def __call__(self, name: str) -> REDQueue:
        min_th, max_th = self.min_th, self.max_th
        if self.byte_mode:
            min_th *= self.mean_packet_size
            max_th *= self.mean_packet_size
        cls = AdaptiveREDQueue if self.adaptive else REDQueue
        return cls(
            capacity=self.capacity,
            min_th=min_th,
            max_th=max_th,
            w_q=self.w_q,
            max_p=self.max_p,
            rng=self.sim.rng.stream(f"red.{name}"),
            mark_ecn=self.mark_ecn,
            byte_mode=self.byte_mode,
            mean_packet_size=self.mean_packet_size,
        )


def red_factory(
    sim: Simulator,
    capacity: int = 20,
    min_th: float = 5.0,
    max_th: float = 15.0,
    w_q: float = 0.002,
    max_p: float = 0.1,
    mark_ecn: bool = False,
    byte_mode: bool = False,
    adaptive: bool = False,
    mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> QueueFactory:
    """Queue factory producing RED gateways seeded from the simulator RNG."""
    return REDFactory(sim, capacity, min_th, max_th, w_q, max_p, mark_ecn,
                      byte_mode, adaptive, mean_packet_size)


@dataclass
class CoDelFactory:
    """Picklable queue factory producing CoDel gateways (no RNG needed)."""

    capacity: int = 20
    target: float = 0.005
    interval: float = 0.1
    mark_ecn: bool = False

    def __call__(self, name: str) -> CoDelQueue:
        return CoDelQueue(
            capacity=self.capacity,
            target=self.target,
            interval=self.interval,
            mark_ecn=self.mark_ecn,
        )


def codel_factory(
    capacity: int = 20,
    target: float = 0.005,
    interval: float = 0.1,
    mark_ecn: bool = False,
) -> QueueFactory:
    """Queue factory producing CoDel gateways (sojourn-controlled)."""
    return CoDelFactory(capacity, target, interval, mark_ecn)


@dataclass
class PIEFactory:
    """Picklable queue factory producing PIE gateways seeded from ``sim.rng``."""

    sim: Simulator
    capacity: int = 20
    target: float = 0.015
    t_update: float = 0.015
    mark_ecn: bool = False

    def __call__(self, name: str) -> PIEQueue:
        return PIEQueue(
            capacity=self.capacity,
            target=self.target,
            t_update=self.t_update,
            rng=self.sim.rng.stream(f"pie.{name}"),
            mark_ecn=self.mark_ecn,
        )


def pie_factory(
    sim: Simulator,
    capacity: int = 20,
    target: float = 0.015,
    t_update: float = 0.015,
    mark_ecn: bool = False,
) -> QueueFactory:
    """Queue factory producing PIE gateways seeded from the simulator RNG."""
    return PIEFactory(sim, capacity, target, t_update, mark_ecn)


#: Every queue discipline selectable by name (scenario specs, CLI flags).
#: Names are the public contract — ``ScenarioSpec.gateway`` validates
#: against this tuple and :func:`discipline_factory` dispatches on it.
GATEWAY_DISCIPLINES: Tuple[str, ...] = (
    "droptail", "red", "red-byte", "red-adaptive", "codel", "pie",
)


def discipline_factory(
    discipline: str,
    sim: Simulator,
    capacity: int = 20,
    mark_ecn: bool = False,
    mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> QueueFactory:
    """Build the queue factory for a discipline name from the registry.

    RED variants inherit the repo-wide buffer parameterization (thresholds
    at 25% / 75% of the physical buffer — the scaling scenario topologies
    have always used); CoDel and PIE use their RFC default targets.  ECN
    (``mark_ecn``) applies to every discipline except drop-tail, which has
    no early-notification mechanism to piggyback a mark on.
    """
    if discipline not in GATEWAY_DISCIPLINES:
        raise TopologyError(
            f"unknown queue discipline {discipline!r}; "
            f"expected one of {GATEWAY_DISCIPLINES}"
        )
    if discipline == "droptail":
        return droptail_factory(capacity)
    if discipline == "codel":
        return codel_factory(capacity, mark_ecn=mark_ecn)
    if discipline == "pie":
        return pie_factory(sim, capacity, mark_ecn=mark_ecn)
    min_th = max(1.0, 0.25 * capacity)
    return red_factory(
        sim,
        capacity,
        min_th=min_th,
        max_th=max(min_th + 1.0, 0.75 * capacity),
        mark_ecn=mark_ecn,
        byte_mode=discipline == "red-byte",
        adaptive=discipline == "red-adaptive",
        mean_packet_size=mean_packet_size,
    )


@dataclass
class GroupState:
    """Live membership of one multicast group (source + ordered members)."""

    source: str
    members: List[str] = field(default_factory=list)


class Network:
    """Container wiring nodes and links onto one simulator."""

    def __init__(
        self,
        sim: Simulator,
        default_queue: Optional[QueueFactory] = None,
        mean_packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        #: directed ("a", "b") -> Link
        self.links: Dict[Tuple[str, str], Link] = {}
        self.default_queue: QueueFactory = default_queue or droptail_factory()
        #: Mean packet size links are provisioned for (RED idle aging and
        #: byte-mode scaling); mixed-size scenarios set their configured
        #: mean here once instead of per add_link call.
        self.mean_packet_size = mean_packet_size
        self.graph = nx.Graph()
        #: group address -> :class:`GroupState`; maintained by
        #: :meth:`join_group` / :meth:`add_member` / :meth:`leave_group`
        self.groups: Dict[str, GroupState] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str) -> Node:
        """Create (or fetch) the node named ``node_id``."""
        node = self.nodes.get(node_id)
        if node is None:
            node = Node(node_id)
            self.nodes[node_id] = node
            self.graph.add_node(node_id)
        return node

    def node(self, node_id: str) -> Node:
        """Fetch an existing node, raising for unknown ids."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay_s: float,
        queue_factory: Optional[QueueFactory] = None,
        bidirectional: bool = True,
        mean_packet_size: Optional[int] = None,
    ) -> Tuple[Link, Optional[Link]]:
        """Connect ``a`` and ``b``; returns the (a->b, b->a) links."""
        if (a, b) in self.links:
            raise TopologyError(f"duplicate link {a}->{b}")
        make_queue = queue_factory or self.default_queue
        pkt_size = mean_packet_size or self.mean_packet_size
        node_a, node_b = self.add_node(a), self.add_node(b)
        forward = Link(
            self.sim, f"{a}->{b}", node_a, node_b, bandwidth_bps, delay_s,
            make_queue(f"{a}->{b}"), mean_packet_size=pkt_size,
        )
        self.links[(a, b)] = forward
        reverse: Optional[Link] = None
        if bidirectional:
            reverse = Link(
                self.sim, f"{b}->{a}", node_b, node_a, bandwidth_bps, delay_s,
                make_queue(f"{b}->{a}"), mean_packet_size=pkt_size,
            )
            self.links[(b, a)] = reverse
        self.graph.add_edge(a, b, delay=delay_s, bandwidth=bandwidth_bps)
        return forward, reverse

    def link(self, a: str, b: str) -> Link:
        """The directed link a->b, raising for unknown pairs."""
        try:
            return self.links[(a, b)]
        except KeyError:
            raise TopologyError(f"no link {a}->{b}") from None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Compute delay-weighted shortest paths; install static next hops."""
        paths = dict(nx.all_pairs_dijkstra_path(self.graph, weight="delay"))
        for src, by_dst in paths.items():
            node = self.nodes[src]
            for dst, path in by_dst.items():
                if dst == src or len(path) < 2:
                    continue
                node.add_route(dst, self.links[(path[0], path[1])])

    def join_group(self, group: str, source: str, members: Iterable[str]) -> List[str]:
        """Build the multicast tree for ``group`` rooted at ``source``.

        Installs forwarding entries along delay-weighted shortest paths and
        registers each member's local membership.  Returns the member list.

        Idempotent: calling again for the same group *replaces* the tree —
        stale forwarding entries and memberships from the previous call are
        torn down first, so a double join never stacks duplicate branches
        (and never double-delivers), and a re-join with a smaller member
        set prunes the branches the departed members needed.
        """
        members = list(dict.fromkeys(members))  # dedupe, keep order
        state = self.groups.get(group)
        if state is not None:
            if state.source == source and state.members == members:
                return list(members)  # exact repeat: nothing to do
            self._teardown_group(group)
        self.groups[group] = GroupState(source, list(members))
        self._install_group(group)
        return members

    def _teardown_group(self, group: str) -> None:
        """Remove every forwarding entry and membership of ``group``."""
        for node in self.nodes.values():
            node.clear_mcast_routes(group)
            node.leave(group)

    def _install_group(self, group: str) -> None:
        """(Re)install the shortest-path tree for the group's current state."""
        state = self.groups[group]
        if not state.members:
            return  # a group everyone has left forwards nothing
        children = shortest_path_tree(
            self.graph, state.source, state.members, weight="delay"
        )
        for parent, kids in children.items():
            parent_node = self.node(parent)
            for child in kids:
                parent_node.add_mcast_route(group, self.links[(parent, child)])
        for member in state.members:
            self.node(member).join(group)

    def _rebuild_group(self, group: str) -> None:
        self._teardown_group(group)
        self._install_group(group)

    def add_member(self, group: str, member: str) -> None:
        """Graft ``member`` onto an existing group's tree (late join).

        The whole tree is recomputed from the new member set — matching a
        dense-mode protocol reconverging — so forwarding state after a
        join is identical to what :meth:`join_group` would have installed
        for that member set.  No-op if already a member.
        """
        state = self._group_state(group)
        if member in state.members:
            return
        self.node(member)  # raise early for unknown nodes
        state.members.append(member)
        self._rebuild_group(group)

    def leave_group(self, group: str, member: str) -> None:
        """Prune ``member`` from a group's tree (leave / receiver churn).

        Branches that only existed to reach the departed member are torn
        down; shared branches survive.  Packets already queued on a pruned
        branch still drain and are sunk downstream.  No-op for non-members.
        """
        state = self._group_state(group)
        if member not in state.members:
            return
        state.members.remove(member)
        self._rebuild_group(group)

    def group_members(self, group: str) -> List[str]:
        """Current member list of ``group`` (copy, in join order)."""
        return list(self._group_state(group).members)

    def _group_state(self, group: str) -> GroupState:
        try:
            return self.groups[group]
        except KeyError:
            raise TopologyError(f"unknown multicast group {group!r}") from None

    # ------------------------------------------------------------------
    def path_delay(self, a: str, b: str) -> float:
        """One-way propagation delay along the routed path a->b."""
        return nx.shortest_path_length(self.graph, a, b, weight="delay")

    def path(self, a: str, b: str) -> List[str]:
        """Node sequence of the routed path a->b."""
        return nx.shortest_path(self.graph, a, b, weight="delay")

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, links={len(self.links)})"
