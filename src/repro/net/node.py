"""Routers/hosts: unicast forwarding, multicast replication, agent delivery.

A :class:`Node` is simultaneously a router (it owns routing tables and
forwards transit packets) and a host (transport agents *bind* flow-ids on
it and receive packets addressed to it).  This mirrors NS2, where every
node can both forward and terminate traffic — needed because the paper's
figure-10 experiment makes interior gateways G31..G39 multicast receivers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, TYPE_CHECKING

from ..errors import RoutingError
from .addressing import GROUP_PREFIX
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .link import Link

Handler = Callable[[Packet], None]

#: Observer of packets that end their life at this node; ``outcome`` is
#: "delivered" (handed to a bound agent), "sunk" (no agent / no multicast
#: branch: silently discarded) or "replicated" (original consumed after
#: multicast fan-out made per-branch copies).
ConsumeHook = Callable[[Packet, str], None]


class Node:
    """A network node with static unicast routes and multicast fan-out."""

    def __init__(self, node_id: str) -> None:
        self.id = node_id
        #: destination node-id -> outgoing link
        self.routes: Dict[str, "Link"] = {}
        #: group address -> outgoing links toward downstream members
        self.mcast_routes: Dict[str, List["Link"]] = {}
        #: group address -> True if an agent on this node joined the group
        self.memberships: Dict[str, bool] = {}
        #: Per-group fan-out cache: group -> (deliver_locally, branches).
        #: ``branches`` is an immutable tuple snapshot of ``mcast_routes``.
        #: Built lazily on the first packet of a group and invalidated by
        #: every tree-maintenance call (join/leave/add/clear), so the
        #: per-packet multicast path is a single dict hit instead of two
        #: lookups plus list indirection.  :class:`repro.net.network.Network`
        #: rebuilds trees exclusively through those calls, which keeps this
        #: cache coherent across churn.
        self._fanout: Dict[str, Tuple[bool, Tuple["Link", ...]]] = {}
        #: flow-id -> transport agent handler
        self._agents: Dict[str, Handler] = {}
        self._consume_hooks: List[ConsumeHook] = []
        self.packets_received = 0
        self.packets_forwarded = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, flow: str, handler: Handler) -> None:
        """Register a transport agent to receive packets of ``flow``."""
        if flow in self._agents:
            raise RoutingError(f"flow {flow!r} already bound on node {self.id}")
        self._agents[flow] = handler

    def unbind(self, flow: str) -> None:
        """Remove the agent bound to ``flow`` (no-op if absent)."""
        self._agents.pop(flow, None)

    def add_route(self, dst: str, link: "Link") -> None:
        """Install/replace the unicast next-hop for ``dst``."""
        self.routes[dst] = link

    def add_mcast_route(self, group: str, link: "Link") -> None:
        """Add a downstream branch for ``group`` (idempotent per link)."""
        branches = self.mcast_routes.setdefault(group, [])
        if link not in branches:
            branches.append(link)
        self._fanout.pop(group, None)

    def join(self, group: str) -> None:
        """Mark this node as a local member of ``group``."""
        self.memberships[group] = True
        self._fanout.pop(group, None)

    def leave(self, group: str) -> None:
        """Drop local membership of ``group`` (no-op if not a member)."""
        self.memberships.pop(group, None)
        self._fanout.pop(group, None)

    def clear_mcast_routes(self, group: str) -> None:
        """Remove every downstream branch installed for ``group``.

        Used by :meth:`repro.net.network.Network.leave_group` style tree
        maintenance: the whole group tree is torn down and re-installed
        from the surviving member set.
        """
        self.mcast_routes.pop(group, None)
        self._fanout.pop(group, None)

    def on_consume(self, hook: ConsumeHook) -> None:
        """Register ``hook(packet, outcome)`` for packets that die here."""
        self._consume_hooks.append(hook)

    def _notify_consume(self, packet: Packet, outcome: str) -> None:
        for hook in self._consume_hooks:
            hook(packet, outcome)

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link (or sent locally)."""
        self.packets_received += 1
        packet.hops += 1
        dst = packet.dst
        # Inlined is_multicast(dst): one startswith instead of a function
        # call — this runs once per packet per hop.
        if dst.startswith(GROUP_PREFIX):
            self._receive_multicast(packet)
        elif dst == self.id:
            self._deliver(packet)
        else:
            self._forward_unicast(packet)

    def _receive_multicast(self, packet: Packet) -> None:
        group = packet.dst
        fanout = self._fanout.get(group)
        if fanout is None:
            fanout = (
                self.memberships.get(group, False),
                tuple(self.mcast_routes.get(group, ())),
            )
            self._fanout[group] = fanout
        delivered_locally, branches = fanout
        if delivered_locally:
            self._deliver(packet)
        if branches:
            self.packets_forwarded += len(branches)
            for link in branches:
                link.send(packet.copy())
        if not delivered_locally and self._consume_hooks:
            # The original is consumed here: either replaced by per-branch
            # copies, or (no members, no branches) silently discarded.
            self._notify_consume(packet, "replicated" if branches else "sunk")

    def _forward_unicast(self, packet: Packet) -> None:
        link = self.routes.get(packet.dst)
        if link is None:
            raise RoutingError(f"node {self.id}: no route to {packet.dst!r}")
        self.packets_forwarded += 1
        link.send(packet)

    def _deliver(self, packet: Packet) -> None:
        handler = self._agents.get(packet.flow)
        if handler is None:
            # Transit flows with no agent here are silently sunk, matching
            # NS2 behaviour for traffic addressed to an unbound port.
            if self._consume_hooks:
                self._notify_consume(packet, "sunk")
            return
        if self._consume_hooks:
            self._notify_consume(packet, "delivered")
        handler(packet)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Originate a packet from this node (route lookup + transmit)."""
        self.receive(packet)

    def __repr__(self) -> str:
        return f"Node({self.id}, routes={len(self.routes)}, flows={len(self._agents)})"
