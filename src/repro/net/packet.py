"""The packet — the unit every other component pushes around.

Packets are deliberately lightweight (``__slots__``; no dictionaries) since
a single full-scale experiment forwards tens of millions of them.  One class
covers data and acknowledgment packets; ACK-only fields stay ``None`` on
data packets and vice versa.

Timestamps: ``sent_time`` is stamped by the sending agent and echoed back by
receivers in ``echo_ts`` so senders can measure RTT without keeping a
per-packet table (the same trick as TCP's timestamp option).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Tuple

DATA = "DATA"
ACK = "ACK"

_uid_counter = itertools.count(1)


def uid_counter_state() -> int:
    """The next uid that will be allocated (without consuming it).

    Process-global hidden state: packet uids come from a module-level
    counter, not from any :class:`~repro.sim.engine.Simulator`.  Snapshots
    (:mod:`repro.checkpoint`) must capture and restore it — a restored run
    in a fresh process would otherwise re-issue uids still held by pickled
    in-flight packets, tripping the conservation auditor's unique-uid
    invariant and diverging from the straight-through run.
    """
    return _uid_counter.__reduce__()[1][0]  # non-consuming peek


def restore_uid_counter(next_uid: int) -> None:
    """Reset the process-global uid counter so ``next_uid`` is issued next."""
    global _uid_counter
    if next_uid < 1:
        raise ValueError(f"next_uid must be >= 1, got {next_uid}")
    _uid_counter = itertools.count(next_uid)

#: Process-wide observer of packet construction (``repro.audit`` installs
#: one to enforce conservation).  A module global rather than per-instance
#: state because packets are created in many places (senders, receivers,
#: multicast replication) and the hot path must stay a single ``None``
#: check when auditing is off.  Not thread-safe; one auditor at a time.
_creation_hook: Optional[Callable[["Packet"], None]] = None


def install_creation_hook(hook: Callable[["Packet"], None]) -> None:
    """Observe every subsequently constructed packet (including copies)."""
    global _creation_hook
    if _creation_hook is not None:
        raise RuntimeError("a packet creation hook is already installed")
    _creation_hook = hook


def uninstall_creation_hook(hook: Callable[["Packet"], None]) -> None:
    """Remove a hook installed by :func:`install_creation_hook` (no-op if
    another hook has since replaced it).  Equality, not identity: bound
    methods are recreated on each attribute access, so ``obj.method``
    passed here never *is* the object passed to install."""
    global _creation_hook
    if _creation_hook == hook:
        _creation_hook = None

#: Type of a SACK block: a half-open sequence range [start, end).
SackBlock = Tuple[int, int]


class Packet:
    """A simulated network packet.

    Parameters mirror the on-the-wire fields a real implementation would
    carry; see module docstring for the timestamp convention.
    """

    __slots__ = (
        "uid",
        "kind",
        "flow",
        "src",
        "dst",
        "seq",
        "size",
        "sent_time",
        "echo_ts",
        "ack",
        "sack",
        "receiver",
        "is_retransmit",
        "hops",
        "ect",
        "ce",
        "ece",
    )

    def __init__(
        self,
        kind: str,
        flow: str,
        src: str,
        dst: str,
        seq: int,
        size: int,
        sent_time: float = 0.0,
        echo_ts: float = 0.0,
        ack: Optional[int] = None,
        sack: Optional[Tuple[SackBlock, ...]] = None,
        receiver: Optional[str] = None,
        is_retransmit: bool = False,
    ) -> None:
        self.uid = next(_uid_counter)
        self.kind = kind
        self.flow = flow
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.sent_time = sent_time
        self.echo_ts = echo_ts
        self.ack = ack
        self.sack = sack
        self.receiver = receiver
        self.is_retransmit = is_retransmit
        self.hops = 0
        #: ECN-capable transport (set by senders that understand marking)
        self.ect = False
        #: congestion experienced (set by a marking gateway en route)
        self.ce = False
        #: echo of CE back to the sender (set on ACKs by receivers)
        self.ece = False
        if _creation_hook is not None:
            _creation_hook(self)

    def copy(self) -> "Packet":
        """A fresh packet (new uid) with identical header fields.

        Used by multicast replication; each branch copy can then be dropped
        or delayed independently.
        """
        clone = Packet(
            self.kind,
            self.flow,
            self.src,
            self.dst,
            self.seq,
            self.size,
            sent_time=self.sent_time,
            echo_ts=self.echo_ts,
            ack=self.ack,
            sack=self.sack,
            receiver=self.receiver,
            is_retransmit=self.is_retransmit,
        )
        clone.hops = self.hops
        clone.ect = self.ect
        clone.ce = self.ce
        clone.ece = self.ece
        return clone

    def __repr__(self) -> str:
        core = f"{self.kind} {self.flow} {self.src}->{self.dst} seq={self.seq}"
        if self.kind == ACK:
            core += f" ack={self.ack}"
        return f"Packet({core})"
