"""PIE — Proportional Integral controller Enhanced AQM (RFC 8033).

PIE keeps queueing *latency* near a target by maintaining a drop
probability ``p`` that is updated every ``t_update`` (default 15 ms)
from the current queue delay and its trend:

    p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)

Arrivals are then dropped with probability ``p`` (cause ``"early"``,
matching RED's probabilistic-notification cause), with the RFC's safety
guards: no drops while the queue is nearly empty or while both ``p`` and
the delay are small, and exponential decay of ``p`` when the queue sits
idle.  Like RED — and unlike CoDel — all of this happens at *enqueue*
time, so the standard arrival-drop conservation invariants apply.

The update step runs lazily at arrival time (catching up on every
elapsed ``t_update`` boundary), so the gateway needs no timer wiring and
checkpoints carry the whole controller state.  Queue delay is estimated
from occupancy via the link's mean packet service time
(``depth * mean_pkt_time``), the same Little's-law style estimate the
RFC uses in its basic form (§4.3: average dequeue rate).

Like :class:`~repro.net.red.REDQueue`, an injected seeded RNG is
mandatory — the drop coin is part of the same-seed replay contract.
"""

from __future__ import annotations

import random
from typing import Optional

from ..units import ms
from .packet import Packet
from .queue import Gateway


class PIEQueue(Gateway):
    """A PIE gateway: PI-controlled drop probability targeting low delay."""

    discipline = "pie"

    #: RFC 8033 §4.2 base gains (scaled by the auto-tuning table below).
    ALPHA = 0.125
    BETA = 1.25
    #: Exponential decay factor applied to ``p`` per update while idle.
    DECAY = 0.98

    def __init__(
        self,
        capacity: int = 20,
        target: float = ms(15),
        t_update: float = ms(15),
        rng: Optional[random.Random] = None,
        mark_ecn: bool = False,
    ) -> None:
        super().__init__(capacity)
        if target <= 0:
            raise ValueError(f"non-positive delay target: {target}")
        if t_update <= 0:
            raise ValueError(f"non-positive t_update: {t_update}")
        if rng is None:
            # Same contract as REDQueue: a hidden default RNG would escape
            # the simulator's seeded streams and break same-seed replay.
            raise ValueError(
                "PIEQueue requires an injected rng; use "
                "sim.rng.stream('pie.<name>') or net.pie_factory(sim, ...)"
            )
        #: Latency target the controller steers the queue delay toward.
        self.target = target
        #: Controller update period (applied lazily at arrival time).
        self.t_update = t_update
        self.rng = rng
        self.mark_ecn = mark_ecn
        #: Current drop probability, clamped to [0, 1].
        self.p = 0.0
        self._qdelay_old = 0.0
        self._next_update = t_update
        # statistics
        self.early_drops = 0
        self.ecn_marks = 0
        self.updates = 0

    # ------------------------------------------------------------------
    def _qdelay(self) -> float:
        """Estimated queueing delay: occupancy x mean service time."""
        return len(self._queue) * self.mean_pkt_time

    def _scaled_gains(self) -> tuple:
        """RFC 8033 §4.2 auto-tuning: shrink gains while ``p`` is small.

        Small probabilities need proportionally small corrections or the
        controller oscillates; the RFC's table is a staircase of /8
        steps below 1%, /2 below 10%.
        """
        if self.p < 0.000001:
            scale = 1.0 / 2048
        elif self.p < 0.00001:
            scale = 1.0 / 512
        elif self.p < 0.0001:
            scale = 1.0 / 128
        elif self.p < 0.001:
            scale = 1.0 / 32
        elif self.p < 0.01:
            scale = 1.0 / 8
        elif self.p < 0.1:
            scale = 1.0 / 2
        else:
            scale = 1.0
        return self.ALPHA * scale, self.BETA * scale

    def _maybe_update(self, now: float) -> None:
        """Catch up on every ``t_update`` boundary elapsed before ``now``."""
        while self._next_update <= now:
            qdelay = self._qdelay()
            alpha, beta = self._scaled_gains()
            self.p += alpha * (qdelay - self.target) + beta * (
                qdelay - self._qdelay_old
            )
            if qdelay == 0.0 and self._qdelay_old == 0.0:
                # Idle queue: decay toward zero so a long-drained gateway
                # does not greet the next burst with a stale probability.
                self.p *= self.DECAY
            self.p = min(1.0, max(0.0, self.p))
            self._qdelay_old = qdelay
            self._next_update += self.t_update
            self.updates += 1

    def _safe_to_accept(self, qdelay: float) -> bool:
        """RFC 8033 §4.1 burst protection: skip the coin near-empty/small-p."""
        return len(self._queue) <= 1 or (
            self.p < 0.2 and qdelay < self.target / 2.0
        )

    # ------------------------------------------------------------------
    def enqueue(self, now: float, packet: Packet) -> bool:
        self._maybe_update(now)
        if len(self._queue) >= self.capacity:
            self._notify_drop(now, packet, "overflow")
            return False
        if (
            self.p > 0.0
            and not self._safe_to_accept(self._qdelay())
            and self.rng.random() < self.p
        ):
            if self.mark_ecn and packet.ect:
                self.ecn_marks += 1
                packet.ce = True
            else:
                self.early_drops += 1
                self._notify_drop(now, packet, "early")
                return False
        self._accept(now, packet)
        return True
