"""Gateway queue abstraction.

A :class:`Gateway` sits between a router and an outgoing link's
transmitter: arriving packets are offered to :meth:`enqueue` (which may drop
them — that *is* congestion in this simulator) and the link transmitter
pulls them back out with :meth:`dequeue` whenever it goes idle.

Concrete disciplines: :class:`repro.net.droptail.DropTailQueue`,
:class:`repro.net.red.REDQueue` (plus byte-mode / adaptive variants),
:class:`repro.net.codel.CoDelQueue` and :class:`repro.net.pie.PIEQueue`.

Drop-cause taxonomy (the ``reason`` string passed to drop hooks):

========== ==========================================================
cause      meaning
========== ==========================================================
overflow   physical buffer full (every discipline)
forced     RED average at/above ``max_th`` — deterministic drop
early      RED probabilistic early drop (or would-be ECN mark)
random     Bernoulli loss injected by :class:`~repro.net.faults.RandomDropQueue`
sojourn    CoDel eviction at *dequeue* time (queued packet discarded)
========== ==========================================================

``sojourn`` drops count in ``dropped`` like every other loss *and* in
:attr:`Gateway.evicted`: the packet was accepted and enqueued, then
discarded at the head of line, so occupancy conservation reads
``enqueued - dequeued - evicted == depth``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from .packet import Packet

DropHook = Callable[[float, Packet, str], None]
EnqueueHook = Callable[[float, Packet, int], None]
DequeueHook = Callable[[float, Packet], None]


class Gateway:
    """Base FIFO gateway; subclasses decide *whether to accept* a packet."""

    #: Human-readable discipline name, overridden by subclasses.
    discipline = "fifo"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"non-positive queue capacity: {capacity}")
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self.bytes_queued = 0
        # lifetime statistics
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        #: Packets accepted into the queue but discarded at *dequeue* time
        #: (CoDel's drop-at-head law).  Zero for arrival-drop disciplines;
        #: auditors check ``enqueued - dequeued - evicted == depth``.
        self.evicted = 0
        #: Largest queue depth (in packets) ever reached.  Tracked natively
        #: so experiments need no per-enqueue observer hook just to report
        #: peak occupancy — keeping the common no-hook enqueue on its fast
        #: path (hook lists empty, loop skipped entirely).
        self.peak_depth = 0
        self._drop_hooks: List[DropHook] = []
        self._enqueue_hooks: List[EnqueueHook] = []
        self._dequeue_hooks: List[DequeueHook] = []
        #: Mean packet service time on the attached link; set by the link at
        #: attach time.  RED needs it to age the average queue across idle
        #: periods; other disciplines may ignore it.
        self.mean_pkt_time: float = 0.0

    # -- hooks ---------------------------------------------------------
    def on_drop(self, hook: DropHook) -> None:
        """Register ``hook(now, packet, reason)`` to observe drops."""
        self._drop_hooks.append(hook)

    def on_enqueue(self, hook: EnqueueHook) -> None:
        """Register ``hook(now, packet, depth_after)`` to observe arrivals."""
        self._enqueue_hooks.append(hook)

    def on_dequeue(self, hook: DequeueHook) -> None:
        """Register ``hook(now, packet)`` to observe head-of-line removals."""
        self._dequeue_hooks.append(hook)

    def _notify_drop(self, now: float, packet: Packet, reason: str) -> None:
        self.dropped += 1
        hooks = self._drop_hooks
        if hooks:
            for hook in hooks:
                hook(now, packet, reason)

    def _notify_dequeue(self, now: float, packet: Packet) -> None:
        for hook in self._dequeue_hooks:
            hook(now, packet)

    def _accept(self, now: float, packet: Packet) -> None:
        queue = self._queue
        queue.append(packet)
        self.bytes_queued += packet.size
        self.enqueued += 1
        depth = len(queue)
        if depth > self.peak_depth:
            self.peak_depth = depth
        hooks = self._enqueue_hooks
        if hooks:
            for hook in hooks:
                hook(now, packet, depth)

    # -- discipline interface -------------------------------------------
    def enqueue(self, now: float, packet: Packet) -> bool:
        """Offer a packet; return True if accepted, False if dropped."""
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or ``None`` if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes_queued -= packet.size
        self.dequeued += 1
        if self._dequeue_hooks:
            self._notify_dequeue(now, packet)
        return packet

    # -- introspection ---------------------------------------------------
    def contents(self) -> Tuple[Packet, ...]:
        """Snapshot of the queued packets, head first (for auditors)."""
        return tuple(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Current queue length in packets."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(depth={len(self._queue)}/{self.capacity}, "
            f"drops={self.dropped})"
        )
