"""Random Early Detection (RED) gateway — Floyd & Jacobson 1993.

The paper's key property of RED (§1): *all connections sharing the gateway
see the same loss probability*, which makes window-based fairness analysis
tractable (Theorem I).  We implement the full algorithm from the RED paper,
with the parameterization the authors used in NS2:

* ``min_th = 5``, ``max_th = 15`` packets, physical buffer 20 packets,
* queue-average weight ``w_q = 0.002``,
* maximum marking probability ``max_p = 0.1`` (ns-2 default ``linterm = 10``),
* the count-since-last-drop correction that spaces drops roughly uniformly,
* idle-time aging of the average using the link's mean packet time.

Packets are *dropped*, not ECN-marked, by default — the 1998 Internet had
no ECN — with RFC 3168-style marking available as an extension.

Two variants extend the 1993 algorithm for the AQM × heterogeneity study
matrix (ROADMAP item 4):

* **byte mode** (``byte_mode=True``) — the queue average and thresholds
  are measured in *bytes* and the early-notification probability is
  scaled by ``packet_size / mean_packet_size``, so large packets are
  proportionally more likely to be dropped.  De Cnodder et al. (*Effect
  of different packet sizes on RED performance*) show this changes loss
  allocation qualitatively under mixed packet sizes: packet-mode RED
  equalizes per-*packet* loss rates, byte-mode RED per-*byte* rates.
* **adaptive RED** (:class:`AdaptiveREDQueue`) — Floyd, Gummadi &
  Shenker 2001: ``max_p`` is adapted by AIMD every ``adapt_interval``
  seconds to hold the average queue inside a target band centred between
  the thresholds, making loss rates self-tuning across load levels.
"""

from __future__ import annotations

import random
from typing import Optional

from ..units import DEFAULT_PACKET_SIZE
from .packet import Packet
from .queue import Gateway


class REDQueue(Gateway):
    """A RED gateway with drop-based congestion notification."""

    discipline = "red"

    def __init__(
        self,
        capacity: int = 20,
        min_th: float = 5.0,
        max_th: float = 15.0,
        w_q: float = 0.002,
        max_p: float = 0.1,
        rng: Optional[random.Random] = None,
        mark_ecn: bool = False,
        byte_mode: bool = False,
        mean_packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        super().__init__(capacity)
        if not 0 < min_th < max_th:
            raise ValueError(f"need 0 < min_th < max_th, got {min_th}, {max_th}")
        if not 0 < w_q <= 1:
            raise ValueError(f"w_q out of (0, 1]: {w_q}")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p out of (0, 1]: {max_p}")
        if mean_packet_size <= 0:
            raise ValueError(f"non-positive mean_packet_size: {mean_packet_size}")
        if rng is None:
            # A silent random.Random(0) default would bypass the simulator's
            # seeded streams: every directly constructed RED gateway would
            # share one drop sequence, and same-seed replay would diverge.
            raise ValueError(
                "REDQueue requires an injected rng; use "
                "sim.rng.stream('red.<name>') or net.red_factory(sim, ...)"
            )
        self.min_th = min_th
        self.max_th = max_th
        self.w_q = w_q
        self.max_p = max_p
        #: Hoisted ``max_th - min_th`` for the per-packet drop-probability
        #: computation.  The same subtraction the inline expression would
        #: perform, done once — bitwise-identical p_b, one fewer float op
        #: per marked-region arrival.
        self._th_span = max_th - min_th
        self.rng = rng
        #: When True, early notifications MARK ECN-capable packets instead
        #: of dropping them (RFC 3168 style; forced and overflow regions
        #: still drop).  An extension beyond the paper's 1998 setting.
        self.mark_ecn = mark_ecn
        #: Byte-mode RED: ``avg`` and the thresholds are in bytes, and the
        #: early-notification probability scales with packet size.
        self.byte_mode = byte_mode
        #: Mean packet size the byte-mode probability scaling normalizes by.
        self.mean_packet_size = mean_packet_size
        #: EWMA of the queue length, in packets (bytes when ``byte_mode``).
        self.avg = 0.0
        #: Packets since the last early drop (the uniformization counter).
        self.count = -1
        self._idle_since: Optional[float] = 0.0
        # statistics split by cause
        self.early_drops = 0
        self.forced_drops = 0
        self.overflow_drops = 0
        self.ecn_marks = 0

    # ------------------------------------------------------------------
    def _update_average(self, now: float) -> None:
        """Refresh ``avg`` at packet arrival, aging it across idle periods."""
        depth = self.bytes_queued if self.byte_mode else len(self._queue)
        if depth:
            self.avg += self.w_q * (depth - self.avg)
            return
        # Queue empty: pretend m small packets arrived to an empty queue,
        # where m is how many packets could have been serviced while idle.
        # (In byte mode the decay exponent is unchanged — the average is in
        # bytes, but it still decays per *packet* service opportunity.)
        if self._idle_since is not None and self.mean_pkt_time > 0:
            m = (now - self._idle_since) / self.mean_pkt_time
            self.avg *= (1.0 - self.w_q) ** m
            # Advance the idle mark: if this arrival is dropped and the
            # queue stays empty, the next arrival must age from *here*,
            # not decay the already-decayed average over the same gap.
            self._idle_since = now
        else:
            self.avg += self.w_q * (0.0 - self.avg)

    def _drop_probability(self, size: int) -> float:
        """The geometric inter-drop correction p_a from the RED paper.

        ``size`` only matters in byte mode, where the base probability is
        scaled by ``size / mean_packet_size`` (ns-2's ``bytes_`` scaling)
        *before* the count correction, so big packets are proportionally
        likelier to carry the congestion notification.
        """
        p_b = self.max_p * (self.avg - self.min_th) / self._th_span
        p_b = min(p_b, self.max_p)
        if self.byte_mode:
            p_b = min(1.0, p_b * size / self.mean_packet_size)
        if self.count * p_b >= 1.0:
            return 1.0
        return p_b / (1.0 - self.count * p_b)

    # ------------------------------------------------------------------
    def enqueue(self, now: float, packet: Packet) -> bool:
        self._update_average(now)
        # _idle_since is cleared on *accept* only (see below).  Clearing it
        # here, before the accept/drop decision, permanently cancelled idle
        # aging whenever an arrival was dropped at an empty queue (inflated
        # avg after a long drain): the stale average never decayed and the
        # idle gateway kept force-dropping forever.
        if len(self._queue) >= self.capacity:
            # Physical overflow — can happen in bursts even under RED.
            self.overflow_drops += 1
            self._notify_drop(now, packet, "overflow")
            return False
        if self.avg >= self.max_th:
            self.count = 0
            self.forced_drops += 1
            self._notify_drop(now, packet, "forced")
            return False
        if self.avg > self.min_th:
            self.count += 1
            if self.rng.random() < self._drop_probability(packet.size):
                self.count = 0
                if self.mark_ecn and packet.ect:
                    self.ecn_marks += 1
                    packet.ce = True
                else:
                    self.early_drops += 1
                    self._notify_drop(now, packet, "early")
                    return False
        else:
            self.count = -1
        self._idle_since = None
        self._accept(now, packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = super().dequeue(now)
        if packet is not None and not self._queue:
            self._idle_since = now
        return packet


class AdaptiveREDQueue(REDQueue):
    """Adaptive RED (Floyd, Gummadi & Shenker 2001): self-tuning ``max_p``.

    Every ``adapt_interval`` seconds (applied lazily at arrival time, so
    the gateway needs no timer wiring) ``max_p`` is nudged by AIMD to keep
    the average queue inside the target band
    ``[min_th + 0.4*span, min_th + 0.6*span]``:

    * ``avg`` above the band → ``max_p += alpha`` (additive increase,
      ``alpha = min(0.01, max_p / 4)``), capped at ``top``;
    * ``avg`` below the band → ``max_p *= beta`` (multiplicative decrease,
      ``beta = 0.9``), floored at ``bottom``.

    Everything else — averaging, count correction, ECN, byte mode — is
    inherited unchanged from :class:`REDQueue`.
    """

    discipline = "red-adaptive"

    #: AIMD constants and ``max_p`` clamps from the Adaptive RED paper.
    BETA = 0.9
    MAX_P_TOP = 0.5
    MAX_P_BOTTOM = 0.01

    def __init__(self, *args, adapt_interval: float = 0.5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if adapt_interval <= 0:
            raise ValueError(f"non-positive adapt_interval: {adapt_interval}")
        self.adapt_interval = adapt_interval
        self._target_lo = self.min_th + 0.4 * self._th_span
        self._target_hi = self.min_th + 0.6 * self._th_span
        self._next_adapt = adapt_interval
        self.adaptations = 0

    def _adapt(self, now: float) -> None:
        """Catch up on every adaptation interval that has elapsed."""
        while self._next_adapt <= now:
            if self.avg > self._target_hi and self.max_p < self.MAX_P_TOP:
                self.max_p = min(self.MAX_P_TOP,
                                 self.max_p + min(0.01, self.max_p / 4.0))
                self.adaptations += 1
            elif self.avg < self._target_lo and self.max_p > self.MAX_P_BOTTOM:
                self.max_p = max(self.MAX_P_BOTTOM, self.max_p * self.BETA)
                self.adaptations += 1
            self._next_adapt += self.adapt_interval

    def enqueue(self, now: float, packet: Packet) -> bool:
        self._adapt(now)
        return super().enqueue(now, packet)
