"""Random Early Detection (RED) gateway — Floyd & Jacobson 1993.

The paper's key property of RED (§1): *all connections sharing the gateway
see the same loss probability*, which makes window-based fairness analysis
tractable (Theorem I).  We implement the full algorithm from the RED paper,
with the parameterization the authors used in NS2:

* ``min_th = 5``, ``max_th = 15`` packets, physical buffer 20 packets,
* queue-average weight ``w_q = 0.002``,
* maximum marking probability ``max_p = 0.1`` (ns-2 default ``linterm = 10``),
* the count-since-last-drop correction that spaces drops roughly uniformly,
* idle-time aging of the average using the link's mean packet time.

Packets are *dropped*, not ECN-marked — the 1998 Internet had no ECN.
"""

from __future__ import annotations

import random
from typing import Optional

from .packet import Packet
from .queue import Gateway


class REDQueue(Gateway):
    """A RED gateway with drop-based congestion notification."""

    discipline = "red"

    def __init__(
        self,
        capacity: int = 20,
        min_th: float = 5.0,
        max_th: float = 15.0,
        w_q: float = 0.002,
        max_p: float = 0.1,
        rng: Optional[random.Random] = None,
        mark_ecn: bool = False,
    ) -> None:
        super().__init__(capacity)
        if not 0 < min_th < max_th:
            raise ValueError(f"need 0 < min_th < max_th, got {min_th}, {max_th}")
        if not 0 < w_q <= 1:
            raise ValueError(f"w_q out of (0, 1]: {w_q}")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p out of (0, 1]: {max_p}")
        if rng is None:
            # A silent random.Random(0) default would bypass the simulator's
            # seeded streams: every directly constructed RED gateway would
            # share one drop sequence, and same-seed replay would diverge.
            raise ValueError(
                "REDQueue requires an injected rng; use "
                "sim.rng.stream('red.<name>') or net.red_factory(sim, ...)"
            )
        self.min_th = min_th
        self.max_th = max_th
        self.w_q = w_q
        self.max_p = max_p
        #: Hoisted ``max_th - min_th`` for the per-packet drop-probability
        #: computation.  The same subtraction the inline expression would
        #: perform, done once — bitwise-identical p_b, one fewer float op
        #: per marked-region arrival.
        self._th_span = max_th - min_th
        self.rng = rng
        #: When True, early notifications MARK ECN-capable packets instead
        #: of dropping them (RFC 3168 style; forced and overflow regions
        #: still drop).  An extension beyond the paper's 1998 setting.
        self.mark_ecn = mark_ecn
        #: EWMA of the queue length, in packets.
        self.avg = 0.0
        #: Packets since the last early drop (the uniformization counter).
        self.count = -1
        self._idle_since: Optional[float] = 0.0
        # statistics split by cause
        self.early_drops = 0
        self.forced_drops = 0
        self.overflow_drops = 0
        self.ecn_marks = 0

    # ------------------------------------------------------------------
    def _update_average(self, now: float) -> None:
        """Refresh ``avg`` at packet arrival, aging it across idle periods."""
        depth = len(self._queue)
        if depth:
            self.avg += self.w_q * (depth - self.avg)
            return
        # Queue empty: pretend m small packets arrived to an empty queue,
        # where m is how many packets could have been serviced while idle.
        if self._idle_since is not None and self.mean_pkt_time > 0:
            m = (now - self._idle_since) / self.mean_pkt_time
            self.avg *= (1.0 - self.w_q) ** m
        else:
            self.avg += self.w_q * (0.0 - self.avg)

    def _drop_probability(self) -> float:
        """The geometric inter-drop correction p_a from the RED paper."""
        p_b = self.max_p * (self.avg - self.min_th) / self._th_span
        p_b = min(p_b, self.max_p)
        if self.count * p_b >= 1.0:
            return 1.0
        return p_b / (1.0 - self.count * p_b)

    # ------------------------------------------------------------------
    def enqueue(self, now: float, packet: Packet) -> bool:
        self._update_average(now)
        self._idle_since = None
        if len(self._queue) >= self.capacity:
            # Physical overflow — can happen in bursts even under RED.
            self.overflow_drops += 1
            self._notify_drop(now, packet, "overflow")
            return False
        if self.avg >= self.max_th:
            self.count = 0
            self.forced_drops += 1
            self._notify_drop(now, packet, "forced")
            return False
        if self.avg > self.min_th:
            self.count += 1
            if self.rng.random() < self._drop_probability():
                self.count = 0
                if self.mark_ecn and packet.ect:
                    self.ecn_marks += 1
                    packet.ce = True
                else:
                    self.early_drops += 1
                    self._notify_drop(now, packet, "early")
                    return False
        else:
            self.count = -1
        self._accept(now, packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = super().dequeue(now)
        if packet is not None and not self._queue:
            self._idle_since = now
        return packet
