"""The Random Listening Algorithm — the paper's contribution (DESIGN.md S7-S8)."""

from .config import RLAConfig
from .congestion import TroubleTracker
from .generalized import GeneralizedRLASession, rtt_scaling
from .policy import LaggardDropPolicy
from .receiver import RLAReceiver
from .reference import NaiveRLASender
from .sender import RLASender
from .session import RLASession
from .state import ReceiverState

__all__ = [
    "LaggardDropPolicy",
    "NaiveRLASender",
    "RLAConfig",
    "RLAReceiver",
    "RLASender",
    "RLASession",
    "GeneralizedRLASession",
    "ReceiverState",
    "TroubleTracker",
    "rtt_scaling",
]
