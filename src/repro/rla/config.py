"""Configuration of the Random Listening Algorithm sender.

Defaults implement §3.3 of the paper with the recommended constants:
``eta = 20`` for the troubled-receiver threshold, losses grouped within
``2 * srtt_i``, forced-cut after ``2 * awnd * srtt_i`` without a cut, and
``rexmit_thresh = 0`` (all retransmissions multicast) as in the §5 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..units import ACK_SIZE, DEFAULT_PACKET_SIZE


@dataclass
class RLAConfig:
    """Tunables of an RLA multicast session.

    Attributes
    ----------
    eta:
        Trouble threshold constant: receiver ``i`` is *troubled* while its
        mean congestion-signal interval is below ``eta`` times the smallest
        mean interval among all receivers (§3.3 rule 6; §4.2 requires
        ``1/eta`` above ~0.03 for the upper bound — 20 is recommended).
    interval_gain:
        Gain of the exponentially-weighted moving average of congestion
        signal intervals.
    awnd_gain:
        Gain of the moving average of the window size (``awnd``), updated
        once per fully-acknowledged packet.
    congestion_group_rtts:
        Losses within this many smoothed RTTs of the congestion-period
        start are folded into one congestion signal (the paper uses 2).
    forced_cut_awnd_rtts:
        Force a cut if the last cut is older than this factor times
        ``awnd * srtt_i`` (the paper uses 2, footnote 7).
    rexmit_thresh:
        Retransmissions requested by more than this many receivers are
        multicast; otherwise unicast (§3.3; the §5 runs use 0).
    rtx_wait_rtts:
        How long (in units of the largest receiver srtt) the sender waits
        to hear from all receivers before deciding how to retransmit.
    rcv_buffer:
        Receiver buffer in packets; the send window never runs more than
        this far past ``min_last_ack`` (§3.3 rule 5).
    rtt_scaled_pthresh:
        Enables the generalized RLA of §5.3:
        ``pthresh = (srtt_i / srtt_max)^2 / num_trouble_rcvr``.
    forced_cut_enabled:
        Ablation switch (A2): turn off the forced-cut protection.
    phase_jitter:
        Uniform per-packet processing delay in ``[0, phase_jitter]`` for
        drop-tail phase-effect elimination (§3.1); ``None`` disables.
    ack_jitter:
        Uniform random delay in ``[0, ack_jitter]`` before each receiver
        ACK.  On a symmetric tree every multicast delivery is simultaneous
        at all receivers, so their ACKs implode on the reverse bottleneck
        queue in one deterministic burst — the same receivers' ACKs are
        tail-dropped every round and the session live-locks.  Randomizing
        feedback timing (the standard multicast feedback-suppression
        device, and the receiver-side twin of §3.1's random processing
        time) desynchronizes the implosion.
    """

    packet_size: int = DEFAULT_PACKET_SIZE
    ack_size: int = ACK_SIZE
    initial_cwnd: float = 1.0
    initial_ssthresh: float = 64.0
    max_cwnd: float = 1e9
    dupack_threshold: int = 3
    eta: float = 20.0
    interval_gain: float = 0.125
    awnd_gain: float = 0.05
    congestion_group_rtts: float = 2.0
    forced_cut_awnd_rtts: float = 2.0
    rexmit_thresh: int = 0
    rtx_wait_rtts: float = 1.0
    rcv_buffer: int = 256
    rtt_scaled_pthresh: bool = False
    forced_cut_enabled: bool = True
    phase_jitter: Optional[float] = None
    ack_jitter: float = 0.002
    #: ECN extension: send ECN-capable data and treat echoed marks as
    #: congestion signals (grouped and randomized exactly like losses).
    #: Needs gateways with ``mark_ecn=True``; beyond the 1998 paper.
    ecn: bool = False
    min_rto: float = 1.0
    max_rto: float = 64.0

    def validate(self) -> "RLAConfig":
        """Raise :class:`ConfigurationError` on out-of-range parameters."""
        if self.packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {self.packet_size}")
        if self.eta < 1:
            raise ConfigurationError(f"eta must be >= 1: {self.eta}")
        if not 0 < self.interval_gain <= 1:
            raise ConfigurationError(f"interval_gain out of (0, 1]: {self.interval_gain}")
        if not 0 < self.awnd_gain <= 1:
            raise ConfigurationError(f"awnd_gain out of (0, 1]: {self.awnd_gain}")
        if self.congestion_group_rtts <= 0:
            raise ConfigurationError(
                f"congestion_group_rtts must be positive: {self.congestion_group_rtts}"
            )
        if self.rexmit_thresh < 0:
            raise ConfigurationError(f"negative rexmit_thresh: {self.rexmit_thresh}")
        if self.rcv_buffer < 1:
            raise ConfigurationError(f"rcv_buffer must be >= 1: {self.rcv_buffer}")
        if self.phase_jitter is not None and self.phase_jitter < 0:
            raise ConfigurationError(f"negative phase_jitter: {self.phase_jitter}")
        if self.ack_jitter < 0:
            raise ConfigurationError(f"negative ack_jitter: {self.ack_jitter}")
        return self
