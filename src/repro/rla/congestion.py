"""Troubled-receiver accounting (§3.3 rule 6).

A congested receiver counts as *troubled* only if it reports congestion
frequently enough: its mean congestion-signal interval must be below
``eta * min_congestion_interval``, where ``min_congestion_interval`` is the
smallest interval average among all receivers.  Equivalently (since the
congestion probability is inversely proportional to the interval), its
congestion probability exceeds ``p_max / eta`` — the condition §4.2 uses to
keep the Proposition's upper bound valid.

``num_trouble_rcvr`` is re-counted on every signal, so the set adapts when
bottlenecks appear or fade (helped by the silence-stretched intervals in
:meth:`ReceiverState.effective_interval`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .state import ReceiverState


class TroubleTracker:
    """Maintains the dynamic troubled-receiver count for the RLA sender."""

    def __init__(self, eta: float, interval_gain: float) -> None:
        self.eta = eta
        self.interval_gain = interval_gain
        self.num_trouble = 0
        self.min_interval: Optional[float] = None

    def record_signal(self, state: ReceiverState, now: float,
                      peers: Iterable[ReceiverState]) -> None:
        """Process a congestion signal from ``state`` and re-count trouble."""
        state.record_signal(now, self.interval_gain)
        self.recount(now, peers)

    def recount(self, now: float, peers: Iterable[ReceiverState]) -> None:
        """Recompute ``min_congestion_interval`` and the troubled set."""
        intervals: Dict[ReceiverState, float] = {}
        for peer in peers:
            interval = peer.effective_interval(now)
            if interval is not None:
                intervals[peer] = interval
        if not intervals:
            self.min_interval = None
            self.num_trouble = 0
            return
        self.min_interval = min(intervals.values())
        threshold = self.eta * self.min_interval
        count = 0
        for peer, interval in intervals.items():
            peer.troubled = interval <= threshold
            if peer.troubled:
                count += 1
        self.num_trouble = count

    def pthresh(self, scale: float = 1.0) -> float:
        """The window-cut probability for one congestion signal.

        ``scale`` is 1 for the restricted topology and
        ``(srtt_i / srtt_max)^2`` for the generalized RLA (§5.3).
        """
        n = max(self.num_trouble, 1)
        return min(1.0, scale / n)
