"""The generalized RLA for heterogeneous round-trip times (§5.3).

For receivers at different distances the paper scales the listening
probability by ``f(srtt_i / srtt_max)`` with ``f(x) = x^2``, because a
TCP-like window policy yields throughput proportional to ``RTT^-k`` with
``1 <= k < 2`` — so a short-RTT receiver's (frequent) congestion signals
must be discounted for the session not to collapse to the shortest branch.

The mechanism itself lives in :class:`repro.rla.sender.RLASender`
(``rtt_scaled_pthresh``); this module provides the scaling function for
reuse in analysis and a convenience constructor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from ..net.network import Network
from ..sim.engine import Simulator
from .config import RLAConfig
from .sender import RLASender
from .session import RLASession


def rtt_scaling(srtt: float, srtt_max: float, exponent: float = 2.0) -> float:
    """The §5.3 scaling ``f(srtt/srtt_max) = (srtt/srtt_max)^exponent``.

    Clamped into [0, 1]; equal RTTs give 1, recovering the original RLA.
    """
    if srtt_max <= 0:
        return 1.0
    ratio = min(max(srtt / srtt_max, 0.0), 1.0)
    return ratio ** exponent


class GeneralizedRLASession(RLASession):
    """An :class:`RLASession` with RTT-scaled listening enabled.

    ``sender_cls`` passes through to :class:`RLASession`, so the §5.3
    variant rides the same (incremental) aggregate paths as the
    restricted RLA — and can equally be driven with the
    :class:`~repro.rla.reference.NaiveRLASender` oracle in equivalence
    tests.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        flow: str,
        src: str,
        members: Iterable[str],
        config: Optional[RLAConfig] = None,
        group: Optional[str] = None,
        sender_cls: type = RLASender,
    ) -> None:
        config = replace(config or RLAConfig(), rtt_scaled_pthresh=True)
        super().__init__(sim, net, flow, src, members, config=config,
                         group=group, sender_cls=sender_cls)
