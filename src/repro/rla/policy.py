"""Slow-receiver ejection — the §4.3 option.

When one receiver is much more congested than the rest, the RLA gives the
session up to O(n) times the bottleneck TCP share — §4.3: "If this is not
desirable, the RLA can implement an option to drop this slow receiver."

Detection: because delivery is reliable, the *rate* of progress is the
same for every receiver (the whole session drains at the slowest branch's
pace) — what distinguishes the laggard is its cumulative-ACK point
sitting persistently about one congestion window behind the leading
receiver's (the send window trails ``max_reach_all`` by ``cwnd``, §3.3
rule 5).  :class:`LaggardDropPolicy` ejects a receiver whose gap behind
the leader exceeds a threshold (default: half the average window)
continuously for ``patience`` seconds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from .sender import RLASender


class LaggardDropPolicy:
    """Watches an :class:`RLASender` and ejects persistently slow receivers."""

    def __init__(
        self,
        sim: Simulator,
        sender: RLASender,
        check_interval: float = 5.0,
        gap_packets: Optional[int] = None,
        patience: float = 15.0,
        min_receivers: int = 1,
        on_drop: Optional[Callable[[str], None]] = None,
    ) -> None:
        if check_interval <= 0:
            raise ConfigurationError(f"non-positive check_interval: {check_interval}")
        if patience < check_interval:
            raise ConfigurationError("patience must cover at least one check")
        if min_receivers < 1:
            raise ConfigurationError(f"min_receivers must be >= 1: {min_receivers}")
        if gap_packets is not None and gap_packets < 1:
            raise ConfigurationError(f"gap_packets must be >= 1: {gap_packets}")
        self.sim = sim
        self.sender = sender
        self.gap_packets = gap_packets
        self.patience = patience
        self.min_receivers = min_receivers
        self.on_drop = on_drop
        self.dropped: List[str] = []
        self._lagging_since: Dict[str, float] = {}
        self._process = PeriodicProcess(sim, check_interval, self._check,
                                        name=f"{sender.flow}.laggard")

    def start(self) -> None:
        """Begin monitoring."""
        self._process.start()

    def stop(self) -> None:
        """Stop monitoring (already-dropped receivers stay dropped)."""
        self._process.stop()

    # ------------------------------------------------------------------
    def _check(self) -> None:
        sender = self.sender
        if len(sender.receivers) <= self.min_receivers:
            return
        leader = max(state.last_ack for state in sender.receivers.values())
        now = self.sim.now
        # A laggard's gap is pinned at roughly the congestion window (the
        # send window trails max_reach_all by cwnd); healthy receivers sit
        # a handful of packets apart.  The dynamic default threshold is
        # half the average window.
        threshold = (self.gap_packets if self.gap_packets is not None
                     else max(2.0, 0.5 * sender.awnd))
        for rid, state in list(sender.receivers.items()):
            if leader - state.last_ack >= threshold:
                since = self._lagging_since.setdefault(rid, now)
                if now - since >= self.patience:
                    self._drop(rid)
            else:
                self._lagging_since.pop(rid, None)

    def _drop(self, rid: str) -> None:
        if len(self.sender.receivers) <= self.min_receivers:
            return
        self.sender.remove_receiver(rid)
        self._lagging_since.pop(rid, None)
        self.dropped.append(rid)
        if self.on_drop is not None:
            self.on_drop(rid)
