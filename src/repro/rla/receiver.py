"""The RLA receiver.

Identical in spirit to the TCP SACK receiver (§3.3: "Our multicast
receivers use selective acknowledgments using the same format as SACK TCP
receivers"), with two additions: every ACK is stamped with the receiver's
identity so the sender can do per-receiver accounting, and the receiver
accepts both multicast data and unicast repairs on the same flow.
"""

from __future__ import annotations

from typing import Optional

from ..net.node import Node
from ..net.packet import ACK, DATA, Packet
from ..sim.engine import Simulator
from ..tcp.sack import ReceiverSackTracker
from .config import RLAConfig


class RLAReceiver:
    """One member of an RLA multicast session.

    Slotted: one instance per group member, hot on every data delivery.
    """

    __slots__ = (
        "sim",
        "node",
        "flow",
        "sender_id",
        "config",
        "start_seq",
        "tracker",
        "_ack_rng",
        "acks_sent",
        "duplicates",
        "joined_at",
    )

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        sender_id: str,
        config: Optional[RLAConfig] = None,
        start_seq: int = 0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow = flow
        self.sender_id = sender_id
        self.config = (config or RLAConfig()).validate()
        #: Late-join sync point: the sender's send sequence at join time.
        #: Data below it predates this receiver's membership — the tracker
        #: treats it as delivered, so the session never repairs history
        #: for a late joiner.
        self.start_seq = start_seq
        self.tracker = ReceiverSackTracker(base=start_seq)
        self._ack_rng = sim.rng.stream(f"{flow}.{node.id}.ackjit")
        self.acks_sent = 0
        self.duplicates = 0
        self.joined_at = sim.now

    @property
    def distinct_received(self) -> int:
        """Distinct data segments this receiver holds."""
        return self.tracker.distinct_received

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler for multicast data and unicast repairs."""
        if packet.kind != DATA:
            return
        if not self.tracker.receive(packet.seq):
            self.duplicates += 1
        self._send_ack(packet)

    def _send_ack(self, data: Packet) -> None:
        echo = data.sent_time
        jitter = self.config.ack_jitter
        if jitter > 0:
            delay = self._ack_rng.uniform(0.0, jitter)
            self.sim.schedule_after(delay, self._emit_ack, data.seq, echo,
                                    data.ce, name=f"{self.flow}.ackjit")
        else:
            self._emit_ack(data.seq, echo, data.ce)

    def _emit_ack(self, seq: int, echo_ts: float, ce: bool = False) -> None:
        # The cumulative point and SACK blocks are read at emission time,
        # so a jittered ACK always carries the freshest receiver state.
        ack = Packet(
            ACK,
            self.flow,
            self.node.id,
            self.sender_id,
            seq,
            self.config.ack_size,
            sent_time=self.sim.now,
            echo_ts=echo_ts,
            ack=self.tracker.rcv_nxt,
            sack=self.tracker.blocks(),
            receiver=self.node.id,
        )
        ack.ece = ce  # echo an ECN mark straight back (one-shot)
        self.acks_sent += 1
        self.node.send(ack)

    def stats(self) -> dict:
        """Snapshot of receiver counters."""
        return {
            "distinct_received": self.distinct_received,
            "duplicates": self.duplicates,
            "acks_sent": self.acks_sent,
            "rcv_nxt": self.tracker.rcv_nxt,
            "start_seq": self.start_seq,
            "joined_at": self.joined_at,
            "time": self.sim.now,
        }
