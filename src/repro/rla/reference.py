"""Reference RLA sender with naive whole-group aggregate recomputation.

:class:`NaiveRLASender` overrides every incremental-maintenance hook of
:class:`~repro.rla.sender.RLASender` with a from-scratch recomputation —
the pre-optimization O(n_receivers) / O(n_receivers × window) behavior.
It exists purely as an equivalence oracle:

* the aggregate property tests drive an incremental sender through
  random ACK / join / leave / retransmit interleavings and check its
  maintained aggregates against these full recomputations;
* the churn byte-identity test runs a whole scenario under each sender
  class and asserts pickle-identical rows.

It is deliberately not registered anywhere a production run would pick
it up.
"""

from __future__ import annotations

from .sender import _DEFAULT_SRTT, RLASender
from .state import ReceiverState


class NaiveRLASender(RLASender):
    """An :class:`RLASender` that recomputes every aggregate in full."""

    def _ack_advanced(self, state: ReceiverState, old_last_ack: int) -> None:
        self._min_last_ack = min(s.last_ack for s in self.receivers.values())

    def _note_rtt_sample(self, state: ReceiverState) -> None:
        pass  # nothing cached, nothing to maintain

    def _max_srtt(self) -> float:
        return max(st.srtt(_DEFAULT_SRTT) for st in self.receivers.values())

    def _rto(self) -> float:
        return max(st.rtt.rto() for st in self.receivers.values())

    def _join_aggregates(self, state: ReceiverState) -> None:
        self._min_last_ack = min(st.last_ack for st in self.receivers.values())

    def _leave_aggregates(self, state: ReceiverState) -> None:
        self._min_last_ack = min(st.last_ack for st in self.receivers.values())

    def _join_reach(self, state: ReceiverState) -> None:
        # Recompute completion for every in-flight packet against the
        # grown receiver set (the joiner holds everything by definition,
        # so holders >= 1 always and no completion can fire).
        self._reach = {}
        for seq in sorted(self._send_time):
            holders = sum(1 for st in self.receivers.values() if st.has(seq))
            if holders >= self.n_receivers:
                self._on_full_ack(seq)
            else:
                self._reach[seq] = holders

    def _leave_reach(self, state: ReceiverState) -> None:
        # Old reach counts may include the departed receiver's ACKs, so
        # recompute completion for every pending packet from the
        # remaining receivers' actual state.
        pending = sorted(self._reach)
        self._reach = {}
        for seq in pending:
            holders = sum(1 for st in self.receivers.values() if st.has(seq))
            if holders >= self.n_receivers:
                self._on_full_ack(seq)
            elif holders > 0:
                self._reach[seq] = holders
