"""The RLA multicast sender (§3.3 of the paper).

One sender, N receivers.  Data goes out on a multicast group; every
receiver returns SACK acknowledgments.  The congestion-control skeleton:

1.  *Loss detection* — per receiver, a segment is lost once a segment at
    least 3 higher has been selectively acked by that receiver.
2.  *Congestion detection* — losses from receiver ``i`` within
    ``2 * srtt_i`` of the congestion-period start are grouped into one
    congestion signal.
3.  *Window adjustment on congestion* — update the troubled-receiver
    count; skip rare losses from non-troubled receivers; force a cut if
    the last cut is older than ``2 * awnd * srtt_i``; otherwise cut with
    probability ``pthresh = 1 / num_trouble_rcvr`` (random listening).
4.  *Window growth* — ``cwnd += 1/cwnd`` per packet ACKed by **all**
    receivers (slow start below ``ssthresh``).
5.  *Window bounds* — the lower edge trails ``max_reach_all``; the upper
    edge never exceeds ``min_last_ack + receiver buffer``.
6.  *Trouble counting* — via ``eta * min_congestion_interval`` (see
    :mod:`repro.rla.congestion`).

Retransmissions (footnote 8): the sender waits roughly one (largest) RTT
to hear from all receivers, then multicasts the repair if more than
``rexmit_thresh`` receivers want it, else unicasts to each requester; a
retry loop guarantees eventual delivery, making the session reliable.

Scaling note: every whole-group aggregate the per-ACK path needs —
``min_last_ack``, the largest receiver SRTT, the largest receiver RTO,
and the reached-all counts — is maintained *incrementally*, so the cost
per ACK is amortized O(1) in the number of receivers:

* ``_min_last_ack`` carries ``_min_count`` (how many receivers sit at
  the minimum); an O(n) rescan happens only when the whole min cohort
  has advanced, i.e. at most once per cohort per window step.
* max-SRTT / max-RTO are owner-tagged caches: a new sample either takes
  over the maximum (O(1)) or, when the owner's own value shrinks,
  lazily invalidates the cache (rescan deferred to the next read).
* membership changes touch only the joining/leaving receiver's holdings
  in ``_reach`` instead of rescanning every receiver per in-flight seq.

The maintenance hooks (``_ack_advanced``, ``_note_rtt_sample``,
``_join_*`` / ``_leave_*``) are overridden by
:class:`repro.rla.reference.NaiveRLASender`, which recomputes every
aggregate from scratch — the equivalence oracle for property and
byte-identity tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import ConfigurationError
from ..net.node import Node
from ..net.packet import ACK, DATA, Packet
from ..sim.engine import Simulator
from ..sim.process import Timer
from .config import RLAConfig
from .congestion import TroubleTracker
from .state import ReceiverState

#: RTT assumed before the first sample of a receiver arrives.
_DEFAULT_SRTT = 0.1


class RLASender:
    """Multicast sender running the Random Listening Algorithm."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        group: str,
        receiver_ids: List[str],
        config: Optional[RLAConfig] = None,
    ) -> None:
        if not receiver_ids:
            raise ConfigurationError("RLA session needs at least one receiver")
        self.sim = sim
        self.node = node
        self.flow = flow
        self.group = group
        self.config = (config or RLAConfig()).validate()
        cfg = self.config
        self.receivers: Dict[str, ReceiverState] = {
            rid: ReceiverState(rid, cfg.min_rto, cfg.max_rto) for rid in receiver_ids
        }
        self.n_receivers = len(receiver_ids)
        self.tracker = TroubleTracker(cfg.eta, cfg.interval_gain)

        # window state
        self.cwnd: float = cfg.initial_cwnd
        self.ssthresh: float = cfg.initial_ssthresh
        self.awnd: float = cfg.initial_cwnd
        self.snd_nxt = 0
        self.max_reach_all = -1          # highest seq received by ALL receivers
        self._min_last_ack = 0
        #: receivers whose last_ack equals ``_min_last_ack``; the min is
        #: rescanned only when this count drains to zero.
        self._min_count = self.n_receivers
        self.last_window_cut = sim.now

        # aggregate caches: value + the receiver that owns it.  An owner
        # of ``None`` marks the cache dirty (rescan on next read); while
        # owned, samples either take the max over in O(1) or invalidate.
        self._max_srtt_cache = _DEFAULT_SRTT
        self._max_srtt_owner: Optional[ReceiverState] = None
        self._max_rto_cache = 0.0
        self._max_rto_owner: Optional[ReceiverState] = None

    # reliability state
        self._reach: Dict[int, int] = {}          # seq -> receivers holding it
        self._send_time: Dict[int, float] = {}    # seq -> first transmission time
        self._retransmitted: Set[int] = set()
        self._rtx_requests: Dict[int, Set[str]] = {}
        self._rtx_scheduled: Set[int] = set()
        self._all_ack_timer = Timer(sim, self._on_timeout, name=f"{flow}.rto")

        self._listen_rng = sim.rng.stream(f"{flow}.listen")
        self._jitter_rng = sim.rng.stream(f"{flow}.jitter")
        self._started = False
        #: Optional audit hook: audited runs point this at an
        #: ``InvariantMonitor`` and every processed ACK is sanity-checked
        #: (window bounds, reach counts, ACK ordering).
        self.monitor = None

        # lifetime statistics
        self.packets_sent = 0
        self.rtx_multicast = 0
        self.rtx_unicast = 0
        self.congestion_signals = 0
        self.window_cuts = 0
        self.forced_cuts = 0
        self.timeouts = 0
        self.cwnd_integral = 0.0
        self._cwnd_clock = sim.now
        self.rtt_all_sum = 0.0
        self.rtt_all_samples = 0
        #: per-receiver signal counters, maintained on each congestion
        #: signal and mirroring ``self.receivers`` insertion order so a
        #: :meth:`stats` snapshot is an O(n) dict copy, not a rebuild.
        self._signals_by_receiver: Dict[str, int] = {
            rid: 0 for rid in self.receivers
        }

    # ------------------------------------------------------------------
    # public control
    # ------------------------------------------------------------------
    def start(self, offset: float = 0.0) -> None:
        """Begin transmitting after ``offset`` seconds."""
        if self._started:
            return
        self._started = True
        start_time = self.sim.now + offset
        for state in self.receivers.values():
            state.observation_start = start_time
        self.last_window_cut = start_time
        self.sim.schedule_after(offset, self._kick, name=f"{self.flow}.start")

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler; the sender consumes receiver ACKs."""
        if packet.kind == ACK and packet.receiver is not None:
            self._on_ack(packet)

    # ------------------------------------------------------------------
    # window statistics
    # ------------------------------------------------------------------
    def _note_cwnd(self) -> None:
        now = self.sim.now
        self.cwnd_integral += self.cwnd * (now - self._cwnd_clock)
        self._cwnd_clock = now

    def _set_cwnd(self, value: float) -> None:
        self._note_cwnd()
        self.cwnd = min(max(value, 1.0), self.config.max_cwnd)

    @property
    def min_last_ack(self) -> int:
        """Smallest cumulative ACK point over all receivers (§3.3)."""
        return self._min_last_ack

    # ------------------------------------------------------------------
    # incremental aggregates
    # ------------------------------------------------------------------
    def _rescan_min_last_ack(self) -> None:
        """Full O(n) min rescan; runs only when the min cohort drained."""
        lowest = None
        count = 0
        for st in self.receivers.values():
            la = st.last_ack
            if lowest is None or la < lowest:
                lowest, count = la, 1
            elif la == lowest:
                count += 1
        assert lowest is not None
        self._min_last_ack = lowest
        self._min_count = count

    def _ack_advanced(self, state: ReceiverState, old_last_ack: int) -> None:
        """Maintain ``_min_last_ack`` after ``state``'s cumulative point grew.

        ``last_ack`` only ever increases, so the minimum can change only
        when a member of the current min cohort advances past it.
        """
        if old_last_ack == self._min_last_ack:
            self._min_count -= 1
            if not self._min_count:
                self._rescan_min_last_ack()

    def _note_rtt_sample(self, state: ReceiverState) -> None:
        """Maintain the max-SRTT / max-RTO caches after an RTT sample.

        A sample at or above the cached maximum takes ownership in O(1);
        a shrinking owner invalidates its cache (rescan deferred to the
        next :meth:`_max_srtt` / :meth:`_rto` read).  RLA never calls
        ``RttEstimator.backoff``, so samples are the only RTO mutations.
        """
        srtt = state.rtt.srtt
        if self._max_srtt_owner is not None:
            if srtt >= self._max_srtt_cache:
                self._max_srtt_cache = srtt
                self._max_srtt_owner = state
            elif self._max_srtt_owner is state:
                self._max_srtt_owner = None
        rto = state.rtt.rto()
        if self._max_rto_owner is not None:
            if rto >= self._max_rto_cache:
                self._max_rto_cache = rto
                self._max_rto_owner = state
            elif self._max_rto_owner is state:
                self._max_rto_owner = None

    def _max_srtt(self) -> float:
        if self._max_srtt_owner is None:
            best = None
            best_v = 0.0
            for st in self.receivers.values():
                v = st.srtt(_DEFAULT_SRTT)
                if best is None or v > best_v:
                    best, best_v = st, v
            self._max_srtt_owner = best
            self._max_srtt_cache = best_v
        return self._max_srtt_cache

    # ------------------------------------------------------------------
    # ACK path
    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        state = self.receivers.get(packet.receiver)
        if state is None:
            return
        now = self.sim.now
        if packet.echo_ts > 0:
            state.rtt.update(now - packet.echo_ts)
            self._note_rtt_sample(state)

        old_last_ack = state.last_ack
        newly = state.update_ack(packet.ack if packet.ack is not None else 0, packet.sack)
        if state.last_ack != old_last_ack:
            self._ack_advanced(state, old_last_ack)
        for seq in newly:
            self._count_reach(seq)

        fresh_losses = state.detect_losses(self.snd_nxt, self.config.dupack_threshold)
        if fresh_losses:
            for seq in fresh_losses:
                self._request_retransmit(seq, state.id)
        if fresh_losses or packet.ece:
            # Losses and echoed ECN marks feed the same congestion-period
            # grouping: at most one signal per 2*srtt per receiver.
            srtt = state.srtt(_DEFAULT_SRTT)
            if now - state.cperiod_start > self.config.congestion_group_rtts * srtt:
                state.cperiod_start = now
                self._on_congestion_signal(state, srtt)

        self._all_ack_timer.start(self._rto())
        self._try_send()
        if self.monitor is not None:
            self.monitor.check_rla(self)

    def _count_reach(self, seq: int) -> None:
        count = self._reach.get(seq, 0) + 1
        if count < self.n_receivers:
            self._reach[seq] = count
            return
        self._reach.pop(seq, None)
        self._on_full_ack(seq)

    def _on_full_ack(self, seq: int) -> None:
        """Rule 4: a packet ACKed by all receivers grows the window."""
        if seq > self.max_reach_all:
            self.max_reach_all = seq
        first_sent = self._send_time.pop(seq, None)
        if first_sent is not None and seq not in self._retransmitted:
            self.rtt_all_sum += self.sim.now - first_sent
            self.rtt_all_samples += 1
        self._retransmitted.discard(seq)
        self._rtx_requests.pop(seq, None)
        if self.cwnd < self.ssthresh:
            self._set_cwnd(self.cwnd + 1.0)
        else:
            self._set_cwnd(self.cwnd + 1.0 / self.cwnd)
        self.awnd += self.config.awnd_gain * (self.cwnd - self.awnd)

    # ------------------------------------------------------------------
    # membership (the §4.3 slow-receiver option + late join)
    # ------------------------------------------------------------------
    def add_receiver(self, receiver_id: str) -> int:
        """Admit a receiver mid-session (late join); returns its sync seq.

        The joiner is synced to the current send point ``snd_nxt``: its
        state is created with ``last_ack = snd_nxt``, so every sequence
        already transmitted counts as held by definition and the session
        never repairs pre-join history for it.  The matching
        :class:`~repro.rla.receiver.RLAReceiver` must be built with
        ``start_seq`` equal to the returned value so both ends agree on
        where the joiner's stream begins.
        """
        if receiver_id in self.receivers:
            return self.snd_nxt  # idempotent: already a member
        cfg = self.config
        now = self.sim.now
        sync_seq = self.snd_nxt
        state = ReceiverState(receiver_id, cfg.min_rto, cfg.max_rto)
        state.last_ack = sync_seq
        state.max_sacked = sync_seq - 1
        state.observation_start = now
        self.receivers[receiver_id] = state
        self.n_receivers += 1
        self._signals_by_receiver[receiver_id] = 0
        self._join_aggregates(state)
        self._join_reach(state)
        self.tracker.recount(now, self.receivers.values())
        self._try_send()
        return sync_seq

    def _join_aggregates(self, state: ReceiverState) -> None:
        """Fold a joiner into min-last-ack and the max-SRTT/RTO caches.

        The joiner's ``last_ack`` is ``snd_nxt``, at or above every
        existing cumulative point, so the minimum itself cannot change —
        only its cohort count when the session has nothing outstanding.
        """
        if state.last_ack == self._min_last_ack:
            self._min_count += 1
        if self._max_srtt_owner is not None:
            v = state.srtt(_DEFAULT_SRTT)
            if v >= self._max_srtt_cache:
                self._max_srtt_cache = v
                self._max_srtt_owner = state
        if self._max_rto_owner is not None:
            rto = state.rtt.rto()
            if rto >= self._max_rto_cache:
                self._max_rto_cache = rto
                self._max_rto_owner = state

    def _join_reach(self, state: ReceiverState) -> None:
        """Count the joiner into every in-flight sequence's reach count.

        Every in-flight seq is below the sync point, so the joiner holds
        it by definition (``has`` consults ``last_ack``).  No completion
        can fire here: a pre-join count is at most ``n - 2`` (a count of
        ``n - 1`` would already have completed), so the new count is at
        most ``n - 1`` against the grown threshold.  Sequences with no
        explicit ACKs yet must still be counted — if one missed the
        joiner as an implicit holder it could only ever collect ``n - 1``
        explicit ACKs, freezing ``max_reach_all`` and deadlocking the
        cwnd-edge of the send window.
        """
        reach = self._reach
        for seq in self._send_time:
            reach[seq] = reach.get(seq, 0) + 1

    def remove_receiver(self, receiver_id: str) -> None:
        """Eject a receiver from the session (§4.3's drop-the-laggard option).

        The reached-all threshold shrinks, so packets the departed
        receiver was the last holdout for complete immediately; the send
        window's buffer bound is recomputed from the remaining receivers.
        Packets the ejected receiver ACKs after removal are ignored.
        """
        state = self.receivers.pop(receiver_id, None)
        if state is None:
            return
        if not self.receivers:
            # keep the invariant "at least one receiver": re-add and refuse
            self.receivers[receiver_id] = state
            raise ConfigurationError("cannot remove the last receiver")
        self.n_receivers -= 1
        del self._signals_by_receiver[receiver_id]
        self._leave_aggregates(state)
        # Purge pending retransmit requests from the departed receiver: a
        # decision timer armed before the ejection would otherwise look its
        # id up in ``receivers`` and crash (or, worse, repair for a member
        # that left).  Empty requester sets are left for the timer to pop.
        for requesters in self._rtx_requests.values():
            requesters.discard(receiver_id)
        self._leave_reach(state)
        self.tracker.recount(self.sim.now, self.receivers.values())
        self._try_send()

    def _leave_aggregates(self, state: ReceiverState) -> None:
        """Retire a leaver from min-last-ack and the max-SRTT/RTO caches."""
        if state.last_ack == self._min_last_ack:
            self._min_count -= 1
            if not self._min_count:
                self._rescan_min_last_ack()
        if self._max_srtt_owner is state:
            self._max_srtt_owner = None
        if self._max_rto_owner is state:
            self._max_rto_owner = None

    def _leave_reach(self, state: ReceiverState) -> None:
        """Subtract the leaver's holdings from the reach counts.

        Only the departed receiver's own ``has`` is consulted per pending
        sequence; the shrunken threshold completes exactly the sequences
        it was the last holdout for, in ascending order (completion order
        feeds float accumulators, so it must match a full sorted rebuild).
        Zero counts are dropped: ``_count_reach`` treats a missing entry
        as zero, and the audit layer checks ``0 < count < n``.
        """
        reach = self._reach
        completed = []
        for seq in list(reach):
            if state.has(seq):
                count = reach[seq] - 1
                if count:
                    reach[seq] = count
                else:
                    del reach[seq]
            elif reach[seq] >= self.n_receivers:
                del reach[seq]
                completed.append(seq)
        completed.sort()
        for seq in completed:
            self._on_full_ack(seq)

    # ------------------------------------------------------------------
    # congestion reaction (the random listening core)
    # ------------------------------------------------------------------
    def _on_congestion_signal(self, state: ReceiverState, srtt: float) -> None:
        now = self.sim.now
        self.congestion_signals += 1
        self.tracker.record_signal(state, now, self.receivers.values())
        self._signals_by_receiver[state.id] = state.signals
        if not state.troubled:
            return  # rare loss from a non-troubled receiver: skip (rule 3)
        cfg = self.config
        # The forced-cut deadline rides the session's round-trip time (the
        # largest receiver srtt): with heterogeneous RTTs, using the
        # signalling receiver's own srtt would give near receivers an
        # absurdly short deadline and forced cuts would displace random
        # listening entirely (the paper's tables show zero forced cuts).
        if (
            cfg.forced_cut_enabled
            and now - self.last_window_cut
            > cfg.forced_cut_awnd_rtts * self.awnd * self._max_srtt()
        ):
            self._cut_window(forced=True)
            return
        scale = 1.0
        if cfg.rtt_scaled_pthresh:
            ratio = srtt / self._max_srtt()
            scale = ratio * ratio
        if self._listen_rng.random() <= self.tracker.pthresh(scale):
            self._cut_window(forced=False)

    def _cut_window(self, forced: bool) -> None:
        self.window_cuts += 1
        if forced:
            self.forced_cuts += 1
        self._set_cwnd(self.cwnd / 2.0)
        self.ssthresh = max(self.cwnd, 2.0)
        self.last_window_cut = self.sim.now

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        self._try_send()
        if not self._all_ack_timer.pending:
            self._all_ack_timer.start(self._rto())

    def _window_limit(self) -> int:
        by_cwnd = self.max_reach_all + 1 + int(self.cwnd)
        by_buffer = self._min_last_ack + self.config.rcv_buffer
        return min(by_cwnd, by_buffer)

    def _try_send(self) -> None:
        limit = self._window_limit()
        while self.snd_nxt < limit:
            seq = self.snd_nxt
            self.snd_nxt += 1
            self._send_time[seq] = self.sim.now
            self._transmit(seq, self.group, is_rtx=False)

    def _transmit(self, seq: int, dst: str, is_rtx: bool) -> None:
        if self.config.phase_jitter:
            delay = self._jitter_rng.uniform(0.0, self.config.phase_jitter)
            self.sim.schedule_after(delay, self._transmit_now, seq, dst, is_rtx,
                                    name=f"{self.flow}.jit")
        else:
            self._transmit_now(seq, dst, is_rtx)

    def _transmit_now(self, seq: int, dst: str, is_rtx: bool) -> None:
        packet = Packet(
            DATA,
            self.flow,
            self.node.id,
            dst,
            seq,
            self.config.packet_size,
            sent_time=self.sim.now,
            is_retransmit=is_rtx,
        )
        packet.ect = self.config.ecn
        self.packets_sent += 1
        self.node.send(packet)

    # ------------------------------------------------------------------
    # retransmission engine (footnote 8)
    # ------------------------------------------------------------------
    def _request_retransmit(self, seq: int, receiver_id: str) -> None:
        self._rtx_requests.setdefault(seq, set()).add(receiver_id)
        if seq in self._rtx_scheduled:
            return
        self._rtx_scheduled.add(seq)
        wait = self.config.rtx_wait_rtts * self._max_srtt()
        self.sim.schedule_after(wait, self._decide_retransmit, seq,
                                name=f"{self.flow}.rtx")

    def _decide_retransmit(self, seq: int) -> None:
        self._rtx_scheduled.discard(seq)
        requesters = self._rtx_requests.pop(seq, set())
        # ``.get``: a requester may have been ejected between its request
        # and this timer firing; ejected receivers need no repair.
        missing = [
            rid for rid in requesters
            if (state := self.receivers.get(rid)) is not None
            and not state.has(seq)
        ]
        if not missing:
            return
        self._send_repair(seq, missing)

    def _send_repair(self, seq: int, missing: List[str]) -> None:
        self._retransmitted.add(seq)
        if len(missing) > self.config.rexmit_thresh:
            self.rtx_multicast += 1
            self._transmit(seq, self.group, is_rtx=True)
        else:
            for rid in missing:
                self.rtx_unicast += 1
                self._transmit(seq, rid, is_rtx=True)
        retry_after = 2.0 * self._max_srtt() + self.config.min_rto
        self.sim.schedule_after(retry_after, self._verify_repair, seq,
                                name=f"{self.flow}.rtxchk")

    def _verify_repair(self, seq: int) -> None:
        """Retry loop: keep repairing until every receiver holds ``seq``.

        Note ``max_reach_all`` cannot serve as the delivery check here: it
        is the highest seq received by all and deliberately skips holes.
        """
        missing = [rid for rid, st in self.receivers.items() if not st.has(seq)]
        if missing:
            self._send_repair(seq, missing)

    # ------------------------------------------------------------------
    # timeout safety net
    # ------------------------------------------------------------------
    def _rto(self) -> float:
        if self._max_rto_owner is None:
            best = None
            best_v = 0.0
            for st in self.receivers.values():
                v = st.rtt.rto()
                if best is None or v > best_v:
                    best, best_v = st, v
            self._max_rto_owner = best
            self._max_rto_cache = best_v
        return self._max_rto_cache

    def _on_timeout(self) -> None:
        """No ACK from anyone for a full RTO — treat like a TCP timeout."""
        if self._min_last_ack >= self.snd_nxt:
            return  # nothing outstanding (everyone holds all of [0, snd_nxt))
        self.timeouts += 1
        self.window_cuts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self._set_cwnd(1.0)
        self.last_window_cut = self.sim.now
        # Repair every outstanding hole: small-window losses sit below the
        # 3-dupack detection threshold, so one-hole-per-RTO recovery would
        # crawl (and back off) forever in a lossy startup.
        for seq in range(self._min_last_ack, self.snd_nxt):
            missing = [rid for rid, st in self.receivers.items() if not st.has(seq)]
            if missing:
                self._send_repair(seq, missing)
        self._all_ack_timer.start(self._rto())

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot; experiments diff two snapshots for a window."""
        self._note_cwnd()
        return {
            "packets_sent": self.packets_sent,
            "rtx_multicast": self.rtx_multicast,
            "rtx_unicast": self.rtx_unicast,
            "congestion_signals": self.congestion_signals,
            "window_cuts": self.window_cuts,
            "forced_cuts": self.forced_cuts,
            "timeouts": self.timeouts,
            "cwnd_integral": self.cwnd_integral,
            "cwnd": self.cwnd,
            "max_reach_all": self.max_reach_all,
            "rtt_all_sum": self.rtt_all_sum,
            "rtt_all_samples": self.rtt_all_samples,
            # a plain copy (the maintained dict mirrors ``receivers``
            # insertion order, so snapshots pickle identically to a
            # freshly built comprehension)
            "signals_by_receiver": dict(self._signals_by_receiver),
            "num_trouble": self.tracker.num_trouble,
            "time": self.sim.now,
        }

    def __repr__(self) -> str:
        return (
            f"RLASender({self.flow}, cwnd={self.cwnd:.2f}, reach={self.max_reach_all}, "
            f"nxt={self.snd_nxt}, cuts={self.window_cuts}, n={self.n_receivers})"
        )
