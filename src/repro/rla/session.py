"""Session wiring: one RLA sender + its receiver set on a network.

``RLASession`` joins the multicast group, instantiates the sender and one
receiver per member, binds everything to the right nodes, and exposes the
paper's reported metrics (throughput, mean cwnd, mean RTT, congestion
signals, window cuts, forced cuts) over a measurement window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..net.addressing import group_address
from ..net.network import Network
from ..sim.engine import Simulator
from .config import RLAConfig
from .receiver import RLAReceiver
from .sender import RLASender


class RLASession:
    """A complete multicast session running the RLA."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        flow: str,
        src: str,
        members: Iterable[str],
        config: Optional[RLAConfig] = None,
        group: Optional[str] = None,
        sender_cls: type = RLASender,
    ) -> None:
        self.sim = sim
        self.net = net
        self.flow = flow
        self.src = src
        self.members: List[str] = list(members)
        self.group = group or group_address(flow)
        self.config = config or RLAConfig()
        net.join_group(self.group, src, self.members)
        src_node = net.node(src)
        # sender_cls lets baselines (e.g. the deterministic listener) reuse
        # the session wiring with a different listening rule.
        self.sender = sender_cls(
            sim, src_node, flow, self.group, self.members, config=self.config
        )
        src_node.bind(flow, self.sender.on_packet)
        self.receivers: Dict[str, RLAReceiver] = {}
        for member in self.members:
            node = net.node(member)
            receiver = RLAReceiver(sim, node, flow, src, config=self.config)
            node.bind(flow, receiver.on_packet)
            self.receivers[member] = receiver
        self._mark: Optional[dict] = None
        # membership-churn accounting
        self.joins = 0
        self.leaves = 0
        #: final stats snapshots of departed receivers, in leave order
        self.departed: List[dict] = []

    def start(self, offset: float = 0.0) -> None:
        """Start the sender after ``offset`` seconds."""
        self.sender.start(offset)

    # ------------------------------------------------------------------
    # membership dynamics (receiver churn)
    # ------------------------------------------------------------------
    def add_member(self, member: str) -> RLAReceiver:
        """Late-join ``member`` mid-session.

        Grafts the member onto the multicast tree, admits it at the
        sender (synced to the current send point so no pre-join history
        is repaired), and binds a fresh receiver agent.  Idempotent for
        current members.
        """
        existing = self.receivers.get(member)
        if existing is not None:
            return existing
        self.net.add_member(self.group, member)
        sync_seq = self.sender.add_receiver(member)
        node = self.net.node(member)
        receiver = RLAReceiver(
            self.sim, node, self.flow, self.src,
            config=self.config, start_seq=sync_seq,
        )
        node.bind(self.flow, receiver.on_packet)
        self.receivers[member] = receiver
        if member not in self.members:
            self.members.append(member)
        self.joins += 1
        return receiver

    def remove_member(self, member: str) -> None:
        """Leave: eject ``member`` from sender, tree, and agent binding.

        Raises :class:`~repro.errors.ConfigurationError` when asked to
        remove the last receiver (a session needs one); no-op for
        non-members.  The departed receiver's final stats are kept in
        :attr:`departed` for churn analysis.
        """
        receiver = self.receivers.get(member)
        if receiver is None:
            return
        self.sender.remove_receiver(member)  # raises on last receiver
        self.net.leave_group(self.group, member)
        self.net.node(member).unbind(self.flow)
        snapshot = receiver.stats()
        snapshot["member"] = member
        snapshot["left_at"] = self.sim.now
        self.departed.append(snapshot)
        del self.receivers[member]
        self.members.remove(member)
        self.leaves += 1

    # ------------------------------------------------------------------
    # measurement-window statistics
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Begin a measurement window (typically at warmup end)."""
        self._mark = self.sender.stats()

    def report(self) -> dict:
        """Paper-style metrics accumulated since :meth:`mark` (or start).

        Throughput is the *reliable* session throughput: the rate at which
        ``max_reach_all`` advances, i.e. data delivered to every receiver.
        """
        now = self.sender.stats()
        base = self._mark or {
            "time": 0.0,
            "max_reach_all": -1,
            "cwnd_integral": 0.0,
            "congestion_signals": 0,
            "window_cuts": 0,
            "forced_cuts": 0,
            "timeouts": 0,
            "packets_sent": 0,
            "rtx_multicast": 0,
            "rtx_unicast": 0,
            "rtt_all_sum": 0.0,
            "rtt_all_samples": 0,
            "signals_by_receiver": {},
        }
        elapsed = now["time"] - base["time"]
        if elapsed <= 0:
            elapsed = float("nan")
        rtt_n = now["rtt_all_samples"] - base["rtt_all_samples"]
        base_signals = base["signals_by_receiver"]
        return {
            "throughput_pps": (now["max_reach_all"] - base["max_reach_all"]) / elapsed,
            "mean_cwnd": (now["cwnd_integral"] - base["cwnd_integral"]) / elapsed,
            "mean_rtt": (
                (now["rtt_all_sum"] - base["rtt_all_sum"]) / rtt_n if rtt_n else 0.0
            ),
            "congestion_signals": now["congestion_signals"] - base["congestion_signals"],
            "window_cuts": now["window_cuts"] - base["window_cuts"],
            "forced_cuts": now["forced_cuts"] - base["forced_cuts"],
            "timeouts": now["timeouts"] - base["timeouts"],
            "packets_sent": now["packets_sent"] - base["packets_sent"],
            "rtx_multicast": now["rtx_multicast"] - base["rtx_multicast"],
            "rtx_unicast": now["rtx_unicast"] - base["rtx_unicast"],
            "num_trouble": now["num_trouble"],
            "n_receivers": len(self.receivers),
            # "member_*" rather than bare "joins"/"leaves": tree cases use
            # "leaves" for their receiver population, and a report key that
            # collides with it would make pickled results identity-sensitive
            # (string memoization) — breaking byte-equality across processes.
            "member_joins": self.joins,
            "member_leaves": self.leaves,
            "signals_by_receiver": {
                rid: count - base_signals.get(rid, 0)
                for rid, count in now["signals_by_receiver"].items()
            },
            "elapsed": elapsed,
        }
