"""Per-receiver state kept by the RLA sender.

For each receiver the sender tracks what the receiver holds (cumulative ACK
point + SACKed segments), a smoothed RTT, the congestion-period clock used
to group losses (§3.3 rule 2), and the congestion-signal interval average
that feeds the troubled-receiver count (§3.3 rule 6).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..tcp.rto import RttEstimator

SackBlock = Tuple[int, int]


class ReceiverState:
    """Everything the sender knows about one receiver.

    Slotted: the sender keeps one instance per receiver and large groups
    hold thousands on the per-ACK path, so attribute access goes through
    fixed slots rather than a per-instance dict (matching ``Packet`` and
    ``Event``).  Instances hash by identity, which the trouble tracker's
    per-recount interval map relies on.
    """

    __slots__ = (
        "id",
        "last_ack",
        "_sacked",
        "max_sacked",
        "rtt",
        "cperiod_start",
        "interval_ewma",
        "last_signal_time",
        "observation_start",
        "signals",
        "troubled",
        "lost_marks",
    )

    def __init__(self, receiver_id: str, min_rto: float = 1.0, max_rto: float = 64.0) -> None:
        self.id = receiver_id
        #: cumulative ACK point: all seq < last_ack received by this receiver
        self.last_ack = 0
        self._sacked: Set[int] = set()
        self.max_sacked = -1
        self.rtt = RttEstimator(min_rto, max_rto)
        #: start of the current congestion period (grouping window)
        self.cperiod_start = float("-inf")
        #: EWMA of intervals between congestion signals; seeded at the first
        #: signal with the time it took to produce it (see record_signal)
        self.interval_ewma: Optional[float] = None
        self.last_signal_time: Optional[float] = None
        #: when this receiver came under observation (session start); used
        #: to give the first congestion signal a meaningful interval
        self.observation_start = 0.0
        self.signals = 0
        self.troubled = False
        #: segments this receiver has been seen to lose (cleared on receipt)
        self.lost_marks: Set[int] = set()

    # ------------------------------------------------------------------
    def srtt(self, default: float) -> float:
        """Smoothed RTT to this receiver, or ``default`` before any sample."""
        return self.rtt.srtt if self.rtt.srtt is not None else default

    def has(self, seq: int) -> bool:
        """True if this receiver is known to hold ``seq``."""
        return seq < self.last_ack or seq in self._sacked

    def update_ack(self, ack: int, sack: Optional[Iterable[SackBlock]]) -> List[int]:
        """Digest one ACK from this receiver.

        Returns the list of sequence numbers *newly* known to be received,
        which the sender feeds into the reached-all counting.
        """
        newly: List[int] = []
        if ack > self.last_ack:
            for seq in range(self.last_ack, ack):
                if seq not in self._sacked:
                    newly.append(seq)
            self.last_ack = ack
            self._sacked = {s for s in self._sacked if s >= ack}
        if sack:
            for start, end in sack:
                for seq in range(max(start, self.last_ack), end):
                    if seq not in self._sacked:
                        self._sacked.add(seq)
                        newly.append(seq)
                if end - 1 > self.max_sacked:
                    self.max_sacked = end - 1
        if ack - 1 > self.max_sacked:
            self.max_sacked = ack - 1
        if newly:
            self.lost_marks.difference_update(newly)
        return newly

    def detect_losses(self, snd_nxt: int, dupthresh: int) -> List[int]:
        """Fresh losses by the paper's rule (§3.3 rule 1).

        A segment is deemed lost once a segment at least ``dupthresh``
        higher has been SACKed by this receiver.  Segments already marked
        lost stay marked (until received) and are not reported again.
        """
        limit = min(snd_nxt, self.max_sacked - dupthresh + 1)
        fresh = [
            seq
            for seq in range(self.last_ack, limit)
            if seq not in self._sacked and seq not in self.lost_marks
        ]
        if fresh:
            self.lost_marks.update(fresh)
        return fresh

    def unmark_lost(self, seq: int) -> None:
        """Forget a loss mark (after a retransmission gives it a new fate)."""
        self.lost_marks.discard(seq)

    # ------------------------------------------------------------------
    def record_signal(self, now: float, gain: float) -> None:
        """Fold a congestion signal at ``now`` into the interval average.

        The first signal seeds the average with the time it took to appear
        (since observation start).  Seeding with ~0 instead would collapse
        ``min_congestion_interval`` for the whole session and momentarily
        shrink the troubled set to this receiver alone — forcing a certain
        window cut on every receiver's first signal.
        """
        self.signals += 1
        if self.last_signal_time is None:
            interval = max(now - self.observation_start, 1e-6)
        else:
            interval = now - self.last_signal_time
        if self.interval_ewma is None:
            self.interval_ewma = interval
        else:
            self.interval_ewma += gain * (interval - self.interval_ewma)
        self.last_signal_time = now

    def effective_interval(self, now: float) -> Optional[float]:
        """Interval estimate used for trouble counting.

        Uses the EWMA, stretched by current silence: a receiver that has
        stopped reporting congestion ages out of the troubled set (this is
        the "dynamic count" adaptivity of §3.3 rule 6 — without it, the
        trouble count could never shrink when a bottleneck moves away).
        """
        if self.interval_ewma is None:
            return None
        silence = now - self.last_signal_time if self.last_signal_time is not None else 0.0
        return max(self.interval_ewma, silence)

    def __repr__(self) -> str:
        return (
            f"ReceiverState({self.id}, ack={self.last_ack}, signals={self.signals}, "
            f"troubled={self.troubled})"
        )
