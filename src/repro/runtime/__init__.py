"""Parallel experiment runtime (DESIGN.md: the §5 grid at full speed).

The paper's evaluation is a grid of *independent* simulation runs — tree
cases × gateway disciplines × seeds × sensitivity knobs.  This package
executes that grid as fast as the hardware allows while keeping the
results bit-identical to a serial loop:

* :class:`RunSpec` — a content-addressed description of one run
  (entrypoint + params), with deterministic seed derivation for
  multi-seed replication (:func:`derive_seed`, :func:`replicate`);
* :func:`run_specs` — the executor: process-pool fan-out, per-run retry,
  hung-pool teardown, outcomes in input order;
* :class:`ResultCache` — on-disk cache keyed by spec content and
  :func:`code_version`, so an unchanged spec is never re-simulated;
* :class:`RunMetrics` / :func:`metrics_table` — what each run cost
  (wall time, events, events/s, drops, peak queue depth).

Example::

    from repro.runtime import ResultCache, RunSpec, run_specs

    specs = [
        RunSpec("repro.experiments.sweeps:run_symmetric_spec",
                {"n_receivers": n, "share_pps": 100.0, "buffer_pkts": 20,
                 "duration": 60.0, "warmup": 20.0, "seed": 1,
                 "gateway": "droptail"})
        for n in (2, 4, 8, 12)
    ]
    outcomes = run_specs(specs, workers=4, cache=ResultCache())
    rows = [o.result for o in outcomes]
"""

from .cache import CacheEntry, ResultCache
from .executor import (
    RunOutcome,
    default_workers,
    execute_spec,
    run_one,
    run_specs,
    snapshot_destination,
)
from .metrics import RunMetrics, build_metrics, extract_sim_stats, metrics_table
from .spec import RunSpec, code_version, derive_seed, replicate

__all__ = [
    "CacheEntry",
    "ResultCache",
    "RunMetrics",
    "RunOutcome",
    "RunSpec",
    "build_metrics",
    "code_version",
    "default_workers",
    "derive_seed",
    "execute_spec",
    "extract_sim_stats",
    "metrics_table",
    "replicate",
    "run_one",
    "run_specs",
    "snapshot_destination",
]
