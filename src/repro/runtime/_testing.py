"""Entrypoints used by the runtime's own test suite.

They live in the package (not under ``tests/``) because worker processes
resolve entrypoints by import path, and the ``tests`` tree is not an
importable package.  Each one is a tiny, dependency-free stand-in for a
simulation run with a controllable failure mode.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict


def echo(params: Dict[str, Any]) -> Dict[str, Any]:
    """Return the params, tagged with this process's pid."""
    return {"params": dict(params), "pid": os.getpid(),
            "sim_stats": {"events": int(params.get("events", 7)),
                          "drops": 1, "peak_queue_depth": 2}}


def boom(params: Dict[str, Any]) -> None:
    """Always fail — exercises exhausted-retries reporting."""
    raise RuntimeError(f"boom: {params.get('why', 'deliberate failure')}")


def flaky(params: Dict[str, Any]) -> str:
    """Fail until a marker file exists, then succeed — exercises retry.

    The first attempt creates ``params['marker']`` and raises; any later
    attempt (in any process) sees the marker and returns normally.
    """
    marker = params["marker"]
    if os.path.exists(marker):
        return "recovered"
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write("attempted")
    raise RuntimeError("flaky: first attempt fails")


def snooze(params: Dict[str, Any]) -> Dict[str, Any]:
    """Sleep ``params['seconds']`` then return — a stand-in for a run
    whose wall time is not CPU-bound, used to measure executor overlap
    independently of the host's core count."""
    seconds = float(params.get("seconds", 0.5))
    time.sleep(seconds)
    return {"slept": seconds, "pid": os.getpid()}


def hang(params: Dict[str, Any]) -> str:
    """Sleep far past any test timeout — exercises hung-worker teardown.

    Sleeps in short slices so a terminated process dies promptly.
    """
    deadline = time.monotonic() + float(params.get("seconds", 60.0))
    while time.monotonic() < deadline:
        time.sleep(0.05)
    return "woke up"
