"""On-disk result cache keyed by spec content + code version.

Re-running a sweep with one changed point only simulates that point: every
other spec hashes to the same key (:meth:`RunSpec.key`), whose pickle is
already on disk.  Keys mix in :func:`~repro.runtime.spec.code_version`,
so editing any module under ``repro`` invalidates everything — the cache
can never serve a result produced by different simulator code.

Entries are single pickle files written atomically (temp file + rename),
so a crashed writer never leaves a truncated entry that a later reader
would trust; unreadable entries are treated as misses and removed.  A
writer killed *between* open and rename does leave its anonymous ``*.tmp``
file behind, though — nothing ever trusted it, but nothing ever reclaimed
it either, so crashes slowly filled the cache directory with orphans.
:class:`ResultCache` now sweeps stale temp files on construction (age-
guarded, so live writers in sibling processes are never raced).

The directory also holds mid-run checkpoint snapshots
(:meth:`ResultCache.snapshot_path`), content-addressed by the same spec
key plus the capture time — warm states are cached right next to the
finished results they short-circuit.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ConfigurationError
from .metrics import RunMetrics
from .spec import RunSpec, code_version

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_DEFAULT_DIR = ".repro-cache"

#: Orphaned ``*.tmp`` files older than this (seconds) are swept on init.
#: Any live writer finishes its temp file in well under an hour; anything
#: older is debris from a writer that died between open and rename.
TMP_SWEEP_AGE = 3600.0


@dataclass(frozen=True)
class CacheEntry:
    """One cached run: the spec's canonical form, its result, its cost."""

    canonical: str
    result: Any
    metrics: RunMetrics


class ResultCache:
    """Pickle-per-entry cache of finished runs.

    Parameters
    ----------
    path:
        Cache directory, created on first write.  Defaults to
        ``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working
        directory.
    code:
        Code-version string mixed into every key; defaults to the live
        :func:`code_version` and only needs overriding in tests.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 code: Optional[str] = None) -> None:
        if path is None:
            path = os.environ.get(CACHE_DIR_ENV, _DEFAULT_DIR)
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise ConfigurationError(
                f"cache path {self.path} exists and is not a directory")
        self.code = code_version() if code is None else code
        self.hits = 0
        self.misses = 0
        self.swept_tmp = self._sweep_orphaned_tmp()

    def _sweep_orphaned_tmp(self, max_age: float = TMP_SWEEP_AGE) -> int:
        """Remove stale ``*.tmp`` debris left by writers that crashed
        between open and rename; returns how many files were removed.

        Only files older than ``max_age`` go — a concurrent writer's
        in-progress temp file is seconds old and is left alone.
        """
        if not self.path.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - max_age
        for tmp_path in self.path.glob("*.tmp"):
            try:
                if tmp_path.stat().st_mtime < cutoff:
                    tmp_path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    def _entry_path(self, spec: RunSpec) -> Path:
        return self.path / f"{spec.key(self.code)}.pkl"

    def snapshot_path(self, spec: RunSpec, at: float) -> Path:
        """Content-addressed location for ``spec``'s snapshot at time ``at``.

        Keyed like result entries (spec canonical form + code version) plus
        the capture sim-time, so a warm state is reused only by reruns of
        the exact same spec under the exact same code.
        """
        return self.path / f"{spec.key(self.code)}.t{at:g}.ckpt"

    def get(self, spec: RunSpec) -> Optional[CacheEntry]:
        """The cached entry for ``spec``, or ``None`` on a miss.

        A key collision with a different canonical form (or a corrupt
        pickle) counts as a miss and evicts the bad entry.
        """
        entry_path = self._entry_path(spec)
        try:
            with open(entry_path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            if entry_path.exists():
                entry_path.unlink(missing_ok=True)
            self.misses += 1
            return None
        if not isinstance(entry, CacheEntry) or entry.canonical != spec.canonical():
            entry_path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, spec: RunSpec, result: Any, metrics: RunMetrics) -> None:
        """Store a finished run atomically."""
        self.path.mkdir(parents=True, exist_ok=True)
        entry = CacheEntry(canonical=spec.canonical(), result=result,
                           metrics=metrics)
        fd, tmp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._entry_path(spec))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, spec: RunSpec) -> bool:
        return self._entry_path(spec).exists()

    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.pkl"))

    def clear(self) -> int:
        """Delete all entries and snapshots; returns how many were removed."""
        removed = 0
        if self.path.is_dir():
            for pattern in ("*.pkl", "*.ckpt"):
                for entry_path in self.path.glob(pattern):
                    entry_path.unlink(missing_ok=True)
                    removed += 1
        return removed

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.path)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
