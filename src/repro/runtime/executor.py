"""The parallel executor: fan independent runs out over a process pool.

Simulation runs are pure functions of their :class:`RunSpec` (every
random draw comes from seeded streams), so executing them in worker
processes — in any order, with any interleaving — produces byte-identical
results to a serial loop.  That purity is what makes the three services
here safe:

* **parallelism** — ``workers`` processes execute specs concurrently;
* **caching** — finished results are stored by content key and replayed
  on the next identical invocation without simulating;
* **fault handling** — a worker that raises is retried up to ``retries``
  times; a pool that stalls past ``timeout`` seconds with no completion
  is torn down (processes killed) and its unfinished runs retried.  A
  run that exhausts its attempts surfaces as an error outcome (and, with
  ``strict=True``, an exception) — never a silently missing row.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .cache import ResultCache
from .metrics import RunMetrics, build_metrics
from .spec import RunSpec


@dataclass
class RunOutcome:
    """What happened to one spec: its result, cost, and provenance."""

    spec: RunSpec
    result: Any
    metrics: RunMetrics
    cached: bool = False
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.error is None


def execute_spec(
    spec: RunSpec,
    checkpoint_at: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
) -> Tuple[Any, float]:
    """Run one spec in the current process; returns (result, wall seconds).

    This is the function worker processes execute — module-level so it
    pickles, resolving the entrypoint by name on the worker side.  With
    ``checkpoint_at`` set, the spec's registered checkpoint runner is used
    instead of the plain entrypoint: the run pauses at that sim-time,
    writes a snapshot to ``checkpoint_path``, and continues to the same
    result.  Resolving ``spec`` imports its entrypoint module, which is
    what populates the checkpoint-runner registry in this process.
    """
    func = spec.resolve()
    if checkpoint_at is not None:
        from ..checkpoint import require_checkpoint_runner, resolve_entrypoint

        runner = resolve_entrypoint(require_checkpoint_runner(spec.entrypoint))
        start = time.perf_counter()
        result = runner(dict(spec.params), checkpoint_at, checkpoint_path)
        return result, time.perf_counter() - start
    start = time.perf_counter()
    result = func(dict(spec.params))
    return result, time.perf_counter() - start


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool whose workers may be hung (terminate, don't join)."""
    for process in getattr(pool, "_processes", {}).values():
        try:
            process.terminate()
        except OSError:  # already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def default_workers() -> int:
    """Worker count when the caller does not choose: one per core, >= 1."""
    return max(os.cpu_count() or 1, 1)


def snapshot_destination(
    spec: RunSpec,
    checkpoint_at: float,
    cache: Optional[ResultCache] = None,
    checkpoint_dir: Optional[str] = None,
) -> str:
    """Where ``spec``'s mid-run snapshot lands (content-addressed).

    An explicit ``checkpoint_dir`` wins; otherwise the snapshot is keyed
    into the result cache next to the entries it can warm-start.
    """
    if checkpoint_dir is not None:
        return str(Path(checkpoint_dir) / f"{spec.key()}.t{checkpoint_at:g}.ckpt")
    if cache is not None:
        return str(cache.snapshot_path(spec, checkpoint_at))
    raise SimulationError(
        "checkpoint_at needs somewhere to write snapshots: pass "
        "checkpoint_dir or a cache"
    )


def run_specs(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    strict: bool = True,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> List[RunOutcome]:
    """Execute every spec; return outcomes in input order.

    Parameters
    ----------
    workers:
        Process count.  ``None`` uses one per core; ``0``/``1`` runs
        serially in-process (no pool, no per-run timeout enforcement).
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely and
        replay the stored result + metrics, misses are stored on success.
    timeout:
        Stall guard for the pool: if no run completes for this many
        seconds, the remaining workers are presumed hung or dead, the
        pool is killed, and the unfinished runs count one failed attempt.
    retries:
        How many times a failed (crashed / hung) run is re-attempted
        after its first try.
    strict:
        When True (default), raise :class:`SimulationError` if any run
        is still failing after all retries; when False, return its
        outcome with ``error`` set and ``result=None``.
    checkpoint_at:
        Interior sim-time at which every (non-cached) run writes a
        resumable snapshot before continuing — results are unchanged.
        Requires each spec's entrypoint to have a registered checkpoint
        runner, and ``checkpoint_dir`` or ``cache`` for the destination.
    checkpoint_dir:
        Directory for snapshot files (defaults to the cache directory).
    """
    if retries < 0:
        raise SimulationError(f"retries must be >= 0, got {retries}")
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    attempts = [0] * len(specs)
    todo: List[int] = []

    ckpt_paths: List[Optional[str]] = [None] * len(specs)
    if checkpoint_at is not None:
        ckpt_paths = [
            snapshot_destination(spec, checkpoint_at, cache=cache,
                                 checkpoint_dir=checkpoint_dir)
            for spec in specs
        ]

    for index, spec in enumerate(specs):
        entry = cache.get(spec) if cache is not None else None
        if entry is not None:
            outcomes[index] = RunOutcome(
                spec=spec, result=entry.result,
                metrics=entry.metrics.as_cached(), cached=True, attempts=0,
            )
        else:
            todo.append(index)

    def record_success(index: int, result: Any, wall: float) -> None:
        spec = specs[index]
        metrics = build_metrics(spec.describe(), wall, result,
                                attempts=attempts[index])
        outcomes[index] = RunOutcome(spec=spec, result=result, metrics=metrics,
                                     attempts=attempts[index])
        if cache is not None:
            cache.put(spec, result, metrics)

    def record_failure(index: int, message: str) -> List[int]:
        """One failed attempt; returns [index] if it should be retried."""
        if attempts[index] <= retries:
            return [index]
        spec = specs[index]
        metrics = build_metrics(spec.describe(), 0.0, None,
                                attempts=attempts[index], error=message)
        outcomes[index] = RunOutcome(spec=spec, result=None, metrics=metrics,
                                     attempts=attempts[index], error=message)
        return []

    if workers is None:
        workers = default_workers()

    if workers <= 1:
        for index in todo:
            while outcomes[index] is None:
                attempts[index] += 1
                try:
                    result, wall = execute_spec(
                        specs[index], checkpoint_at, ckpt_paths[index])
                except Exception:
                    record_failure(index, traceback.format_exc(limit=8))
                else:
                    record_success(index, result, wall)
    else:
        pending = todo
        while pending:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
            futures = {pool.submit(execute_spec, specs[index],
                                   checkpoint_at, ckpt_paths[index]): index
                       for index in pending}
            pending = []
            waiting = set(futures)
            hung = False
            try:
                while waiting:
                    done, waiting = wait(waiting, timeout=timeout,
                                         return_when=FIRST_COMPLETED)
                    if not done:
                        hung = True
                        break
                    for future in done:
                        index = futures[future]
                        attempts[index] += 1
                        try:
                            result, wall = future.result()
                        except BrokenProcessPool:
                            pending.extend(record_failure(
                                index, "worker process died (pool broken)"))
                        except Exception as exc:
                            pending.extend(record_failure(
                                index, f"{type(exc).__name__}: {exc}"))
                        else:
                            record_success(index, result, wall)
            finally:
                if hung:
                    for future in waiting:
                        index = futures[future]
                        attempts[index] += 1
                        pending.extend(record_failure(
                            index,
                            f"no completion within timeout={timeout}s; "
                            f"worker presumed hung",
                        ))
                    _kill_pool(pool)
                else:
                    pool.shutdown(wait=True, cancel_futures=True)

    final = [outcome for outcome in outcomes if outcome is not None]
    assert len(final) == len(specs), "executor dropped a run"
    if strict:
        failed = [outcome for outcome in final if not outcome.ok]
        if failed:
            detail = "; ".join(
                f"{outcome.spec.describe()}: {outcome.error}".splitlines()[-1]
                for outcome in failed[:5]
            )
            raise SimulationError(
                f"{len(failed)} of {len(specs)} runs failed after "
                f"{retries + 1} attempts: {detail}"
            )
    return final


def run_one(spec: RunSpec, cache: Optional[ResultCache] = None) -> RunOutcome:
    """Convenience: execute a single spec serially (with caching)."""
    return run_specs([spec], workers=1, cache=cache)[0]
