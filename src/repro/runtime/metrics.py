"""Per-run runtime metrics and the summary table the CLI prints.

Workers time each simulation and pull engine statistics (events executed,
drops, peak queue depth) out of the run's result; the executor folds them
into :class:`RunMetrics` records, one per run, cached alongside the
result so a cache hit still reports what the original run cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class RunMetrics:
    """What one run cost and what the engine did during it."""

    label: str
    wall_time_s: float = 0.0
    events: int = 0
    drops: int = 0
    peak_queue_depth: int = 0
    attempts: int = 1
    cached: bool = False
    error: Optional[str] = None
    #: Invariant checks the audit layer ran (0 for un-audited runs).
    audit_checks: int = 0
    #: Audit violations: ``None`` = run was not audited.  An audited run
    #: that completes has 0 (strict auditing aborts on the first one).
    violations: Optional[int] = None
    #: Per-cohort Jain index (label -> index) for runs on cohort
    #: topologies (e.g. RTT-cohort dumbbells); ``None`` otherwise.
    cohort_jain: Optional[Dict[str, float]] = None
    #: Per-cohort essential-fairness verdict (label -> True/False, or
    #: ``None`` inside the dict when the bound was uncheckable).
    cohort_bound_ok: Optional[Dict[str, Optional[bool]]] = None

    @property
    def events_per_sec(self) -> float:
        """Engine throughput (0 when the wall time is unmeasurably small)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events / self.wall_time_s

    def as_cached(self) -> "RunMetrics":
        """The same record flagged as served from the result cache."""
        return replace(self, cached=True)


def extract_sim_stats(result: Any) -> Dict[str, float]:
    """Engine statistics from a run result, if the run recorded any.

    Runs wired through the runtime attach a ``sim_stats`` mapping —
    either as a dict key (sweep rows) or as a ``stats`` attribute
    (:class:`~repro.experiments.runner.TreeExperimentResult`).  Runs that
    don't are still executable; their metrics just read zero.
    """
    if isinstance(result, dict):
        stats = result.get("sim_stats")
    else:
        stats = getattr(result, "stats", None)
    return dict(stats) if isinstance(stats, dict) else {}


def build_metrics(
    label: str,
    wall_time_s: float,
    result: Any,
    attempts: int = 1,
    cached: bool = False,
    error: Optional[str] = None,
) -> RunMetrics:
    """Fold a run's wall time and engine stats into one record."""
    stats = extract_sim_stats(result)
    cohorts = stats.get("cohorts")
    cohort_jain = cohort_bound_ok = None
    if isinstance(cohorts, dict) and cohorts:
        cohort_jain = {label: float(entry.get("jain", 0.0))
                       for label, entry in cohorts.items()}
        cohort_bound_ok = {label: entry.get("bound_ok")
                           for label, entry in cohorts.items()}
    return RunMetrics(
        label=label,
        wall_time_s=wall_time_s,
        events=int(stats.get("events", 0)),
        drops=int(stats.get("drops", 0)),
        peak_queue_depth=int(stats.get("peak_queue_depth", 0)),
        attempts=attempts,
        cached=cached,
        error=error,
        audit_checks=int(stats.get("audit_checks", 0)),
        violations=(int(stats["violations"])
                    if "violations" in stats else None),
        cohort_jain=cohort_jain,
        cohort_bound_ok=cohort_bound_ok,
    )


def metrics_table(metrics: List[RunMetrics], title: str = "runtime summary") -> str:
    """Fixed-width text table of per-run metrics plus a totals row."""
    header = (f"{'run':<40s} {'wall s':>8s} {'events':>10s} {'ev/s':>10s} "
              f"{'drops':>7s} {'peakQ':>5s} {'viol':>4s} {'tries':>5s} "
              f"{'src':>6s}")
    lines = [title, header, "-" * len(header)]
    total_wall = 0.0
    total_events = 0
    for m in metrics:
        source = "error" if m.error else ("cache" if m.cached else "run")
        label = m.label if len(m.label) <= 40 else m.label[:37] + "..."
        violations = "-" if m.violations is None else str(m.violations)
        lines.append(
            f"{label:<40s} {m.wall_time_s:>8.2f} {m.events:>10d} "
            f"{m.events_per_sec:>10.0f} {m.drops:>7d} {m.peak_queue_depth:>5d} "
            f"{violations:>4s} {m.attempts:>5d} {source:>6s}"
        )
        if m.cohort_jain:
            parts = []
            for cohort in sorted(m.cohort_jain):
                bound = (m.cohort_bound_ok or {}).get(cohort)
                verdict = ("?" if bound is None
                           else ("ok" if bound else "FAIL"))
                parts.append(
                    f"{cohort} jain={m.cohort_jain[cohort]:.3f} bound={verdict}"
                )
            lines.append(f"{'':<4s}cohorts: " + "; ".join(parts))
        if not m.cached and not m.error:
            total_wall += m.wall_time_s
            total_events += m.events
    cached = sum(1 for m in metrics if m.cached)
    failed = sum(1 for m in metrics if m.error)
    lines.append("-" * len(header))
    lines.append(
        f"{len(metrics)} runs ({cached} cached, {failed} failed); "
        f"simulated work: {total_wall:.2f} s wall, {total_events} events"
    )
    return "\n".join(lines)
