"""Run specifications: the unit of work the parallel runtime executes.

A :class:`RunSpec` names an *entrypoint* — a module-level callable as
``"package.module:function"`` — plus the keyword parameters it receives.
Entrypoints are resolved by name inside worker processes, so a spec is
always picklable regardless of what the target function closes over.

Two properties make specs the key of the whole runtime layer:

* **Canonical form** — :meth:`RunSpec.canonical` renders the spec as
  deterministic JSON (sorted keys, dataclasses flattened), so equal specs
  hash equally across processes and Python versions.
* **Content key** — :meth:`RunSpec.key` mixes the canonical form with a
  hash of the ``repro`` source tree (:func:`code_version`), so the
  on-disk result cache invalidates itself whenever the simulator's code
  changes.

Deterministic seed derivation (:func:`derive_seed`, :func:`replicate`)
uses the same CRC mixing as :class:`repro.sim.rng.RngStreams`: replica
seeds depend only on the base seed and the replica label, never on
execution order, so parallel replications are byte-identical to serial
ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

from ..errors import ConfigurationError

_SEED_PARAM = "seed"


def _canonical_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-stable primitives (sorted, order-free)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__,
                **{k: _canonical_value(v) for k, v in fields.items()}}
    if isinstance(value, Mapping):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical_value(v) for v in value)
    if isinstance(value, float) and value.is_integer():
        # 20.0 and 20 describe the same run; do not double-cache it.
        return int(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"run parameter of type {type(value).__name__} is not canonicalizable: "
        f"{value!r}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, addressable by content.

    Parameters
    ----------
    entrypoint:
        ``"module.path:function"`` of a module-level callable taking one
        ``dict`` argument (the params) and returning the run's result.
    params:
        Keyword parameters for the entrypoint.  Must canonicalize (plain
        scalars, containers, dataclasses).
    label:
        Optional human-readable name used in metric tables; defaults to
        a compact rendering of the params.
    """

    entrypoint: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.entrypoint:
            raise ConfigurationError(
                f"entrypoint must look like 'module:function': {self.entrypoint!r}"
            )

    # -- identity -------------------------------------------------------
    def canonical(self) -> str:
        """Deterministic JSON rendering of (entrypoint, params)."""
        payload = {"entrypoint": self.entrypoint,
                   "params": _canonical_value(self.params)}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def key(self, code: str = "") -> str:
        """Content hash of the spec mixed with a code-version string."""
        digest = hashlib.sha256()
        digest.update(self.canonical().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(code.encode("utf-8"))
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    # -- derivation -----------------------------------------------------
    def with_params(self, **overrides: Any) -> "RunSpec":
        """A copy with some parameters replaced."""
        params = dict(self.params)
        params.update(overrides)
        return RunSpec(self.entrypoint, params, label=self.label)

    def describe(self) -> str:
        """Short human-readable identity for tables and logs."""
        if self.label:
            return self.label
        name = self.entrypoint.rsplit(":", 1)[1]
        parts = ",".join(f"{k}={v}" for k, v in sorted(self.params.items())
                         if isinstance(v, (int, float, str, bool)))
        return f"{name}({parts})" if parts else name

    def resolve(self) -> Callable[[Dict[str, Any]], Any]:
        """Import and return the entrypoint callable."""
        module_name, _, func_name = self.entrypoint.partition(":")
        module = importlib.import_module(module_name)
        try:
            func = getattr(module, func_name)
        except AttributeError as exc:
            raise ConfigurationError(
                f"{module_name} has no attribute {func_name!r}"
            ) from exc
        if not callable(func):
            raise ConfigurationError(f"entrypoint {self.entrypoint!r} is not callable")
        return func


def derive_seed(base_seed: int, label: str) -> int:
    """Deterministically derive a child seed from a base seed and a label.

    Same mixing as :class:`repro.sim.rng.RngStreams` — stable across
    processes and Python versions (no salted ``hash``).
    """
    return (base_seed * 2654435761 + zlib.crc32(label.encode("utf-8"))) % (2**63)


def replicate(spec: RunSpec, count: int, seed_param: str = _SEED_PARAM) -> List[RunSpec]:
    """``count`` copies of ``spec`` with deterministically derived seeds.

    The i-th replica's seed depends only on the spec's base seed and
    ``i``, so replication sets are stable when ``count`` grows: the first
    ``n`` replicas of ``replicate(spec, m >= n)`` are always the same runs.
    """
    if count < 1:
        raise ConfigurationError(f"need count >= 1, got {count}")
    if seed_param not in spec.params:
        raise ConfigurationError(
            f"spec has no {seed_param!r} parameter to replicate over"
        )
    base = int(spec.params[seed_param])
    out = []
    for index in range(count):
        seed = base if index == 0 else derive_seed(base, f"replica.{index}")
        replica = spec.with_params(**{seed_param: seed})
        if spec.label:
            replica = RunSpec(replica.entrypoint, replica.params,
                              label=f"{spec.label}#{index}")
        out.append(replica)
    return out


# ----------------------------------------------------------------------
# code versioning
# ----------------------------------------------------------------------
_code_version_cache: Dict[str, str] = {}


def code_version() -> str:
    """Hash of the ``repro`` package sources, for cache invalidation.

    Any edit to any module under ``repro`` changes this digest, which
    changes every spec key, which makes the on-disk cache miss — stale
    results can never be served after a code change.  Memoized per
    process (the tree is small; hashing takes milliseconds).
    """
    cached = _code_version_cache.get("digest")
    if cached is not None:
        return cached
    import repro

    digest = hashlib.sha256()
    package_root = pathlib.Path(repro.__file__).parent
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    version = digest.hexdigest()[:16]
    _code_version_cache["digest"] = version
    return version
