"""repro.scenarios — generative workloads for the multicast fairness study.

The paper evaluates the RLA on fixed, hand-built topologies.  This
package turns workloads into first-class, seeded objects:

* :mod:`~repro.scenarios.topologies` — Waxman, transit-stub and jittered
  multicast-tree generators (dedicated ``scenario.topology`` stream);
* :mod:`~repro.scenarios.traffic` — Pareto on/off bursts and short-lived
  TCP "web mice" background traffic (``scenario.traffic`` stream);
* :mod:`~repro.scenarios.churn` — Poisson join / heavy-tailed holding
  receiver churn schedules (``scenario.churn`` stream);
* :mod:`~repro.scenarios.spec` / :mod:`~repro.scenarios.runner` — the
  declarative :class:`ScenarioSpec` and its compilation into audited,
  cacheable :class:`repro.runtime.RunSpec` runs;
* :mod:`~repro.scenarios.catalog` — the named suite behind
  ``repro scenarios list/run``.
"""

from .catalog import (
    CATALOG,
    describe_scenario,
    format_catalog,
    get_scenario,
    scenario_names,
)
from .churn import CHURN_STREAM, ChurnDriver, ChurnSpec, churn_schedule
from .grid import (
    PACKET_MIXES,
    RTT_SPREADS,
    GridSpec,
    format_grid,
    grid_cell,
    grid_specs,
    run_grid,
)
from .runner import (
    MEMBERS_STREAM,
    SCENARIO_ENTRYPOINT,
    format_scenarios,
    run_scenario,
    run_scenario_spec,
    run_scenarios,
    scenario_runspec,
)
from .spec import ScenarioSpec
from .topologies import (
    TOPOLOGY_STREAM,
    GeneratedTopology,
    JitteredTreeTopology,
    RttCohortTopology,
    TransitStubTopology,
    WaxmanTopology,
    build_topology,
)
from .traffic import (
    TRAFFIC_STREAM,
    BackgroundTraffic,
    PacketSizeMix,
    ParetoOnOffSource,
    PlacedTraffic,
    WebMiceWorkload,
    pareto_draw,
    place_traffic,
)

__all__ = [
    "CATALOG",
    "CHURN_STREAM",
    "MEMBERS_STREAM",
    "PACKET_MIXES",
    "RTT_SPREADS",
    "SCENARIO_ENTRYPOINT",
    "TOPOLOGY_STREAM",
    "TRAFFIC_STREAM",
    "BackgroundTraffic",
    "ChurnDriver",
    "ChurnSpec",
    "GeneratedTopology",
    "GridSpec",
    "JitteredTreeTopology",
    "PacketSizeMix",
    "ParetoOnOffSource",
    "PlacedTraffic",
    "RttCohortTopology",
    "ScenarioSpec",
    "TransitStubTopology",
    "WaxmanTopology",
    "WebMiceWorkload",
    "build_topology",
    "churn_schedule",
    "describe_scenario",
    "format_catalog",
    "format_grid",
    "format_scenarios",
    "get_scenario",
    "grid_cell",
    "grid_specs",
    "pareto_draw",
    "place_traffic",
    "run_grid",
    "run_scenario",
    "run_scenario_spec",
    "run_scenarios",
    "scenario_names",
    "scenario_runspec",
]
