"""Named scenario catalog: the suite the CLI lists and runs.

Each entry is a zero-argument factory so specs are built fresh per call
(immutable either way, but factories keep import time trivial) plus a
one-line description for ``repro scenarios list``.  Overrides (seed,
duration, gateway, audit) are applied through
:meth:`ScenarioSpec.replace`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError
from .churn import ChurnSpec
from .spec import ScenarioSpec
from .topologies import (
    JitteredTreeTopology,
    RttCohortTopology,
    TransitStubTopology,
    WaxmanTopology,
)
from .traffic import BackgroundTraffic, PacketSizeMix


def _waxman_churn() -> ScenarioSpec:
    """The acceptance scenario: churn + web mice on a random Waxman graph."""
    return ScenarioSpec(
        name="waxman-churn",
        topology=WaxmanTopology(n=20),
        traffic=BackgroundTraffic(tcp_flows=2, mice_rate_per_s=1.0,
                                  mice_mean_pkts=15),
        churn=ChurnSpec(arrival_rate_per_s=0.4, mean_hold_s=12.0,
                        initial_members=3, min_members=2),
        duration=30.0,
        warmup=10.0,
    )


def _waxman_steady() -> ScenarioSpec:
    return ScenarioSpec(
        name="waxman-steady",
        topology=WaxmanTopology(n=20),
        traffic=BackgroundTraffic(tcp_flows=3),
        receivers=5,
        duration=30.0,
        warmup=10.0,
    )


def _tree_churn() -> ScenarioSpec:
    return ScenarioSpec(
        name="tree-churn",
        topology=JitteredTreeTopology(depth=2, fanout=4),
        traffic=BackgroundTraffic(tcp_flows=2, pareto_sources=2,
                                  pareto_rate_pps=40.0),
        churn=ChurnSpec(arrival_rate_per_s=0.3, mean_hold_s=15.0,
                        hold_dist="pareto", initial_members=4,
                        min_members=2),
        duration=40.0,
        warmup=10.0,
    )


def _transit_stub_mice() -> ScenarioSpec:
    return ScenarioSpec(
        name="transit-stub-mice",
        topology=TransitStubTopology(transits=3, stubs_per_transit=2,
                                     hosts_per_stub=2),
        traffic=BackgroundTraffic(tcp_flows=2, mice_rate_per_s=2.0,
                                  mice_mean_pkts=25),
        receivers=6,
        duration=30.0,
        warmup=10.0,
        gateway="red",
    )


def _tree_large_churn() -> ScenarioSpec:
    """Large-group churn: a 64-leaf tree with the whole edge subscribed.

    Sized for the receiver-scaling work: all 64 leaves start as members
    (joins refill behind the leave process), so conservation-audited runs
    cover the sender's incremental min/max/reach maintenance at a group
    size where a full-rescan regression would be visible in CI wall time.
    """
    return ScenarioSpec(
        name="tree-large-churn",
        topology=JitteredTreeTopology(depth=3, fanout=4),
        traffic=BackgroundTraffic(tcp_flows=2),
        churn=ChurnSpec(arrival_rate_per_s=1.5, mean_hold_s=20.0,
                        initial_members=64, min_members=56),
        duration=30.0,
        warmup=10.0,
    )


def _tree_bursty() -> ScenarioSpec:
    return ScenarioSpec(
        name="tree-bursty",
        topology=JitteredTreeTopology(depth=3, fanout=2),
        traffic=BackgroundTraffic(tcp_flows=2, pareto_sources=3,
                                  pareto_rate_pps=60.0, pareto_on_s=0.4,
                                  pareto_off_s=1.2),
        receivers=6,
        duration=30.0,
        warmup=10.0,
    )


def _rtt_cohorts(name: str, gateway: str) -> ScenarioSpec:
    """Fast vs slow RTT cohorts racing across one AQM bottleneck.

    Four ~10 ms-RTT and four ~200 ms-RTT hosts share a 3 Mb/s dumbbell;
    background TCP lands in both cohorts, packet sizes follow a
    mice/bulk/video mix, and the report row carries per-cohort Jain and
    essential-fairness columns.  One entry per studied AQM so the matrix
    has stable, individually runnable anchor points.
    """
    return ScenarioSpec(
        name=name,
        topology=RttCohortTopology(),
        traffic=BackgroundTraffic(tcp_flows=4, mice_rate_per_s=1.0,
                                  mice_mean_pkts=15),
        receivers=4,
        duration=30.0,
        warmup=10.0,
        gateway=gateway,
        packet_sizes=PacketSizeMix(mice_weight=0.3, bulk_weight=0.5,
                                   video_weight=0.2),
    )


def _rtt_cohorts_codel() -> ScenarioSpec:
    return _rtt_cohorts("rtt-cohorts-codel", "codel")


def _rtt_cohorts_pie() -> ScenarioSpec:
    return _rtt_cohorts("rtt-cohorts-pie", "pie")


def _rtt_cohorts_red_byte() -> ScenarioSpec:
    return _rtt_cohorts("rtt-cohorts-red-byte", "red-byte")


#: name -> (factory, description)
CATALOG: Dict[str, Tuple[Callable[[], ScenarioSpec], str]] = {
    "waxman-churn": (
        _waxman_churn,
        "receiver churn + web mice over a random Waxman graph (acceptance)",
    ),
    "waxman-steady": (
        _waxman_steady,
        "fixed receiver set vs long-lived TCP on a Waxman graph",
    ),
    "tree-churn": (
        _tree_churn,
        "heavy-tailed churn + Pareto bursts on a jittered multicast tree",
    ),
    "transit-stub-mice": (
        _transit_stub_mice,
        "web-mice flash crowd on a transit-stub topology with RED gateways",
    ),
    "tree-large-churn": (
        _tree_large_churn,
        "64-receiver churn on a wide jittered tree (large-group smoke)",
    ),
    "tree-bursty": (
        _tree_bursty,
        "self-similar on/off cross traffic on a deep jittered tree",
    ),
    "rtt-cohorts-codel": (
        _rtt_cohorts_codel,
        "fast vs slow RTT cohorts + size mix across a CoDel bottleneck",
    ),
    "rtt-cohorts-pie": (
        _rtt_cohorts_pie,
        "fast vs slow RTT cohorts + size mix across a PIE bottleneck",
    ),
    "rtt-cohorts-red-byte": (
        _rtt_cohorts_red_byte,
        "fast vs slow RTT cohorts + size mix across byte-mode RED",
    ),
}


def scenario_names() -> List[str]:
    """Catalog names in listing order."""
    return list(CATALOG)


def describe_scenario(name: str) -> str:
    """The catalog one-liner for ``name``."""
    return CATALOG[_lookup(name)][1]


def get_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build the named spec, applying field overrides (seed, duration...)."""
    spec = CATALOG[_lookup(name)][0]()
    if overrides:
        spec = spec.replace(**overrides)
    return spec.validate()


def _lookup(name: str) -> str:
    if name not in CATALOG:
        known = ", ".join(scenario_names())
        raise ConfigurationError(f"unknown scenario {name!r} (known: {known})")
    return name


def format_catalog() -> str:
    """The ``repro scenarios list`` table."""
    width = max(len(name) for name in CATALOG)
    lines = []
    for name, (factory, description) in CATALOG.items():
        spec = factory()
        shape = type(spec.topology).__name__
        churn = "churn" if spec.churn is not None else "fixed"
        lines.append(f"{name:<{width}}  [{shape}, {churn}]  {description}")
    return "\n".join(lines)
