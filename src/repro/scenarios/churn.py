"""Receiver churn: join/leave schedules driving mid-session membership.

A churn schedule is generated **up front**, deterministically, from the
``scenario.churn`` RNG stream: Poisson join arrivals, exponential or
heavy-tailed (Pareto) holding times, and a ``min_members`` floor that is
enforced at generation time by delaying leaves — the RLA sender refuses
to drop its last receiver, and a schedule that never tries keeps the run
reproducible instead of depending on runtime error handling.

The :class:`ChurnDriver` then replays the schedule against a live
:class:`~repro.rla.session.RLASession`, exercising the
``add_member``/``remove_member`` tree-maintenance path.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from .traffic import pareto_draw

#: Name of the RNG stream churn schedules draw from.
CHURN_STREAM = "scenario.churn"

JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative join/leave process for one scenario.

    ``initial_members`` receivers are present from t=0; further hosts
    join as a Poisson process at ``arrival_rate_per_s`` and hold their
    membership for ``mean_hold_s`` on average (``hold_dist`` picks
    exponential or Pareto tails).  Membership never drops below
    ``min_members``.
    """

    arrival_rate_per_s: float = 0.5
    mean_hold_s: float = 10.0
    hold_dist: str = "exp"  # "exp" | "pareto"
    pareto_alpha: float = 1.5
    initial_members: int = 2
    min_members: int = 1

    def validate(self) -> "ChurnSpec":
        """Check parameter sanity; returns self for chaining."""
        if self.arrival_rate_per_s < 0:
            raise ConfigurationError(
                f"negative arrival rate: {self.arrival_rate_per_s}"
            )
        if self.mean_hold_s <= 0:
            raise ConfigurationError(f"non-positive hold time: {self.mean_hold_s}")
        if self.hold_dist not in ("exp", "pareto"):
            raise ConfigurationError(f"unknown hold_dist {self.hold_dist!r}")
        if self.hold_dist == "pareto" and self.pareto_alpha <= 1.0:
            raise ConfigurationError(f"pareto_alpha must be > 1: {self.pareto_alpha}")
        if self.initial_members < 1:
            raise ConfigurationError(
                f"need at least one initial member: {self.initial_members}"
            )
        if not (1 <= self.min_members <= self.initial_members):
            raise ConfigurationError(
                "need 1 <= min_members <= initial_members: "
                f"{self.min_members} vs {self.initial_members}"
            )
        return self


#: One schedule entry: (time, "join" | "leave", host).
ChurnEvent = Tuple[float, str, str]


def _hold(spec: ChurnSpec, rng: random.Random) -> float:
    if spec.hold_dist == "pareto":
        return pareto_draw(rng, spec.mean_hold_s, spec.pareto_alpha)
    return rng.expovariate(1.0 / spec.mean_hold_s)


def churn_schedule(
    spec: ChurnSpec, hosts: List[str], duration: float, rng: random.Random
) -> Tuple[List[str], List[ChurnEvent]]:
    """Generate ``(initial_members, events)`` for one scenario run.

    The event list is time-sorted and respects the invariants the live
    session needs: a host joins only while absent, leaves only while
    present, and the member count never goes below ``spec.min_members``
    (a leave that would violate the floor is pushed back behind the next
    join).  Hosts are drawn from ``hosts`` without replacement while any
    are free; with all hosts subscribed, further arrivals are dropped.
    """
    spec.validate()
    if len(hosts) < spec.initial_members:
        raise ConfigurationError(
            f"churn needs {spec.initial_members} initial members, "
            f"topology only offers {len(hosts)} hosts"
        )

    free = list(hosts)
    initial: List[str] = []
    for _ in range(spec.initial_members):
        initial.append(free.pop(rng.randrange(len(free))))

    # pending leave times, smallest first; entries carry (time, seq, host)
    # with a tie-breaking sequence number so ordering never compares hosts
    leaves: List[Tuple[float, int, str]] = []
    seq = 0
    for member in initial:
        heapq.heappush(leaves, (_hold(spec, rng), seq, member))
        seq += 1

    joins: List[Tuple[float, str]] = []
    if spec.arrival_rate_per_s > 0:
        t = rng.expovariate(spec.arrival_rate_per_s)
        while t < duration:
            joins.append((t, ""))  # host resolved during the replay below
            t += rng.expovariate(spec.arrival_rate_per_s)

    events: List[ChurnEvent] = []
    members = set(initial)
    join_index = 0
    while True:
        next_join = joins[join_index][0] if join_index < len(joins) else None
        next_leave = leaves[0][0] if leaves else None
        if next_join is None and next_leave is None:
            break
        take_join = next_leave is None or (
            next_join is not None and next_join <= next_leave
        )
        if take_join:
            t = next_join
            join_index += 1
            if t >= duration or not free:
                continue
            host = free.pop(rng.randrange(len(free)))
            members.add(host)
            events.append((t, JOIN, host))
            heapq.heappush(leaves, (t + _hold(spec, rng), seq, host))
            seq += 1
        else:
            t, _, host = heapq.heappop(leaves)
            if t >= duration:
                break  # every remaining leave is later still
            if len(members) <= spec.min_members:
                if join_index < len(joins) and free:
                    # floor reached: postpone this leave until just after
                    # the next join restores headroom
                    heapq.heappush(
                        leaves, (max(t, joins[join_index][0]) + 1e-9, seq, host)
                    )
                    seq += 1
                # no joins left: the member stays for the rest of the run
                continue
            members.discard(host)
            free.append(host)
            events.append((t, LEAVE, host))

    return initial, events


class ChurnDriver:
    """Replays a churn schedule against a live RLA session."""

    def __init__(self, sim, session, events: List[ChurnEvent]) -> None:
        self.sim = sim
        self.session = session
        self.events = list(events)
        self.applied: List[ChurnEvent] = []

    def start(self) -> None:
        """Schedule every churn event on the simulator."""
        for when, kind, host in self.events:
            self.sim.schedule(when, self._apply, kind, host, name=f"churn.{kind}")

    def _apply(self, kind: str, host: str) -> None:
        if kind == JOIN:
            self.session.add_member(host)
        else:
            self.session.remove_member(host)
        self.applied.append((self.sim.now, kind, host))
