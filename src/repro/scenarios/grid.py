"""The AQM × heterogeneity study grid.

The paper's essential-fairness claims are stated for drop-tail and RED
gateways on homogeneous populations.  This module builds the study
matrix that probes how far they stretch: every queue discipline in
:data:`repro.net.GATEWAY_DISCIPLINES` crossed with per-source
packet-size mixes, fast/slow RTT cohorts sharing one bottleneck, and
ECN on/off.  Each cell is an ordinary :class:`ScenarioSpec` on an
:class:`RttCohortTopology`, so audited runs, caching and checkpointing
all apply unchanged; the invalid drop-tail + ECN cell is skipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.network import GATEWAY_DISCIPLINES
from .runner import run_scenarios
from .spec import ScenarioSpec
from .topologies import RttCohortTopology
from .traffic import BackgroundTraffic, PacketSizeMix

#: Named per-source packet-size mixes.  ``None`` keeps the uniform
#: 1000-byte default (and the historical RNG draw sequence).
PACKET_MIXES: Dict[str, Optional[PacketSizeMix]] = {
    "uniform": None,
    "trimodal": PacketSizeMix(mice_weight=0.3, bulk_weight=0.5,
                              video_weight=0.2),
    "video": PacketSizeMix(mice_weight=0.1, bulk_weight=0.3,
                           video_weight=0.6),
}

#: Named RTT spreads: (fast_delay_ms, slow_delay_ms) access one-way
#: propagation per cohort.  "narrow" keeps both cohorts close (~20 ms
#: RTT); "wide" pits ~10 ms RTTs against ~200 ms ones.
RTT_SPREADS: Dict[str, Tuple[float, float]] = {
    "narrow": (4.0, 8.0),
    "wide": (3.0, 95.0),
}

#: Grid backends: packet-level scenario runs, or the mean-field fluid
#: model of :mod:`repro.fluid` (disciplines droptail/red, uniform
#: packets, no ECN — the envelope the fluid dynamics cover).
GRID_BACKENDS = ("packet", "fluid")

#: The queue disciplines the fluid backend models.
FLUID_GRID_DISCIPLINES = ("droptail", "red")


@dataclass(frozen=True)
class GridSpec:
    """Which slice of the full matrix to build.

    Empty tuples mean "every value of that axis".  ``seed`` is shared by
    every cell so rows differ only along the studied dimensions.  On the
    ``fluid`` backend the mix and ECN axes collapse (uniform packets,
    ECN off — all the fluid model covers) and ``scale`` multiplies every
    cell's population and capacity together, which is how the matrix
    extends to 10⁵–10⁶ flows without simulating a single packet.
    """

    disciplines: Tuple[str, ...] = ()
    mixes: Tuple[str, ...] = ()
    spreads: Tuple[str, ...] = ()
    ecn_modes: Tuple[bool, ...] = (False, True)
    duration: float = 20.0
    warmup: float = 5.0
    seed: int = 1
    audited: bool = False
    backend: str = "packet"
    #: Population multiplier for fluid cells (1.0 = the packet twin).
    scale: float = 1.0

    def validate(self) -> "GridSpec":
        """Check every axis value against its registry; return self."""
        if self.backend not in GRID_BACKENDS:
            raise ConfigurationError(
                f"unknown grid backend {self.backend!r}; "
                f"expected one of {GRID_BACKENDS}"
            )
        disciplines = (GATEWAY_DISCIPLINES if self.backend == "packet"
                       else FLUID_GRID_DISCIPLINES)
        for gw in self.disciplines:
            if gw not in disciplines:
                raise ConfigurationError(
                    f"unknown gateway type {gw!r} for {self.backend} grid; "
                    f"expected one of {disciplines}"
                )
        for mix in self.mixes:
            if mix not in PACKET_MIXES:
                raise ConfigurationError(
                    f"unknown packet mix {mix!r}; "
                    f"expected one of {tuple(PACKET_MIXES)}"
                )
        for spread in self.spreads:
            if spread not in RTT_SPREADS:
                raise ConfigurationError(
                    f"unknown RTT spread {spread!r}; "
                    f"expected one of {tuple(RTT_SPREADS)}"
                )
        if self.backend == "fluid":
            if self.scale < 1.0:
                raise ConfigurationError(
                    f"fluid grid scale must be >= 1: {self.scale}"
                )
            if self.audited:
                raise ConfigurationError(
                    "the conservation auditor tracks packets; a fluid "
                    "grid has none to audit"
                )
            if self.mixes and self.mixes != ("uniform",):
                raise ConfigurationError(
                    "fluid grid models uniform packet sizes only; "
                    f"requested mixes {self.mixes}"
                )
            if True in self.ecn_modes:
                raise ConfigurationError(
                    "fluid grid has no ECN model; use --ecn off"
                )
        elif self.scale != 1.0:
            raise ConfigurationError(
                "scale is a fluid-backend knob; the packet grid runs "
                "its literal population"
            )
        return self


def grid_cell(
    gateway: str,
    mix: str,
    spread: str,
    ecn: bool,
    duration: float = 20.0,
    warmup: float = 5.0,
    seed: int = 1,
    audited: bool = False,
) -> ScenarioSpec:
    """One validated cell of the matrix as a runnable :class:`ScenarioSpec`."""
    fast_ms, slow_ms = RTT_SPREADS[spread]
    name = f"grid {gateway} mix={mix} rtt={spread} ecn={'on' if ecn else 'off'}"
    return ScenarioSpec(
        name=name,
        topology=RttCohortTopology(fast_delay_ms=fast_ms,
                                   slow_delay_ms=slow_ms),
        traffic=BackgroundTraffic(tcp_flows=4, mice_rate_per_s=1.0,
                                  mice_mean_pkts=15),
        receivers=4,
        duration=duration,
        warmup=warmup,
        seed=seed,
        gateway=gateway,
        ecn=ecn,
        packet_sizes=PACKET_MIXES[mix],
        audited=audited,
    ).validate()


def grid_specs(grid: GridSpec) -> List[ScenarioSpec]:
    """Every valid cell of the requested slice, in deterministic order.

    Drop-tail + ECN cells are skipped (drop-tail has no early
    notification to convert into a CE mark), so a full grid over the six
    disciplines yields ``6 * mixes * spreads * 2 - mixes * spreads``
    specs rather than the naive product.
    """
    grid.validate()
    disciplines = grid.disciplines or GATEWAY_DISCIPLINES
    mixes = grid.mixes or tuple(PACKET_MIXES)
    spreads = grid.spreads or tuple(RTT_SPREADS)
    specs = []
    for gateway in disciplines:
        for mix in mixes:
            for spread in spreads:
                for ecn in grid.ecn_modes:
                    if ecn and gateway == "droptail":
                        continue
                    specs.append(grid_cell(
                        gateway, mix, spread, ecn,
                        duration=grid.duration, warmup=grid.warmup,
                        seed=grid.seed, audited=grid.audited,
                    ))
    return specs


def fluid_grid_cell(
    gateway: str,
    spread: str,
    duration: float = 20.0,
    warmup: float = 5.0,
    seed: int = 1,
    scale: float = 1.0,
):
    """One fluid cell: the mean-field twin of :func:`grid_cell`'s system.

    Returns a :class:`repro.fluid.FluidSpec` describing the same
    RTT-cohort dumbbell — same bottleneck, buffer, RED thresholds and
    cohort RTTs — with populations and capacity multiplied by ``scale``.
    """
    from ..fluid.adapters import cohort_fluid_spec

    fast_ms, slow_ms = RTT_SPREADS[spread]
    base = grid_cell(gateway, "uniform", spread, False,
                     duration=duration, warmup=warmup, seed=seed)
    return cohort_fluid_spec(
        topology=base.topology,
        gateway=gateway,
        tcp_flows=base.traffic.tcp_flows,
        receivers=base.receivers,
        duration=duration,
        warmup=warmup,
        seed=seed,
        scale=scale,
        name=f"grid {gateway} rtt={spread} scale={scale:g}",
    )


def fluid_grid_specs(grid: GridSpec) -> List[Any]:
    """Every fluid cell of the requested slice, in deterministic order."""
    grid.validate()
    disciplines = grid.disciplines or FLUID_GRID_DISCIPLINES
    spreads = grid.spreads or tuple(RTT_SPREADS)
    return [
        fluid_grid_cell(gateway, spread, duration=grid.duration,
                        warmup=grid.warmup, seed=grid.seed,
                        scale=grid.scale)
        for gateway in disciplines
        for spread in spreads
    ]


def run_grid(
    grid: GridSpec,
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """Run the slice and return ``(specs, rows)`` in matching order.

    Delegates to :func:`repro.scenarios.run_scenarios` (packet) or
    :func:`repro.fluid.run_fluids` (fluid), so workers and the
    content-addressed cache behave exactly as for ``scenarios run``.
    """
    if grid.validate().backend == "fluid":
        from ..fluid.runner import run_fluids

        fluid_specs = fluid_grid_specs(grid)
        return fluid_specs, run_fluids(fluid_specs, workers=workers,
                                       cache=cache, outcomes=outcomes)
    specs = grid_specs(grid)
    rows = run_scenarios(specs, workers=workers, cache=cache,
                         outcomes=outcomes)
    return specs, rows


def _cohort_cell(row: Dict[str, Any], cohort: str) -> str:
    entry = row.get("cohorts", {}).get(cohort)
    if not entry:
        return f"{'-':>6} {'-':>5}"
    bound = entry.get("bound_ok")
    verdict = "?" if bound is None else ("ok" if bound else "FAIL")
    return f"{entry['jain']:6.3f} {verdict:>5}"


def format_grid(specs: Sequence[ScenarioSpec],
                rows: Iterable[Dict[str, Any]]) -> str:
    """Fixed-width matrix table: one line per cell, cohort columns."""
    header = (f"{'gateway':<13} {'mix':<9} {'rtt':<7} {'ecn':<4} "
              f"{'rla':>8} {'ratio':>7} {'jain':>6} "
              f"{'fastJ':>6} {'fastB':>5} {'slowJ':>6} {'slowB':>5} "
              f"{'viol':>4}")
    lines = [header, "-" * len(header)]
    for spec, row in zip(specs, rows):
        parts = spec.name.split()
        mix = parts[2].split("=", 1)[1] if len(parts) > 2 else "-"
        spread = parts[3].split("=", 1)[1] if len(parts) > 3 else "-"
        ratio = row["ratio"]
        ratio_s = f"{ratio:7.3f}" if not math.isnan(ratio) else f"{'-':>7}"
        violations = row.get("sim_stats", {}).get("violations", "-")
        lines.append(
            f"{spec.gateway:<13} {mix:<9} {spread:<7} "
            f"{'on' if spec.ecn else 'off':<4} "
            f"{row['rla_pps']:8.2f} {ratio_s} {row['jain']:6.3f} "
            f"{_cohort_cell(row, 'fast')} {_cohort_cell(row, 'slow')} "
            f"{violations!s:>4}"
        )
    return "\n".join(lines)
