"""Scenario execution: compile a :class:`ScenarioSpec` into one run.

:func:`run_scenario` is a pure function of the spec — topology, traffic
and churn randomness all come from dedicated named RNG streams of the
run's seed, so the same spec yields byte-identical results in any
process.  :func:`scenario_runspec` wraps a spec as a content-addressed
:class:`repro.runtime.RunSpec` so scenario suites inherit the process
pool, the on-disk result cache and the ``--audit`` machinery.

Reported per scenario: the RLA session's reliable throughput, the
slowest competing TCP flow's throughput (the paper's WTCP row), their
ratio, and Jain's fairness index over the RLA + all long-lived TCP
allocations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..models.fairness import DROPTAIL, RED, check_essential_fairness, jain_index
from ..rla.config import RLAConfig
from ..rla.session import RLASession
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..units import DEFAULT_PACKET_SIZE
from .churn import CHURN_STREAM, ChurnDriver, churn_schedule
from .spec import ScenarioSpec
from .topologies import build_topology
from .traffic import TRAFFIC_STREAM, place_traffic

#: Name of the RNG stream that draws the receiver set when there is no churn.
MEMBERS_STREAM = "scenario.members"


@dataclass
class ScenarioWorld:
    """A live (or restored) scenario run between build and report.

    Like :class:`repro.experiments.runner.TreeWorld`, this is the unit
    :mod:`repro.checkpoint` snapshots — the whole object graph (engine,
    topology, traffic, churn driver, audit ledgers) pickles at once.
    """

    spec: ScenarioSpec
    sim: Simulator
    topo: Any
    gateways: List[Any]
    placed: Any
    session: RLASession
    driver: ChurnDriver
    auditor: Any = None
    monitor: Any = None
    #: True once the warmup boundary has been crossed and counters marked.
    marked: bool = False

    @property
    def end_time(self) -> float:
        """Absolute sim-time at which the scenario ends."""
        return self.spec.horizon

    def rearm(self) -> None:
        """Re-install process-global audit state after a restore."""
        if self.auditor is not None:
            self.auditor.rearm()

    def disarm(self) -> None:
        """Release process-global audit state (safe to call when unaudited)."""
        if self.auditor is not None:
            self.auditor.detach()
            self.sim.event_hook = None


def build_scenario_world(spec: ScenarioSpec) -> ScenarioWorld:
    """Construct topology, membership, traffic and churn for one scenario.

    On an audited spec this installs the process-global packet-creation
    hook; callers must eventually :meth:`ScenarioWorld.disarm` (the run
    helpers below do so in ``finally`` blocks).
    """
    spec.validate()
    sim = Simulator(seed=spec.seed)
    mean_pkt = (spec.packet_sizes.mean_size if spec.packet_sizes is not None
                else DEFAULT_PACKET_SIZE)
    topo = build_topology(sim, spec.topology, spec.gateway, ecn=spec.ecn,
                          mean_packet_size=mean_pkt)

    # -- membership: fixed draw or churn schedule ----------------------
    churn_rng = sim.rng.stream(CHURN_STREAM)
    if spec.churn is not None:
        initial, events = churn_schedule(
            spec.churn, topo.hosts, spec.horizon, churn_rng
        )
    else:
        from ..errors import ConfigurationError

        if spec.receivers > len(topo.hosts):
            raise ConfigurationError(
                f"scenario {spec.name!r} wants {spec.receivers} receivers, "
                f"topology only generated {len(topo.hosts)} hosts"
            )
        members_rng = sim.rng.stream(MEMBERS_STREAM)
        pool = list(topo.hosts)
        initial = [pool.pop(members_rng.randrange(len(pool)))
                   for _ in range(spec.receivers)]
        events = []

    # -- observability: native queue peaks, optional conservation audit --
    gateways = [link.gateway for link in topo.net.links.values()]
    auditor = monitor = None
    if spec.audited:
        from ..audit import ConservationAuditor, FlightRecorder, InvariantMonitor

        recorder = FlightRecorder()
        monitor = InvariantMonitor(recorder)
        auditor = ConservationAuditor(sim, monitor=monitor, recorder=recorder)
        auditor.attach(topo.net)
        sim.event_hook = recorder.observe_event

    try:
        # -- background traffic then the multicast session -------------
        # ECN/mix kwargs are passed only when the spec opts in, so
        # opted-out scenarios construct the exact objects (and consume
        # the exact RNG sequences) they always have.
        traffic_rng = sim.rng.stream(TRAFFIC_STREAM)
        tcp_config = TcpConfig(ecn=True) if spec.ecn else None
        placed = place_traffic(
            sim, topo.net, spec.traffic, topo.hosts, topo.source,
            duration=spec.horizon, rng=traffic_rng,
            tcp_config=tcp_config, packet_sizes=spec.packet_sizes,
        )
        for flow in placed.tcp_flows:
            flow.sender.monitor = monitor
        rla_config = RLAConfig(ecn=True) if spec.ecn else None
        session = RLASession(sim, topo.net, "rla-0", topo.source, initial,
                             config=rla_config)
        session.sender.monitor = monitor
        session.start(0.05)
        driver = ChurnDriver(sim, session, events)
        driver.start()
    except BaseException:
        if auditor is not None:
            auditor.detach()
            sim.event_hook = None
        raise

    return ScenarioWorld(
        spec=spec, sim=sim, topo=topo, gateways=gateways, placed=placed,
        session=session, driver=driver, auditor=auditor, monitor=monitor,
    )


def advance_scenario_world(world: ScenarioWorld, until: float) -> None:
    """Run forward to absolute sim-time ``until``, marking at the warmup.

    Splitting the run at any interior time executes the identical event
    sequence as one straight run — the checkpoint byte-identity oracle
    rests on this equivalence.
    """
    spec = world.spec
    if until > world.end_time:
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"cannot advance to t={until}: scenario ends at t={world.end_time}"
        )
    if not world.marked:
        world.sim.run(until=min(until, spec.warmup))
        if until >= spec.warmup:
            world.session.mark()
            for flow in world.placed.tcp_flows:
                flow.mark()
            world.marked = True
    if until > spec.warmup:
        world.sim.run(until=until)


def finalize_scenario_world(world: ScenarioWorld) -> Dict[str, Any]:
    """Collect the report row from a fully advanced scenario world."""
    spec = world.spec
    sim = world.sim
    placed = world.placed
    rla = world.session.report()
    tcp_rates = [flow.report()["throughput_pps"]
                 for flow in placed.tcp_flows]
    rla_pps = max(rla["throughput_pps"], 0.0)
    wtcp = min(tcp_rates) if tcp_rates else float("nan")
    ratio = rla_pps / wtcp if tcp_rates and wtcp > 0 else float("nan")
    jain = (jain_index([rla_pps] + [max(r, 0.0) for r in tcp_rates])
            if tcp_rates else 1.0)

    sim_stats: Dict[str, float] = {
        "events": sim.events_executed,
        "drops": sum(gw.dropped for gw in world.gateways),
        "peak_queue_depth": max(gw.peak_depth for gw in world.gateways),
        "sim_time": sim.now,
    }
    # Extra accounting for the new AQM disciplines only: legacy drop-tail
    # and packet-mode RED rows keep their exact key set (byte identity
    # with pre-matrix outputs).
    if spec.gateway not in ("droptail", "red") or spec.ecn:
        sim_stats["evicted"] = sum(gw.evicted for gw in world.gateways)
        sim_stats["ecn_marks"] = sum(getattr(gw, "ecn_marks", 0)
                                     for gw in world.gateways)
    if world.auditor is not None:
        monitor = world.monitor
        for flow in placed.tcp_flows:
            monitor.check_tcp(flow.sender)
        if placed.mice is not None:
            for mouse in placed.mice.mice:
                monitor.check_tcp(mouse.sender)
        monitor.check_rla(world.session.sender)
        world.auditor.verify()
        sim_stats["audit_checks"] = monitor.checks_run
        sim_stats["violations"] = monitor.violation_count

    # -- per-cohort fairness (RTT-cohort topologies only) ---------------
    # Emitted only when the topology labelled its hosts, so cohort-less
    # scenario rows keep their historical key set exactly.
    cohort_rows = _cohort_fairness(world, rla_pps, tcp_rates)
    if cohort_rows:
        sim_stats["cohorts"] = cohort_rows

    row: Dict[str, Any] = {
        "scenario": spec.name,
        "topology": type(spec.topology).__name__,
        "gateway": spec.gateway,
        "seed": spec.seed,
        "n_nodes": len(world.topo.net.nodes),
        "n_links": world.topo.n_links,
        "rla_pps": rla_pps,
        "wtcp_pps": wtcp,
        "ratio": ratio,
        "jain": jain,
        "n_receivers": rla["n_receivers"],
        "joins": rla["member_joins"],
        "leaves": rla["member_leaves"],
        "churn_applied": len(world.driver.applied),
        "num_trouble": rla["num_trouble"],
        "rtx_multicast": rla["rtx_multicast"],
        "rtx_unicast": rla["rtx_unicast"],
        "sim_stats": sim_stats,
    }
    if cohort_rows:
        row["cohorts"] = cohort_rows
    if placed.mice is not None:
        row.update(placed.mice.stats())
    return row


def _cohort_fairness(
    world: ScenarioWorld, rla_pps: float, tcp_rates: List[float]
) -> Dict[str, Dict[str, Any]]:
    """Per-cohort Jain indices and essential-fairness verdicts.

    Each cohort is scored as the RLA session vs the long-lived TCP flows
    whose receivers sit in that cohort: the Jain index over those
    allocations, plus the Theorem I/II bound check of ``rla / wtcp``
    against the cohort's slowest flow (drop-tail uses the Theorem II
    constants; every AQM is scored with the RED constants — they all
    share RED's uniform-loss-probability property the theorem needs).
    ``bound_ok`` is ``None`` when a throughput is zero or the cohort has
    no TCP flow to compare against.
    """
    cohorts = getattr(world.topo, "cohorts", {})
    if not cohorts:
        return {}
    spec = world.spec
    bound_gateway = DROPTAIL if spec.gateway == "droptail" else RED
    n = max(1, world.session.sender.n_receivers)
    by_label: Dict[str, List[float]] = {}
    for (flow_id, dst), rate in zip(world.placed.tcp_placements, tcp_rates):
        label = cohorts.get(dst)
        if label is not None:
            by_label.setdefault(label, []).append(max(rate, 0.0))
    result: Dict[str, Dict[str, Any]] = {}
    for label in sorted(set(cohorts.values())):
        rates = by_label.get(label, [])
        wtcp = min(rates) if rates else float("nan")
        entry: Dict[str, Any] = {
            "n_flows": len(rates),
            "wtcp_pps": wtcp,
            "jain": jain_index([rla_pps] + rates) if rates else 1.0,
            "ratio": (rla_pps / wtcp if rates and wtcp > 0 else float("nan")),
            "bound_ok": None,
        }
        if rates and wtcp > 0 and rla_pps > 0:
            verdict = check_essential_fairness(rla_pps, wtcp, n, bound_gateway)
            entry["bound_ok"] = verdict.fair
            entry["bound_lower"] = verdict.lower
            entry["bound_upper"] = verdict.upper
        result[label] = entry
    return result


#: Resume entrypoint recorded in scenario snapshots.
SCENARIO_RESUME_ENTRYPOINT = "repro.scenarios.runner:resume_scenario_world"


def resume_scenario_world(world: ScenarioWorld) -> Dict[str, Any]:
    """Finish a restored scenario: run to the end and report (then disarm)."""
    try:
        advance_scenario_world(world, world.end_time)
        return finalize_scenario_world(world)
    finally:
        world.disarm()


def run_scenario(
    spec: ScenarioSpec,
    checkpoint_at: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute one scenario and return its JSON-friendly report row.

    With ``checkpoint_at`` set, the run pauses at that interior sim-time,
    captures a :class:`repro.checkpoint.Snapshot` (written to
    ``checkpoint_path`` when given), and continues — the returned row is
    identical to an uncheckpointed run.
    """
    world = build_scenario_world(spec)
    try:
        if checkpoint_at is not None:
            snapshot = snapshot_scenario_world(world, at=checkpoint_at)
            if checkpoint_path is not None:
                from ..checkpoint import save

                save(snapshot, checkpoint_path)
        advance_scenario_world(world, world.end_time)
        return finalize_scenario_world(world)
    finally:
        world.disarm()


def snapshot_scenario_world(world: ScenarioWorld, at: Optional[float] = None,
                            label: str = ""):
    """Advance to ``at`` (if given) and capture a resumable snapshot."""
    from ..checkpoint import capture

    if at is not None:
        if not 0.0 <= at < world.end_time:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"checkpoint time {at} outside [0, {world.end_time})"
            )
        advance_scenario_world(world, at)
    return capture(
        world,
        label=label or f"{world.spec.name}@t={world.sim.now:g}",
        resume=SCENARIO_RESUME_ENTRYPOINT,
    )


def checkpoint_scenario(spec: ScenarioSpec, at: float,
                        path: Optional[str] = None):
    """Run a fresh scenario up to ``at`` and return (and save) a snapshot."""
    world = build_scenario_world(spec)
    try:
        snapshot = snapshot_scenario_world(world, at=at)
    finally:
        world.disarm()
    if path is not None:
        from ..checkpoint import save

        save(snapshot, path)
    return snapshot


# ----------------------------------------------------------------------
# parallel-runtime wiring
# ----------------------------------------------------------------------
#: Entrypoint path worker processes resolve to run one scenario.
SCENARIO_ENTRYPOINT = "repro.scenarios.runner:run_scenario_spec"


SCENARIO_CHECKPOINT_RUNNER = (
    "repro.scenarios.runner:run_scenario_spec_checkpointed"
)


def run_scenario_spec(params: Dict[str, Any]) -> Dict[str, Any]:
    """:mod:`repro.runtime` entrypoint: ``params = {"spec": ScenarioSpec}``."""
    return run_scenario(params["spec"])


def run_scenario_spec_checkpointed(
    params: Dict[str, Any],
    checkpoint_at: float,
    checkpoint_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Checkpoint-capable variant of :func:`run_scenario_spec`."""
    return run_scenario(
        params["spec"], checkpoint_at=checkpoint_at,
        checkpoint_path=checkpoint_path,
    )


def _register_checkpoint_runner() -> None:
    from ..checkpoint import register_checkpoint_runner

    register_checkpoint_runner(SCENARIO_ENTRYPOINT, SCENARIO_CHECKPOINT_RUNNER)


_register_checkpoint_runner()


def scenario_runspec(spec: ScenarioSpec):
    """A content-addressed RunSpec for one scenario."""
    from ..runtime import RunSpec

    return RunSpec(
        SCENARIO_ENTRYPOINT,
        {"spec": spec, "seed": spec.seed},
        label=f"scenario {spec.name} seed={spec.seed} ({spec.gateway})",
    )


def run_scenarios(
    specs: List[ScenarioSpec],
    workers: Optional[int] = None,
    cache=None,
    outcomes: Optional[List[Any]] = None,
    checkpoint_at: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run scenarios serially, or fan out through :mod:`repro.runtime`.

    With ``workers``/``cache`` set the rows are byte-identical to the
    serial path — scenarios draw only from their own seeded streams.
    ``checkpoint_at`` makes every non-cached run write a resumable
    snapshot at that interior sim-time (to ``checkpoint_dir`` or the
    cache directory) on its way to the same row.
    """
    if workers is None and cache is None and checkpoint_at is None:
        return [run_scenario(spec) for spec in specs]
    from ..runtime import run_specs

    run_specs_list = [scenario_runspec(spec) for spec in specs]
    outs = run_specs(run_specs_list, workers=workers, cache=cache,
                     checkpoint_at=checkpoint_at,
                     checkpoint_dir=checkpoint_dir)
    if outcomes is not None:
        outcomes.extend(outs)
    return [out.result for out in outs]


def format_scenarios(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width scenario table: fairness, churn and audit columns."""
    header = (f"{'scenario':<20} {'topology':<22} {'rla':>8} {'wtcp':>8} "
              f"{'ratio':>7} {'jain':>6} {'recv':>4} {'join':>4} {'leave':>5} "
              f"{'viol':>4}")
    lines = [header, "-" * len(header)]
    for row in rows:
        violations = row.get("sim_stats", {}).get("violations", "-")
        ratio = row["ratio"]
        ratio_s = f"{ratio:7.3f}" if not math.isnan(ratio) else f"{'-':>7}"
        wtcp = row["wtcp_pps"]
        wtcp_s = f"{wtcp:8.2f}" if not math.isnan(wtcp) else f"{'-':>8}"
        lines.append(
            f"{row['scenario']:<20} {row['topology']:<22} "
            f"{row['rla_pps']:8.2f} {wtcp_s} {ratio_s} {row['jain']:6.3f} "
            f"{row['n_receivers']:4d} {row['joins']:4d} {row['leaves']:5d} "
            f"{violations!s:>4}"
        )
    return "\n".join(lines)
