"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, canonicalizable description of one
complete workload: a generated topology, a background-traffic mix, an
optional receiver-churn process, and the run window.  Because it is a
plain dataclass tree it flows straight into
:class:`repro.runtime.RunSpec` params — content-addressed caching,
process-pool fan-out and ``--audit`` all come for free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import ConfigurationError
from ..net.network import GATEWAY_DISCIPLINES
from .churn import ChurnSpec
from .topologies import (
    JitteredTreeTopology,
    RttCohortTopology,
    TransitStubTopology,
    WaxmanTopology,
)
from .traffic import BackgroundTraffic, PacketSizeMix

Topology = Union[WaxmanTopology, TransitStubTopology, JitteredTreeTopology,
                 RttCohortTopology]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seeded workload scenario.

    ``receivers`` is the multicast population when there is no churn;
    with a :class:`ChurnSpec` the churn process governs membership and
    ``receivers`` is ignored.  ``duration`` is the measured window after
    ``warmup`` seconds; churn and background traffic run over the whole
    ``warmup + duration`` horizon.
    """

    name: str
    topology: Topology = field(default_factory=WaxmanTopology)
    traffic: BackgroundTraffic = field(default_factory=BackgroundTraffic)
    churn: Optional[ChurnSpec] = None
    receivers: int = 4
    duration: float = 30.0
    warmup: float = 10.0
    seed: int = 1
    #: Queue discipline on generated links — any name in
    #: :data:`repro.net.GATEWAY_DISCIPLINES` (droptail, red, red-byte,
    #: red-adaptive, codel, pie).
    gateway: str = "droptail"
    #: ECN: gateways CE-mark ECT packets instead of early-dropping, and
    #: TCP/RLA endpoints negotiate ECT + react to echoed marks.  Invalid
    #: with drop-tail, which has no early-notification mechanism.
    ecn: bool = False
    #: Per-source packet-size heterogeneity; ``None`` keeps the uniform
    #: 1000-byte default (and the historical RNG draw sequence).
    packet_sizes: Optional[PacketSizeMix] = None
    audited: bool = False

    def validate(self) -> "ScenarioSpec":
        """Check field sanity (and nested specs); returns self for chaining."""
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigurationError(
                f"need duration > 0 and warmup >= 0: "
                f"duration={self.duration}, warmup={self.warmup}"
            )
        if self.gateway not in GATEWAY_DISCIPLINES:
            raise ConfigurationError(
                f"unknown gateway type {self.gateway!r}; "
                f"expected one of {GATEWAY_DISCIPLINES}"
            )
        if self.ecn and self.gateway == "droptail":
            raise ConfigurationError(
                "ecn=True needs an AQM gateway: drop-tail has no early "
                "notification to convert into a CE mark"
            )
        self.topology.validate()
        self.traffic.validate()
        if self.packet_sizes is not None:
            self.packet_sizes.validate()
        if self.churn is not None:
            self.churn.validate()
        elif self.receivers < 1:
            raise ConfigurationError(
                f"need at least one receiver without churn: {self.receivers}"
            )
        return self

    @property
    def horizon(self) -> float:
        """Total simulated time: warmup plus the measured window."""
        return self.warmup + self.duration

    def replace(self, **overrides) -> "ScenarioSpec":
        """A copy with some fields overridden (``dataclasses.replace``)."""
        return dataclasses.replace(self, **overrides)
