"""Seeded random topology generators for the scenario suite.

Three families, all emitting ordinary :class:`~repro.net.network.Network`
objects with per-link bandwidth/delay/buffer draws from one dedicated RNG
stream (``scenario.topology``), so a topology is a pure function of the
scenario seed:

* **Waxman** — the classic random graph of Waxman '88: nodes scattered in
  the unit square, edge probability ``alpha * exp(-d / (beta * L))``
  decaying with Euclidean distance.  Components are stitched together
  deterministically so the graph is always connected.
* **Transit-stub** — a small transit core (ring) with stub domains hanging
  off each transit router and hosts behind each stub router, the
  GT-ITM-style structure of real inter-domain topologies.
* **Jittered multicast tree** — the paper's k-ary tree shape, but with
  per-link delay/bandwidth jitter so no two branches are identical and
  phase effects cannot hide in symmetry.

Every generator returns a :class:`GeneratedTopology` naming the multicast
source and the candidate receiver hosts; scenario specs draw receiver
sets and churn schedules from those hosts.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from ..errors import TopologyError
from ..net.network import (
    Network,
    QueueFactory,
    discipline_factory,
    droptail_factory,
)
from ..sim.engine import Simulator
from ..units import DEFAULT_PACKET_SIZE, mbps, ms

#: Name of the RNG stream every generator draws from.
TOPOLOGY_STREAM = "scenario.topology"


# ----------------------------------------------------------------------
# topology specifications (canonicalizable, frozen, picklable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaxmanTopology:
    """Waxman random graph: ``n`` nodes in the unit square.

    ``bandwidth_mbps``/``delay_ms``/``buffer_pkts`` are uniform draw
    ranges applied per link.  ``alpha`` scales overall edge density;
    ``beta`` controls how sharply probability decays with distance.
    """

    n: int = 24
    alpha: float = 0.5
    beta: float = 0.25
    bandwidth_mbps: Tuple[float, float] = (1.5, 6.0)
    delay_ms: Tuple[float, float] = (2.0, 15.0)
    buffer_pkts: Tuple[int, int] = (15, 40)

    def validate(self) -> "WaxmanTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.n < 3:
            raise TopologyError(f"Waxman graph needs >= 3 nodes, got {self.n}")
        if not (0.0 < self.alpha <= 1.0) or self.beta <= 0.0:
            raise TopologyError(
                f"need 0 < alpha <= 1 and beta > 0: alpha={self.alpha}, beta={self.beta}"
            )
        _check_range("bandwidth_mbps", self.bandwidth_mbps)
        _check_range("delay_ms", self.delay_ms)
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


@dataclass(frozen=True)
class TransitStubTopology:
    """Transit core ring with stub domains and hosts (GT-ITM shape)."""

    transits: int = 3
    stubs_per_transit: int = 2
    hosts_per_stub: int = 3
    transit_bandwidth_mbps: Tuple[float, float] = (20.0, 40.0)
    transit_delay_ms: Tuple[float, float] = (8.0, 25.0)
    stub_bandwidth_mbps: Tuple[float, float] = (1.5, 6.0)
    stub_delay_ms: Tuple[float, float] = (1.0, 6.0)
    buffer_pkts: Tuple[int, int] = (15, 40)

    def validate(self) -> "TransitStubTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.transits < 1 or self.stubs_per_transit < 1 or self.hosts_per_stub < 1:
            raise TopologyError(
                "transit-stub needs >= 1 transit, stub and host per level"
            )
        _check_range("transit_bandwidth_mbps", self.transit_bandwidth_mbps)
        _check_range("transit_delay_ms", self.transit_delay_ms)
        _check_range("stub_bandwidth_mbps", self.stub_bandwidth_mbps)
        _check_range("stub_delay_ms", self.stub_delay_ms)
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


@dataclass(frozen=True)
class JitteredTreeTopology:
    """k-ary multicast tree with per-link delay/bandwidth jitter.

    Interior links are fast and short, leaf links slow and long (the
    paper's figure-6 proportions); ``jitter`` is the +/- relative spread
    drawn per link, so the branches are heterogeneous.
    """

    depth: int = 3
    fanout: int = 3
    interior_bandwidth_mbps: float = 50.0
    interior_delay_ms: float = 5.0
    leaf_bandwidth_mbps: float = 1.6
    leaf_delay_ms: float = 40.0
    jitter: float = 0.3
    buffer_pkts: Tuple[int, int] = (15, 30)

    def validate(self) -> "JitteredTreeTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.depth < 1 or self.fanout < 1:
            raise TopologyError("tree needs depth >= 1 and fanout >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise TopologyError(f"jitter must be in [0, 1): {self.jitter}")
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


@dataclass(frozen=True)
class RttCohortTopology:
    """Dumbbell with fast and slow receiver cohorts on one bottleneck.

    The classic RTT-unfairness shape: every flow crosses the same
    ``GL -- GR`` bottleneck (the only link running the discipline under
    test), but access links behind ``GR`` split the hosts into a *fast*
    cohort (~10 ms RTT to the source) and a *slow* cohort (~200 ms RTT
    by default).  TCP throughput scales like 1/RTT, so the cohort
    structure stresses exactly the heterogeneity the paper's 1998
    evaluation never covered; the scenario runner reports per-cohort
    Jain indices and bound verdicts keyed by the labels recorded in
    :attr:`GeneratedTopology.cohorts`.
    """

    fast_hosts: int = 4
    slow_hosts: int = 4
    #: One-way access delay per cohort (RTT ~= 2 * (access + bottleneck
    #: + source-side delays)).
    fast_delay_ms: float = 3.0
    slow_delay_ms: float = 95.0
    #: +/- relative jitter drawn per access link so cohort members are
    #: heterogeneous within the cohort too.
    delay_jitter: float = 0.1
    bottleneck_mbps: float = 3.0
    bottleneck_delay_ms: float = 1.0
    access_mbps: float = 20.0
    #: Bottleneck buffer (the AQM's physical capacity).
    buffer_pkts: int = 25
    #: Access-link buffers, generous so the bottleneck stays the only
    #: congestion point.
    access_buffer_pkts: int = 100

    def validate(self) -> "RttCohortTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.fast_hosts < 1 or self.slow_hosts < 1:
            raise TopologyError("need >= 1 host in each RTT cohort")
        if not 0.0 < self.fast_delay_ms < self.slow_delay_ms:
            raise TopologyError(
                f"need 0 < fast_delay_ms < slow_delay_ms: "
                f"{self.fast_delay_ms}, {self.slow_delay_ms}"
            )
        if not (0.0 <= self.delay_jitter < 1.0):
            raise TopologyError(f"delay_jitter must be in [0, 1): {self.delay_jitter}")
        if self.bottleneck_mbps <= 0 or self.access_mbps <= 0:
            raise TopologyError("bandwidths must be positive")
        if self.bottleneck_delay_ms <= 0:
            raise TopologyError("bottleneck delay must be positive")
        if self.buffer_pkts < 2 or self.access_buffer_pkts < 1:
            raise TopologyError("buffers must hold at least a couple packets")
        return self


#: Any of the generator specifications.
TopologySpec = (WaxmanTopology, TransitStubTopology, JitteredTreeTopology,
                RttCohortTopology)


def _check_range(name: str, bounds: Tuple[float, float]) -> None:
    lo, hi = bounds
    if lo <= 0 or hi < lo:
        raise TopologyError(f"{name} must satisfy 0 < lo <= hi: {bounds}")


# ----------------------------------------------------------------------
# build result
# ----------------------------------------------------------------------
@dataclass
class GeneratedTopology:
    """A built scenario network plus its multicast roles."""

    net: Network
    #: multicast source node id
    source: str
    #: candidate receiver hosts, in deterministic generation order
    hosts: List[str]
    #: (a, b, bandwidth_bps, delay_s, buffer_pkts) per undirected link
    link_draws: List[Tuple[str, str, float, float, int]] = field(default_factory=list)
    #: host id -> cohort label (e.g. "fast"/"slow"); empty for topologies
    #: without cohort structure, in which case the scenario runner emits
    #: no per-cohort columns.
    cohorts: Dict[str, str] = field(default_factory=dict)

    @property
    def n_links(self) -> int:
        """Number of (directed) links the generator created."""
        return len(self.link_draws)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def build_topology(
    sim: Simulator,
    spec,
    gateway: str = "droptail",
    ecn: bool = False,
    mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> GeneratedTopology:
    """Build the network a topology spec describes onto ``sim``.

    All randomness comes from the simulator's ``scenario.topology``
    stream: the same (seed, spec) pair always yields the identical
    network, regardless of process or worker count.  ``gateway`` names
    any registered queue discipline; ``ecn`` switches its early
    notifications to CE marking; ``mean_packet_size`` provisions the
    links' service-time estimate (and byte-mode RED thresholds) for the
    scenario's configured packet-size mix.
    """
    # Validates the discipline name up front (raises TopologyError).
    discipline_factory(gateway, sim, mark_ecn=ecn,
                       mean_packet_size=mean_packet_size)
    rng = sim.rng.stream(TOPOLOGY_STREAM)
    if isinstance(spec, WaxmanTopology):
        return _build_waxman(sim, spec.validate(), gateway, rng, ecn,
                             mean_packet_size)
    if isinstance(spec, TransitStubTopology):
        return _build_transit_stub(sim, spec.validate(), gateway, rng, ecn,
                                   mean_packet_size)
    if isinstance(spec, JitteredTreeTopology):
        return _build_jittered_tree(sim, spec.validate(), gateway, rng, ecn,
                                    mean_packet_size)
    if isinstance(spec, RttCohortTopology):
        return _build_rtt_cohorts(sim, spec.validate(), gateway, rng, ecn,
                                  mean_packet_size)
    raise TopologyError(f"unknown topology spec {type(spec).__name__}")


def _queue_factory(
    sim: Simulator,
    gateway: str,
    buffer_pkts: int,
    ecn: bool = False,
    mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> QueueFactory:
    """Per-link gateway factory with thresholds scaled to the buffer."""
    return discipline_factory(gateway, sim, capacity=buffer_pkts,
                              mark_ecn=ecn, mean_packet_size=mean_packet_size)


def _add_drawn_link(
    topo: GeneratedTopology,
    sim: Simulator,
    gateway: str,
    rng: random.Random,
    a: str,
    b: str,
    bandwidth_range: Tuple[float, float],
    delay_range: Tuple[float, float],
    buffer_range: Tuple[int, int],
    ecn: bool = False,
    mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> None:
    """Draw one link's parameters and install it bidirectionally."""
    bandwidth = mbps(rng.uniform(*bandwidth_range))
    delay = ms(rng.uniform(*delay_range))
    buffer_pkts = rng.randint(int(buffer_range[0]), int(buffer_range[1]))
    topo.net.add_link(
        a, b, bandwidth, delay,
        queue_factory=_queue_factory(sim, gateway, buffer_pkts, ecn,
                                     mean_packet_size),
    )
    topo.link_draws.append((a, b, bandwidth, delay, buffer_pkts))


def _build_waxman(
    sim: Simulator, spec: WaxmanTopology, gateway: str, rng: random.Random,
    ecn: bool = False, mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> GeneratedTopology:
    n = spec.n
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    scale = spec.beta * math.sqrt(2.0)  # L = max distance in the unit square

    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            dist = math.hypot(dx, dy)
            if rng.random() < spec.alpha * math.exp(-dist / scale):
                edges.append((i, j))

    # Stitch disconnected components onto the component of node 0 by
    # joining each component's lowest-index node to its geometrically
    # nearest node in the main component (ties broken by index) --
    # deterministic, so connectivity never depends on luck.
    probe = nx.Graph()
    probe.add_nodes_from(range(n))
    probe.add_edges_from(edges)
    components = sorted(nx.connected_components(probe), key=min)
    main = set(components[0])
    for component in components[1:]:
        anchor = min(component)
        nearest = min(
            sorted(main),
            key=lambda k: (
                math.hypot(
                    positions[anchor][0] - positions[k][0],
                    positions[anchor][1] - positions[k][1],
                ),
                k,
            ),
        )
        edges.append((min(anchor, nearest), max(anchor, nearest)))
        probe.add_edge(anchor, nearest)
        main |= component

    # The multicast source is the best-connected node (ties -> lowest
    # index): a hub makes the generated trees branch early, like a
    # well-placed content source would.
    degree: Dict[int, int] = {k: 0 for k in range(n)}
    for i, j in edges:
        degree[i] += 1
        degree[j] += 1
    source_index = max(range(n), key=lambda k: (degree[k], -k))

    names = [f"W{k}" for k in range(n)]
    topo = GeneratedTopology(
        net=Network(sim, mean_packet_size=mean_packet_size),
        source=names[source_index], hosts=[],
    )
    for i, j in sorted(edges):
        _add_drawn_link(
            topo, sim, gateway, rng, names[i], names[j],
            spec.bandwidth_mbps, spec.delay_ms, spec.buffer_pkts,
            ecn, mean_packet_size,
        )
    topo.net.build_routes()
    topo.hosts = [name for name in names if name != topo.source]
    return topo


def _build_transit_stub(
    sim: Simulator, spec: TransitStubTopology, gateway: str, rng: random.Random,
    ecn: bool = False, mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> GeneratedTopology:
    topo = GeneratedTopology(
        net=Network(sim, mean_packet_size=mean_packet_size),
        source="SRC", hosts=[],
    )
    transits = [f"T{i}" for i in range(spec.transits)]

    # transit core: a ring (a chain for < 3 transits)
    for index in range(len(transits) - 1):
        _add_drawn_link(
            topo, sim, gateway, rng, transits[index], transits[index + 1],
            spec.transit_bandwidth_mbps, spec.transit_delay_ms, spec.buffer_pkts,
            ecn, mean_packet_size,
        )
    if len(transits) >= 3:
        _add_drawn_link(
            topo, sim, gateway, rng, transits[-1], transits[0],
            spec.transit_bandwidth_mbps, spec.transit_delay_ms, spec.buffer_pkts,
            ecn, mean_packet_size,
        )

    # stub domains: router per stub, hosts behind each router
    for t_index, transit in enumerate(transits):
        for s_index in range(spec.stubs_per_transit):
            router = f"G{t_index}.{s_index}"
            _add_drawn_link(
                topo, sim, gateway, rng, transit, router,
                spec.stub_bandwidth_mbps, spec.stub_delay_ms, spec.buffer_pkts,
                ecn, mean_packet_size,
            )
            for h_index in range(spec.hosts_per_stub):
                host = f"H{t_index}.{s_index}.{h_index}"
                _add_drawn_link(
                    topo, sim, gateway, rng, router, host,
                    spec.stub_bandwidth_mbps, spec.stub_delay_ms, spec.buffer_pkts,
                    ecn, mean_packet_size,
                )
                topo.hosts.append(host)

    # the source sits on its own fast access link into the first transit,
    # so the generated bottlenecks are always in the core or the stubs
    topo.net.add_link("SRC", transits[0], mbps(100), ms(1),
                      queue_factory=droptail_factory(1000))
    topo.link_draws.append(("SRC", transits[0], mbps(100), ms(1), 1000))
    topo.net.build_routes()
    return topo


def _build_jittered_tree(
    sim: Simulator, spec: JitteredTreeTopology, gateway: str, rng: random.Random,
    ecn: bool = False, mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> GeneratedTopology:
    topo = GeneratedTopology(
        net=Network(sim, mean_packet_size=mean_packet_size),
        source="S", hosts=[],
    )

    def jittered(base: float) -> float:
        return base * rng.uniform(1.0 - spec.jitter, 1.0 + spec.jitter)

    def grow(parent: str, level: int, prefix: str) -> None:
        for k in range(1, spec.fanout + 1):
            label = f"{prefix}{k}" if prefix else str(k)
            leaf = level == spec.depth
            child = f"R{label}" if leaf else f"G{label}"
            bandwidth = mbps(jittered(
                spec.leaf_bandwidth_mbps if leaf else spec.interior_bandwidth_mbps
            ))
            delay = ms(jittered(
                spec.leaf_delay_ms if leaf else spec.interior_delay_ms
            ))
            buffer_pkts = rng.randint(int(spec.buffer_pkts[0]),
                                      int(spec.buffer_pkts[1]))
            topo.net.add_link(
                parent, child, bandwidth, delay,
                queue_factory=_queue_factory(sim, gateway, buffer_pkts, ecn,
                                             mean_packet_size),
            )
            topo.link_draws.append((parent, child, bandwidth, delay, buffer_pkts))
            if leaf:
                topo.hosts.append(child)
            else:
                grow(child, level + 1, f"{label}.")

    grow("S", 1, "")
    topo.net.build_routes()
    return topo


def _build_rtt_cohorts(
    sim: Simulator, spec: RttCohortTopology, gateway: str, rng: random.Random,
    ecn: bool = False, mean_packet_size: int = DEFAULT_PACKET_SIZE,
) -> GeneratedTopology:
    """Dumbbell: SRC -- GL ==bottleneck== GR -- {fast, slow} access links.

    Only the bottleneck runs the discipline under test; the source feed
    and per-host access links are generously buffered drop-tail so every
    congestion signal originates at the shared queue, the setting the
    essential-fairness theorems reason about.
    """
    topo = GeneratedTopology(
        net=Network(sim, mean_packet_size=mean_packet_size),
        source="SRC", hosts=[],
    )

    def plain_link(a: str, b: str, bandwidth: float, delay: float,
                   buffer_pkts: int) -> None:
        topo.net.add_link(a, b, bandwidth, delay,
                          queue_factory=droptail_factory(buffer_pkts))
        topo.link_draws.append((a, b, bandwidth, delay, buffer_pkts))

    # uncongested source feed into the left gateway
    plain_link("SRC", "GL", mbps(100), ms(1), 1000)

    # the shared bottleneck, running the AQM under test in both directions
    bottleneck_bw = mbps(spec.bottleneck_mbps)
    bottleneck_delay = ms(spec.bottleneck_delay_ms)
    topo.net.add_link(
        "GL", "GR", bottleneck_bw, bottleneck_delay,
        queue_factory=_queue_factory(sim, gateway, spec.buffer_pkts, ecn,
                                     mean_packet_size),
    )
    topo.link_draws.append(
        ("GL", "GR", bottleneck_bw, bottleneck_delay, spec.buffer_pkts)
    )

    def access(host: str, cohort: str, base_delay_ms: float) -> None:
        delay = ms(base_delay_ms * rng.uniform(1.0 - spec.delay_jitter,
                                               1.0 + spec.delay_jitter))
        plain_link("GR", host, mbps(spec.access_mbps), delay,
                   spec.access_buffer_pkts)
        topo.hosts.append(host)
        topo.cohorts[host] = cohort

    for index in range(spec.fast_hosts):
        access(f"F{index}", "fast", spec.fast_delay_ms)
    for index in range(spec.slow_hosts):
        access(f"L{index}", "slow", spec.slow_delay_ms)

    topo.net.build_routes()
    return topo
