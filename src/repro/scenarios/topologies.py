"""Seeded random topology generators for the scenario suite.

Three families, all emitting ordinary :class:`~repro.net.network.Network`
objects with per-link bandwidth/delay/buffer draws from one dedicated RNG
stream (``scenario.topology``), so a topology is a pure function of the
scenario seed:

* **Waxman** — the classic random graph of Waxman '88: nodes scattered in
  the unit square, edge probability ``alpha * exp(-d / (beta * L))``
  decaying with Euclidean distance.  Components are stitched together
  deterministically so the graph is always connected.
* **Transit-stub** — a small transit core (ring) with stub domains hanging
  off each transit router and hosts behind each stub router, the
  GT-ITM-style structure of real inter-domain topologies.
* **Jittered multicast tree** — the paper's k-ary tree shape, but with
  per-link delay/bandwidth jitter so no two branches are identical and
  phase effects cannot hide in symmetry.

Every generator returns a :class:`GeneratedTopology` naming the multicast
source and the candidate receiver hosts; scenario specs draw receiver
sets and churn schedules from those hosts.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from ..errors import TopologyError
from ..net.network import Network, QueueFactory, droptail_factory, red_factory
from ..sim.engine import Simulator
from ..units import mbps, ms

#: Name of the RNG stream every generator draws from.
TOPOLOGY_STREAM = "scenario.topology"


# ----------------------------------------------------------------------
# topology specifications (canonicalizable, frozen, picklable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaxmanTopology:
    """Waxman random graph: ``n`` nodes in the unit square.

    ``bandwidth_mbps``/``delay_ms``/``buffer_pkts`` are uniform draw
    ranges applied per link.  ``alpha`` scales overall edge density;
    ``beta`` controls how sharply probability decays with distance.
    """

    n: int = 24
    alpha: float = 0.5
    beta: float = 0.25
    bandwidth_mbps: Tuple[float, float] = (1.5, 6.0)
    delay_ms: Tuple[float, float] = (2.0, 15.0)
    buffer_pkts: Tuple[int, int] = (15, 40)

    def validate(self) -> "WaxmanTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.n < 3:
            raise TopologyError(f"Waxman graph needs >= 3 nodes, got {self.n}")
        if not (0.0 < self.alpha <= 1.0) or self.beta <= 0.0:
            raise TopologyError(
                f"need 0 < alpha <= 1 and beta > 0: alpha={self.alpha}, beta={self.beta}"
            )
        _check_range("bandwidth_mbps", self.bandwidth_mbps)
        _check_range("delay_ms", self.delay_ms)
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


@dataclass(frozen=True)
class TransitStubTopology:
    """Transit core ring with stub domains and hosts (GT-ITM shape)."""

    transits: int = 3
    stubs_per_transit: int = 2
    hosts_per_stub: int = 3
    transit_bandwidth_mbps: Tuple[float, float] = (20.0, 40.0)
    transit_delay_ms: Tuple[float, float] = (8.0, 25.0)
    stub_bandwidth_mbps: Tuple[float, float] = (1.5, 6.0)
    stub_delay_ms: Tuple[float, float] = (1.0, 6.0)
    buffer_pkts: Tuple[int, int] = (15, 40)

    def validate(self) -> "TransitStubTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.transits < 1 or self.stubs_per_transit < 1 or self.hosts_per_stub < 1:
            raise TopologyError(
                "transit-stub needs >= 1 transit, stub and host per level"
            )
        _check_range("transit_bandwidth_mbps", self.transit_bandwidth_mbps)
        _check_range("transit_delay_ms", self.transit_delay_ms)
        _check_range("stub_bandwidth_mbps", self.stub_bandwidth_mbps)
        _check_range("stub_delay_ms", self.stub_delay_ms)
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


@dataclass(frozen=True)
class JitteredTreeTopology:
    """k-ary multicast tree with per-link delay/bandwidth jitter.

    Interior links are fast and short, leaf links slow and long (the
    paper's figure-6 proportions); ``jitter`` is the +/- relative spread
    drawn per link, so the branches are heterogeneous.
    """

    depth: int = 3
    fanout: int = 3
    interior_bandwidth_mbps: float = 50.0
    interior_delay_ms: float = 5.0
    leaf_bandwidth_mbps: float = 1.6
    leaf_delay_ms: float = 40.0
    jitter: float = 0.3
    buffer_pkts: Tuple[int, int] = (15, 30)

    def validate(self) -> "JitteredTreeTopology":
        """Check parameter sanity; returns self for chaining."""
        if self.depth < 1 or self.fanout < 1:
            raise TopologyError("tree needs depth >= 1 and fanout >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise TopologyError(f"jitter must be in [0, 1): {self.jitter}")
        _check_range("buffer_pkts", self.buffer_pkts)
        return self


#: Any of the generator specifications.
TopologySpec = (WaxmanTopology, TransitStubTopology, JitteredTreeTopology)


def _check_range(name: str, bounds: Tuple[float, float]) -> None:
    lo, hi = bounds
    if lo <= 0 or hi < lo:
        raise TopologyError(f"{name} must satisfy 0 < lo <= hi: {bounds}")


# ----------------------------------------------------------------------
# build result
# ----------------------------------------------------------------------
@dataclass
class GeneratedTopology:
    """A built scenario network plus its multicast roles."""

    net: Network
    #: multicast source node id
    source: str
    #: candidate receiver hosts, in deterministic generation order
    hosts: List[str]
    #: (a, b, bandwidth_bps, delay_s, buffer_pkts) per undirected link
    link_draws: List[Tuple[str, str, float, float, int]] = field(default_factory=list)

    @property
    def n_links(self) -> int:
        """Number of (directed) links the generator created."""
        return len(self.link_draws)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def build_topology(
    sim: Simulator, spec, gateway: str = "droptail"
) -> GeneratedTopology:
    """Build the network a topology spec describes onto ``sim``.

    All randomness comes from the simulator's ``scenario.topology``
    stream: the same (seed, spec) pair always yields the identical
    network, regardless of process or worker count.
    """
    if gateway not in ("droptail", "red"):
        raise TopologyError(f"unknown gateway type {gateway!r}")
    rng = sim.rng.stream(TOPOLOGY_STREAM)
    if isinstance(spec, WaxmanTopology):
        return _build_waxman(sim, spec.validate(), gateway, rng)
    if isinstance(spec, TransitStubTopology):
        return _build_transit_stub(sim, spec.validate(), gateway, rng)
    if isinstance(spec, JitteredTreeTopology):
        return _build_jittered_tree(sim, spec.validate(), gateway, rng)
    raise TopologyError(f"unknown topology spec {type(spec).__name__}")


def _queue_factory(sim: Simulator, gateway: str, buffer_pkts: int) -> QueueFactory:
    """Per-link gateway factory with RED thresholds scaled to the buffer."""
    if gateway == "red":
        min_th = max(1.0, 0.25 * buffer_pkts)
        max_th = max(min_th + 1.0, 0.75 * buffer_pkts)
        return red_factory(sim, capacity=buffer_pkts, min_th=min_th, max_th=max_th)
    return droptail_factory(buffer_pkts)


def _add_drawn_link(
    topo: GeneratedTopology,
    sim: Simulator,
    gateway: str,
    rng: random.Random,
    a: str,
    b: str,
    bandwidth_range: Tuple[float, float],
    delay_range: Tuple[float, float],
    buffer_range: Tuple[int, int],
) -> None:
    """Draw one link's parameters and install it bidirectionally."""
    bandwidth = mbps(rng.uniform(*bandwidth_range))
    delay = ms(rng.uniform(*delay_range))
    buffer_pkts = rng.randint(int(buffer_range[0]), int(buffer_range[1]))
    topo.net.add_link(
        a, b, bandwidth, delay,
        queue_factory=_queue_factory(sim, gateway, buffer_pkts),
    )
    topo.link_draws.append((a, b, bandwidth, delay, buffer_pkts))


def _build_waxman(
    sim: Simulator, spec: WaxmanTopology, gateway: str, rng: random.Random
) -> GeneratedTopology:
    n = spec.n
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    scale = spec.beta * math.sqrt(2.0)  # L = max distance in the unit square

    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            dist = math.hypot(dx, dy)
            if rng.random() < spec.alpha * math.exp(-dist / scale):
                edges.append((i, j))

    # Stitch disconnected components onto the component of node 0 by
    # joining each component's lowest-index node to its geometrically
    # nearest node in the main component (ties broken by index) --
    # deterministic, so connectivity never depends on luck.
    probe = nx.Graph()
    probe.add_nodes_from(range(n))
    probe.add_edges_from(edges)
    components = sorted(nx.connected_components(probe), key=min)
    main = set(components[0])
    for component in components[1:]:
        anchor = min(component)
        nearest = min(
            sorted(main),
            key=lambda k: (
                math.hypot(
                    positions[anchor][0] - positions[k][0],
                    positions[anchor][1] - positions[k][1],
                ),
                k,
            ),
        )
        edges.append((min(anchor, nearest), max(anchor, nearest)))
        probe.add_edge(anchor, nearest)
        main |= component

    # The multicast source is the best-connected node (ties -> lowest
    # index): a hub makes the generated trees branch early, like a
    # well-placed content source would.
    degree: Dict[int, int] = {k: 0 for k in range(n)}
    for i, j in edges:
        degree[i] += 1
        degree[j] += 1
    source_index = max(range(n), key=lambda k: (degree[k], -k))

    names = [f"W{k}" for k in range(n)]
    topo = GeneratedTopology(net=Network(sim), source=names[source_index], hosts=[])
    for i, j in sorted(edges):
        _add_drawn_link(
            topo, sim, gateway, rng, names[i], names[j],
            spec.bandwidth_mbps, spec.delay_ms, spec.buffer_pkts,
        )
    topo.net.build_routes()
    topo.hosts = [name for name in names if name != topo.source]
    return topo


def _build_transit_stub(
    sim: Simulator, spec: TransitStubTopology, gateway: str, rng: random.Random
) -> GeneratedTopology:
    topo = GeneratedTopology(net=Network(sim), source="SRC", hosts=[])
    transits = [f"T{i}" for i in range(spec.transits)]

    # transit core: a ring (a chain for < 3 transits)
    for index in range(len(transits) - 1):
        _add_drawn_link(
            topo, sim, gateway, rng, transits[index], transits[index + 1],
            spec.transit_bandwidth_mbps, spec.transit_delay_ms, spec.buffer_pkts,
        )
    if len(transits) >= 3:
        _add_drawn_link(
            topo, sim, gateway, rng, transits[-1], transits[0],
            spec.transit_bandwidth_mbps, spec.transit_delay_ms, spec.buffer_pkts,
        )

    # stub domains: router per stub, hosts behind each router
    for t_index, transit in enumerate(transits):
        for s_index in range(spec.stubs_per_transit):
            router = f"G{t_index}.{s_index}"
            _add_drawn_link(
                topo, sim, gateway, rng, transit, router,
                spec.stub_bandwidth_mbps, spec.stub_delay_ms, spec.buffer_pkts,
            )
            for h_index in range(spec.hosts_per_stub):
                host = f"H{t_index}.{s_index}.{h_index}"
                _add_drawn_link(
                    topo, sim, gateway, rng, router, host,
                    spec.stub_bandwidth_mbps, spec.stub_delay_ms, spec.buffer_pkts,
                )
                topo.hosts.append(host)

    # the source sits on its own fast access link into the first transit,
    # so the generated bottlenecks are always in the core or the stubs
    topo.net.add_link("SRC", transits[0], mbps(100), ms(1),
                      queue_factory=droptail_factory(1000))
    topo.link_draws.append(("SRC", transits[0], mbps(100), ms(1), 1000))
    topo.net.build_routes()
    return topo


def _build_jittered_tree(
    sim: Simulator, spec: JitteredTreeTopology, gateway: str, rng: random.Random
) -> GeneratedTopology:
    topo = GeneratedTopology(net=Network(sim), source="S", hosts=[])

    def jittered(base: float) -> float:
        return base * rng.uniform(1.0 - spec.jitter, 1.0 + spec.jitter)

    def grow(parent: str, level: int, prefix: str) -> None:
        for k in range(1, spec.fanout + 1):
            label = f"{prefix}{k}" if prefix else str(k)
            leaf = level == spec.depth
            child = f"R{label}" if leaf else f"G{label}"
            bandwidth = mbps(jittered(
                spec.leaf_bandwidth_mbps if leaf else spec.interior_bandwidth_mbps
            ))
            delay = ms(jittered(
                spec.leaf_delay_ms if leaf else spec.interior_delay_ms
            ))
            buffer_pkts = rng.randint(int(spec.buffer_pkts[0]),
                                      int(spec.buffer_pkts[1]))
            topo.net.add_link(
                parent, child, bandwidth, delay,
                queue_factory=_queue_factory(sim, gateway, buffer_pkts),
            )
            topo.link_draws.append((parent, child, bandwidth, delay, buffer_pkts))
            if leaf:
                topo.hosts.append(child)
            else:
                grow(child, level + 1, f"{label}.")

    grow("S", 1, "")
    topo.net.build_routes()
    return topo
