"""Background-traffic workloads layered on generated topologies.

Two flavours of cross traffic, both driven by the dedicated
``scenario.traffic`` RNG stream so a workload is a pure function of the
scenario seed:

* **Pareto on/off sources** — the classic self-similar-traffic building
  block: a CBR pump toggled by heavy-tailed on and off periods, giving
  bursts at every timescale.
* **Web mice** — short-lived TCP transfers arriving as a Poisson process
  with Pareto-distributed sizes, the flash-crowd foreground that real
  multicast sessions must coexist with.  Each mouse is a full
  :class:`~repro.tcp.flow.TcpFlow` with a transfer ``limit``, so mice
  exercise slow start, SACK recovery and the finite-transfer path.

Long-lived competing TCP flows are plain ``TcpFlow``s and are placed by
the scenario runner directly; this module covers the generative parts.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..net.apps import CbrSource, PacketSink
from ..net.network import Network
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.flow import TcpFlow
from ..units import DEFAULT_PACKET_SIZE

#: Name of the RNG stream all workload generators draw from.
TRAFFIC_STREAM = "scenario.traffic"


@dataclass(frozen=True)
class PacketSizeMix:
    """Per-source packet-size heterogeneity: mice / bulk / video classes.

    Each traffic source draws its packet size once, at placement time,
    from the three weighted classes (40-byte ACK-sized mice, 1000-byte
    bulk — the repo default — and 1400-byte near-MTU video frames).  The
    weighted :attr:`mean_size` is what links provision their service-time
    estimate with, and what byte-mode RED normalizes its probability
    scaling by — the heterogeneity axis of the AQM study matrix.
    """

    mice_size: int = 40
    bulk_size: int = DEFAULT_PACKET_SIZE
    video_size: int = 1400
    mice_weight: float = 0.0
    bulk_weight: float = 1.0
    video_weight: float = 0.0

    def validate(self) -> "PacketSizeMix":
        """Check parameter sanity; returns self for chaining."""
        sizes = (self.mice_size, self.bulk_size, self.video_size)
        weights = (self.mice_weight, self.bulk_weight, self.video_weight)
        if any(size < 1 for size in sizes):
            raise ConfigurationError(f"packet sizes must be >= 1 byte: {sizes}")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(
                f"class weights must be >= 0 and sum positive: {weights}"
            )
        return self

    @property
    def mean_size(self) -> int:
        """Weighted mean packet size, rounded to whole bytes (>= 1)."""
        sizes = (self.mice_size, self.bulk_size, self.video_size)
        weights = (self.mice_weight, self.bulk_weight, self.video_weight)
        total = sum(weights)
        mean = sum(s * w for s, w in zip(sizes, weights)) / total
        return max(1, int(round(mean)))

    def draw(self, rng: random.Random) -> int:
        """One weighted class draw (a per-source size, not per-packet)."""
        sizes = (self.mice_size, self.bulk_size, self.video_size)
        weights = (self.mice_weight, self.bulk_weight, self.video_weight)
        total = sum(weights)
        point = rng.random() * total
        acc = 0.0
        for size, weight in zip(sizes, weights):
            acc += weight
            if point < acc:
                return size
        return sizes[-1]


def pareto_draw(rng: random.Random, mean: float, alpha: float) -> float:
    """One draw from a Pareto distribution with the given *mean*.

    Parameterized by mean rather than scale: ``xm = mean * (alpha-1) /
    alpha`` so workload specs stay in intuitive units.  Requires
    ``alpha > 1`` for the mean to exist.
    """
    if alpha <= 1.0:
        raise ConfigurationError(f"Pareto mean needs alpha > 1: {alpha}")
    if mean <= 0.0:
        raise ConfigurationError(f"non-positive Pareto mean: {mean}")
    xm = mean * (alpha - 1.0) / alpha
    return xm / (1.0 - rng.random()) ** (1.0 / alpha)


@dataclass(frozen=True)
class BackgroundTraffic:
    """Declarative cross-traffic mix for one scenario.

    ``tcp_flows`` long-lived competitors are placed on distinct receiver
    hosts by the runner.  ``pareto_sources`` on/off pumps and a Poisson
    stream of ``mice_rate_per_s`` short TCP transfers ride on randomly
    drawn hosts.
    """

    tcp_flows: int = 2
    pareto_sources: int = 0
    pareto_rate_pps: float = 50.0
    pareto_on_s: float = 0.5
    pareto_off_s: float = 1.0
    pareto_alpha: float = 1.5
    mice_rate_per_s: float = 0.0
    mice_mean_pkts: int = 20
    mice_alpha: float = 1.2
    mice_max_pkts: int = 500

    def validate(self) -> "BackgroundTraffic":
        """Check parameter sanity; returns self for chaining."""
        if self.tcp_flows < 0 or self.pareto_sources < 0:
            raise ConfigurationError("flow counts must be >= 0")
        if self.mice_rate_per_s < 0:
            raise ConfigurationError(
                f"negative mice rate: {self.mice_rate_per_s}"
            )
        if self.pareto_sources > 0:
            if self.pareto_rate_pps <= 0 or self.pareto_on_s <= 0 or self.pareto_off_s <= 0:
                raise ConfigurationError("Pareto on/off parameters must be positive")
            if self.pareto_alpha <= 1.0:
                raise ConfigurationError(f"pareto_alpha must be > 1: {self.pareto_alpha}")
        if self.mice_rate_per_s > 0:
            if self.mice_mean_pkts < 1 or self.mice_max_pkts < self.mice_mean_pkts:
                raise ConfigurationError(
                    "need 1 <= mice_mean_pkts <= mice_max_pkts"
                )
            if self.mice_alpha <= 1.0:
                raise ConfigurationError(f"mice_alpha must be > 1: {self.mice_alpha}")
        return self


class ParetoOnOffSource:
    """A CBR pump toggled by heavy-tailed on/off periods.

    During "on" periods the underlying :class:`CbrSource` emits at
    ``rate_pps``; period lengths are Pareto draws around the configured
    means.  All draws come from the RNG handed in (the scenario traffic
    stream), never from module-level randomness.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        flow: str,
        src: str,
        dst: str,
        rate_pps: float,
        mean_on_s: float,
        mean_off_s: float,
        alpha: float,
        rng: random.Random,
        packet_size: int = DEFAULT_PACKET_SIZE,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.alpha = alpha
        self.source = CbrSource(sim, net.node(src), flow, dst, rate_pps,
                                packet_size=packet_size)
        self.sink = PacketSink(net.node(dst), flow)
        self.bursts = 0

    def start(self, offset: float = 0.0) -> None:
        """Schedule the first burst ``offset`` seconds from now."""
        self.sim.schedule_after(offset, self._burst, name=f"{self.source.flow}.on")

    def _burst(self) -> None:
        self.bursts += 1
        self.source.start()
        on = pareto_draw(self.rng, self.mean_on_s, self.alpha)
        self.sim.schedule_after(on, self._silence, name=f"{self.source.flow}.off")

    def _silence(self) -> None:
        self.source.stop()
        off = pareto_draw(self.rng, self.mean_off_s, self.alpha)
        self.sim.schedule_after(off, self._burst, name=f"{self.source.flow}.on")


class WebMiceWorkload:
    """Poisson arrivals of short-lived TCP transfers ("web mice").

    Mice arrive with exponential inter-arrival gaps at ``rate_per_s``;
    each transfers a Pareto-distributed number of packets (clamped to
    ``max_pkts`` so one elephant-in-mouse-clothing cannot dominate a
    short scenario) between a drawn (src, dst) host pair and then
    finishes.  ``arrivals`` stops once the simulator passes ``stop_at``.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        hosts: List[str],
        source: str,
        rate_per_s: float,
        mean_pkts: int,
        alpha: float,
        max_pkts: int,
        rng: random.Random,
        stop_at: float,
        config: Optional[TcpConfig] = None,
    ) -> None:
        if len(hosts) < 1:
            raise ConfigurationError("web mice need at least one host")
        self.sim = sim
        self.net = net
        self.hosts = list(hosts)
        self.source = source
        self.rate_per_s = rate_per_s
        self.mean_pkts = mean_pkts
        self.alpha = alpha
        self.max_pkts = max_pkts
        self.rng = rng
        self.stop_at = stop_at
        self.config = config or TcpConfig()
        self.mice: List[TcpFlow] = []

    def start(self, offset: float = 0.0) -> None:
        """Schedule the first mouse arrival."""
        gap = self.rng.expovariate(self.rate_per_s)
        self.sim.schedule_after(offset + gap, self._arrive, name="mice.arrival")

    def _arrive(self) -> None:
        if self.sim.now >= self.stop_at:
            return
        index = len(self.mice)
        # a mouse downloads *from* the content source to a drawn host,
        # sharing tree links with the multicast session
        dst = self.rng.choice(self.hosts)
        size = int(round(pareto_draw(self.rng, float(self.mean_pkts), self.alpha)))
        size = max(1, min(size, self.max_pkts))
        mouse = TcpFlow(
            self.sim, self.net, f"mice.{index}", self.source, dst,
            config=self.config, limit=size,
        )
        mouse.start()
        self.mice.append(mouse)
        gap = self.rng.expovariate(self.rate_per_s)
        self.sim.schedule_after(gap, self._arrive, name="mice.arrival")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate mouse counts for the scenario report."""
        finished = sum(1 for m in self.mice if m.sender.finished)
        return {
            "mice_started": len(self.mice),
            "mice_finished": finished,
            "mice_pkts_sent": sum(m.sender.stats()["packets_sent"] for m in self.mice),
        }


@dataclass
class PlacedTraffic:
    """Instantiated background traffic, returned by :func:`place_traffic`."""

    tcp_flows: List[TcpFlow]
    #: (flow id, dst host) for each long-lived TCP competitor
    tcp_placements: List[Tuple[str, str]]
    pareto_sources: List[ParetoOnOffSource]
    mice: Optional[WebMiceWorkload]


def place_traffic(
    sim: Simulator,
    net: Network,
    spec: BackgroundTraffic,
    hosts: List[str],
    source: str,
    duration: float,
    rng: random.Random,
    tcp_config: Optional[TcpConfig] = None,
    packet_sizes: Optional[PacketSizeMix] = None,
) -> PlacedTraffic:
    """Instantiate ``spec`` on the generated topology and start it.

    Long-lived TCP flows get distinct destination hosts (drawn without
    replacement, cycling if there are more flows than hosts); Pareto
    pumps and mice draw hosts freely.  Start offsets are tiny random
    phases so flows do not slow-start in lockstep.

    With a :class:`PacketSizeMix`, every source additionally draws its
    packet size from the weighted classes.  The extra draws happen ONLY
    when a mix is configured, so mix-less scenarios consume the exact
    RNG-stream sequence they always have (same-seed byte identity).
    """
    spec.validate()
    if not hosts:
        raise ConfigurationError("cannot place traffic: topology has no hosts")
    tcp_config = tcp_config or TcpConfig()
    if packet_sizes is not None:
        packet_sizes.validate()

    def sized_config() -> TcpConfig:
        if packet_sizes is None:
            return tcp_config
        return dataclasses.replace(tcp_config,
                                   packet_size=packet_sizes.draw(rng))

    flows: List[TcpFlow] = []
    placements: List[Tuple[str, str]] = []
    pool = list(hosts)
    for index in range(spec.tcp_flows):
        if not pool:
            pool = list(hosts)
        dst = pool.pop(rng.randrange(len(pool)))
        flow_id = f"bg.tcp.{index}"
        flow = TcpFlow(sim, net, flow_id, source, dst, config=sized_config())
        flow.start(offset=rng.uniform(0.0, 0.5))
        flows.append(flow)
        placements.append((flow_id, dst))

    pumps: List[ParetoOnOffSource] = []
    for index in range(spec.pareto_sources):
        src = rng.choice(hosts)
        dst = rng.choice([h for h in hosts if h != src] or [source])
        pump = ParetoOnOffSource(
            sim, net, f"bg.pareto.{index}", src, dst,
            rate_pps=spec.pareto_rate_pps,
            mean_on_s=spec.pareto_on_s,
            mean_off_s=spec.pareto_off_s,
            alpha=spec.pareto_alpha,
            rng=rng,
            packet_size=(packet_sizes.draw(rng) if packet_sizes is not None
                         else DEFAULT_PACKET_SIZE),
        )
        pump.start(offset=rng.uniform(0.0, 1.0))
        pumps.append(pump)

    mice: Optional[WebMiceWorkload] = None
    if spec.mice_rate_per_s > 0:
        mice = WebMiceWorkload(
            sim, net, hosts, source,
            rate_per_s=spec.mice_rate_per_s,
            mean_pkts=spec.mice_mean_pkts,
            alpha=spec.mice_alpha,
            max_pkts=spec.mice_max_pkts,
            rng=rng,
            stop_at=duration,
            config=sized_config(),
        )
        mice.start()

    return PlacedTraffic(
        tcp_flows=flows, tcp_placements=placements,
        pareto_sources=pumps, mice=mice,
    )
