"""Discrete-event simulation core (the NS2 stand-in).

Public surface:

* :class:`Simulator` — the event loop and clock.
* :class:`Event` — cancellable event handles.
* :class:`RngStreams` — named deterministic random streams.
* :class:`Tracer` — structured trace collection.
* :class:`Timer`, :class:`PeriodicProcess` — timer utilities for agents.
"""

from .engine import Simulator
from .events import Event
from .process import PeriodicProcess, Timer
from .rng import RngStreams
from .trace import Tracer

__all__ = [
    "Simulator",
    "Event",
    "RngStreams",
    "Tracer",
    "Timer",
    "PeriodicProcess",
]
