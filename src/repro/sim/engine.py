"""The discrete-event simulation engine.

This is the substrate everything else runs on — the Python stand-in for the
NS2 core the paper used.  It is a classic calendar-queue-style engine built
on :mod:`heapq`:

* :meth:`Simulator.schedule` inserts a callback at an absolute time,
* :meth:`Simulator.schedule_after` at a relative offset,
* :meth:`Simulator.run` drains the heap until a time horizon or until the
  queue empties.

Determinism: same-seed runs replay exactly.  Ties are broken by insertion
order, and all randomness must come from :class:`repro.sim.rng.RngStreams`.

Hot-path layout (this engine executes a few million events per simulated
minute, so its inner loop dominates every experiment's wall time):

* Heap entries are ``(time, seq, Event)`` tuples, not :class:`Event`
  objects.  Tuple comparison resolves on the leading float in C, so
  sifting never calls ``Event.__lt__`` — which profiling showed was the
  single hottest function in a figure-7 run (40M+ calls).  The
  ``(time, seq)`` total order, and therefore replay determinism, is
  exactly the order :class:`Event` defines.
* Events scheduled for the *current* instant while the loop is running
  bypass the heap entirely: they go to a FIFO "ready batch" drained
  before any strictly later heap entry.  Correctness argument: such an
  event's ``seq`` is larger than that of every queued event with the
  same timestamp (those were necessarily scheduled earlier), so FIFO
  draining after the heap's equal-time entries *is* ``(time, seq)``
  order.  The batch is flushed back into the heap whenever :meth:`run`
  returns, so introspection between runs sees one queue.
* Cancellation stays lazy (skip at pop time) with the O(1) cancelled
  counter and in-place compaction introduced in PR 1.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..errors import SchedulingError
from .events import Event
from .rng import RngStreams
from .trace import Tracer

_heappush = heapq.heappush
_heappop = heapq.heappop

#: A heap entry; ordering is driven by the leading ``(time, seq)`` pair.
Entry = Tuple[float, int, Event]


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Parameters
    ----------
    seed:
        Master seed for the per-component random streams available through
        :attr:`rng`.
    trace:
        Optional :class:`Tracer` capturing structured events; a fresh,
        disabled tracer is created if omitted.
    """

    #: Compact the heap once at least this many cancelled events are queued
    #: *and* they outnumber the live ones (amortized O(log n) per event).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 1, trace: Optional[Tracer] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Entry] = []
        #: Same-timestamp fast lane: events scheduled at exactly ``now``
        #: while :meth:`run` is draining.  Always empty between runs.
        self._ready: Deque[Event] = deque()
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0
        self.rng = RngStreams(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)
        #: Optional observer called with each :class:`Event` just before it
        #: executes.  The audit layer's flight recorder uses this to keep
        #: the recent event stream; ``None`` (the default) costs one
        #: attribute check per event.
        self.event_hook: Optional[Callable[[Event], None]] = None
        #: Count of events executed so far (for benchmarking / sanity checks).
        self.events_executed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Scheduling in the past raises :class:`SchedulingError`; scheduling
        exactly "now" is allowed and runs after the current event finishes.
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time:.9f} before now={self.now:.9f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, name=name)
        event._on_cancel = self._note_cancelled
        if self._running and time == self.now:
            # Same-instant batch: no heap churn, FIFO == (time, seq) order
            # because this seq exceeds that of every queued equal-time event.
            self._ready.append(event)
        else:
            _heappush(self._queue, (time, seq, event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` after a non-negative ``delay``.

        This is the dominant scheduling entry point (links and timers use
        relative delays exclusively), so :meth:`schedule` is inlined here:
        ``now + delay`` can never be in the past once the delay is
        non-negative, which drops one call and one comparison per event.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        now = self.now
        time = now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, name=name)
        event._on_cancel = self._note_cancelled
        if time == now and self._running:
            self._ready.append(event)
        else:
            _heappush(self._queue, (time, seq, event))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this horizon;
            the clock is then advanced to ``until``.  ``None`` drains the
            queue completely.
        max_events:
            Safety valve for tests: stop after this many executed events.

        Returns the number of events executed during this call.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        ready = self._ready
        pop = _heappop
        try:
            while queue or ready:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                # Ready events carry the current timestamp and, per the
                # invariant above, out-sequence every equal-time heap entry
                # — so they run only once the heap holds nothing at `now`.
                if ready and (not queue or queue[0][0] > self.now):
                    event = ready.popleft()
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                else:
                    entry = queue[0]
                    event = entry[2]
                    if event.cancelled:
                        pop(queue)
                        self._cancelled -= 1
                        continue
                    if until is not None and entry[0] > until:
                        break
                    pop(queue)
                    self.now = entry[0]
                event._on_cancel = None  # left the queue; cancel() is a no-op now
                hook = self.event_hook
                if hook is not None:
                    hook(event)
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
            if ready:
                # stop()/max_events can leave immediates behind; park them
                # back in the heap so peek()/pending() and the next run()
                # see a single, totally ordered queue.
                for event in ready:
                    _heappush(queue, (event.time, event.seq, event))
                ready.clear()
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        self.events_executed += executed
        return executed

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A queued event was cancelled (called via ``Event._on_cancel``).

        Keeps :meth:`pending` O(1) and compacts the heap once cancelled
        entries dominate it, so cancel-heavy workloads (every TCP timer
        reschedule cancels its predecessor) stay bounded in memory instead
        of dragging dead entries along until they surface at the top.
        """
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue) + len(self._ready)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: heap order depends only on ``(time, seq)``,
        which survives the rebuild, so the pop order of the remaining
        live events — and therefore replay determinism — is unchanged.
        In-place (slice assignment / deque mutation) because :meth:`run`
        holds local aliases to both containers while draining them.
        """
        self._queue[:] = [entry for entry in self._queue
                          if not entry[2].cancelled]
        heapq.heapify(self._queue)
        if self._ready:
            live = [event for event in self._ready if not event.cancelled]
            self._ready.clear()
            self._ready.extend(live)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._queue) + len(self._ready) - self._cancelled

    def queue_size(self) -> int:
        """Physical queue size, including not-yet-compacted cancelled entries."""
        return len(self._queue) + len(self._ready)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            _heappop(queue)
            self._cancelled -= 1
        ready = self._ready
        while ready and ready[0].cancelled:
            ready.popleft()
            self._cancelled -= 1
        if queue and ready:
            return min(queue[0][0], ready[0].time)
        if queue:
            return queue[0][0]
        return ready[0].time if ready else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending()}, "
            f"executed={self.events_executed})"
        )
