"""The discrete-event simulation engine.

This is the substrate everything else runs on — the Python stand-in for the
NS2 core the paper used.  It is a classic calendar-queue-style engine built
on :mod:`heapq`:

* :meth:`Simulator.schedule` inserts a callback at an absolute time,
* :meth:`Simulator.schedule_after` at a relative offset,
* :meth:`Simulator.run` drains the heap until a time horizon or until the
  queue empties.

Determinism: same-seed runs replay exactly.  Ties are broken by insertion
order, and all randomness must come from :class:`repro.sim.rng.RngStreams`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SchedulingError
from .events import Event
from .rng import RngStreams
from .trace import Tracer


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Parameters
    ----------
    seed:
        Master seed for the per-component random streams available through
        :attr:`rng`.
    trace:
        Optional :class:`Tracer` capturing structured events; a fresh,
        disabled tracer is created if omitted.
    """

    #: Compact the heap once at least this many cancelled events are queued
    #: *and* they outnumber the live ones (amortized O(log n) per event).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 1, trace: Optional[Tracer] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0
        self.rng = RngStreams(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)
        #: Optional observer called with each :class:`Event` just before it
        #: executes.  The audit layer's flight recorder uses this to keep
        #: the recent event stream; ``None`` (the default) costs one
        #: attribute check per event.
        self.event_hook: Optional[Callable[[Event], None]] = None
        #: Count of events executed so far (for benchmarking / sanity checks).
        self.events_executed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Scheduling in the past raises :class:`SchedulingError`; scheduling
        exactly "now" is allowed and runs after the current event finishes.
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time:.9f} before now={self.now:.9f}"
            )
        event = Event(time, self._seq, callback, args, name=name)
        event._on_cancel = self._note_cancelled
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` after a non-negative ``delay``."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback, *args, name=name)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this horizon;
            the clock is then advanced to ``until``.  ``None`` drains the
            queue completely.
        max_events:
            Safety valve for tests: stop after this many executed events.

        Returns the number of events executed during this call.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        try:
            while queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                event._on_cancel = None  # left the queue; cancel() is a no-op now
                self.now = event.time
                if self.event_hook is not None:
                    self.event_hook(event)
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        self.events_executed += executed
        return executed

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A queued event was cancelled (called via ``Event._on_cancel``).

        Keeps :meth:`pending` O(1) and compacts the heap once cancelled
        entries dominate it, so cancel-heavy workloads (every TCP timer
        reschedule cancels its predecessor) stay bounded in memory instead
        of dragging dead entries along until they surface at the top.
        """
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: heap order depends only on ``(time, seq)``,
        which survives the rebuild, so the pop order of the remaining
        live events — and therefore replay determinism — is unchanged.
        In-place (slice assignment) because :meth:`run` holds a local
        alias to the heap list while draining it.
        """
        self._queue[:] = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._queue) - self._cancelled

    def queue_size(self) -> int:
        """Physical heap size, including not-yet-compacted cancelled entries."""
        return len(self._queue)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        return self._queue[0].time if self._queue else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending()}, "
            f"executed={self.events_executed})"
        )
