"""Event objects for the discrete-event engine.

An :class:`Event` is a handle to a scheduled callback.  Handles support
cancellation (lazy deletion: the engine skips cancelled entries when they
reach the head of the heap) and rich comparison so they can live directly in
a binary heap.

Ordering is ``(time, sequence)``: events scheduled for the same instant fire
in the order they were scheduled, which keeps runs deterministic — an
essential property for a simulator whose whole point is studying *random*
congestion-control decisions under controlled seeds.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback, orderable by ``(time, seq)``."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "name",
                 "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name
        #: Set by the engine at schedule time so it can keep an O(1) count
        #: of cancelled-but-queued events (and compact the heap lazily);
        #: cleared once the event leaves the queue.
        self._on_cancel: Optional[Callable[[], None]] = None

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time, self.seq))

    def __repr__(self) -> str:
        label = self.name or getattr(self.callback, "__qualname__", "callback")
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {label}, {state})"
