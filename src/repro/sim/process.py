"""Recurring processes built on top of the raw event engine.

Congestion-control agents need timers that can be restarted (retransmission
timers) and periodic samplers (window/throughput probes).  These helpers
encapsulate the cancel-and-reschedule bookkeeping so agent code stays
readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from .engine import Simulator
from .events import Event


class Timer:
    """A restartable one-shot timer.

    ``callback`` fires once per :meth:`start` unless :meth:`stop` or a later
    :meth:`start` (which restarts the countdown) intervenes.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer") -> None:
        self.sim = sim
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True while the timer is armed."""
        return self._event is not None and self._event.active

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when not armed."""
        if self._event is not None and self._event.active:
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.stop()
        self._event = self.sim.schedule_after(delay, self._fire, name=self.name)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.callback()


class PeriodicProcess:
    """Calls ``callback`` every ``interval`` seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        name: str = "periodic",
        start_offset: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"non-positive interval: {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._start_offset = interval if start_offset is None else start_offset

    @property
    def running(self) -> bool:
        """True while ticks are scheduled."""
        return self._event is not None and self._event.active

    def start(self) -> None:
        """Begin ticking; the first tick fires after ``start_offset``."""
        if self.running:
            return
        self._event = self.sim.schedule_after(self._start_offset, self._tick, name=self.name)

    def stop(self) -> None:
        """Cancel all future ticks."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self.callback()
        self._event = self.sim.schedule_after(self.interval, self._tick, name=self.name)
