"""Named random-number streams.

Every stochastic component (each TCP flow's start jitter, the RLA sender's
listening coin, each RED queue's drop draws, the phase-effect jitter, ...)
draws from its *own* named stream derived deterministically from the master
seed.  That way adding a component or reordering event execution never
perturbs the randomness seen by unrelated components — runs stay comparable
across code changes, which the paper's style of A/B experiments requires.
"""

from __future__ import annotations

import random
from typing import Dict
import zlib


class RngStreams:
    """A factory of deterministic, independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed mixes the master seed with a CRC of the name, so
        the mapping is stable across processes and Python versions (unlike
        ``hash(str)`` which is salted per process).
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self.seed * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (2**63)
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Convenience: one uniform draw from the named stream."""
        return self.stream(name).uniform(low, high)

    def names(self):
        """Names of all streams created so far (sorted, for debugging)."""
        return sorted(self._streams)

    # ------------------------------------------------------------------
    # checkpoint / fork support
    # ------------------------------------------------------------------
    def stream_states(self) -> Dict[str, object]:
        """``name -> random.Random.getstate()`` for every live stream.

        Used by :mod:`repro.checkpoint` tests to prove snapshots round-trip
        every stream's Mersenne state exactly (the streams themselves pickle
        via the same ``getstate``/``setstate`` pair).
        """
        return {name: stream.getstate()
                for name, stream in sorted(self._streams.items())}

    def reseed(self, label: str) -> None:
        """Derive a branch-specific randomness future for a forked world.

        Every existing stream is re-seeded from ``(master seed, label,
        stream name)`` using the same CRC mixing as :meth:`stream`, and the
        master seed itself is re-derived so streams created *after* the
        fork diverge between branches too.  Deterministic: forking the same
        snapshot with the same label always yields the same future.
        """
        branch_seed = (
            self.seed * 2654435761 + zlib.crc32(label.encode("utf-8"))
        ) % (2**63)
        self.seed = branch_seed
        for name, stream in self._streams.items():
            derived = (
                branch_seed * 2654435761 + zlib.crc32(name.encode("utf-8"))
            ) % (2**63)
            stream.seed(derived)
