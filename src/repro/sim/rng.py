"""Named random-number streams.

Every stochastic component (each TCP flow's start jitter, the RLA sender's
listening coin, each RED queue's drop draws, the phase-effect jitter, ...)
draws from its *own* named stream derived deterministically from the master
seed.  That way adding a component or reordering event execution never
perturbs the randomness seen by unrelated components — runs stay comparable
across code changes, which the paper's style of A/B experiments requires.
"""

from __future__ import annotations

import random
from typing import Dict
import zlib


class RngStreams:
    """A factory of deterministic, independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 1) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed mixes the master seed with a CRC of the name, so
        the mapping is stable across processes and Python versions (unlike
        ``hash(str)`` which is salted per process).
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self.seed * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (2**63)
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Convenience: one uniform draw from the named stream."""
        return self.stream(name).uniform(low, high)

    def names(self):
        """Names of all streams created so far (sorted, for debugging)."""
        return sorted(self._streams)
