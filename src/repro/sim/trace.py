"""Structured tracing of simulation events.

A :class:`Tracer` records ``(time, category, fields)`` tuples when enabled.
Experiments use it for debugging and for fine-grained assertions in tests
(e.g. "the RED queue never dropped below min_th").  Disabled tracers cost a
single attribute check per call site, so leaving trace hooks in hot paths is
affordable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

TraceRecord = Tuple[float, str, Dict[str, Any]]


class Tracer:
    """Collects structured trace records, optionally filtered by category."""

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.records: List[TraceRecord] = []
        self._sink = sink

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record one trace event if tracing is on for ``category``."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = (time, category, fields)
        if self._sink is not None:
            self._sink(record)
        else:
            self.records.append(record)

    def select(self, category: str) -> List[TraceRecord]:
        """All stored records of the given category."""
        return [r for r in self.records if r[1] == category]

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
