"""Structured tracing of simulation events.

A :class:`Tracer` records ``(time, category, fields)`` tuples when enabled.
Experiments use it for debugging and for fine-grained assertions in tests
(e.g. "the RED queue never dropped below min_th").  Disabled tracers cost a
single attribute check per call site, so leaving trace hooks in hot paths is
affordable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

TraceRecord = Tuple[float, str, Dict[str, Any]]

#: Default retention when a sink is attached: enough context for
#: ``select()`` assertions without letting a streamed run grow unbounded.
SINK_TEE_RECORDS = 4096


class Tracer:
    """Collects structured trace records, optionally filtered by category.

    With a ``sink`` attached every record is *teed*: forwarded to the sink
    and kept in :attr:`records` (bounded to ``max_records``, defaulting to
    :data:`SINK_TEE_RECORDS`), so ``select()`` and ``len()`` keep working
    on streaming tracers instead of silently returning nothing.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        if max_records is None and sink is not None:
            max_records = SINK_TEE_RECORDS
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._sink = sink

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record one trace event if tracing is on for ``category``."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = (time, category, fields)
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    def select(self, category: str) -> List[TraceRecord]:
        """All stored records of the given category."""
        return [r for r in self.records if r[1] == category]

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
