"""TCP SACK — the unicast competing-traffic substrate (DESIGN.md S6)."""

from .config import TcpConfig
from .flow import TcpFlow
from .receiver import TcpReceiver
from .rto import RttEstimator
from .sack import ReceiverSackTracker, SenderScoreboard
from .sender import TcpSender

__all__ = [
    "TcpConfig",
    "TcpFlow",
    "TcpReceiver",
    "TcpSender",
    "RttEstimator",
    "ReceiverSackTracker",
    "SenderScoreboard",
]
