"""Configuration for the TCP SACK implementation.

Sequence numbers are packet-granular (as in NS2): one segment == one
``packet_size``-byte packet.  Defaults follow the paper's simulation setup
(1000-byte packets) and the classic TCP constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..units import ACK_SIZE, DEFAULT_PACKET_SIZE


@dataclass
class TcpConfig:
    """Tunables of a TCP SACK connection.

    Attributes
    ----------
    packet_size:
        Data segment size in bytes.
    initial_cwnd / initial_ssthresh:
        Starting congestion window (packets) and slow-start threshold.
    dupack_threshold:
        The SACK reordering tolerance: a segment is deemed lost once a
        segment at least this much higher has been selectively acked.
    max_cwnd:
        Receiver-advertised window in packets (the cwnd clamp).
    min_rto / max_rto:
        Bounds on the retransmission timer, seconds.
    phase_jitter:
        When set, each data packet's transmission is preceded by a uniform
        random processing delay in ``[0, phase_jitter]`` — the §3.1 device
        for breaking drop-tail phase effects.  ``None`` disables it.
    ack_size:
        Bytes per pure ACK.
    ecn:
        Enables ECN (RFC 3168, simplified): data packets are sent
        ECN-capable, receivers echo congestion marks, and the sender
        halves once per window on an echoed mark instead of waiting for a
        loss.  Requires gateways built with ``mark_ecn=True`` to have any
        effect.  An extension beyond the paper's 1998 setting.
    """

    packet_size: int = DEFAULT_PACKET_SIZE
    initial_cwnd: float = 1.0
    initial_ssthresh: float = 64.0
    dupack_threshold: int = 3
    max_cwnd: float = 1e9
    min_rto: float = 1.0
    max_rto: float = 64.0
    phase_jitter: Optional[float] = None
    ack_size: int = ACK_SIZE
    ecn: bool = False
    #: RFC 1122 delayed ACKs: acknowledge every second in-order segment or
    #: after ``delack_timeout`` seconds, whichever first.  Out-of-order
    #: arrivals are always acknowledged immediately (they are the duplicate
    #: ACKs fast retransmit needs).  Off by default, as in NS2 SACK.
    delayed_ack: bool = False
    delack_timeout: float = 0.2

    def validate(self) -> "TcpConfig":
        """Raise :class:`ConfigurationError` on out-of-range parameters."""
        if self.packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {self.packet_size}")
        if self.initial_cwnd < 1:
            raise ConfigurationError(f"initial_cwnd must be >= 1: {self.initial_cwnd}")
        if self.dupack_threshold < 1:
            raise ConfigurationError(
                f"dupack_threshold must be >= 1: {self.dupack_threshold}"
            )
        if not 0 < self.min_rto <= self.max_rto:
            raise ConfigurationError(
                f"need 0 < min_rto <= max_rto, got {self.min_rto}, {self.max_rto}"
            )
        if self.phase_jitter is not None and self.phase_jitter < 0:
            raise ConfigurationError(f"negative phase_jitter: {self.phase_jitter}")
        if self.delack_timeout <= 0:
            raise ConfigurationError(
                f"delack_timeout must be positive: {self.delack_timeout}"
            )
        return self
