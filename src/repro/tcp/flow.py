"""Convenience wiring of a sender/receiver pair onto a network.

``TcpFlow`` is what experiments instantiate: it binds the two agents to
their nodes, exposes combined statistics, and computes the paper's
reported quantities (throughput in pkt/s, mean cwnd, mean RTT, number of
window cuts) over a measurement window via snapshot diffing.
"""

from __future__ import annotations

from typing import Optional

from ..net.network import Network
from ..sim.engine import Simulator
from .config import TcpConfig
from .receiver import TcpReceiver
from .sender import TcpSender


class TcpFlow:
    """One TCP SACK connection between two nodes of a :class:`Network`."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        flow: str,
        src: str,
        dst: str,
        config: Optional[TcpConfig] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.flow = flow
        config = config or TcpConfig()
        src_node, dst_node = net.node(src), net.node(dst)
        self.sender = TcpSender(sim, src_node, flow, dst, config=config, limit=limit)
        self.receiver = TcpReceiver(sim, dst_node, flow, config=config)
        src_node.bind(flow, self.sender.on_packet)
        dst_node.bind(flow, self.receiver.on_packet)
        self._mark: Optional[dict] = None

    def start(self, offset: float = 0.0) -> None:
        """Start the sender after ``offset`` seconds."""
        self.sender.start(offset)

    # ------------------------------------------------------------------
    # measurement-window statistics
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Begin a measurement window (typically at warmup end)."""
        snap = self.sender.stats()
        snap.update(self.receiver.stats())
        self._mark = snap

    def report(self) -> dict:
        """Paper-style metrics accumulated since :meth:`mark` (or start)."""
        now_s = self.sender.stats()
        now_r = self.receiver.stats()
        base_s = self._mark or {k: 0 for k in now_s}
        base_r = self._mark or {k: 0 for k in now_r}
        elapsed = now_s["time"] - base_s.get("time", 0.0)
        if elapsed <= 0:
            elapsed = float("nan")
        rtt_n = now_s["rtt_samples"] - base_s.get("rtt_samples", 0)
        return {
            "throughput_pps": (now_r["distinct_received"] - base_r.get("distinct_received", 0))
            / elapsed,
            "mean_cwnd": (now_s["cwnd_integral"] - base_s.get("cwnd_integral", 0.0)) / elapsed,
            "mean_rtt": (
                (now_s["rtt_sum"] - base_s.get("rtt_sum", 0.0)) / rtt_n if rtt_n else 0.0
            ),
            "window_cuts": now_s["window_cuts"] - base_s.get("window_cuts", 0),
            "timeouts": now_s["timeouts"] - base_s.get("timeouts", 0),
            "packets_sent": now_s["packets_sent"] - base_s.get("packets_sent", 0),
            "retransmits": now_s["retransmits"] - base_s.get("retransmits", 0),
            "elapsed": elapsed,
        }
