"""The TCP SACK receiver.

Receivers in the paper's model are "infinitely fast": every data packet is
consumed immediately.  By default every data packet is acknowledged
immediately (one ACK per packet, NS2 SACK style).  With
``config.delayed_ack`` the receiver follows RFC 1122: in-order segments
are acknowledged every second packet or after a 200 ms timer, while
out-of-order segments still trigger immediate (duplicate) ACKs so fast
retransmit keeps working.

Each ACK carries the cumulative point, up to three SACK blocks, the ECN
echo, and the data packet's send timestamp so the sender can measure RTT
without per-packet state.
"""

from __future__ import annotations

from typing import Optional

from ..net.node import Node
from ..net.packet import ACK, DATA, Packet
from ..sim.engine import Simulator
from ..sim.process import Timer
from .config import TcpConfig
from .sack import ReceiverSackTracker


class TcpReceiver:
    """Sink + acknowledger for one TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        config: Optional[TcpConfig] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow = flow
        self.config = (config or TcpConfig()).validate()
        self.tracker = ReceiverSackTracker()
        self.acks_sent = 0
        self.duplicates = 0
        # delayed-ACK state
        self._unacked_in_order = 0
        self._pending: Optional[Packet] = None   # latest data awaiting ack
        self._delack_timer = Timer(sim, self._delack_fire,
                                   name=f"{flow}.delack")

    @property
    def distinct_received(self) -> int:
        """Distinct data segments delivered (the goodput numerator)."""
        return self.tracker.distinct_received

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler; receivers only care about data."""
        if packet.kind != DATA:
            return
        is_new = self.tracker.receive(packet.seq)
        if not is_new:
            self.duplicates += 1
        if not self.config.delayed_ack:
            self._send_ack(packet)
            return
        in_order = is_new and not self.tracker.blocks()
        if not in_order or packet.ce:
            # duplicate / filled-a-hole / out-of-order / ECN mark: ack now
            self._flush(packet)
            return
        self._pending = packet
        self._unacked_in_order += 1
        if self._unacked_in_order >= 2:
            self._flush(packet)
        elif not self._delack_timer.pending:
            self._delack_timer.start(self.config.delack_timeout)

    # ------------------------------------------------------------------
    def _flush(self, data: Packet) -> None:
        self._delack_timer.stop()
        self._unacked_in_order = 0
        self._pending = None
        self._send_ack(data)

    def _delack_fire(self) -> None:
        if self._pending is not None:
            self._flush(self._pending)

    def _send_ack(self, data: Packet) -> None:
        ack = Packet(
            ACK,
            self.flow,
            self.node.id,
            data.src,
            data.seq,
            self.config.ack_size,
            sent_time=self.sim.now,
            echo_ts=data.sent_time,
            ack=self.tracker.rcv_nxt,
            sack=self.tracker.blocks(),
        )
        ack.ece = data.ce  # echo an ECN mark straight back (one-shot)
        self.acks_sent += 1
        self.node.send(ack)

    def stats(self) -> dict:
        """Snapshot of receiver counters."""
        return {
            "distinct_received": self.distinct_received,
            "duplicates": self.duplicates,
            "acks_sent": self.acks_sent,
            "time": self.sim.now,
        }
