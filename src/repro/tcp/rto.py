"""Round-trip time estimation and retransmission timeout (RFC 6298 style).

Jacobson/Karels smoothing: ``srtt`` is an EWMA with gain 1/8, ``rttvar``
tracks mean deviation with gain 1/4, and the timer is
``srtt + 4 * rttvar`` clamped to configured bounds, doubling on backoff.
The same estimator serves TCP and (per-receiver) the RLA sender.
"""

from __future__ import annotations

from typing import Optional

ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
K = 4.0


class RttEstimator:
    """Smoothed RTT + RTO computation with exponential backoff.

    Slotted: the RLA sender owns one estimator per receiver, so at large
    group sizes these are among the most numerous hot objects in a run.
    """

    __slots__ = (
        "min_rto",
        "max_rto",
        "srtt",
        "rttvar",
        "_backoff",
        "samples",
        "sample_sum",
        "_rto_cached",
    )

    def __init__(self, min_rto: float = 1.0, max_rto: float = 64.0) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1.0
        self.samples = 0
        self.sample_sum = 0.0
        self._rto_cached = self._compute_rto()

    def update(self, sample: float) -> None:
        """Fold one RTT measurement (seconds) into the estimate."""
        if sample <= 0:
            return
        self.samples += 1
        self.sample_sum += sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar += BETA * (abs(self.srtt - sample) - self.rttvar)
            self.srtt += ALPHA * (sample - self.srtt)
        self._backoff = 1.0
        self._rto_cached = self._compute_rto()

    def _compute_rto(self) -> float:
        if self.srtt is None:
            base = self.min_rto * 3  # conservative until the first sample
        else:
            assert self.rttvar is not None
            base = self.srtt + K * self.rttvar
        return min(self.max_rto, max(self.min_rto, base) * self._backoff)

    def rto(self) -> float:
        """Current retransmission timeout, including any backoff.

        A pure function of the estimator state, so it is recomputed only
        when that state changes (:meth:`update` / :meth:`backoff`): the
        RLA sender takes the max over *every* receiver's estimator on
        *every* ACK, which made this the hottest non-engine call in a
        figure-7 profile.
        """
        return self._rto_cached

    def backoff(self) -> None:
        """Double the timer after a timeout (capped by ``max_rto``)."""
        self._backoff = min(self._backoff * 2.0, self.max_rto / self.min_rto)
        self._rto_cached = self._compute_rto()

    def mean_rtt(self) -> float:
        """Arithmetic mean of all samples seen (paper's reported RTT)."""
        return self.sample_sum / self.samples if self.samples else 0.0
