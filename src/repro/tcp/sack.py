"""Selective-acknowledgment bookkeeping (RFC 2018 style, packet granular).

Two halves:

* :class:`ReceiverSackTracker` lives at a receiver.  It records which
  segments have arrived, advances the cumulative ACK point, and generates
  up to three SACK blocks (most recently changed first, per RFC 2018).
* :class:`SenderScoreboard` lives at a sender.  It digests incoming
  cumulative ACK + SACK block information and answers "which outstanding
  segments should be considered lost?" using the paper's rule: a segment is
  lost once a segment at least ``dupthresh`` higher has been SACKed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

SackBlock = Tuple[int, int]  # half-open [start, end)


class ReceiverSackTracker:
    """Receiver-side arrival map: cumulative point + out-of-order segments.

    ``base`` starts the cumulative point above zero — a late-joining
    multicast receiver is synced to the sender's current send point and
    treats everything below it as already delivered.

    Slotted: every TCP receiver and every multicast group member owns
    one, consulted per delivered segment.
    """

    __slots__ = ("rcv_nxt", "_above", "_recent_blocks", "distinct_received")

    def __init__(self, base: int = 0) -> None:
        #: Next expected in-order sequence number; all seq < rcv_nxt received.
        self.rcv_nxt = base
        self._above: Set[int] = set()
        self._recent_blocks: List[SackBlock] = []
        #: Number of distinct (first-time) segments received.
        self.distinct_received = 0

    def receive(self, seq: int) -> bool:
        """Record segment ``seq``; returns True if it was new."""
        if seq < self.rcv_nxt or seq in self._above:
            return False
        self.distinct_received += 1
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            while self.rcv_nxt in self._above:
                self._above.discard(self.rcv_nxt)
                self.rcv_nxt += 1
        else:
            self._above.add(seq)
        self._remember_block(seq)
        return True

    def _remember_block(self, seq: int) -> None:
        """Track the block containing ``seq`` as most-recently-updated."""
        if seq < self.rcv_nxt:
            self._recent_blocks = [
                b for b in self._recent_blocks if b[1] > self.rcv_nxt
            ]
            return
        start = seq
        while start - 1 in self._above:
            start -= 1
        end = seq + 1
        while end in self._above:
            end += 1
        block = (start, end)
        self._recent_blocks = [
            b for b in self._recent_blocks
            if not (b[0] >= block[0] and b[1] <= block[1]) and b[1] > self.rcv_nxt
        ]
        self._recent_blocks.insert(0, block)

    def blocks(self, max_blocks: int = 3) -> Tuple[SackBlock, ...]:
        """Up to ``max_blocks`` SACK blocks, most recently updated first."""
        out: List[SackBlock] = []
        for block in self._recent_blocks:
            if block[1] <= self.rcv_nxt:
                continue
            clipped = (max(block[0], self.rcv_nxt), block[1])
            if clipped not in out:
                out.append(clipped)
            if len(out) == max_blocks:
                break
        return tuple(out)

    def has(self, seq: int) -> bool:
        """True once segment ``seq`` has been received."""
        return seq < self.rcv_nxt or seq in self._above


class SenderScoreboard:
    """Sender-side view of what the receiver holds."""

    def __init__(self, dupthresh: int = 3) -> None:
        self.dupthresh = dupthresh
        #: Highest cumulative ACK seen (all seq < snd_una delivered).
        self.snd_una = 0
        self._sacked: Set[int] = set()
        #: Highest sequence number ever SACKed (or -1).
        self.max_sacked = -1

    def update(self, ack: int, sack: Optional[Iterable[SackBlock]]) -> int:
        """Digest one ACK; returns the number of newly cum-acked segments."""
        newly_acked = max(0, ack - self.snd_una)
        if ack > self.snd_una:
            self.snd_una = ack
            self._sacked = {s for s in self._sacked if s >= ack}
        if sack:
            for start, end in sack:
                for seq in range(max(start, self.snd_una), end):
                    self._sacked.add(seq)
                if end - 1 > self.max_sacked:
                    self.max_sacked = end - 1
        if ack - 1 > self.max_sacked:
            self.max_sacked = ack - 1
        return newly_acked

    def is_sacked(self, seq: int) -> bool:
        """True if the receiver is known to hold ``seq``."""
        return seq < self.snd_una or seq in self._sacked

    def is_lost(self, seq: int) -> bool:
        """The paper's loss rule: something >= seq + dupthresh was SACKed."""
        if self.is_sacked(seq):
            return False
        return self.max_sacked >= seq + self.dupthresh

    def lost_segments(self, up_to: int) -> List[int]:
        """All segments in [snd_una, up_to) currently deemed lost."""
        limit = min(up_to, self.max_sacked - self.dupthresh + 1)
        return [
            seq
            for seq in range(self.snd_una, limit)
            if seq not in self._sacked
        ]

    @property
    def sacked_count(self) -> int:
        """Number of SACKed-but-not-cum-acked segments."""
        return len(self._sacked)
