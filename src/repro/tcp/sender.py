"""The TCP SACK sender.

Implements the congestion-control skeleton of §4.1 of the paper over the
SACK machinery of :mod:`repro.tcp.sack`:

* slow start (``cwnd += 1`` per new ACK below ``ssthresh``),
* congestion avoidance (``cwnd += k / cwnd`` for ``k`` newly acked),
* one window halving per congestion event (fast-recovery style: further
  losses inside the same recovery window do not halve again),
* timeout: ``ssthresh = cwnd / 2``, ``cwnd = 1``, exponential RTO backoff,
* SACK-driven retransmission with a conservation-of-packets pipe estimate.

The sender is greedy by default (infinite backlog), matching the paper's
"the sender has infinite data to send" assumption; ``limit`` makes it stop
after a fixed number of segments for file-transfer style tests.
"""

from __future__ import annotations

from typing import Optional, Set

from ..net.node import Node
from ..net.packet import ACK, DATA, Packet
from ..sim.engine import Simulator
from ..sim.process import Timer
from .config import TcpConfig
from .rto import RttEstimator
from .sack import SenderScoreboard


class TcpSender:
    """One direction of a TCP SACK connection (data out, ACKs in)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: str,
        dst: str,
        config: Optional[TcpConfig] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow = flow
        self.dst = dst
        self.config = (config or TcpConfig()).validate()
        self.limit = limit

        self.cwnd: float = self.config.initial_cwnd
        self.ssthresh: float = self.config.initial_ssthresh
        self.snd_nxt = 0
        self.scoreboard = SenderScoreboard(self.config.dupack_threshold)
        self.rtt = RttEstimator(self.config.min_rto, self.config.max_rto)
        self._rto_timer = Timer(sim, self._on_timeout, name=f"{flow}.rto")
        self._in_recovery = False
        self._recover = -1
        self._lost: Set[int] = set()          # declared lost, awaiting rtx
        self._rtx_flight: Set[int] = set()    # retransmitted, fate unknown
        self._jitter_rng = sim.rng.stream(f"{flow}.jitter")
        self._started = False
        self.finished = False
        #: Optional audit hook: audited runs point this at an
        #: ``InvariantMonitor`` and every processed ACK is sanity-checked
        #: (window bounds, pipe >= 0, sequence ordering).
        self.monitor = None

        # lifetime statistics (experiments snapshot-diff these)
        self.packets_sent = 0
        self.retransmits = 0
        self.window_cuts = 0
        self.timeouts = 0
        self.ecn_cuts = 0
        self.cwnd_integral = 0.0
        self._cwnd_clock = sim.now

    # ------------------------------------------------------------------
    # public control
    # ------------------------------------------------------------------
    def start(self, offset: float = 0.0) -> None:
        """Begin transmitting after ``offset`` seconds."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_after(offset, self._kick, name=f"{self.flow}.start")

    def on_packet(self, packet: Packet) -> None:
        """Node-bound handler; senders only care about ACKs."""
        if packet.kind == ACK:
            self._on_ack(packet)

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------
    def _note_cwnd(self) -> None:
        """Accumulate the time-weighted cwnd integral up to now."""
        now = self.sim.now
        self.cwnd_integral += self.cwnd * (now - self._cwnd_clock)
        self._cwnd_clock = now

    def _set_cwnd(self, value: float) -> None:
        self._note_cwnd()
        self.cwnd = min(max(value, 1.0), self.config.max_cwnd)

    @property
    def snd_una(self) -> int:
        """Lowest unacknowledged sequence number."""
        return self.scoreboard.snd_una

    @property
    def pipe(self) -> int:
        """Conservation-of-packets estimate of segments in flight."""
        outstanding = self.snd_nxt - self.snd_una
        return (
            outstanding
            - self.scoreboard.sacked_count
            - len(self._lost)
            + len(self._rtx_flight)
        )

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        if packet.echo_ts > 0:
            self.rtt.update(self.sim.now - packet.echo_ts)
        if packet.ece and not self._in_recovery:
            # An echoed ECN mark is a congestion signal: halve once per
            # window, exactly like a loss but with nothing to retransmit.
            self.ecn_cuts += 1
            self._enter_recovery()
        board = self.scoreboard
        newly_acked = board.update(packet.ack if packet.ack is not None else 0, packet.sack)
        # Anything now known-received is no longer lost/in rtx flight.
        self._lost = {s for s in self._lost if not board.is_sacked(s)}
        self._rtx_flight = {s for s in self._rtx_flight if not board.is_sacked(s)}

        if newly_acked > 0:
            if self._in_recovery and board.snd_una > self._recover:
                self._in_recovery = False
                self._set_cwnd(self.ssthresh)
            if not self._in_recovery:
                self._grow_window(newly_acked)
            self._restart_rto()

        self._detect_losses()
        if self.monitor is not None:
            self.monitor.check_tcp(self)
        if self.finished:
            return
        if self.limit is not None and board.snd_una >= self.limit and self.pipe <= 0:
            self.finished = True
            self._rto_timer.stop()
            return
        self._try_send()

    def _grow_window(self, newly_acked: int) -> None:
        cwnd = self.cwnd
        for _ in range(newly_acked):
            if cwnd < self.ssthresh:
                cwnd += 1.0
            else:
                cwnd += 1.0 / cwnd
        self._set_cwnd(cwnd)

    def _detect_losses(self) -> None:
        board = self.scoreboard
        fresh = [
            seq
            for seq in board.lost_segments(self.snd_nxt)
            if seq not in self._lost and seq not in self._rtx_flight
        ]
        if not fresh:
            return
        self._lost.update(fresh)
        if not self._in_recovery:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recover = self.snd_nxt - 1
        self.window_cuts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self._set_cwnd(self.ssthresh)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        self._try_send()
        if not self._rto_timer.pending:
            self._restart_rto()

    def _try_send(self) -> None:
        while self.pipe < int(self.cwnd):
            seq, is_rtx = self._next_to_send()
            if seq is None:
                return
            self._emit(seq, is_rtx)

    def _next_to_send(self):
        if self._lost:
            seq = min(self._lost)
            self._lost.discard(seq)
            self._rtx_flight.add(seq)
            return seq, True
        if self.limit is not None and self.snd_nxt >= self.limit:
            return None, False
        seq = self.snd_nxt
        self.snd_nxt += 1
        return seq, False

    def _emit(self, seq: int, is_rtx: bool) -> None:
        # Pipe accounting happened at decision time (_next_to_send), so a
        # jittered emission is already "in flight" while it waits.
        jitter = self.config.phase_jitter
        if jitter:
            delay = self._jitter_rng.uniform(0.0, jitter)
            self.sim.schedule_after(delay, self._emit_now, seq, is_rtx,
                                    name=f"{self.flow}.jit")
        else:
            self._emit_now(seq, is_rtx)

    def _emit_now(self, seq: int, is_rtx: bool) -> None:
        packet = Packet(
            DATA,
            self.flow,
            self.node.id,
            self.dst,
            seq,
            self.config.packet_size,
            sent_time=self.sim.now,
            is_retransmit=is_rtx,
        )
        packet.ect = self.config.ecn
        self.packets_sent += 1
        if is_rtx:
            self.retransmits += 1
        self.node.send(packet)
        if not self._rto_timer.pending:
            self._restart_rto()

    # ------------------------------------------------------------------
    # timeout handling
    # ------------------------------------------------------------------
    def _restart_rto(self) -> None:
        if self.limit is not None and self.finished:
            return
        self._rto_timer.start(self.rtt.rto())

    def _on_timeout(self) -> None:
        if self.snd_nxt <= self.snd_una:
            return  # nothing outstanding
        self.timeouts += 1
        self.window_cuts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self._set_cwnd(1.0)
        self.rtt.backoff()
        self._in_recovery = False
        self._recover = -1
        board = self.scoreboard
        self._rtx_flight.clear()
        self._lost = {
            seq for seq in range(board.snd_una, self.snd_nxt) if not board.is_sacked(seq)
        }
        self._restart_rto()
        self._try_send()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot of the sender's counters (diff two snapshots to window)."""
        self._note_cwnd()
        return {
            "packets_sent": self.packets_sent,
            "retransmits": self.retransmits,
            "window_cuts": self.window_cuts,
            "timeouts": self.timeouts,
            "ecn_cuts": self.ecn_cuts,
            "cwnd_integral": self.cwnd_integral,
            "cwnd": self.cwnd,
            "time": self.sim.now,
            "rtt_sum": self.rtt.sample_sum,
            "rtt_samples": self.rtt.samples,
        }

    def __repr__(self) -> str:
        return (
            f"TcpSender({self.flow}, cwnd={self.cwnd:.2f}, una={self.snd_una}, "
            f"nxt={self.snd_nxt}, cuts={self.window_cuts})"
        )
