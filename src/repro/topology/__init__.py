"""Paper topologies: figure 1 (restricted) and figure 6 (tertiary tree)."""

from .cases import (
    RTT_CASES,
    TREE_CASES,
    TreeCase,
    case_bandwidths,
    case_receivers,
    congestion_tiers,
)
from .dumbbell import DumbbellCohort, DumbbellSpec, build_dumbbell
from .restricted import RestrictedSpec, build_restricted
from .tree import (
    DEFAULT_BANDWIDTH,
    LEVEL_DELAYS,
    TreeInfo,
    build_tertiary_tree,
    static_tree_info,
    tree_link_names,
)

__all__ = [
    "DEFAULT_BANDWIDTH",
    "LEVEL_DELAYS",
    "RTT_CASES",
    "TREE_CASES",
    "DumbbellCohort",
    "DumbbellSpec",
    "RestrictedSpec",
    "TreeCase",
    "TreeInfo",
    "build_dumbbell",
    "build_restricted",
    "build_tertiary_tree",
    "static_tree_info",
    "case_bandwidths",
    "case_receivers",
    "congestion_tiers",
    "tree_link_names",
]
