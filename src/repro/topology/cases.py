"""The experiment cases of §5 (figures 7-10).

Each case names the *most congested links* of the figure 6 tree.  The
paper sets "the corresponding link speeds ... so that the soft bottleneck
bandwidth share is min mu_i/(m_i+1) = 100 packets per second"; with one
background TCP connection per receiver, a congested link crossed by ``k``
TCP connections plus the multicast stream gets capacity
``(k + 1) * share``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import TopologyError
from ..units import DEFAULT_PACKET_SIZE, pps_to_bps
from .tree import TreeInfo, tree_link_names


@dataclass(frozen=True)
class TreeCase:
    """One column of the figure 7/9/10 tables."""

    name: str
    congested_links: Sequence[str]
    description: str
    #: which receiver population the case uses ("leaves" for figs 7-9,
    #: "leaves+level3" for figure 10)
    receivers: str = "leaves"

    def __post_init__(self) -> None:
        unknown = set(self.congested_links) - set(tree_link_names())
        if unknown:
            raise TopologyError(f"{self.name}: unknown links {sorted(unknown)}")


#: Figure 7/9 cases (27 leaf receivers, equal RTTs).
TREE_CASES: Dict[int, TreeCase] = {
    1: TreeCase("case1", ("L1",), "single shared bottleneck at the root link"),
    2: TreeCase("case2", tuple(f"L3{i}" for i in range(1, 10)),
                "nine level-3 bottlenecks (partially correlated losses)"),
    3: TreeCase("case3", tuple(f"L4{i}" for i in range(1, 28)),
                "27 leaf bottlenecks (independent losses)"),
    4: TreeCase("case4", tuple(f"L4{i}" for i in range(1, 6)),
                "five congested leaves, the rest uncongested"),
    5: TreeCase("case5", ("L21",),
                "one congested level-2 subtree (9 of 27 receivers)"),
}

#: Figure 10 cases (36 receivers: 27 leaves + G31..G39, unequal RTTs).
RTT_CASES: Dict[int, TreeCase] = {
    1: TreeCase("rtt-case1", tuple(f"L2{i}" for i in range(1, 4)),
                "all three level-2 links congested", receivers="leaves+level3"),
    2: TreeCase("rtt-case2", tuple(f"L3{i}" for i in range(1, 10)),
                "all nine level-3 links congested", receivers="leaves+level3"),
}


def case_receivers(case: TreeCase, info: TreeInfo) -> List[str]:
    """The receiver population the case runs with."""
    if case.receivers == "leaves":
        return list(info.leaves)
    if case.receivers == "leaves+level3":
        return list(info.leaves) + list(info.level3)
    raise TopologyError(f"unknown receiver population {case.receivers!r}")


def case_bandwidths(
    case: TreeCase,
    info: TreeInfo,
    share_pps: float = 100.0,
    tcp_per_receiver: int = 1,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> Dict[str, float]:
    """Capacity (bits/s) of each congested link for a fair share of
    ``share_pps`` packets/second.

    A link crossed by ``k`` background TCP connections plus the single
    multicast stream gets ``(k + 1) * share_pps`` packets/second.  The
    background TCPs run from the sender to the *leaf* receivers only
    (figure 10's interior G3x receivers join the multicast group but get
    no TCP of their own — the paper's WTCP/BTCP rows there show leaf
    round-trip times).
    """
    if share_pps <= 0:
        raise TopologyError(f"share must be positive: {share_pps}")
    bandwidths: Dict[str, float] = {}
    for link in case.congested_links:
        crossing = len(info.leaves_below[link]) * tcp_per_receiver
        bandwidths[link] = pps_to_bps((crossing + 1) * share_pps, packet_size)
    return bandwidths


def congestion_tiers(
    case: TreeCase, info: TreeInfo, receivers: Sequence[str]
) -> Dict[str, List[str]]:
    """Split receivers into "more congested" / "less congested" groups.

    Receivers behind a congested link form the *more congested* group —
    the split figure 8 reports signal statistics over.
    """
    behind: set = set()
    for link in case.congested_links:
        behind.update(info.receivers_below(link, list(receivers)))
    more = [r for r in receivers if r in behind]
    less = [r for r in receivers if r not in behind]
    return {"more": more, "less": less}
