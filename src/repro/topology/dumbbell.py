"""Deterministic dumbbell topology for fluid cross-validation.

One source ``S``, a single shared bottleneck ``GL == GR`` running the
discipline under study, and per-cohort host fan-outs on fast access
links — the canonical many-flows-one-queue shape the mean-field limit
describes.  Unlike the generative scenario topologies this builder has
*no* randomness (no jitter, no placement draws): host RTTs are exact
functions of the spec, so a packet-level run and its fluid twin
(:func:`repro.fluid.crossval.crossval_case`) describe the same system
and their disagreement measures model error, not workload noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import TopologyError
from ..net.network import Network, discipline_factory, droptail_factory
from ..sim.engine import Simulator
from ..units import DEFAULT_PACKET_SIZE, mbps, ms, pps_to_bps

#: Deep source-side and access-side buffers: only the bottleneck drops.
SOURCE_BUFFER_PKTS = 1000
ACCESS_BUFFER_PKTS = 200


@dataclass(frozen=True)
class DumbbellCohort:
    """A group of hosts sharing one access one-way propagation delay."""

    hosts: int
    access_delay: float
    label: str = ""

    def validate(self) -> "DumbbellCohort":
        """Check counts and delay; returns self for chaining."""
        if self.hosts < 1:
            raise TopologyError(f"cohort needs >= 1 host: {self.hosts}")
        if self.access_delay < 0:
            raise TopologyError(
                f"negative access delay: {self.access_delay}"
            )
        return self


@dataclass(frozen=True)
class DumbbellSpec:
    """Parameters of the cross-validation dumbbell.

    ``capacity_pps`` is the bottleneck speed in data packets/second;
    every other link is provisioned far above it.  ``gateway`` is any
    discipline :func:`repro.net.network.discipline_factory` knows (the
    fluid twin supports drop-tail and RED).
    """

    capacity_pps: float
    cohorts: Tuple[DumbbellCohort, ...]
    buffer_pkts: int = 25
    gateway: str = "droptail"
    source_delay: float = ms(1)
    bottleneck_delay: float = ms(1)
    access_mbps: float = 100.0
    packet_size: int = DEFAULT_PACKET_SIZE

    def validate(self) -> "DumbbellSpec":
        """Check the spec tree; returns self for chaining."""
        if self.capacity_pps <= 0:
            raise TopologyError(
                f"bottleneck capacity must be positive: {self.capacity_pps}"
            )
        if not self.cohorts:
            raise TopologyError("dumbbell needs at least one cohort")
        for cohort in self.cohorts:
            cohort.validate()
        if self.buffer_pkts < 2:
            raise TopologyError(f"buffer too small: {self.buffer_pkts}")
        return self

    @property
    def n_hosts(self) -> int:
        """Total hosts across cohorts."""
        return sum(cohort.hosts for cohort in self.cohorts)

    def host_rtt(self, cohort_index: int) -> float:
        """Propagation RTT source->cohort host, plus one bottleneck
        transmission time (the serialization a fluid model cannot see as
        queueing).  Queueing delay is on top of this."""
        cohort = self.cohorts[cohort_index]
        prop = 2.0 * (self.source_delay + self.bottleneck_delay
                      + cohort.access_delay)
        return prop + 1.0 / self.capacity_pps


def build_dumbbell(
    sim: Simulator, spec: DumbbellSpec
) -> Tuple[Network, List[List[str]]]:
    """Build the dumbbell; returns ``(network, hosts per cohort)``.

    Host ids are ``"H{cohort}_{index}"`` in deterministic order.  Only
    the ``GL == GR`` bottleneck runs the studied discipline; the source
    and access links are deep drop-tail queues that never drop.
    """
    spec.validate()
    factory = discipline_factory(spec.gateway, sim,
                                 capacity=spec.buffer_pkts,
                                 mean_packet_size=spec.packet_size)
    net = Network(sim, default_queue=droptail_factory(ACCESS_BUFFER_PKTS),
                  mean_packet_size=spec.packet_size)
    net.add_link("S", "GL", mbps(100), spec.source_delay,
                 queue_factory=droptail_factory(SOURCE_BUFFER_PKTS))
    net.add_link("GL", "GR",
                 pps_to_bps(spec.capacity_pps, spec.packet_size),
                 spec.bottleneck_delay, queue_factory=factory)
    cohort_hosts: List[List[str]] = []
    for c, cohort in enumerate(spec.cohorts):
        hosts = []
        for i in range(cohort.hosts):
            host = f"H{c}_{i}"
            net.add_link("GR", host, mbps(spec.access_mbps),
                         cohort.access_delay)
            hosts.append(host)
        cohort_hosts.append(hosts)
    net.build_routes()
    return net, cohort_hosts
