"""The restricted topology of figure 1.

One sender ``S``, a shared gateway ``G``, and ``N`` receivers, each behind
its own virtual-link bottleneck of capacity ``mu_i`` shared with ``m_i``
background TCP connections.  This is the topology on which the paper
*defines* soft bottleneck / absolute / essential fairness, and it is what
the fairness unit tests and the quickstart example use — small enough to
reason about exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..net.network import Network, droptail_factory, red_factory
from ..sim.engine import Simulator
from ..units import DEFAULT_PACKET_SIZE, mbps, ms, pps_to_bps


@dataclass
class RestrictedSpec:
    """Parameters of a figure 1 topology.

    ``mu_pps[i]`` is branch i's bottleneck capacity in packets/second and
    ``m[i]`` its number of background TCP connections.  The common access
    link S-G is non-bottleneck (100 Mbps) and all branches share the same
    propagation delay so round-trip times are equal, as §2.2 requires.
    """

    mu_pps: Sequence[float]
    m: Sequence[int]
    branch_delay: float = ms(50)
    access_delay: float = ms(5)
    gateway: str = "droptail"
    buffer_pkts: int = 20
    packet_size: int = DEFAULT_PACKET_SIZE

    def validate(self) -> "RestrictedSpec":
        if not self.mu_pps:
            raise TopologyError("restricted topology needs at least one branch")
        if len(self.mu_pps) != len(self.m):
            raise TopologyError("mu_pps and m must have equal length")
        if any(mu <= 0 for mu in self.mu_pps):
            raise TopologyError("branch capacities must be positive")
        if any(count < 0 for count in self.m):
            raise TopologyError("TCP counts must be non-negative")
        if self.gateway not in ("droptail", "red"):
            raise TopologyError(f"unknown gateway type {self.gateway!r}")
        return self


def build_restricted(
    sim: Simulator, spec: RestrictedSpec
) -> Tuple[Network, List[str]]:
    """Build the figure 1 network; returns (network, receiver node ids)."""
    spec.validate()
    if spec.gateway == "red":
        factory = red_factory(sim, capacity=spec.buffer_pkts)
    else:
        factory = droptail_factory(spec.buffer_pkts)
    net = Network(sim, default_queue=factory)
    # The shared access link never bottlenecks; give it a deep buffer so
    # it cannot distort the per-branch loss processes under study.
    net.add_link("S", "G", mbps(100), spec.access_delay,
                 queue_factory=droptail_factory(1000))
    receivers = []
    for index, mu in enumerate(spec.mu_pps, start=1):
        receiver = f"R{index}"
        receivers.append(receiver)
        net.add_link("G", receiver, pps_to_bps(mu, spec.packet_size),
                     spec.branch_delay, queue_factory=factory)
    net.build_routes()
    return net, receivers
