"""The four-level tertiary tree of figure 6.

Node naming follows the paper: the sender ``S`` at the root, gateway
``G1`` below it, then ``G21..G23``, then ``G31..G39``, and the 27 leaf
receivers ``R1..R27``.  Link names carry the level and order: ``L1`` is
``S-G1``, ``L2i`` is ``G1-G2i``, ``L3i`` is ``G2(ceil(i/3))-G3i`` and
``L4i`` is ``G3(ceil(i/3))-Ri``.

Default parameters are the §5 settings: 5 ms one-way delay on the first
three levels, 100 ms on level four, 100 Mbps on every non-bottleneck link,
20-packet buffers everywhere, RED thresholds 5/15 where RED is used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TopologyError
from ..net.network import Network, QueueFactory, droptail_factory, red_factory
from ..sim.engine import Simulator
from ..units import mbps, ms

#: One-way propagation delays per level (seconds), §5.
LEVEL_DELAYS = (ms(5), ms(5), ms(5), ms(100))

#: Speed of every non-bottleneck link, §5.
DEFAULT_BANDWIDTH = mbps(100)


def _parent_g3(i: int) -> str:
    return f"G3{(i + 2) // 3}"


def _parent_g2(i: int) -> str:
    return f"G2{(i + 2) // 3}"


@dataclass
class TreeInfo:
    """Structure metadata for a built tertiary tree."""

    #: link name -> (upstream node, downstream node)
    links: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: link name -> leaf receivers whose sender path crosses it
    leaves_below: Dict[str, List[str]] = field(default_factory=dict)
    #: all leaf receiver node ids, R1..R27 in order
    leaves: List[str] = field(default_factory=list)
    #: level-3 gateway node ids, G31..G39 (extra receivers in figure 10)
    level3: List[str] = field(default_factory=list)
    root: str = "S"

    def endpoints(self, link_name: str) -> Tuple[str, str]:
        """(upstream, downstream) node pair of a named link."""
        try:
            return self.links[link_name]
        except KeyError:
            raise TopologyError(f"unknown link {link_name!r}") from None

    def receivers_below(self, link_name: str, receivers: List[str]) -> List[str]:
        """Members of ``receivers`` whose path from S crosses ``link_name``."""
        down = self.endpoints(link_name)[1]
        subtree = self._subtree(down)
        return [r for r in receivers if r in subtree]

    def _subtree(self, node: str) -> set:
        nodes = {node}
        frontier = [node]
        children: Dict[str, List[str]] = {}
        for name, (up, down) in self.links.items():
            children.setdefault(up, []).append(down)
        while frontier:
            current = frontier.pop()
            for child in children.get(current, ()):
                if child not in nodes:
                    nodes.add(child)
                    frontier.append(child)
        return nodes

    def level_of(self, link_name: str) -> int:
        """Tree level (1-4) encoded in the link name."""
        if link_name == "L1":
            return 1
        return int(link_name[1])


def tree_link_names() -> List[str]:
    """All 40 link names of the figure 6 tree, root first."""
    names = ["L1"]
    names += [f"L2{i}" for i in range(1, 4)]
    names += [f"L3{i}" for i in range(1, 10)]
    names += [f"L4{i}" for i in range(1, 28)]
    return names


def static_tree_info() -> TreeInfo:
    """The figure 6 tree's metadata without building a network.

    Useful for computing case bandwidths and congestion tiers before (or
    without) instantiating a simulator.
    """
    info = TreeInfo()
    info.links["L1"] = ("S", "G1")
    for i in range(1, 4):
        info.links[f"L2{i}"] = ("G1", f"G2{i}")
    for i in range(1, 10):
        info.links[f"L3{i}"] = (_parent_g2(i), f"G3{i}")
        info.level3.append(f"G3{i}")
    for i in range(1, 28):
        info.links[f"L4{i}"] = (_parent_g3(i), f"R{i}")
        info.leaves.append(f"R{i}")
    for name in info.links:
        info.leaves_below[name] = info.receivers_below(name, info.leaves)
    return info


def build_tertiary_tree(
    sim: Simulator,
    gateway: str = "droptail",
    link_bandwidths: Optional[Dict[str, float]] = None,
    buffer_pkts: int = 20,
    red_min_th: float = 5.0,
    red_max_th: float = 15.0,
) -> Tuple[Network, TreeInfo]:
    """Build the figure 6 network; returns the network and its metadata.

    ``link_bandwidths`` overrides individual links (by name) to create the
    bottlenecks of each experiment case; all other links run at 100 Mbps.
    """
    if gateway == "droptail":
        factory: QueueFactory = droptail_factory(buffer_pkts)
    elif gateway == "red":
        factory = red_factory(sim, capacity=buffer_pkts,
                              min_th=red_min_th, max_th=red_max_th)
    else:
        raise TopologyError(f"unknown gateway type {gateway!r}")
    overrides = link_bandwidths or {}
    unknown = set(overrides) - set(tree_link_names())
    if unknown:
        raise TopologyError(f"bandwidth overrides for unknown links: {sorted(unknown)}")

    net = Network(sim, default_queue=factory)
    info = TreeInfo()

    def add(name: str, up: str, down: str, level: int) -> None:
        bandwidth = overrides.get(name, DEFAULT_BANDWIDTH)
        net.add_link(up, down, bandwidth, LEVEL_DELAYS[level - 1])
        info.links[name] = (up, down)

    add("L1", "S", "G1", 1)
    for i in range(1, 4):
        add(f"L2{i}", "G1", f"G2{i}", 2)
    for i in range(1, 10):
        add(f"L3{i}", _parent_g2(i), f"G3{i}", 3)
        info.level3.append(f"G3{i}")
    for i in range(1, 28):
        add(f"L4{i}", _parent_g3(i), f"R{i}", 4)
        info.leaves.append(f"R{i}")
    net.build_routes()

    for name in info.links:
        info.leaves_below[name] = info.receivers_below(name, info.leaves)
    return net, info
