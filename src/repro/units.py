"""Unit helpers for bandwidth, time and packet sizes.

The paper quotes link capacities in packets per second for 1000-byte data
packets, while the simulator internally works in bits per second and float
seconds.  These helpers keep the conversions explicit and in one place.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Data packet size used throughout the paper's evaluation (section 5).
DEFAULT_PACKET_SIZE = 1000  # bytes

#: Size of pure acknowledgment packets (TCP/RLA header only).
ACK_SIZE = 40  # bytes

BITS_PER_BYTE = 8

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def bits(nbytes: float) -> float:
    """Return the number of bits in ``nbytes`` bytes."""
    return nbytes * BITS_PER_BYTE


def pps_to_bps(pkts_per_sec: float, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
    """Convert a packets/second rate to bits/second.

    ``packet_size`` is in bytes; the paper's tables use 1000-byte packets.
    """
    if pkts_per_sec < 0:
        raise ConfigurationError(f"negative rate: {pkts_per_sec}")
    return pkts_per_sec * bits(packet_size)


def bps_to_pps(bits_per_sec: float, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
    """Convert a bits/second capacity to packets/second for ``packet_size``."""
    if packet_size <= 0:
        raise ConfigurationError(f"non-positive packet size: {packet_size}")
    return bits_per_sec / bits(packet_size)


def mbps(value: float) -> float:
    """Return ``value`` megabits/second expressed in bits/second."""
    return value * MEGA


def kbps(value: float) -> float:
    """Return ``value`` kilobits/second expressed in bits/second."""
    return value * KILO


def ms(value: float) -> float:
    """Return ``value`` milliseconds expressed in seconds."""
    return value * MILLISECONDS


def transmission_time(size_bytes: int, bandwidth_bps: float) -> float:
    """Serialization delay of a ``size_bytes`` packet on a link.

    Raises :class:`ConfigurationError` for non-positive bandwidth, which
    would otherwise silently produce infinite or negative delays.
    """
    if bandwidth_bps <= 0:
        raise ConfigurationError(f"non-positive bandwidth: {bandwidth_bps}")
    return bits(size_bytes) / bandwidth_bps
