"""CSV export."""

import csv
import io

import pytest

from repro.analysis.export import write_experiment_csv, write_timeseries_csv
from repro.analysis.timeseries import TimeSeries
from repro.errors import ConfigurationError


def test_timeseries_csv_columns():
    a = TimeSeries("a")
    b = TimeSeries("b")
    a.append(0.0, 1.0)
    a.append(1.0, 2.0)
    b.append(0.5, 9.0)
    buffer = io.StringIO()
    rows = write_timeseries_csv(buffer, [a, b])
    assert rows == 3
    parsed = list(csv.reader(io.StringIO(buffer.getvalue())))
    assert parsed[0] == ["time", "a", "b"]
    assert parsed[1] == ["0.0", "1.0", ""]
    assert parsed[2] == ["0.5", "", "9.0"]


def test_timeseries_csv_to_file(tmp_path):
    series = TimeSeries("x")
    series.append(0.0, 1.0)
    path = tmp_path / "out.csv"
    write_timeseries_csv(str(path), [series])
    assert path.read_text().startswith("time,x")


def test_timeseries_csv_requires_series():
    with pytest.raises(ConfigurationError):
        write_timeseries_csv(io.StringIO(), [])


class _FakeResult:
    def __init__(self):
        self.rla = [{"throughput_pps": 100.0,
                     "signals_by_receiver": {"R1": 5, "R2": 7}}]
        self.tcp = {"R1": {"throughput_pps": 80.0}}


def test_experiment_csv_long_format():
    buffer = io.StringIO()
    rows = write_experiment_csv(buffer, {3: _FakeResult()})
    parsed = list(csv.reader(io.StringIO(buffer.getvalue())))
    assert parsed[0] == ["case", "section", "entity", "metric", "value"]
    assert rows == len(parsed) - 1
    sections = {row[1] for row in parsed[1:]}
    assert sections == {"rla", "rla-signals", "tcp"}


def test_experiment_csv_requires_results():
    with pytest.raises(ConfigurationError):
        write_experiment_csv(io.StringIO(), {})
