"""ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.plot import heatmap, line_plot, multi_line_plot
from repro.analysis.timeseries import TimeSeries
from repro.errors import ConfigurationError


def _series(name="s", n=20):
    series = TimeSeries(name)
    for t in range(n):
        series.append(float(t), float(t % 7))
    return series


def test_line_plot_contains_axes_and_title():
    text = line_plot(_series(), title="sawtooth")
    assert "sawtooth" in text
    assert "t=0.0s" in text
    assert "+" in text and "|" in text


def test_line_plot_dimensions():
    text = line_plot(_series(), width=40, height=8)
    plot_rows = [line for line in text.splitlines() if "|" in line]
    assert len(plot_rows) == 8


def test_multi_line_plot_legend():
    a, b = _series("alpha"), _series("beta")
    text = multi_line_plot([a, b])
    assert "alpha" in text and "beta" in text


def test_plot_flat_series_does_not_crash():
    series = TimeSeries("flat")
    series.append(0.0, 5.0)
    series.append(1.0, 5.0)
    assert "|" in line_plot(series)


def test_plot_validation():
    with pytest.raises(ConfigurationError):
        line_plot(TimeSeries("empty"))
    with pytest.raises(ConfigurationError):
        line_plot(_series(), width=2)


def test_heatmap_renders_peak():
    grid = np.zeros((8, 8))
    grid[4, 4] = 100.0
    text = heatmap(grid, title="density")
    assert "density" in text
    assert "@" in text


def test_heatmap_bucketing():
    grid = np.ones((16, 16))
    text = heatmap(grid, bucket=4)
    rows = [line for line in text.splitlines() if "|" in line]
    assert len(rows) == 4


def test_heatmap_validation():
    with pytest.raises(ConfigurationError):
        heatmap(np.zeros(4))
    with pytest.raises(ConfigurationError):
        heatmap(np.zeros((4, 4)), bucket=0)
    with pytest.raises(ConfigurationError):
        heatmap(np.zeros((2, 2)), bucket=4)
