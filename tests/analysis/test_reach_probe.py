"""The RLA reach probe and series-based throughput measurement."""

import pytest

from repro.analysis.timeseries import reach_probe
from repro.rla.session import RLASession


def test_reach_probe_measures_reliable_throughput(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    probe = reach_probe(sim, session.sender, interval=1.0)
    probe.start()
    sim.run(until=40.0)
    series = probe.series
    assert series.name == "reach.rla-0"
    # the frontier is monotone non-decreasing
    assert all(b >= a for a, b in zip(series.values, series.values[1:]))
    # steady-state rate from the series matches the session report
    rate = series.rate_of_change().window(10.0, 40.0)
    mean_rate = rate.stats().mean
    assert mean_rate == pytest.approx(200, rel=0.25)
