"""Streaming statistics primitives."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import Histogram, OnlineStats, TimeWeighted
from repro.errors import ConfigurationError

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


def test_online_stats_empty():
    stats = OnlineStats()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.variance == 0.0


def test_online_stats_known_values():
    stats = OnlineStats()
    stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert stats.mean == pytest.approx(5.0)
    assert stats.variance == pytest.approx(4.0)
    assert stats.stddev == pytest.approx(2.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 9.0


@settings(max_examples=60, deadline=None)
@given(st.lists(finite, min_size=2, max_size=200))
def test_property_online_stats_match_batch(values):
    stats = OnlineStats()
    stats.extend(values)
    assert stats.mean == pytest.approx(statistics.fmean(values), rel=1e-9,
                                       abs=1e-6)
    assert stats.variance == pytest.approx(statistics.pvariance(values),
                                           rel=1e-6, abs=1e-6)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


def test_time_weighted_mean():
    tw = TimeWeighted(start_time=0.0, initial=10.0)
    tw.update(5.0, 20.0)   # 10 for 5 s
    tw.update(10.0, 0.0)   # 20 for 5 s
    assert tw.mean(10.0) == pytest.approx(15.0)
    assert tw.mean(20.0) == pytest.approx(7.5)   # then 0 for 10 s
    assert tw.current == 0.0


def test_time_weighted_rejects_backwards_time():
    tw = TimeWeighted()
    tw.update(5.0, 1.0)
    with pytest.raises(ConfigurationError):
        tw.update(4.0, 2.0)


def test_time_weighted_before_any_update():
    tw = TimeWeighted(start_time=1.0, initial=3.0)
    assert tw.mean() == 3.0


def test_time_weighted_mean_rejects_backwards_now():
    # Regression: mean(now) earlier than the last update used to produce a
    # silent negative-area average; it must match update()'s guard.
    tw = TimeWeighted(start_time=0.0, initial=10.0)
    tw.update(5.0, 20.0)
    with pytest.raises(ConfigurationError):
        tw.mean(4.0)
    # exactly "now == last update" stays legal
    assert tw.mean(5.0) == pytest.approx(10.0)


def test_histogram_binning():
    hist = Histogram(0.0, 10.0, 10)
    for value in (0.5, 1.5, 1.7, 9.9, -1.0, 10.0):
        hist.add(value)
    assert hist.counts[0] == 1
    assert hist.counts[1] == 2
    assert hist.counts[9] == 1
    assert hist.underflow == 1
    assert hist.overflow == 1
    assert hist.total == 6


def test_histogram_quantiles():
    hist = Histogram(0.0, 100.0, 100)
    for value in range(100):
        hist.add(value + 0.5)
    assert hist.quantile(0.5) == pytest.approx(50, abs=2)
    assert hist.quantile(0.9) == pytest.approx(90, abs=2)
    assert hist.quantile(0.0) <= hist.quantile(1.0)


def test_histogram_empty_quantile():
    hist = Histogram(0.0, 1.0, 4)
    assert hist.quantile(0.5) == 0.0


def test_histogram_quantile_zero_skips_empty_leading_bins():
    # Regression: quantile(0.0) used to return the first bin's midpoint
    # even when that bin was empty (running >= 0 is vacuously true).
    hist = Histogram(0.0, 10.0, 10)
    hist.add(7.2)
    hist.add(7.8)
    assert hist.quantile(0.0) == pytest.approx(7.0)  # low edge of first occupied bin
    assert hist.quantile(1.0) == pytest.approx(7.5)  # its midpoint


def test_histogram_quantile_zero_with_underflow_and_overflow():
    hist = Histogram(0.0, 10.0, 10)
    hist.add(-1.0)
    hist.add(5.5)
    assert hist.quantile(0.0) == 0.0  # underflow mass sits at the low edge
    only_overflow = Histogram(0.0, 10.0, 10)
    only_overflow.add(42.0)
    assert only_overflow.quantile(0.0) == 10.0


def test_histogram_validation():
    with pytest.raises(ConfigurationError):
        Histogram(1.0, 1.0, 4)
    with pytest.raises(ConfigurationError):
        Histogram(0.0, 1.0, 0)
    hist = Histogram(0.0, 1.0, 4)
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_histogram_bin_edges():
    hist = Histogram(0.0, 1.0, 4)
    assert hist.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])
