"""Time-series containers and probes."""

import pytest

from repro.analysis.timeseries import (
    Probe,
    TimeSeries,
    cwnd_probe,
    queue_depth_probe,
)
from repro.errors import ConfigurationError
from repro.net.droptail import DropTailQueue
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow


def test_series_append_and_len():
    series = TimeSeries("x")
    series.append(0.0, 1.0)
    series.append(1.0, 2.0)
    assert len(series) == 2
    assert series.pairs() == [(0.0, 1.0), (1.0, 2.0)]


def test_series_rejects_backwards_time():
    series = TimeSeries("x")
    series.append(1.0, 1.0)
    with pytest.raises(ConfigurationError):
        series.append(0.5, 2.0)


def test_series_window():
    series = TimeSeries("x")
    for t in range(10):
        series.append(float(t), float(t * t))
    cut = series.window(2.0, 5.0)
    assert cut.times == [2.0, 3.0, 4.0]


def test_series_value_at():
    series = TimeSeries("x")
    series.append(0.0, 10.0)
    series.append(5.0, 20.0)
    assert series.value_at(3.0) == 10.0
    assert series.value_at(5.0) == 20.0
    assert series.value_at(100.0) == 20.0
    assert series.value_at(-1.0) == 10.0  # clamped to first sample


def test_series_value_at_empty():
    with pytest.raises(ConfigurationError):
        TimeSeries("x").value_at(0.0)


def test_series_rate_of_change():
    series = TimeSeries("x")
    series.append(0.0, 0.0)
    series.append(2.0, 10.0)
    series.append(4.0, 10.0)
    rate = series.rate_of_change()
    assert rate.values == pytest.approx([5.0, 0.0])


def test_series_stats():
    series = TimeSeries("x")
    for v in (1.0, 2.0, 3.0):
        series.append(float(v), v)
    assert series.stats().mean == pytest.approx(2.0)


def test_probe_samples_on_cadence():
    sim = Simulator()
    value = {"v": 0.0}
    probe = Probe(sim, lambda: value["v"], interval=1.0, name="v")
    probe.start()
    sim.schedule(2.5, lambda: value.update(v=7.0))
    sim.run(until=4.5)
    assert probe.series.times == [1.0, 2.0, 3.0, 4.0]
    assert probe.series.values == [0.0, 0.0, 7.0, 7.0]


def test_probe_stop():
    sim = Simulator()
    probe = Probe(sim, lambda: 1.0, interval=1.0)
    probe.start()
    sim.schedule(2.5, probe.stop)
    sim.run(until=10.0)
    assert len(probe.series) == 2


def test_probe_validation():
    with pytest.raises(ConfigurationError):
        Probe(Simulator(), lambda: 0.0, interval=0.0)


def test_cwnd_probe_tracks_sawtooth(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    probe = cwnd_probe(sim, flow.sender, interval=0.5)
    probe.start()
    sim.run(until=60.0)
    stats = probe.series.stats()
    assert stats.count > 100
    assert stats.maximum > stats.minimum  # the sawtooth moved
    assert probe.series.name == "cwnd.tcp-0"


def test_queue_depth_probe(sim, two_node_net):
    gateway = two_node_net.link("A", "B").gateway
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    probe = queue_depth_probe(sim, gateway, interval=0.05)
    probe.start()
    sim.run(until=30.0)
    stats = probe.series.stats()
    assert stats.maximum == 20  # the buffer fills (buffer periods, §3.1)
    assert stats.minimum <= 2   # and drains
