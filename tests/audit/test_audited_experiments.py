"""End-to-end: paper experiments run clean under the auditor."""

from repro.experiments.runner import TreeExperimentSpec, run_tree_experiment
from repro.experiments.sweeps import run_symmetric_spec
from repro.topology.cases import TREE_CASES


def _spec(**overrides):
    base = dict(case=TREE_CASES[1], duration=6.0, warmup=3.0, audited=True)
    base.update(overrides)
    return TreeExperimentSpec(**base)


def test_audited_fig7_case_runs_clean():
    result = run_tree_experiment(_spec())
    assert result.stats["violations"] == 0
    assert result.stats["audit_checks"] > 10_000
    # the audited run still produces the paper metrics
    assert result.rla[0]["throughput_pps"] > 0


def test_audited_red_case_runs_clean():
    result = run_tree_experiment(_spec(gateway="red"))
    assert result.stats["violations"] == 0


def test_unaudited_run_reports_no_audit_stats():
    result = run_tree_experiment(_spec(audited=False))
    assert "violations" not in result.stats
    assert "audit_checks" not in result.stats


def test_audit_does_not_change_results():
    plain = run_tree_experiment(_spec(audited=False))
    audited = run_tree_experiment(_spec(audited=True))
    assert audited.rla[0] == plain.rla[0]
    assert audited.tcp == plain.tcp
    assert audited.stats["events"] == plain.stats["events"]


def test_audited_symmetric_sweep_point_runs_clean():
    row = run_symmetric_spec(dict(
        n_receivers=2, share_pps=100.0, buffer_pkts=20,
        duration=5.0, warmup=2.0, seed=1, gateway="droptail", audited=True,
    ))
    assert row["sim_stats"]["violations"] == 0
    assert row["sim_stats"]["audit_checks"] > 0
    assert row["rla_pps"] > 0
