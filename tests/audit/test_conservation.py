"""ConservationAuditor: clean runs balance; injected faults are caught.

The fault-injection tests damage a running simulation the way a real bug
would (a packet silently vanishing from a queue, a duplicate delivery, a
corrupted reach count) and assert the auditor raises a structured
:class:`InvariantViolation` naming the right check.
"""

import pytest

from repro.audit import (
    ConservationAuditor,
    FlightRecorder,
    InvariantMonitor,
    InvariantViolation,
)
from repro.net.packet import DATA, Packet, install_creation_hook, \
    uninstall_creation_hook
from repro.rla.session import RLASession
from repro.tcp.flow import TcpFlow


@pytest.fixture
def audited(sim):
    recorder = FlightRecorder(capacity=64)
    monitor = InvariantMonitor(recorder)
    auditor = ConservationAuditor(sim, monitor=monitor, recorder=recorder)
    yield auditor
    auditor.detach()


def test_clean_tcp_run_conserves(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B", limit=50)
    flow.start()
    sim.run()
    audited.verify()
    ledger = audited.flow_summary()["tcp-0"]
    assert ledger["injected"] == (
        ledger["delivered"] + ledger["sunk"] + ledger["replicated"]
        + ledger["dropped"] + ledger["in_flight"]
    )
    assert ledger["in_flight"] == 0  # event queue drained
    assert ledger["delivered"] > 50  # data one way, ACKs back
    assert audited.monitor.violation_count == 0


def test_multicast_replication_is_not_a_leak(sim, star_net, audited):
    audited.attach(star_net)
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=5.0)
    audited.verify()
    ledger = audited.flow_summary()["rla-0"]
    # Each data packet consumed at the fan-out gateway G becomes three
    # fresh copies; the original must be accounted as replicated.
    assert ledger["replicated"] > 0
    assert audited.monitor.violation_count == 0


def test_mid_run_verify_accounts_in_flight(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=2.0)  # stop at a horizon: packets queued and on the wire
    audited.verify()
    assert audited.in_flight() > 0
    assert audited.monitor.violation_count == 0


def _queued_link(auditor, net):
    """A link that currently has at least one queued packet."""
    for link in net.links.values():
        if link.gateway.depth > 0:
            return link
    raise AssertionError("no queued packet anywhere; slow the test link down")


def test_leaked_packet_is_detected(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=2.0)
    link = _queued_link(audited, two_node_net)
    gateway = link.gateway
    victim = gateway.contents()[-1]
    # Simulate a perfectly disguised leak: the packet vanishes from the
    # queue AND the bookkeeping is patched to hide it.  Only the physical
    # contents comparison can catch this.
    gateway._queue.remove(victim)
    gateway.dequeued += 1
    gateway.bytes_queued -= victim.size
    with pytest.raises(InvariantViolation) as exc_info:
        audited.verify()
    violation = exc_info.value
    assert violation.check == "conservation.queue_contents"
    assert victim.uid in violation.context["leaked"]
    assert "flight recorder" in str(violation)


def test_unpatched_leak_caught_by_gateway_bookkeeping(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=2.0)
    gateway = _queued_link(audited, two_node_net).gateway
    gateway._queue.remove(gateway.contents()[-1])  # naive leak
    with pytest.raises(InvariantViolation) as exc_info:
        audited.verify()
    assert exc_info.value.check == "gateway.depth_consistent"


def test_double_delivery_is_detected(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    delivered = []
    link = two_node_net.links[("A", "B")]
    link.on_deliver(lambda _now, packet: delivered.append(packet))
    sim.run(until=2.0)
    assert delivered
    with pytest.raises(InvariantViolation) as exc_info:
        link._arrive(delivered[0])  # the wire hands over the same packet twice
    assert exc_info.value.check == "conservation.single_delivery"


def test_smuggled_packet_is_detected(sim, two_node_net, audited):
    audited.attach(two_node_net)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=2.0)
    gateway = _queued_link(audited, two_node_net).gateway
    # A packet materializes in the queue without passing the enqueue path
    # (bookkeeping patched to match, as a buggy discipline would).
    forged = Packet(DATA, "tcp-0", "A", "B", 999, 1000)
    gateway._queue.append(forged)
    gateway.enqueued += 1
    gateway.bytes_queued += forged.size
    with pytest.raises(InvariantViolation) as exc_info:
        audited.verify()
    violation = exc_info.value
    assert violation.check == "conservation.queue_contents"
    assert forged.uid in violation.context["smuggled"]


def test_double_attach_rejected(sim, two_node_net, audited):
    audited.attach(two_node_net)
    with pytest.raises(RuntimeError):
        audited.attach(two_node_net)


def test_creation_hook_is_exclusive(sim, two_node_net, audited):
    audited.attach(two_node_net)
    with pytest.raises(RuntimeError):
        install_creation_hook(lambda packet: None)
    audited.detach()
    # After detach the slot is free again.
    probe = []
    install_creation_hook(probe.append)
    try:
        Packet(DATA, "f", "A", "B", 0, 100)
        assert len(probe) == 1
    finally:
        uninstall_creation_hook(probe.append)
