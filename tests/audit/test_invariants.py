"""InvariantMonitor: strict/collect modes and the domain sanity checks."""

import pytest

from repro.audit import FlightRecorder, InvariantMonitor, InvariantViolation
from repro.net.droptail import DropTailQueue
from repro.net.node import Node
from repro.rla.sender import RLASender
from repro.sim.engine import Simulator
from repro.tcp.sender import TcpSender


class _StubNode(Node):
    """Node that swallows outbound packets instead of routing them."""

    def __init__(self):
        super().__init__("S")

    def send(self, packet):
        pass


def stub_node():
    return _StubNode()


def test_require_passes_and_counts():
    monitor = InvariantMonitor()
    assert monitor.require("x.ok", True, 1.0) is True
    assert monitor.checks_run == 1
    assert monitor.violation_count == 0


def test_strict_raises_with_context():
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.require("x.bad", False, 2.5, flow="tcp-0", value=7)
    violation = exc_info.value
    assert violation.check == "x.bad"
    assert violation.time == 2.5
    assert violation.context == {"flow": "tcp-0", "value": 7}
    assert "x.bad" in str(violation)
    assert "flow='tcp-0'" in str(violation)


def test_non_strict_collects():
    monitor = InvariantMonitor(strict=False)
    assert monitor.require("x.bad", False) is False
    assert monitor.require("x.bad2", False) is False
    assert monitor.violation_count == 2


def test_violation_carries_flight_recorder_dump():
    recorder = FlightRecorder(capacity=4)
    recorder.record(1.0, "enqueue", flow="tcp-0")
    monitor = InvariantMonitor(recorder)
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.require("x.bad", False, 1.5)
    assert "flight recorder" in str(exc_info.value)
    assert "enqueue" in exc_info.value.dump


def test_check_tcp_clean_sender_passes():
    sim = Simulator()
    sender = TcpSender(sim, stub_node(), "tcp-0", "B")
    monitor = InvariantMonitor()
    monitor.check_tcp(sender)
    assert monitor.violation_count == 0


def test_check_tcp_catches_cwnd_out_of_bounds():
    sim = Simulator()
    sender = TcpSender(sim, stub_node(), "tcp-0", "B")
    sender.cwnd = sender.config.max_cwnd + 5
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_tcp(sender)
    assert exc_info.value.check == "tcp.cwnd_bounds"


def test_check_tcp_catches_negative_pipe():
    sim = Simulator()
    sender = TcpSender(sim, stub_node(), "tcp-0", "B")
    sender._lost = {0, 1, 2}  # declared lost beyond anything outstanding
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_tcp(sender)
    assert exc_info.value.check == "tcp.pipe_nonnegative"


def _rla(sim, n=3):
    return RLASender(sim, stub_node(), "rla-0", "group:rla-0",
                     [f"R{i}" for i in range(1, n + 1)])


def test_check_rla_clean_sender_passes():
    sim = Simulator()
    monitor = InvariantMonitor()
    monitor.check_rla(_rla(sim))
    assert monitor.violation_count == 0


def test_check_rla_catches_corrupt_reach_count():
    sim = Simulator()
    sender = _rla(sim, n=3)
    sender._reach[7] = sender.n_receivers + 3  # missed completion
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_rla(sender)
    assert exc_info.value.check == "rla.reach_bounds"
    assert exc_info.value.context["bad_counts"] == {7: 6}


def test_check_gateway_consistent_passes():
    sim = Simulator()
    queue = DropTailQueue(4)
    monitor = InvariantMonitor()
    monitor.check_gateway("A->B", queue, sim.now)
    assert monitor.violation_count == 0


def test_check_gateway_catches_counter_drift():
    queue = DropTailQueue(4)
    queue.enqueued += 1  # counter says one packet, storage is empty
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as exc_info:
        monitor.check_gateway("A->B", queue, 0.0)
    assert exc_info.value.check == "gateway.depth_consistent"
