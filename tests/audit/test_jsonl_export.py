"""JSONL exporter: row typing, determinism, round-trip loading."""

import json

from repro.audit import ConservationAuditor, export_run, load_rows
from repro.net.monitor import QueueMonitor
from repro.sim.trace import Tracer
from repro.tcp.flow import TcpFlow


def _audited_run(sim, net):
    auditor = ConservationAuditor(sim)
    auditor.attach(net)
    monitor = QueueMonitor(sim, net.links[("A", "B")].gateway,
                           log_drops=True, sample_depth=True)
    flow = TcpFlow(sim, net, "tcp-0", "A", "B", limit=30)
    flow.start()
    sim.run()
    auditor.verify()
    auditor.detach()
    return auditor, monitor


def test_export_writes_typed_rows(tmp_path, sim, two_node_net):
    auditor, monitor = _audited_run(sim, two_node_net)
    tracer = Tracer()
    tracer.emit(1.0, "drop", flow="tcp-0", reason="overflow")
    out = tmp_path / "run.jsonl"
    rows_written = export_run(
        out,
        meta={"experiment": "unit", "seed": 42},
        tracer=tracer,
        monitors={"A->B": monitor},
        auditor=auditor,
    )
    rows = load_rows(out)
    assert len(rows) == rows_written
    assert rows[0] == {"type": "meta", "experiment": "unit", "seed": 42}
    types = {row["type"] for row in rows}
    assert {"meta", "trace", "queue_depth", "queue_summary",
            "flow_conservation", "link_conservation"} <= types


def test_flow_conservation_rows_balance(tmp_path, sim, two_node_net):
    auditor, monitor = _audited_run(sim, two_node_net)
    out = tmp_path / "run.jsonl"
    export_run(out, auditor=auditor)
    (flow_row,) = load_rows(out, type_filter="flow_conservation")
    assert flow_row["flow"] == "tcp-0"
    assert flow_row["injected"] == (
        flow_row["delivered"] + flow_row["sunk"] + flow_row["replicated"]
        + flow_row["dropped"] + flow_row["in_flight"]
    )
    link_rows = load_rows(out, type_filter="link_conservation")
    assert {row["link"] for row in link_rows} == {"A->B", "B->A"}
    for row in link_rows:
        assert row["accepted"] == row["dequeued"] + row["in_queue"]


def test_queue_depth_series_is_monotone_in_time(tmp_path, sim, two_node_net):
    _auditor, monitor = _audited_run(sim, two_node_net)
    out = tmp_path / "run.jsonl"
    export_run(out, monitors={"A->B": monitor})
    depth_rows = load_rows(out, type_filter="queue_depth")
    assert depth_rows, "expected at least one depth change on the bottleneck"
    times = [row["t"] for row in depth_rows]
    assert times == sorted(times)
    (summary,) = load_rows(out, type_filter="queue_summary")
    assert summary["max_depth"] >= max(row["depth"] for row in depth_rows)


def test_export_is_deterministic_and_one_object_per_line(tmp_path, sim, two_node_net):
    auditor, monitor = _audited_run(sim, two_node_net)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    export_run(a, auditor=auditor, monitors={"A->B": monitor})
    export_run(b, auditor=auditor, monitors={"A->B": monitor})
    assert a.read_bytes() == b.read_bytes()
    for line in a.read_text().splitlines():
        json.loads(line)  # every line is standalone JSON
