"""Flight recorder: bounded ring, dump formatting, tracer compatibility."""

import pytest

from repro.audit import FlightRecorder
from repro.sim.events import Event
from repro.sim.trace import Tracer


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_records_oldest_first():
    recorder = FlightRecorder(capacity=4)
    for i in range(3):
        recorder.record(float(i), "tick", i=i)
    assert [fields["i"] for _, _, fields in recorder.records] == [0, 1, 2]
    assert len(recorder) == 3


def test_ring_evicts_oldest_but_counts_lifetime():
    recorder = FlightRecorder(capacity=8)
    for i in range(100):
        recorder.record(float(i), "tick", i=i)
    assert len(recorder) == 8
    assert recorder.recorded == 100
    assert recorder.records[0][2]["i"] == 92


def test_dump_mentions_counts_and_fields():
    recorder = FlightRecorder(capacity=4)
    recorder.record(1.5, "drop", flow="tcp-0", reason="overflow")
    dump = recorder.dump()
    assert "1 record(s) shown, 1 recorded in total" in dump
    assert "drop" in dump
    assert "flow=tcp-0" in dump
    assert "reason=overflow" in dump


def test_dump_last_limits_lines():
    recorder = FlightRecorder(capacity=16)
    for i in range(10):
        recorder.record(float(i), "tick", i=i)
    dump = recorder.dump(last=2)
    assert "2 record(s) shown, 10 recorded in total" in dump
    assert "i=8" in dump and "i=9" in dump
    assert "i=7" not in dump


def test_usable_as_tracer_sink():
    recorder = FlightRecorder(capacity=4)
    tracer = Tracer(sink=recorder.sink)
    tracer.emit(2.0, "enqueue", flow="rla-0")
    assert recorder.records == [(2.0, "enqueue", {"flow": "rla-0"})]


def test_observe_event_adapter():
    recorder = FlightRecorder(capacity=4)
    event = Event(time=3.0, seq=0, callback=lambda: None, name="link.tx")
    recorder.observe_event(event)
    time, category, fields = recorder.records[0]
    assert (time, category, fields["name"]) == (3.0, "event", "link.tx")


def test_clear():
    recorder = FlightRecorder(capacity=4)
    recorder.record(0.0, "tick")
    recorder.clear()
    assert len(recorder) == 0
