"""The deterministic every-n-signals listener (§3.2 strawman)."""

from repro.net.addressing import group_address
from repro.baselines.deterministic import DeterministicListenerSender
from repro.net.packet import ACK, Packet
from repro.net.node import Node
from repro.rla.config import RLAConfig
from repro.sim.engine import Simulator


class _StubNode(Node):
    def __init__(self):
        super().__init__("S")
        self.outbox = []

    def send(self, packet):
        self.outbox.append(packet)


def _ack(receiver, ack, sack=None):
    return Packet(ACK, "d-0", receiver, "S", ack, 40, ack=ack, sack=sack,
                  receiver=receiver)


def test_cuts_exactly_every_n_signals():
    sim = Simulator()
    node = _StubNode()
    sender = DeterministicListenerSender(
        sim, node, "d-0", group_address("d-0"), ["R1", "R2", "R3"],
        config=RLAConfig(ack_jitter=0.0, forced_cut_enabled=False),
    )
    sender.cwnd = 64.0
    sender.start()
    sim.run(until=0.2)
    # make all three receivers troubled with repeated, spaced signals
    cut_times = []
    seq = 0
    for round_ in range(1, 10):
        for rid in ("R1", "R2", "R3"):
            # advance time beyond the 2-srtt grouping window
            sim.schedule(sim.now + 1.0, lambda: None)
            sim.run(until=sim.now + 1.0)
            hole = 20 * round_ + 5
            sender.on_packet(_ack(rid, hole, sack=((hole + 4, hole + 6),)))
            if sender.window_cuts and (not cut_times or cut_times[-1] != sender.window_cuts):
                cut_times.append(sender.window_cuts)
    # deterministic listener: one cut per ceil(signals / num_trouble)
    signals = sender.congestion_signals
    expected = signals // 3
    assert abs(sender.window_cuts - expected) <= 1


def test_counter_resets_after_cut():
    sim = Simulator()
    node = _StubNode()
    sender = DeterministicListenerSender(
        sim, node, "d-0", group_address("d-0"), ["R1"],
        config=RLAConfig(ack_jitter=0.0, forced_cut_enabled=False),
    )
    sender.start()
    sim.run(until=0.2)
    # n = 1: every signal is a cut
    sender.on_packet(_ack("R1", 0, sack=((4, 6),)))
    assert sender.window_cuts == 1
    assert sender._signal_counter == 0
