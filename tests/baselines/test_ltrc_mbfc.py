"""LTRC and MBFC congestion decisions."""

import pytest

from repro.baselines.ltrc import LtrcSender
from repro.baselines.mbfc import MbfcSender
from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.engine import Simulator


def _ltrc(**kwargs):
    sim = Simulator()
    return LtrcSender(sim, Node("S"), "f", "group:g", ["R1", "R2", "R3"],
                      **kwargs)


def _mbfc(**kwargs):
    sim = Simulator()
    return MbfcSender(sim, Node("S"), "f", "group:g", ["R1", "R2", "R3", "R4"],
                      **kwargs)


def test_ltrc_triggers_on_any_receiver_over_threshold():
    sender = _ltrc(loss_threshold=0.02, ewma_gain=1.0)
    assert sender.congestion_decision({"R1": 0.0, "R2": 0.05}) is True


def test_ltrc_smooths_reports():
    sender = _ltrc(loss_threshold=0.1, ewma_gain=0.1)
    # a single 0.5 spike smoothed by gain 0.1 starts the EWMA at 0.5 then
    # decays; first call seeds at the report value -> congested
    assert sender.congestion_decision({"R1": 0.5})
    # zeros pull the EWMA down below threshold eventually
    for _ in range(30):
        congested = sender.congestion_decision({"R1": 0.0})
    assert congested is False


def test_ltrc_consumes_reports():
    sender = _ltrc()
    reports = {"R1": 0.5}
    sender.congestion_decision(reports)
    assert reports == {}


def test_ltrc_no_reports_not_congested():
    assert _ltrc().congestion_decision({}) is False


def test_ltrc_validation():
    with pytest.raises(ConfigurationError):
        _ltrc(loss_threshold=0.0)
    with pytest.raises(ConfigurationError):
        _ltrc(ewma_gain=2.0)


def test_mbfc_population_threshold():
    sender = _mbfc(loss_threshold=0.02, population_threshold=0.5)
    # 1 of 4 congested: 25% <= 50% -> not congested
    assert sender.congestion_decision({"R1": 0.1, "R2": 0.0}) is False
    # 3 of 4 congested: 75% > 50% -> congested
    assert sender.congestion_decision(
        {"R1": 0.1, "R2": 0.1, "R3": 0.1, "R4": 0.0}
    ) is True


def test_mbfc_zero_population_threshold_traces_slowest():
    sender = _mbfc(loss_threshold=0.02, population_threshold=0.0)
    assert sender.congestion_decision({"R1": 0.1}) is True
    assert sender.congestion_decision({"R1": 0.01}) is False


def test_mbfc_validation():
    with pytest.raises(ConfigurationError):
        _mbfc(loss_threshold=1.0)
    with pytest.raises(ConfigurationError):
        _mbfc(population_threshold=1.0)
