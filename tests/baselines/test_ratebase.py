"""Rate-based baseline machinery: AIMD loop and loss reporting."""

import pytest

from repro.baselines.ratebase import LossReportReceiver, RateBasedMulticastSender
from repro.errors import ConfigurationError
from repro.net.addressing import group_address
from repro.sim.engine import Simulator


class _AlwaysCongested(RateBasedMulticastSender):
    def congestion_decision(self, reports):
        return True


class _NeverCongested(RateBasedMulticastSender):
    def congestion_decision(self, reports):
        return False


def _wire_session(sim, net, cls, receivers=("R1", "R2", "R3"), **kwargs):
    group = group_address("mc")
    net.join_group(group, "S", list(receivers))
    sender = cls(sim, net.node("S"), "mc", group, receivers, **kwargs)
    net.node("S").bind("mc", sender.on_packet)
    sinks = []
    for receiver in receivers:
        sink = LossReportReceiver(sim, net.node(receiver), "mc", "S")
        net.node(receiver).bind("mc", sink.on_packet)
        sinks.append(sink)
    return sender, sinks


def test_linear_increase_without_congestion(sim, star_net):
    sender, _ = _wire_session(sim, star_net, _NeverCongested,
                              initial_rate_pps=10, increase_pps=10,
                              adjust_interval=1.0)
    sender.start()
    sim.run(until=5.5)
    # five adjustments of +10 each
    assert sender.rate_pps == pytest.approx(60, abs=11)


def test_multiplicative_decrease_with_backoff(sim, star_net):
    sender, _ = _wire_session(sim, star_net, _AlwaysCongested,
                              initial_rate_pps=80, adjust_interval=1.0,
                              backoff_period=2.0, min_rate_pps=1.0)
    sender.start()
    sim.run(until=6.5)
    # cuts allowed only every 2 s -> 3 cuts: 80 -> 40 -> 20 -> 10
    assert sender.rate_cuts == 3
    assert sender.rate_pps == pytest.approx(10)


def test_rate_floor(sim, star_net):
    sender, _ = _wire_session(sim, star_net, _AlwaysCongested,
                              initial_rate_pps=4, adjust_interval=0.5,
                              backoff_period=0.5, min_rate_pps=2.0)
    sender.start()
    sim.run(until=10.0)
    assert sender.rate_pps >= 2.0


def test_receivers_report_losses(sim, star_net):
    sender, sinks = _wire_session(sim, star_net, _NeverCongested,
                                  initial_rate_pps=400, increase_pps=0,
                                  adjust_interval=1.0)
    # 400 pkt/s into 200 pkt/s branches: heavy loss, reports ~0.5
    sender.start()
    sim.run(until=10.0)
    assert sender.loss_reports
    assert max(sender.loss_reports.values()) > 0.2


def test_no_false_loss_reports_when_clean(sim, star_net):
    sender, sinks = _wire_session(sim, star_net, _NeverCongested,
                                  initial_rate_pps=50, increase_pps=0)
    sender.start()
    sim.run(until=10.0)
    assert max(sender.loss_reports.values(), default=0.0) < 0.05


def test_mean_rate(sim, star_net):
    sender, _ = _wire_session(sim, star_net, _NeverCongested,
                              initial_rate_pps=100, increase_pps=0)
    sender.start()
    sim.run(until=10.0)
    assert sender.mean_rate(10.0) == pytest.approx(100, rel=0.05)


def test_validation():
    sim = Simulator()
    from repro.net.node import Node
    with pytest.raises(ConfigurationError):
        _NeverCongested(sim, Node("S"), "f", "group:g", [])
    with pytest.raises(ConfigurationError):
        _NeverCongested(sim, Node("S"), "f", "group:g", ["R1"],
                        initial_rate_pps=0)
