"""Random listening on a rate-based controller (§6 future work)."""

import random

import pytest

from repro.baselines.rla_rate import RandomListeningRateSender
from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.engine import Simulator


def _sender(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    sender = RandomListeningRateSender(
        sim, Node("S"), "f", "group:g", ["R1", "R2", "R3", "R4"],
        rng=random.Random(seed), **kwargs,
    )
    return sim, sender


def test_no_signals_no_congestion():
    _, sender = _sender()
    assert sender.congestion_decision({"R1": 0.0}) is False
    assert sender.congestion_signals == 0


def test_signals_counted_and_reports_consumed():
    _, sender = _sender()
    reports = {"R1": 0.1, "R2": 0.2, "R3": 0.0}
    sender.congestion_decision(reports)
    assert sender.congestion_signals == 2
    assert reports == {}


def test_single_troubled_receiver_always_cuts():
    _, sender = _sender()
    # one signal, num_trouble = 1 -> pthresh = 1 -> certain True
    assert sender.congestion_decision({"R1": 0.1}) is True


def test_trouble_window_expiry():
    sim, sender = _sender(trouble_window=5.0)
    sender.congestion_decision({"R1": 0.1, "R2": 0.1})
    assert sender.num_trouble == 2
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert sender.num_trouble == 0


def test_average_cut_rate_is_one_over_n():
    _, sender = _sender(seed=5, trouble_window=1e9)
    # prime four troubled receivers
    sender.congestion_decision({f"R{i}": 0.1 for i in range(1, 5)})
    cuts = 0
    trials = 2000
    for _ in range(trials):
        if sender.congestion_decision({"R1": 0.1}):
            cuts += 1
    # per signal the cut chance is 1/4
    assert cuts / trials == pytest.approx(0.25, abs=0.05)


def test_validation():
    with pytest.raises(ConfigurationError):
        _sender(loss_signal_threshold=1.0)
    with pytest.raises(ConfigurationError):
        _sender(trouble_window=0.0)
