"""Fork semantics: replay exactness, deterministic divergence, mutation."""

from __future__ import annotations

import pickle

import pytest

from repro.checkpoint import (
    CheckpointError,
    branch_labels,
    fork,
    run_fork_ensemble,
)
from repro.scenarios.catalog import get_scenario
from repro.scenarios.runner import checkpoint_scenario, run_scenario

DURATION, WARMUP = 5.0, 1.5


@pytest.fixture(scope="module")
def churn_snapshot():
    """One warmed-up churn scenario snapshot shared by the fork tests."""
    spec = get_scenario("tree-churn", duration=DURATION, warmup=WARMUP)
    return spec, checkpoint_scenario(spec, at=3.0)


def test_branch_labels():
    assert branch_labels(3) == ["fork.0", "fork.1", "fork.2"]
    assert branch_labels(1, prefix="seed") == ["seed.0"]
    with pytest.raises(CheckpointError):
        branch_labels(0)


def test_fork_without_reseed_replays_exactly(churn_snapshot):
    spec, snapshot = churn_snapshot
    straight = pickle.dumps(run_scenario(spec))
    [(label, report)] = run_fork_ensemble(snapshot, ["replay"], reseed=False)
    assert label == "replay"
    assert pickle.dumps(report) == straight


def test_fork_reseeded_branches_diverge_deterministically(churn_snapshot):
    _, snapshot = churn_snapshot
    first = run_fork_ensemble(snapshot, 3)
    second = run_fork_ensemble(snapshot, 3)
    assert pickle.dumps(first) == pickle.dumps(second)  # reproducible
    reports = {pickle.dumps(report) for _, report in first}
    assert len(reports) > 1  # branch futures actually diverge


def test_fork_yields_independent_worlds(churn_snapshot):
    _, snapshot = churn_snapshot
    worlds = [world for _, world in fork(snapshot, 2, reseed=False)]
    assert worlds[0] is not worlds[1]
    assert worlds[0].sim is not worlds[1].sim
    # advancing one branch does not move the other
    worlds[0].sim.run(until=4.0)
    assert worlds[1].sim.now < 4.0


def test_fork_mutation_hook_changes_the_branch_future(churn_snapshot):
    _, snapshot = churn_snapshot
    baseline = run_fork_ensemble(snapshot, ["m"], reseed=False)

    def shrink_buffers(world):
        for gateway in world.gateways:
            gateway.capacity = 3

    mutated = run_fork_ensemble(snapshot, ["m"], mutate=shrink_buffers,
                                reseed=False)
    assert (pickle.dumps(mutated[0][1])
            != pickle.dumps(baseline[0][1]))


def test_run_fork_ensemble_requires_resume_entrypoint(churn_snapshot):
    _, snapshot = churn_snapshot
    import dataclasses

    bare = dataclasses.replace(snapshot, resume="")
    with pytest.raises(CheckpointError, match="no resume entrypoint"):
        run_fork_ensemble(bare, 2)
