"""The byte-identity oracle: snapshot -> restore -> run == straight run.

Every assertion here compares ``pickle.dumps`` of the final report, so
*any* state the snapshot fails to carry — an RNG stream, a heap entry, a
protocol counter, an audit ledger, a process-global — shows up as a byte
difference.  Covered: the figure workloads (drop-tail and RED trees),
every churn-catalog scenario, audited and unaudited, same-process and
fresh-process restores, and both RLA sender implementations.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.checkpoint import capture, resolve_entrypoint, restore
from repro.experiments.runner import (
    TreeExperimentSpec,
    build_tree_world,
    run_tree_experiment,
    snapshot_tree_world,
)
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.runner import (
    build_scenario_world,
    checkpoint_scenario,
    run_scenario,
    snapshot_scenario_world,
)
from repro.topology.cases import TREE_CASES

#: Small-but-shape-preserving horizons for the oracle runs.
DURATION, WARMUP = 5.0, 1.5


def tree_report_bytes_via_snapshot(spec: TreeExperimentSpec,
                                   at: float) -> bytes:
    world = build_tree_world(spec)
    try:
        snapshot = snapshot_tree_world(world, at=at)
    finally:
        world.disarm()
    finish = resolve_entrypoint(snapshot.resume)
    return pickle.dumps(finish(restore(snapshot)))


@pytest.mark.parametrize("gateway", ["droptail", "red"])
@pytest.mark.parametrize("audited", [False, True], ids=["plain", "audited"])
def test_tree_experiment_byte_identity(gateway, audited):
    """Figure 7 (drop-tail) / figure 9 (RED) workloads, interior restore."""
    spec = TreeExperimentSpec(
        case=TREE_CASES[2], gateway=gateway, duration=DURATION,
        warmup=WARMUP, seed=5, audited=audited,
    )
    straight = pickle.dumps(run_tree_experiment(spec))
    assert tree_report_bytes_via_snapshot(spec, at=3.0) == straight
    # the warmup boundary is the trickiest split point: counters must be
    # marked exactly once, on the restored side of the cut
    assert tree_report_bytes_via_snapshot(spec, at=WARMUP) == straight


def test_checkpointed_run_returns_identical_result(tmp_path):
    """run_tree_experiment(checkpoint_at=...) pauses, snapshots, and still
    produces the byte-identical result."""
    spec = TreeExperimentSpec(case=TREE_CASES[1], duration=DURATION,
                              warmup=WARMUP, seed=3)
    straight = pickle.dumps(run_tree_experiment(spec))
    path = tmp_path / "mid.ckpt"
    checkpointed = run_tree_experiment(spec, checkpoint_at=3.0,
                                       checkpoint_path=str(path))
    assert pickle.dumps(checkpointed) == straight
    assert path.exists()


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("audited", [False, True], ids=["plain", "audited"])
def test_scenario_catalog_byte_identity(name, audited):
    """Every catalog scenario (churn, mice, bursty, steady): snapshot at
    an interior time, restore, run — report rows byte-identical."""
    spec = get_scenario(name, duration=DURATION, warmup=WARMUP,
                        audited=audited)
    straight = pickle.dumps(run_scenario(spec))

    world = build_scenario_world(spec)
    try:
        snapshot = snapshot_scenario_world(world, at=3.0)
    finally:
        world.disarm()
    finish = resolve_entrypoint(snapshot.resume)
    assert pickle.dumps(finish(restore(snapshot))) == straight


def test_fresh_process_restore_byte_identity(tmp_path):
    """The full ISSUE oracle: snapshot an *audited* churn run mid-flight,
    restore in a brand-new interpreter, run to completion — the report
    pickle must match the straight-through run byte for byte.  This is
    what forces the process-global packet uid counter and audit
    creation-hook to be part of the checkpoint contract."""
    spec = get_scenario("tree-churn", duration=DURATION, warmup=WARMUP,
                        audited=True)
    straight = pickle.dumps(run_scenario(spec))

    path = tmp_path / "fresh.ckpt"
    checkpoint_scenario(spec, at=3.0, path=str(path))
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    child = subprocess.run(
        [sys.executable, "-c",
         "import pickle, sys\n"
         "from repro.checkpoint import resume\n"
         f"report = resume({str(path)!r})\n"
         "sys.stdout.buffer.write(pickle.dumps(report))\n"],
        env={**os.environ, "PYTHONPATH": os.path.abspath(src)},
        capture_output=True,
    )
    assert child.returncode == 0, child.stderr.decode()
    assert child.stdout == straight


@pytest.mark.parametrize("sender", ["incremental", "naive"])
def test_rla_session_byte_identity_both_senders(sender):
    """Both RLA sender implementations — the incremental production
    sender and the naive whole-group reference — round-trip through a
    snapshot with byte-identical session reports."""
    from repro.rla import NaiveRLASender
    from repro.rla.sender import RLASender
    from repro.rla.session import RLASession
    from repro.sim.engine import Simulator
    from repro.topology.tree import build_tertiary_tree

    sender_cls = {"incremental": RLASender, "naive": NaiveRLASender}[sender]

    def build():
        sim = Simulator(seed=9)
        net, info = build_tertiary_tree(sim)
        session = RLASession(sim, net, "rla-0", info.root,
                             info.leaves[:9], sender_cls=sender_cls)
        session.start(0.05)
        return {"sim": sim, "session": session}

    world = build()
    world["sim"].run(until=8.0)
    straight = pickle.dumps(world["session"].report())

    world = build()
    world["sim"].run(until=3.0)
    snapshot = capture(world)
    clone = restore(snapshot)
    clone["sim"].run(until=8.0)
    assert pickle.dumps(clone["session"].report()) == straight
    assert type(clone["session"].sender) is sender_cls
