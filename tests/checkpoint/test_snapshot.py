"""Snapshot mechanics: capture/restore exactness, file format, globals."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import (
    CheckpointError,
    FORMAT_VERSION,
    Snapshot,
    capture,
    dumps,
    load,
    restore,
    save,
)
from repro.net.packet import Packet, restore_uid_counter, uid_counter_state
from repro.sim.engine import Simulator


class BareWorld:
    """Minimal snapshot subject: a simulator plus a shared results list."""

    def __init__(self, seed: int = 1) -> None:
        self.sim = Simulator(seed=seed)
        self.log = []

    def emit(self, tag):
        self.log.append((self.sim.now, tag))


# ----------------------------------------------------------------------
# RNG stream round-trip
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    draws=st.lists(
        st.tuples(st.sampled_from(["tcp.a", "rla.b", "red.G1", "churn"]),
                  st.integers(min_value=1, max_value=20)),
        max_size=8,
    ),
)
def test_rng_streams_round_trip_exactly(seed, draws):
    """Every named stream's Mersenne state survives capture/restore, so
    the restored world's randomness future equals the original's."""
    world = BareWorld(seed=seed)
    for name, count in draws:
        stream = world.sim.rng.stream(name)
        for _ in range(count):
            stream.random()

    snapshot = capture(world)
    clone = restore(snapshot)
    assert clone.sim.rng.stream_states() == world.sim.rng.stream_states()
    for name, _ in draws:
        assert (clone.sim.rng.stream(name).random()
                == world.sim.rng.stream(name).random())


def test_reseed_diverges_and_is_deterministic():
    world = BareWorld(seed=7)
    world.sim.rng.stream("x").random()
    snapshot = capture(world)

    a1 = restore(snapshot)
    a2 = restore(snapshot)
    b = restore(snapshot)
    a1.sim.rng.reseed("branch.a")
    a2.sim.rng.reseed("branch.a")
    b.sim.rng.reseed("branch.b")
    draw = lambda world: world.sim.rng.stream("x").random()  # noqa: E731
    assert draw(a1) == draw(a2)
    assert draw(a1) != draw(b)
    assert draw(a1) != draw(restore(snapshot))


# ----------------------------------------------------------------------
# engine state round-trip
# ----------------------------------------------------------------------
def test_engine_event_order_and_accounting_round_trip():
    """Heap entries, sequence counters, cancellations, and the clock all
    restore exactly: the clone executes the identical remaining schedule."""
    world = BareWorld(seed=3)
    sim = world.sim
    for time, tag in [(1.0, "a"), (2.0, "b"), (2.0, "c"), (3.0, "d"),
                      (4.0, "e"), (4.0, "f"), (5.0, "g")]:
        event = sim.schedule(time, world.emit, tag)
        if tag in ("b", "e"):
            event.cancel()
    sim.run(until=2.5)
    assert [tag for _, tag in world.log] == ["a", "c"]

    snapshot = capture(world)
    clone = restore(snapshot)
    assert clone.sim.now == sim.now
    assert clone.sim.pending() == sim.pending()
    assert clone.sim.peek() == sim.peek()

    sim.run()
    clone.sim.run()
    assert clone.log == world.log
    assert [tag for _, tag in clone.log] == ["a", "c", "d", "f", "g"]
    assert clone.sim.events_executed == sim.events_executed


def test_same_timestamp_fifo_order_survives_restore():
    """Events scheduled at the running timestamp (the ready batch) keep
    their FIFO-after-heap order across a snapshot taken at that time."""
    world = BareWorld(seed=5)
    sim = world.sim

    def spawn():
        # schedules at the current timestamp -> ready batch, then the
        # engine flushes them back into the heap when run() returns.
        sim.schedule(sim.now, world.emit, "late1")
        sim.schedule(sim.now, world.emit, "late2")

    sim.schedule(2.0, spawn)
    sim.schedule(2.0, world.emit, "heap1")
    sim.run(until=2.0, max_events=1)  # execute spawn only

    snapshot = capture(world)
    clone = restore(snapshot)
    sim.run()
    clone.sim.run()
    assert [tag for _, tag in world.log] == ["heap1", "late1", "late2"]
    assert clone.log == world.log


def test_capture_inside_run_is_rejected():
    world = BareWorld()
    failures = []

    def try_capture():
        try:
            capture(world)
        except CheckpointError as exc:
            failures.append(str(exc))

    world.sim.schedule(1.0, try_capture)
    world.sim.run()
    assert failures and "running" in failures[0]


def test_capture_requires_a_simulator():
    with pytest.raises(CheckpointError, match="exposes no .sim"):
        capture(object())


def test_capture_rejects_unpicklable_world():
    world = BareWorld()
    world.poison = lambda: None
    with pytest.raises(CheckpointError, match="not picklable"):
        capture(world)


# ----------------------------------------------------------------------
# process-global packet uid counter
# ----------------------------------------------------------------------
def test_uid_counter_peek_does_not_consume():
    before = uid_counter_state()
    assert uid_counter_state() == before
    packet = Packet(kind="data", flow="f", src="A", dst="B", seq=0, size=1000)
    assert packet.uid == before
    assert uid_counter_state() == before + 1


def test_restore_resets_uid_counter():
    world = BareWorld()
    snapshot = capture(world)
    # simulate a fresh process: counter rewound below the captured value
    restore_uid_counter(1)
    restore(snapshot)
    assert uid_counter_state() == snapshot.uid_next


def test_restore_uid_counter_rejects_nonpositive():
    with pytest.raises(ValueError):
        restore_uid_counter(0)


def test_stale_uid_counter_collides_with_tracked_packet():
    """Why restore() rewinds the counter: in a fresh process the counter
    restarts at 1 and re-issues uids still held by pickled in-flight
    packets — the conservation auditor flags the collision."""
    from repro.audit import ConservationAuditor, FlightRecorder, InvariantMonitor
    from repro.audit.violation import InvariantViolation
    from repro.net.network import Network, droptail_factory
    from repro.units import ms, pps_to_bps

    sim = Simulator(seed=1)
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("A", "B", pps_to_bps(200), ms(10))
    net.build_routes()
    monitor = InvariantMonitor(FlightRecorder())
    auditor = ConservationAuditor(sim, monitor=monitor,
                                  recorder=monitor.recorder)
    auditor.attach(net)
    try:
        tracked = Packet(kind="data", flow="f", src="A", dst="B",
                         seq=0, size=1000)
        restore_uid_counter(tracked.uid)  # the stale-counter scenario
        with pytest.raises(InvariantViolation, match="unique_uid"):
            Packet(kind="data", flow="f", src="A", dst="B", seq=1, size=1000)
    finally:
        restore_uid_counter(max(uid_counter_state(), tracked.uid + 1))
        auditor.detach()


# ----------------------------------------------------------------------
# file format
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path):
    world = BareWorld(seed=11)
    world.sim.schedule(1.0, world.emit, "x")
    snapshot = capture(world, label="round-trip", resume="mod:finish")
    path = save(snapshot, tmp_path / "state.ckpt")
    loaded = load(path)
    assert loaded == snapshot
    assert loaded.label == "round-trip"
    assert loaded.resume == "mod:finish"
    assert loaded.sim_time == snapshot.sim_time
    # atomic write: no temp debris next to the file
    assert list(tmp_path.glob("*.tmp")) == []


def test_dumps_matches_file_bytes(tmp_path):
    snapshot = capture(BareWorld())
    path = save(snapshot, tmp_path / "state.ckpt")
    assert path.read_bytes() == dumps(snapshot)


def test_load_rejects_non_checkpoint_file(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(pickle.dumps({"magic": "something-else"}))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load(path)
    path.write_bytes(b"\x00garbage")
    with pytest.raises(CheckpointError, match="unreadable"):
        load(path)


def test_load_rejects_future_format_version(tmp_path):
    snapshot = capture(BareWorld())
    bumped = Snapshot(**{**snapshot.__dict__, "version": FORMAT_VERSION + 1})
    path = tmp_path / "future.ckpt"
    path.write_bytes(dumps(bumped))
    with pytest.raises(CheckpointError, match="format"):
        load(path)
    with pytest.raises(CheckpointError, match="format"):
        restore(bumped)


def test_load_rejects_code_mismatch(tmp_path):
    snapshot = capture(BareWorld())
    stale = Snapshot(**{**snapshot.__dict__, "code": "0" * 16})
    path = save(stale, tmp_path / "stale.ckpt")
    with pytest.raises(CheckpointError, match="different simulator code"):
        load(path)
    assert load(path, allow_code_mismatch=True).payload == snapshot.payload
