"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.net.network import Network, droptail_factory
from repro.sim.engine import Simulator
from repro.units import ms, pps_to_bps


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def two_node_net(sim):
    """A <-> B with a 200 pkt/s bottleneck and 50 ms one-way delay."""
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("A", "B", pps_to_bps(200), ms(50))
    net.build_routes()
    return net


@pytest.fixture
def star_net(sim):
    """S - G - {R1, R2, R3}: fat access link, 200 pkt/s branches."""
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", pps_to_bps(20_000), ms(5),
                 queue_factory=droptail_factory(200))
    for i in (1, 2, 3):
        net.add_link("G", f"R{i}", pps_to_bps(200), ms(50))
    net.build_routes()
    return net
