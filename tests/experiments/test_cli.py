"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["fig7", "--duration", "30", "--cases", "1", "3"])
    assert args.figure == "fig7"
    assert args.duration == 30.0
    assert args.cases == [1, 3]


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig4_runs(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "drift field" in out


def test_fig5_runs(capsys):
    assert main(["fig5", "--steps", "5000"]) == 0
    out = capsys.readouterr().out
    assert "mean cwnds" in out
