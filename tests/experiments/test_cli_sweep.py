"""CLI: the sweep subcommand."""

from repro.cli import build_parser, main


def test_sweep_args_parsed():
    args = build_parser().parse_args(["sweep", "--counts", "2", "3",
                                      "--duration", "8", "--warmup", "4"])
    assert args.figure == "sweep"
    assert args.counts == [2, 3]


def test_sweep_runs(capsys):
    assert main(["sweep", "--counts", "2", "--duration", "6",
                 "--warmup", "3"]) == 0
    out = capsys.readouterr().out
    assert "ratio" in out
    assert "yes" in out or "NO" in out
