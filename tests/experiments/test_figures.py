"""Figure modules: fast analytical figures fully, sim figures as smoke."""

import pytest

from repro.experiments.fig4_drift import drift_field, render_field
from repro.experiments.fig5_density import (
    run_packet_density,
    run_particle_density,
)
from repro.experiments.multisession import run_multisession, summarize
from repro.experiments.paperdata import (
    FIG7_DROPTAIL,
    FIG8_SIGNALS,
    FIG9_RED,
    FIG10_RTT,
    MULTISESSION,
)


def test_paperdata_complete():
    assert set(FIG7_DROPTAIL) == {1, 2, 3, 4, 5}
    assert set(FIG9_RED) == {1, 2, 3, 4, 5}
    assert set(FIG8_SIGNALS) == {1, 2, 3, 4, 5}
    assert set(FIG10_RTT) == {1, 2}
    for case in FIG7_DROPTAIL.values():
        assert {"rla", "wtcp", "btcp"} <= set(case)
        assert case["rla"]["forced_cut"] == 0  # the paper saw none


def test_fig4_drift_field_regions():
    gx, gy, u, v = drift_field()
    # uncongested corner grows; congested far corner shrinks
    assert u[0, 0] == pytest.approx(2.0)
    assert u[-1, -1] < 0


def test_fig4_render():
    text = render_field()
    assert "n=3" in text and "pipe=10" in text
    assert "↗" in text


def test_fig5_particle_density_centers_on_fair_point():
    trace = run_particle_density(steps=30_000, seed=2)
    assert trace.mean_w1 == pytest.approx(20.0, rel=0.5)
    assert trace.mean_w1 == pytest.approx(trace.mean_w2, rel=0.15)
    assert trace.mass_within(15.0) > 0.4


def test_fig5_packet_density_smoke():
    result = run_packet_density(n_receivers=5, duration=30.0, warmup=10.0,
                                seed=2)
    assert result.samples > 200
    assert result.mean_w1 > 1.0 and result.mean_w2 > 1.0
    grid = result.density(w_max=60)
    assert grid.sum() > 0


def test_multisession_smoke():
    result = run_multisession(duration=10.0, warmup=5.0, seed=2)
    assert len(result.rla) == 2
    summary = summarize(result)
    assert summary["throughput_pps"][1] == MULTISESSION["throughput_pps"]
    assert len(summary["throughput_pps"][0]) == 2
