"""The tree-experiment runner (short smoke runs shared by several tests)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    TreeExperimentResult,
    TreeExperimentSpec,
    run_tree_experiment,
)
from repro.topology.cases import TREE_CASES
from repro.units import transmission_time, pps_to_bps


@pytest.fixture(scope="module")
def case5_result():
    """One short case-5 run reused by all assertions in this module."""
    spec = TreeExperimentSpec(case=TREE_CASES[5], duration=8.0, warmup=4.0,
                              seed=3)
    return run_tree_experiment(spec)


def test_result_shape(case5_result):
    result = case5_result
    assert isinstance(result, TreeExperimentResult)
    assert len(result.tcp) == 27
    assert len(result.rla) == 1
    assert len(result.receivers) == 27


def test_traffic_flows(case5_result):
    rla = case5_result.rla[0]
    assert rla["packets_sent"] > 0
    assert all(rep["packets_sent"] > 0 for rep in case5_result.tcp.values())


def test_tiers_match_case5(case5_result):
    assert len(case5_result.tiers["more"]) == 9
    assert len(case5_result.tiers["less"]) == 18


def test_wtcp_btcp_ordering(case5_result):
    assert (case5_result.wtcp["throughput_pps"]
            <= case5_result.btcp["throughput_pps"])


def test_tier_accessors(case5_result):
    more_cuts = case5_result.tcp_cuts_by_tier("more")
    assert len(more_cuts) == 9
    signals = case5_result.rla_signals_by_tier("more")
    assert len(signals) == 9


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        TreeExperimentSpec(case=TREE_CASES[1], gateway="fifo").validate()
    with pytest.raises(ConfigurationError):
        TreeExperimentSpec(case=TREE_CASES[1], duration=0).validate()
    with pytest.raises(ConfigurationError):
        TreeExperimentSpec(case=TREE_CASES[1], rla_sessions=0).validate()
    with pytest.raises(ConfigurationError):
        TreeExperimentSpec(case=TREE_CASES[1], tcp_per_receiver=-1).validate()


def test_jitter_resolution():
    spec = TreeExperimentSpec(case=TREE_CASES[3])
    bottleneck = pps_to_bps(200)
    assert spec.resolved_jitter(bottleneck) == pytest.approx(
        transmission_time(1000, bottleneck)
    )
    red_spec = TreeExperimentSpec(case=TREE_CASES[3], gateway="red")
    assert red_spec.resolved_jitter(bottleneck) is None
    explicit = TreeExperimentSpec(case=TREE_CASES[3], phase_jitter=0.001)
    assert explicit.resolved_jitter(bottleneck) == 0.001
    off = TreeExperimentSpec(case=TREE_CASES[3], phase_jitter=None)
    assert off.resolved_jitter(bottleneck) is None


def test_generalized_resolution():
    from repro.topology.cases import RTT_CASES

    assert not TreeExperimentSpec(case=TREE_CASES[3]).resolved_generalized()
    assert TreeExperimentSpec(case=RTT_CASES[1]).resolved_generalized()
    forced = TreeExperimentSpec(case=TREE_CASES[3], generalized=True)
    assert forced.resolved_generalized()
