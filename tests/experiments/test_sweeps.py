"""Parameter-sweep harness (short smoke runs)."""

import pytest

from repro.experiments.sweeps import (
    format_sweep,
    sweep_buffer_size,
    sweep_receiver_count,
    sweep_share,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    return sweep_receiver_count(counts=(2, 3), duration=10.0, warmup=5.0,
                                seed=2)


def test_sweep_rows_have_expected_keys(tiny_sweep):
    for row in tiny_sweep:
        for key in ("n_receivers", "rla_pps", "wtcp_pps", "ratio", "fair",
                    "lower", "upper", "num_trouble"):
            assert key in row


def test_sweep_counts_match(tiny_sweep):
    assert [row["n_receivers"] for row in tiny_sweep] == [2, 3]


def test_sweep_bounds_widen_with_n(tiny_sweep):
    assert tiny_sweep[0]["upper"] <= tiny_sweep[1]["upper"]


def test_sweep_traffic_flows(tiny_sweep):
    for row in tiny_sweep:
        assert row["rla_pps"] > 0
        assert row["wtcp_pps"] > 0


def test_buffer_sweep_smoke():
    rows = sweep_buffer_size(buffers=(10, 20), n_receivers=2, duration=8.0,
                             warmup=4.0, seed=2)
    assert [row["buffer_pkts"] for row in rows] == [10, 20]


def test_share_sweep_smoke():
    rows = sweep_share(shares=(100.0,), n_receivers=2, duration=8.0,
                       warmup=4.0, seed=2)
    assert rows[0]["share_pps"] == 100.0


def test_format_sweep(tiny_sweep):
    text = format_sweep(tiny_sweep, "n_receivers")
    assert "ratio" in text
    assert len(text.splitlines()) == 3
