"""Table rendering in the paper's layout."""

from repro.experiments.runner import TreeExperimentResult, TreeExperimentSpec
from repro.experiments.tables import (
    format_case_table,
    format_signals_table,
    render_grid,
)
from repro.topology.cases import TREE_CASES


def _fake_result(case_number=5):
    rla = {
        "throughput_pps": 224.6, "mean_cwnd": 53.7, "mean_rtt": 0.238,
        "congestion_signals": 11754, "window_cuts": 442, "forced_cuts": 0,
        "timeouts": 0, "packets_sent": 1, "rtx_multicast": 0,
        "rtx_unicast": 0, "num_trouble": 27, "elapsed": 2900.0,
        "signals_by_receiver": {f"R{i}": 1082 if i <= 9 else 112
                                for i in range(1, 28)},
    }
    tcp = {
        f"R{i}": {
            "throughput_pps": 74.5 + i, "mean_cwnd": 18.9, "mean_rtt": 0.238,
            "window_cuts": 899 - i, "timeouts": 0, "packets_sent": 1,
            "retransmits": 0, "elapsed": 2900.0,
        }
        for i in range(1, 28)
    }
    return TreeExperimentResult(
        spec=TreeExperimentSpec(case=TREE_CASES[case_number]),
        rla=[rla],
        tcp=tcp,
        tiers={"more": [f"R{i}" for i in range(1, 10)],
               "less": [f"R{i}" for i in range(10, 28)]},
        receivers=[f"R{i}" for i in range(1, 28)],
    )


def test_render_grid_aligns():
    text = render_grid(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")


def test_case_table_contains_sections():
    table = format_case_table({5: _fake_result()})
    assert "RLA" in table and "WTCP" in table and "BTCP" in table
    assert "224.6" in table
    assert "case 5" in table


def test_case_table_with_paper_refs():
    from repro.experiments.paperdata import FIG7_DROPTAIL

    table = format_case_table({5: _fake_result()}, paper=FIG7_DROPTAIL)
    assert "[224.6]" in table
    assert "measured [paper]" in table


def test_wtcp_is_minimum():
    result = _fake_result()
    assert result.wtcp["throughput_pps"] == min(
        rep["throughput_pps"] for rep in result.tcp.values()
    )


def test_signals_table_tiers():
    table = format_signals_table({5: _fake_result()})
    assert "more congested" in table
    assert "less congested" in table
    assert "1082" in table


def test_signals_table_with_paper():
    from repro.experiments.paperdata import FIG8_SIGNALS

    table = format_signals_table({5: _fake_result()}, paper=FIG8_SIGNALS)
    assert "[1082]" in table


def test_signals_table_single_tier():
    result = _fake_result(case_number=1)
    result.tiers = {"more": result.receivers, "less": []}
    table = format_signals_table({1: result})
    assert "all links" in table
