"""Fluid-vs-packet cross-validation regression suite.

Every case in :data:`repro.fluid.crossval.CROSSVAL_CASES` — dumbbell
and RTT-cohort topologies, drop-tail and RED, 10 to 100 flows — must
land inside the per-metric tolerances of docs/FLUID.md.  The tolerances
are asserted, not eyeballed: a failing case prints its full per-metric
error table so the drifting metric is visible in the pytest output.
"""

from __future__ import annotations

import pytest

from repro.fluid.crossval import (
    CROSSVAL_CASES,
    crossval_case,
    format_crossval,
)


@pytest.mark.parametrize("case", CROSSVAL_CASES,
                         ids=lambda case: case.name)
def test_case_within_tolerance(case):
    packet, fluid, rows = crossval_case(case)
    failing = [row.metric for row in rows if not row.ok]
    assert not failing, (
        f"{case.name}: {failing} outside tolerance\n"
        + format_crossval([(case, packet, fluid, rows)])
    )


def test_case_set_spans_the_advertised_envelope():
    """The suite really covers n in {10, 40, 100} x both disciplines."""
    assert {case.flows for case in CROSSVAL_CASES} == {10, 40, 100}
    assert {case.gateway for case in CROSSVAL_CASES} == {"droptail",
                                                         "red"}
    assert {case.topology for case in CROSSVAL_CASES} == {"dumbbell",
                                                          "rtt_cohorts"}
