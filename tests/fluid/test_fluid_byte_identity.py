"""Byte-identity of fluid reports across execution modes.

The integrator draws no random numbers and takes a fixed number of RK4
steps, so the same :class:`FluidSpec` must produce a *byte-identical*
report pickle whether it runs serially, through the parallel runtime's
worker pool, out of the content-addressed result cache, or in a brand
new interpreter.  Any divergence means hidden state (RNG, wall clock,
dict ordering, accumulation order) leaked into the dynamics.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import subprocess
import sys

from repro.fluid import run_fluid, run_fluids
from repro.fluid.crossval import CROSSVAL_CASES, fluid_twin

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

# Short horizon keeps the test fast; the RED dumbbell twin exercises
# every state variable (windows, queue, EWMA average).
SPEC_SNIPPET = (
    "from repro.fluid.crossval import CROSSVAL_CASES, fluid_twin\n"
    "spec = fluid_twin(CROSSVAL_CASES[0]).replace(duration=5.0, "
    "warmup=2.0)\n"
)


def _spec():
    namespace = {}
    exec(SPEC_SNIPPET, namespace)
    return namespace["spec"]


def test_serial_and_parallel_runs_byte_identical():
    spec = _spec()
    serial = pickle.dumps(run_fluid(spec))
    parallel = run_fluids([spec], workers=2)
    assert pickle.dumps(parallel[0]) == serial


def test_cache_replay_byte_identical(tmp_path):
    from repro.runtime import ResultCache

    spec = _spec()
    serial = pickle.dumps(run_fluid(spec))
    first = run_fluids([spec], cache=ResultCache(str(tmp_path)))
    replay = run_fluids([spec], cache=ResultCache(str(tmp_path)))
    assert pickle.dumps(first[0]) == serial
    assert pickle.dumps(replay[0]) == serial


def test_fresh_interpreter_byte_identical():
    spec = _spec()
    here = pickle.dumps(run_fluid(spec))
    script = (
        "import pickle, sys\n"
        + SPEC_SNIPPET
        + "from repro.fluid import run_fluid\n"
        "sys.stdout.write(pickle.dumps(run_fluid(spec)).hex())\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True)
    assert bytes.fromhex(out.stdout) == here
