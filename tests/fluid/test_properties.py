"""Steady-state property tests for the fluid ODE backend.

The ``"fixed"`` discipline decouples the window dynamics from the queue,
so the integrator's long-run averages must land on the paper's closed
forms exactly: the TCP cohort on equation 1's PA window
``sqrt(2(1-p)/p)`` and the RLA session on the grouped common-loss
window of :func:`repro.models.rla_drift.rla_window_groups`.  The RED
tests then check the Reynier equilibrium machinery against itself and
against the integrator: the bisected fixed point satisfies the queue
balance ``A(p)(1-p) = C``, sits on the RED drop profile, and — when the
stability margin is positive — is where the integrated trajectory
actually settles.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    BottleneckSpec,
    FluidSpec,
    RlaCohortSpec,
    TcpCohortSpec,
    integrate,
    reynier_check,
    solve_equilibrium,
)
from repro.models.rla_drift import rla_window_groups
from repro.models.tcp_formula import MODERATE_CONGESTION_LIMIT, pa_window

# Long warmup: the slowest drift rate in the strategy ranges below is
# ~p*W/R ~ 0.33/s, so 40 s of transient leaves a relative residual
# around e^-13 — far below the 1e-4 assertion tolerance.
WARMUP = 40.0
DURATION = 20.0

probabilities = st.floats(min_value=0.005,
                          max_value=MODERATE_CONGESTION_LIMIT)
rtts = st.floats(min_value=0.02, max_value=0.3)


def _fixed_spec(p, rtt=0.1, flows=0, receivers=0):
    """One fixed-loss bottleneck with optional TCP/RLA cohorts."""
    return FluidSpec(
        name=f"fixed p={p:g}",
        bottlenecks=(BottleneckSpec(capacity_pps=10_000.0,
                                    discipline="fixed", loss_p=p),),
        tcp_cohorts=((TcpCohortSpec(flows, rtt),) if flows else ()),
        rla_cohorts=((RlaCohortSpec(receivers, rtt),) if receivers else ()),
        duration=DURATION, warmup=WARMUP,
    )


# ----------------------------------------------------------------------
# closed-form steady states under fixed loss
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None, derandomize=True)
@given(p=probabilities, rtt=rtts)
def test_tcp_steady_state_is_pa_window(p, rtt):
    result = integrate(_fixed_spec(p, rtt=rtt, flows=3))
    window = result.means["tcp_window"][0]
    assert window == pytest.approx(pa_window(p), rel=1e-4)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(p=probabilities, rtt=rtts, receivers=st.integers(1, 64))
def test_rla_steady_state_is_grouped_window(p, rtt, receivers):
    result = integrate(_fixed_spec(p, rtt=rtt, receivers=receivers))
    window = result.means["rla_window"][0]
    assert window == pytest.approx(rla_window_groups([(receivers, p)]),
                                   rel=1e-4)


def test_rla_multi_bottleneck_uses_grouped_loss_products():
    """Two trees' worth of receivers behind different fixed losses.

    The drift must multiply the *per-bottleneck* common-loss factors —
    ``rla_window_groups([(6, p1), (4, p2)])`` — not treat the ten
    receivers as independent losers.
    """
    p1, p2 = 0.01, 0.03
    spec = FluidSpec(
        name="fixed two-group",
        bottlenecks=(
            BottleneckSpec(capacity_pps=10_000.0, discipline="fixed",
                           loss_p=p1),
            BottleneckSpec(capacity_pps=10_000.0, discipline="fixed",
                           loss_p=p2),
        ),
        rla_cohorts=(RlaCohortSpec(6, 0.1, bottleneck=0),
                     RlaCohortSpec(4, 0.15, bottleneck=1)),
        duration=DURATION, warmup=WARMUP,
    )
    result = integrate(spec)
    expected = rla_window_groups([(6, p1), (4, p2)])
    assert result.means["rla_window"][0] == pytest.approx(expected,
                                                          rel=1e-4)


def test_fixed_equilibrium_report_is_closed_form():
    p = 0.02
    report = solve_equilibrium(_fixed_spec(p, flows=2, receivers=8))
    assert report.status == "interior"
    assert report.p == p
    assert report.tcp_windows[0] == pytest.approx(pa_window(p))
    assert report.rla_window == pytest.approx(rla_window_groups([(8, p)]))


# ----------------------------------------------------------------------
# RED equilibrium: Reynier condition and agreement with the integrator
# ----------------------------------------------------------------------
def _red_spec():
    """An interior, Reynier-stable RED operating point (p in (2%, 5%))."""
    return FluidSpec(
        name="red interior",
        bottlenecks=(BottleneckSpec(capacity_pps=2_000.0,
                                    buffer_pkts=100.0, discipline="red",
                                    min_th=25.0, max_th=75.0),),
        tcp_cohorts=(TcpCohortSpec(40, 0.1),),
        duration=DURATION, warmup=WARMUP,
    )


def test_red_equilibrium_satisfies_reynier_condition():
    spec = _red_spec()
    bn = spec.bottlenecks[0]
    report = reynier_check(spec)
    assert report.status == "interior"
    # Queue balance at the fixed point: accepted load equals capacity.
    assert report.arrival_pps * (1.0 - report.p) == pytest.approx(
        bn.capacity_pps, rel=1e-6)
    # The fixed point sits on RED's linear drop profile.
    profile_q = bn.min_th + (report.p / bn.max_p) * (bn.max_th - bn.min_th)
    assert report.queue == pytest.approx(profile_q, rel=1e-9)
    # Windows are the PA closed form at the equilibrium loss.
    assert report.tcp_windows[0] == pytest.approx(pa_window(report.p))
    # Reynier's stable regime: every eigenvalue in the left half-plane.
    assert report.stability_margin is not None
    assert report.stability_margin > 0.0


def test_integrator_settles_on_stable_red_equilibrium():
    spec = _red_spec()
    report = reynier_check(spec)
    assert report.stability_margin > 0.0
    result = integrate(spec)
    assert result.means["loss"][0] == pytest.approx(report.p, rel=0.05)
    assert result.means["queue"][0] == pytest.approx(report.queue,
                                                     rel=0.05)
    assert result.means["tcp_window"][0] == pytest.approx(
        report.tcp_windows[0], rel=0.05)


def test_droptail_equilibrium_has_one_sided_linearization():
    """Drop-tail parks the fixed point on the full-buffer boundary."""
    spec = _red_spec().replace(
        name="droptail boundary",
        bottlenecks=(BottleneckSpec(capacity_pps=2_000.0,
                                    buffer_pkts=100.0,
                                    discipline="droptail"),),
    )
    report = reynier_check(spec)
    assert report.status == "interior"
    assert report.queue == pytest.approx(spec.bottlenecks[0].buffer_pkts)
    assert report.stability_margin is None


def test_deterministic_step_count():
    """steps = round(horizon / dt): no RNG, no adaptive stepping."""
    spec = _fixed_spec(0.02, flows=1)
    result = integrate(spec)
    assert result.steps == round(spec.horizon / spec.dt)
