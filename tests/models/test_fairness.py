"""Fairness definitions and theorem bounds (§2, §4)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.models import fairness as fm


def test_soft_bottleneck_picks_min_share():
    # shares: 100/2=50, 300/4=75, 60/1=60 -> branch 0
    assert fm.soft_bottleneck([100, 300, 60], [1, 3, 0]) == 0
    assert fm.soft_bottleneck_share([100, 300, 60], [1, 3, 0]) == 50


def test_soft_bottleneck_zero_tcp():
    assert fm.soft_bottleneck([100], [0]) == 0
    assert fm.soft_bottleneck_share([100], [0]) == 100


def test_soft_bottleneck_validation():
    with pytest.raises(ConfigurationError):
        fm.soft_bottleneck([], [])
    with pytest.raises(ConfigurationError):
        fm.soft_bottleneck([1.0], [1, 2])


def test_theorem1_bounds():
    a, b = fm.essential_fairness_bounds(27, fm.RED)
    assert a == pytest.approx(1 / 3)
    assert b == pytest.approx(math.sqrt(81))


def test_theorem2_bounds():
    a, b = fm.essential_fairness_bounds(27, fm.DROPTAIL)
    assert a == 0.25
    assert b == 54


def test_bounds_validation():
    with pytest.raises(ConfigurationError):
        fm.essential_fairness_bounds(0, fm.RED)
    with pytest.raises(ConfigurationError):
        fm.essential_fairness_bounds(5, "fifo")


def test_window_ratio_bounds_eq4():
    lower, upper = fm.window_ratio_bounds(3)
    assert lower == pytest.approx(2 / 3)
    assert upper == pytest.approx(3.0)


def test_rtt_ratio_bounds_eq5():
    assert fm.rtt_ratio_bounds() == (1.0, 2.0)


def test_check_essential_fairness_inside():
    verdict = fm.check_essential_fairness(120, 100, 27, fm.DROPTAIL)
    assert verdict.fair
    assert verdict.ratio == pytest.approx(1.2)
    assert "ESSENTIALLY FAIR" in str(verdict)


def test_check_essential_fairness_outside():
    verdict = fm.check_essential_fairness(10, 100, 27, fm.RED)
    assert not verdict.fair
    assert "OUT OF BOUNDS" in str(verdict)


def test_check_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        fm.check_essential_fairness(0, 100, 27, fm.RED)


def test_absolute_fairness_special_case():
    # a = b = 1: throughput at the soft-bottleneck share
    assert fm.is_absolutely_fair(100, [200, 400], [1, 1], tolerance=0.05)
    assert not fm.is_absolutely_fair(150, [200, 400], [1, 1], tolerance=0.05)
