"""Fairness definitions and theorem bounds (§2, §4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.models import fairness as fm

_allocs = st.lists(st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
                   min_size=1, max_size=12)


def test_soft_bottleneck_picks_min_share():
    # shares: 100/2=50, 300/4=75, 60/1=60 -> branch 0
    assert fm.soft_bottleneck([100, 300, 60], [1, 3, 0]) == 0
    assert fm.soft_bottleneck_share([100, 300, 60], [1, 3, 0]) == 50


def test_soft_bottleneck_zero_tcp():
    assert fm.soft_bottleneck([100], [0]) == 0
    assert fm.soft_bottleneck_share([100], [0]) == 100


def test_soft_bottleneck_validation():
    with pytest.raises(ConfigurationError):
        fm.soft_bottleneck([], [])
    with pytest.raises(ConfigurationError):
        fm.soft_bottleneck([1.0], [1, 2])


def test_theorem1_bounds():
    a, b = fm.essential_fairness_bounds(27, fm.RED)
    assert a == pytest.approx(1 / 3)
    assert b == pytest.approx(math.sqrt(81))


def test_theorem2_bounds():
    a, b = fm.essential_fairness_bounds(27, fm.DROPTAIL)
    assert a == 0.25
    assert b == 54


def test_bounds_validation():
    with pytest.raises(ConfigurationError):
        fm.essential_fairness_bounds(0, fm.RED)
    with pytest.raises(ConfigurationError):
        fm.essential_fairness_bounds(5, "fifo")


def test_window_ratio_bounds_eq4():
    lower, upper = fm.window_ratio_bounds(3)
    assert lower == pytest.approx(2 / 3)
    assert upper == pytest.approx(3.0)


def test_rtt_ratio_bounds_eq5():
    assert fm.rtt_ratio_bounds() == (1.0, 2.0)


def test_check_essential_fairness_inside():
    verdict = fm.check_essential_fairness(120, 100, 27, fm.DROPTAIL)
    assert verdict.fair
    assert verdict.ratio == pytest.approx(1.2)
    assert "ESSENTIALLY FAIR" in str(verdict)


def test_check_essential_fairness_outside():
    verdict = fm.check_essential_fairness(10, 100, 27, fm.RED)
    assert not verdict.fair
    assert "OUT OF BOUNDS" in str(verdict)


def test_check_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        fm.check_essential_fairness(0, 100, 27, fm.RED)


def test_absolute_fairness_special_case():
    # a = b = 1: throughput at the soft-bottleneck share
    assert fm.is_absolutely_fair(100, [200, 400], [1, 1], tolerance=0.05)
    assert not fm.is_absolutely_fair(150, [200, 400], [1, 1], tolerance=0.05)


# ------------------------------------------------------- jain properties
@settings(max_examples=100, deadline=None)
@given(values=_allocs)
def test_jain_property_stays_in_range(values):
    """1/n <= jain <= 1 for every non-negative allocation."""
    index = fm.jain_index(values)
    assert 1.0 / len(values) <= index <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(values=_allocs,
       scale=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
def test_jain_property_scale_invariant(values, scale):
    """Multiplying every allocation by a constant changes nothing."""
    index = fm.jain_index(values)
    scaled = fm.jain_index([v * scale for v in values])
    assert scaled == pytest.approx(index, rel=1e-6, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 20),
       value=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
def test_jain_property_equal_allocations_score_one(n, value):
    assert fm.jain_index([value] * n) == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 20))
def test_jain_property_monopolist_hits_lower_bound(n):
    """One flow taking everything scores exactly 1/n."""
    assert fm.jain_index([7.5] + [0.0] * (n - 1)) == pytest.approx(1.0 / n)


@settings(max_examples=100, deadline=None)
@given(fast=_allocs, slow=_allocs)
def test_jain_property_cohort_partitioning(fast, slow):
    """Pooled fairness never exceeds the best cohort's internal fairness.

    This is the soundness property behind the per-cohort columns: when
    each RTT cohort is internally fair but the cohorts' means differ, the
    unfairness must show up in the pooled index, never be hidden by it.
    """
    pooled = fm.jain_index(fast + slow)
    best = max(fm.jain_index(fast), fm.jain_index(slow))
    assert pooled <= best + 1e-9


def test_jain_cohort_partition_example():
    # Two internally-equal cohorts, 4x apart: pooled index is penalized.
    assert fm.jain_index([4.0, 4.0]) == 1.0
    assert fm.jain_index([1.0, 1.0]) == 1.0
    pooled = fm.jain_index([4.0, 4.0, 1.0, 1.0])
    assert pooled == pytest.approx(25.0 / 34.0)
