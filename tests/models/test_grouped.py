"""The grouped-loss window model (Lemma interpolation across cases 1-3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.models.rla_drift import (
    rla_window_common,
    rla_window_grouped,
    rla_window_independent,
    simulate_grouped_chain,
)

probs = st.floats(min_value=1e-3, max_value=0.05)


def test_reduces_to_independent():
    p, n = 0.02, 6
    assert rla_window_grouped(p, group_size=1, groups=n) == pytest.approx(
        rla_window_independent([p] * n), rel=1e-9
    )


def test_reduces_to_common():
    p, n = 0.02, 6
    assert rla_window_grouped(p, group_size=n, groups=1) == pytest.approx(
        rla_window_common(p, n), rel=1e-9
    )


@settings(max_examples=80, deadline=None)
@given(p=probs, groups=st.integers(1, 6), size=st.integers(1, 6))
def test_property_window_monotone_in_correlation(p, groups, size):
    """For fixed n = 12..., coarser grouping (more correlation) gives a
    larger window — the Lemma, interpolated."""
    n = 12
    divisors = [d for d in (1, 2, 3, 4, 6, 12)]
    windows = [rla_window_grouped(p, group_size=d, groups=n // d)
               for d in divisors]
    assert all(a <= b + 1e-9 for a, b in zip(windows, windows[1:]))


def test_case_ordering_matches_figure7():
    """Case 1 (one shared loss) > case 2 (9 subtree groups) > case 3
    (27 independent) in the PA window, as the paper's table shows."""
    p = 0.02
    case1 = rla_window_grouped(p, group_size=27, groups=1)
    case2 = rla_window_grouped(p, group_size=3, groups=9)
    case3 = rla_window_grouped(p, group_size=1, groups=27)
    assert case1 > case2 > case3


def test_monte_carlo_agreement():
    p, size, groups = 0.03, 3, 3
    closed = rla_window_grouped(p, size, groups)
    simulated = simulate_grouped_chain(p, size, groups, steps=250_000, seed=7)
    assert simulated == pytest.approx(closed, rel=0.15)


def test_validation():
    with pytest.raises(ConfigurationError):
        rla_window_grouped(0.0, 1, 1)
    with pytest.raises(ConfigurationError):
        rla_window_grouped(0.01, 0, 1)
    with pytest.raises(ConfigurationError):
        simulate_grouped_chain(0.01, 1, 1, steps=0)
