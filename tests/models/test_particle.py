"""The §4.4 two-session particle model (figures 3-5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.models.particle import ParticleModel, binomial_pmf


def test_binomial_pmf_sums_to_one():
    pmf = binomial_pmf(10, 0.3)
    assert sum(pmf) == pytest.approx(1.0)
    assert len(pmf) == 11


def test_binomial_pmf_validation():
    with pytest.raises(ConfigurationError):
        binomial_pmf(-1, 0.5)
    with pytest.raises(ConfigurationError):
        binomial_pmf(3, 1.5)


def test_model_validation():
    with pytest.raises(ConfigurationError):
        ParticleModel(n=0, pipes=[(10.0, 0)])
    with pytest.raises(ConfigurationError):
        ParticleModel(n=3, pipes=[])
    with pytest.raises(ConfigurationError):
        ParticleModel(n=3, pipes=[(10.0, 2)])  # counts != n


def test_signals_per_region():
    model = ParticleModel(n=3, pipes=[(10.0, 1), (20.0, 2)])
    assert model.signals(5.0) == 0
    assert model.signals(15.0) == 1
    assert model.signals(25.0) == 3


def test_drift_positive_when_uncongested():
    model = ParticleModel.uniform(3, 10.0)
    assert model.drift(2.0, 4.0) == pytest.approx(2.0)


def test_drift_negative_deep_in_congestion():
    model = ParticleModel.uniform(3, 10.0)
    # large window far beyond the pipe: cuts dominate
    assert model.drift(20.0, 40.0) < 0


def test_drift_matches_paper_formula():
    """2 p0 - sum_i w (1 - 2^-i) p_i with p_i = Binomial(n, 1/n)."""
    model = ParticleModel.uniform(3, 10.0)
    pmf = binomial_pmf(3, 1 / 3)
    w, total = 6.0, 12.0
    expected = 2 * pmf[0] - sum(
        w * (1 - 2.0 ** (-i)) * pmf[i] for i in range(1, 4)
    )
    assert model.drift(w, total) == pytest.approx(expected)


def test_drift_field_shapes():
    model = ParticleModel.uniform(3, 10.0)
    gx, gy, u, v = model.drift_field(w_max=12.0, step=2.0)
    assert gx.shape == gy.shape == u.shape == v.shape
    # symmetry: drift is exchangeable in the two windows
    assert u[0, 3] == pytest.approx(v[3, 0])


def test_operating_point():
    assert ParticleModel.uniform(3, 10.0).operating_point() == (5.0, 5.0)


def test_simulation_symmetric_means():
    model = ParticleModel.uniform(3, 10.0)
    trace = model.simulate(steps=50_000, seed=2)
    assert trace.mean_w1 == pytest.approx(trace.mean_w2, rel=0.1)


def test_simulation_mass_concentrates_near_fair_point():
    """Figure 5: most probability mass sits around (pipe/2, pipe/2)."""
    model = ParticleModel.uniform(27, 40.0)
    trace = model.simulate(steps=50_000, seed=3)
    assert trace.mass_within(15.0) > 0.5
    assert trace.mean_w1 == pytest.approx(20.0, rel=0.5)


def test_density_grid():
    model = ParticleModel.uniform(3, 10.0)
    trace = model.simulate(steps=5_000, seed=1)
    grid = model.simulate(steps=5_000, seed=1).density(w_max=30)
    assert grid.sum() == pytest.approx(
        sum(count for cell, count in trace.counts.items()
            if max(cell) <= 30), rel=0.01
    )


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 20), pipe=st.floats(5.0, 60.0))
def test_property_simulation_stays_positive(n, pipe):
    trace = ParticleModel.uniform(n, pipe).simulate(steps=2_000, seed=7)
    assert all(w1 >= 1 and w2 >= 1 for w1, w2 in trace.counts)


def test_simulate_validation():
    with pytest.raises(ConfigurationError):
        ParticleModel.uniform(3, 10.0).simulate(steps=0)
