"""Multi-tier pipe configurations of the §4.4 particle model.

The paper's general model orders pipe sizes pipe_1 < pipe_2 < ... with
n_i receivers behind each; crossing each boundary adds that tier's
signals.  These tests pin the multi-tier behaviour the single-tier
figure-4/5 setting doesn't exercise.
"""

import pytest

from repro.models.particle import ParticleModel


@pytest.fixture
def tiered():
    # 1 receiver behind pipe 10, 2 behind pipe 20, 3 behind pipe 30
    return ParticleModel(n=6, pipes=[(10.0, 1), (20.0, 2), (30.0, 3)])


def test_signals_accumulate_across_tiers(tiered):
    assert tiered.signals(5.0) == 0
    assert tiered.signals(10.0) == 0      # boundary: not yet exceeded
    assert tiered.signals(10.5) == 1
    assert tiered.signals(25.0) == 3
    assert tiered.signals(35.0) == 6


def test_drift_monotone_in_congestion_depth(tiered):
    """Deeper congestion pulls a given window down harder."""
    shallow = tiered.drift(8.0, 15.0)   # one tier exceeded
    deep = tiered.drift(8.0, 35.0)      # all tiers exceeded
    assert deep < shallow


def test_operating_point_uses_smallest_pipe(tiered):
    assert tiered.operating_point() == (5.0, 5.0)


def test_cut_pmf_matches_signals(tiered):
    pmf = tiered.cut_pmf(tiered.signals(35.0))
    assert len(pmf) == 7  # 6 signals -> outcomes 0..6
    assert sum(pmf) == pytest.approx(1.0)


def test_simulation_respects_first_boundary(tiered):
    trace = tiered.simulate(steps=20_000, seed=11)
    # window sums spend most time near or below the first congested tier;
    # excursions above the last pipe are rare because six signals with
    # listening probability 1/6 almost surely cut someone.
    heavy = sum(count for (w1, w2), count in trace.counts.items()
                if w1 + w2 > 30.0)
    assert heavy / trace.steps < 0.2


def test_unsorted_tier_input_is_sorted():
    model = ParticleModel(n=3, pipes=[(30.0, 2), (10.0, 1)])
    assert model.operating_point() == (5.0, 5.0)
    assert model.signals(15.0) == 1
