"""§4.2 drift analysis: equation 3, the Proposition (eq 2), the Lemma."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.models import rla_drift as rd
from repro.models.tcp_formula import pa_window

probs = st.floats(min_value=1e-4, max_value=0.05)


def test_equation3_matches_general_form():
    for p1, p2 in [(0.01, 0.01), (0.02, 0.005), (0.04, 0.04)]:
        assert rd.rla_window_two_receivers(p1, p2) == pytest.approx(
            rd.rla_window_independent([p1, p2]), rel=1e-9
        )


def test_single_receiver_reduces_to_tcp():
    """With n = 1 the RLA window chain is exactly TCP's (eq 1)."""
    for p in (0.005, 0.01, 0.04):
        assert rd.rla_window_independent([p]) == pytest.approx(pa_window(p), rel=1e-9)
        assert rd.rla_window_common(p, 1) == pytest.approx(pa_window(p), rel=1e-9)


@settings(max_examples=200, deadline=None)
@given(p1=probs, p2=probs)
def test_property_proposition_bounds_two_receivers(p1, p2):
    """Equation 2 holds for all moderate-congestion probability pairs."""
    w = rd.rla_window_two_receivers(p1, p2)
    p_max = max(p1, p2)
    lower, upper = rd.proposition_bounds(p_max, 2)
    assert w > lower
    # the paper's upper bound requires p2/p1 >= f(p1) ~ p1/2; with both
    # probabilities above 1e-4/0.05 = eta-like ratio it can be violated
    # for extremely unbalanced pairs, so check only the guaranteed regime.
    if min(p1, p2) / p_max >= 0.05:
        assert w < upper


@settings(max_examples=100, deadline=None)
@given(p=probs, n=st.integers(min_value=2, max_value=30))
def test_property_bounds_equal_probabilities(p, n):
    # (n = 1 degenerates to TCP where W equals the lower bound exactly;
    # covered by test_single_receiver_reduces_to_tcp.)
    w = rd.rla_window_independent([p] * n)
    lower, upper = rd.proposition_bounds(p, n)
    assert lower < w < upper


@settings(max_examples=100, deadline=None)
@given(p=probs, n=st.integers(min_value=2, max_value=30))
def test_property_lemma_correlation_increases_window(p, n):
    assert rd.lemma_correlation_gap(p, n) > 0


def test_eta_condition_monotone():
    assert rd.eta_condition(0.01) < rd.eta_condition(0.05)
    # the recommended eta = 20 leaves margin at p = 5%
    assert 1 / 20 > rd.eta_condition(0.05)


def test_monte_carlo_matches_equation3():
    p1 = p2 = 0.02
    closed = rd.rla_window_two_receivers(p1, p2)
    simulated = rd.simulate_window_chain([p1, p2], steps=300_000, seed=3)
    assert simulated == pytest.approx(closed, rel=0.15)


def test_monte_carlo_common_loss():
    p, n = 0.02, 5
    closed = rd.rla_window_common(p, n)
    simulated = rd.simulate_window_chain([p] * n, steps=300_000, seed=4,
                                         correlated=True)
    assert simulated == pytest.approx(closed, rel=0.15)


def test_monte_carlo_lemma():
    p, n = 0.03, 8
    independent = rd.simulate_window_chain([p] * n, steps=200_000, seed=5)
    common = rd.simulate_window_chain([p] * n, steps=200_000, seed=5,
                                      correlated=True)
    assert common > independent


def test_validation():
    with pytest.raises(ConfigurationError):
        rd.rla_window_independent([])
    with pytest.raises(ConfigurationError):
        rd.rla_window_two_receivers(0.0, 0.01)
    with pytest.raises(ConfigurationError):
        rd.rla_window_common(0.01, 0)
    with pytest.raises(ConfigurationError):
        rd.proposition_bounds(0.01, 0)
    with pytest.raises(ConfigurationError):
        rd.simulate_window_chain([0.01], steps=0)
