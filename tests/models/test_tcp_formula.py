"""Equation 1 and related TCP formulas."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.models import tcp_formula as tf


def test_pa_window_known_value():
    # p = 0.02 -> sqrt(2 * 0.98 / 0.02) = sqrt(98) ~= 9.899
    assert tf.pa_window(0.02) == pytest.approx(math.sqrt(98))


def test_simplified_close_for_small_p():
    p = 0.001
    assert tf.pa_window(p) == pytest.approx(tf.pa_window_simplified(p), rel=0.01)


def test_mahdavi_floyd():
    assert tf.mahdavi_floyd_bandwidth(0.1, 0.01) == pytest.approx(130.0)


def test_throughput_is_window_over_rtt():
    assert tf.tcp_throughput(0.2, 0.02) == pytest.approx(tf.pa_window(0.02) / 0.2)


def test_inverse_roundtrip():
    for p in (0.001, 0.01, 0.04):
        w = tf.pa_window(p)
        assert tf.congestion_probability_for_window(w) == pytest.approx(p)


def test_drift_zero_at_pa_window():
    p = 0.01
    w = tf.pa_window(p)
    assert tf.drift(w, p) == pytest.approx(0.0, abs=1e-12)
    assert tf.drift(w * 0.5, p) > 0
    assert tf.drift(w * 2.0, p) < 0


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=1e-5, max_value=0.05))
def test_property_window_decreases_with_p(p):
    assert tf.pa_window(p) > tf.pa_window(min(p * 2, 0.2))


def test_validation():
    with pytest.raises(ConfigurationError):
        tf.pa_window(0.0)
    with pytest.raises(ConfigurationError):
        tf.pa_window(1.0)
    with pytest.raises(ConfigurationError):
        tf.mahdavi_floyd_bandwidth(0.0, 0.01)
    with pytest.raises(ConfigurationError):
        tf.congestion_probability_for_window(-1)
    with pytest.raises(ConfigurationError):
        tf.drift(0.0, 0.01)


def test_moderate_congestion_limit():
    assert tf.MODERATE_CONGESTION_LIMIT == 0.05
