"""CBR source and packet sink."""

import pytest

from repro.errors import ConfigurationError
from repro.net.apps import CbrSource, PacketSink
from repro.net.packet import DATA
from repro.units import pps_to_bps, ms
from repro.net.network import Network, droptail_factory
from repro.sim.engine import Simulator


def test_cbr_rate(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=50)
    source.start()
    sim.run(until=10.0)
    # 50 pkt/s for ~10 s over a 200 pkt/s link: all delivered
    assert sink.received == pytest.approx(500, abs=2)


def test_cbr_overdrive_is_capped_by_link(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=1000)
    source.start()
    sim.run(until=5.0)
    assert sink.received <= 200 * 5 + 21  # capacity + buffer flush


def test_cbr_stop(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=100)
    source.start()
    sim.schedule(1.0, source.stop)
    sim.run(until=10.0)
    assert sink.received == pytest.approx(100, abs=2)


def test_cbr_set_rate(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()
    sim.schedule(5.0, lambda: source.set_rate(100))
    sim.run(until=10.0)
    assert 50 + 450 <= sink.received <= 50 + 510


def test_cbr_rejects_bad_rate(sim, two_node_net):
    with pytest.raises(ConfigurationError):
        CbrSource(sim, two_node_net.node("A"), "x", "B", rate_pps=0)


def test_sink_records_when_asked(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0", record=True, sim=sim)
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()
    sim.run(until=1.0)
    assert [seq for _t, seq in sink.arrivals] == list(range(sink.received))
    # arrival timestamps are monotone and within the run window
    times = [t for t, _seq in sink.arrivals]
    assert times == sorted(times)
    assert all(0.0 <= t <= 1.0 for t in times)
    assert sink.bytes == sink.received * 1000


def test_sink_record_requires_sim(two_node_net):
    with pytest.raises(ConfigurationError):
        PacketSink(two_node_net.node("B"), "cbr-0", record=True)


def test_cbr_stop_start_reentrancy_single_chain(sim, two_node_net):
    """stop() then start() before the stale emit fires must not double-send.

    Regression: the stale _emit event of the first chain used to revive
    alongside the restart's chain, doubling the send rate.
    """
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()
    # Stop at t=5.05 (between emissions) and restart immediately: the
    # stale event from the first chain is still scheduled for t=5.1.
    sim.schedule(5.05, source.stop)
    sim.schedule(5.06, source.start)
    sim.run(until=10.0)
    # Exactly ~10 pkt/s throughout -- a doubled chain would give ~150.
    assert sink.received == pytest.approx(100, abs=3)


def test_cbr_stop_discards_scheduled_emission(sim, two_node_net):
    """stop() discards the already-scheduled next packet (per docstring)."""
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()  # emissions at t=0, 0.1, 0.2, ...
    sim.schedule(0.25, source.stop)
    sim.run(until=2.0)
    assert sink.received == 3  # t=0, 0.1, 0.2; the t=0.3 event is discarded
