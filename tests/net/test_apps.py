"""CBR source and packet sink."""

import pytest

from repro.errors import ConfigurationError
from repro.net.apps import CbrSource, PacketSink
from repro.net.packet import DATA
from repro.units import pps_to_bps, ms
from repro.net.network import Network, droptail_factory
from repro.sim.engine import Simulator


def test_cbr_rate(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=50)
    source.start()
    sim.run(until=10.0)
    # 50 pkt/s for ~10 s over a 200 pkt/s link: all delivered
    assert sink.received == pytest.approx(500, abs=2)


def test_cbr_overdrive_is_capped_by_link(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=1000)
    source.start()
    sim.run(until=5.0)
    assert sink.received <= 200 * 5 + 21  # capacity + buffer flush


def test_cbr_stop(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=100)
    source.start()
    sim.schedule(1.0, source.stop)
    sim.run(until=10.0)
    assert sink.received == pytest.approx(100, abs=2)


def test_cbr_set_rate(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0")
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()
    sim.schedule(5.0, lambda: source.set_rate(100))
    sim.run(until=10.0)
    assert 50 + 450 <= sink.received <= 50 + 510


def test_cbr_rejects_bad_rate(sim, two_node_net):
    with pytest.raises(ConfigurationError):
        CbrSource(sim, two_node_net.node("A"), "x", "B", rate_pps=0)


def test_sink_records_when_asked(sim, two_node_net):
    net = two_node_net
    sink = PacketSink(net.node("B"), "cbr-0", record=True)
    source = CbrSource(sim, net.node("A"), "cbr-0", "B", rate_pps=10)
    source.start()
    sim.run(until=1.0)
    assert sink.arrivals == list(range(sink.received))
    assert sink.bytes == sink.received * 1000
