"""CoDel gateway: sojourn control law, eviction accounting, determinism."""

import pytest

from repro.net.codel import CoDelQueue
from repro.net.packet import DATA, Packet


def _pkt(seq, ect=False):
    packet = Packet(DATA, "f", "A", "B", seq, 1000)
    packet.ect = ect
    return packet


def _fill(queue, count, now=0.0):
    for seq in range(count):
        queue.enqueue(now, _pkt(seq))


def test_validation():
    with pytest.raises(ValueError):
        CoDelQueue(target=0.0)
    with pytest.raises(ValueError):
        CoDelQueue(interval=-1.0)


def test_short_sojourn_is_plain_fifo():
    queue = CoDelQueue(capacity=20)
    _fill(queue, 5)
    out = [queue.dequeue(0.001 * (k + 1)).seq for k in range(5)]
    assert out == [0, 1, 2, 3, 4]
    assert queue.sojourn_drops == 0
    assert queue.evicted == 0


def test_needs_a_full_interval_above_target_before_dropping():
    queue = CoDelQueue(capacity=20, target=0.005, interval=0.1)
    _fill(queue, 10)
    # Sojourn is already way above target, but the first bad dequeue only
    # starts the interval clock.
    assert queue.dequeue(0.05) is not None
    assert queue.sojourn_drops == 0
    # Still inside the interval window: delivered, not dropped.
    assert queue.dequeue(0.1) is not None
    assert queue.sojourn_drops == 0
    # A whole interval has elapsed above target: the head is evicted and
    # the next packet delivered in its place.
    delivered = queue.dequeue(0.2)
    assert delivered is not None
    assert queue.sojourn_drops == 1
    assert queue.evicted == 1


def test_drop_spacing_follows_inverse_sqrt_count():
    queue = CoDelQueue(capacity=1000, target=0.005, interval=0.1)
    _fill(queue, 900)
    evictions = []
    t = 0.15
    last = 0
    while queue.dequeue(t) is not None and t < 10.0:
        if queue.sojourn_drops > last:
            evictions.append(t)
            last = queue.sojourn_drops
        t += 0.01
    assert len(evictions) >= 4
    gaps = [b - a for a, b in zip(evictions, evictions[1:])]
    # interval / sqrt(count) shrinks: later gaps must not grow
    assert gaps[0] >= gaps[-1]
    assert gaps[-1] < queue.interval


def test_single_queued_packet_is_never_dropped():
    queue = CoDelQueue(capacity=20, target=0.005, interval=0.1)
    queue.enqueue(0.0, _pkt(0))
    # Ancient sojourn, but it is the only packet: always delivered.
    assert queue.dequeue(99.0).seq == 0
    assert queue.sojourn_drops == 0


def test_eviction_accounting_and_hook_reason():
    queue = CoDelQueue(capacity=50, target=0.005, interval=0.1)
    reasons = []
    queue.on_drop(lambda _now, _packet, reason: reasons.append(reason))
    _fill(queue, 40)
    t = 0.15
    delivered = 0
    while queue.dequeue(t) is not None:
        delivered += 1
        t += 0.02
    assert queue.sojourn_drops > 0
    assert set(reasons) == {"sojourn"}
    assert queue.dropped == queue.evicted == queue.sojourn_drops
    # occupancy conservation with dequeue-time discards
    assert queue.enqueued - queue.dequeued - queue.evicted == len(queue) == 0
    assert queue.dequeued == delivered


def test_overflow_still_counts_at_enqueue():
    queue = CoDelQueue(capacity=3)
    _fill(queue, 10)
    assert queue.enqueued == 3
    assert queue.dropped == 7
    assert queue.evicted == 0


def test_ecn_mode_marks_instead_of_evicting():
    queue = CoDelQueue(capacity=50, target=0.005, interval=0.1, mark_ecn=True)
    for seq in range(40):
        queue.enqueue(0.0, _pkt(seq, ect=True))
    t = 0.15
    marked = 0
    while True:
        packet = queue.dequeue(t)
        if packet is None:
            break
        marked += packet.ce
        t += 0.02
    assert queue.ecn_marks == marked > 0
    assert queue.evicted == 0
    assert queue.dequeued == 40  # every packet delivered, some marked


def test_control_law_is_deterministic():
    def run():
        queue = CoDelQueue(capacity=100, target=0.005, interval=0.1)
        trace = []
        for seq in range(80):
            queue.enqueue(seq * 0.001, _pkt(seq))
        t = 0.2
        while True:
            packet = queue.dequeue(t)
            if packet is None:
                break
            trace.append((packet.seq, queue.sojourn_drops, queue._count))
            t += 0.013
        return trace

    assert run() == run()
