"""Drop-tail gateway: FIFO order, capacity enforcement, hooks."""

import pytest

from repro.net.droptail import DropTailQueue
from repro.net.packet import DATA, Packet


def _pkt(seq, flow="f"):
    return Packet(DATA, flow, "A", "B", seq, 1000)


def test_fifo_order():
    queue = DropTailQueue(5)
    for seq in range(3):
        assert queue.enqueue(0.0, _pkt(seq))
    assert [queue.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]


def test_dequeue_empty_returns_none():
    queue = DropTailQueue(5)
    assert queue.dequeue(0.0) is None


def test_drops_when_full():
    queue = DropTailQueue(2)
    assert queue.enqueue(0.0, _pkt(0))
    assert queue.enqueue(0.0, _pkt(1))
    assert not queue.enqueue(0.0, _pkt(2))
    assert queue.dropped == 1
    assert len(queue) == 2


def test_space_frees_after_dequeue():
    queue = DropTailQueue(1)
    queue.enqueue(0.0, _pkt(0))
    assert not queue.enqueue(0.0, _pkt(1))
    queue.dequeue(0.0)
    assert queue.enqueue(0.0, _pkt(2))


def test_byte_accounting():
    queue = DropTailQueue(5)
    queue.enqueue(0.0, _pkt(0))
    queue.enqueue(0.0, _pkt(1))
    assert queue.bytes_queued == 2000
    queue.dequeue(0.0)
    assert queue.bytes_queued == 1000


def test_drop_hook_reports_reason():
    queue = DropTailQueue(1)
    drops = []
    queue.on_drop(lambda now, pkt, reason: drops.append((pkt.seq, reason)))
    queue.enqueue(0.0, _pkt(0))
    queue.enqueue(1.0, _pkt(1))
    assert drops == [(1, "overflow")]


def test_enqueue_hook_sees_depth():
    queue = DropTailQueue(5)
    depths = []
    queue.on_enqueue(lambda now, pkt, depth: depths.append(depth))
    queue.enqueue(0.0, _pkt(0))
    queue.enqueue(0.0, _pkt(1))
    assert depths == [1, 2]


def test_counters():
    queue = DropTailQueue(2)
    for seq in range(4):
        queue.enqueue(0.0, _pkt(seq))
    queue.dequeue(0.0)
    assert queue.enqueued == 2
    assert queue.dropped == 2
    assert queue.dequeued == 1


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(0)
