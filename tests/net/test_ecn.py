"""ECN extension: RED marking and end-to-end sender reactions."""

import random

import pytest

from repro.net.network import Network, red_factory
from repro.net.packet import DATA, Packet
from repro.net.red import REDQueue
from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.units import ms, pps_to_bps


def _pkt(seq, ect=True):
    packet = Packet(DATA, "f", "A", "B", seq, 1000)
    packet.ect = ect
    return packet


def test_red_marks_instead_of_dropping():
    queue = REDQueue(capacity=1000, min_th=5, max_th=15, w_q=1.0, max_p=0.5,
                     rng=random.Random(1), mark_ecn=True)
    marked = 0
    for seq in range(200):
        packet = _pkt(seq)
        queue.enqueue(0.0, packet)
        if packet.ce:
            marked += 1
    assert queue.ecn_marks == marked
    assert marked > 0
    assert queue.early_drops == 0  # every early notification became a mark


def test_red_drops_non_ect_packets():
    queue = REDQueue(capacity=1000, min_th=5, max_th=15, w_q=1.0, max_p=0.5,
                     rng=random.Random(1), mark_ecn=True)
    for seq in range(200):
        queue.enqueue(0.0, _pkt(seq, ect=False))
    assert queue.ecn_marks == 0
    assert queue.early_drops > 0


def test_red_forced_region_still_drops():
    queue = REDQueue(capacity=1000, min_th=2, max_th=4, w_q=1.0,
                     rng=random.Random(1), mark_ecn=True)
    for seq in range(50):
        queue.enqueue(0.0, _pkt(seq))
    assert queue.forced_drops > 0


def _ecn_net(sim, rate_pps=200):
    net = Network(sim)
    factory = red_factory(sim, mark_ecn=True)
    net.add_link("A", "B", pps_to_bps(rate_pps), ms(50), queue_factory=factory)
    net.build_routes()
    return net


def test_tcp_ecn_cuts_without_losses_dominating():
    sim = Simulator(seed=3)
    net = _ecn_net(sim)
    flow = TcpFlow(sim, net, "tcp-0", "A", "B", config=TcpConfig(ecn=True))
    flow.start()
    sim.run(until=10.0)
    flow.mark()
    sim.run(until=90.0)
    report = flow.report()
    sender = flow.sender
    assert sender.ecn_cuts > 0
    # marking replaces most early drops: far fewer retransmissions than
    # cuts, and the link still runs near capacity
    assert report["retransmits"] < sender.ecn_cuts
    assert report["throughput_pps"] == pytest.approx(200, rel=0.15)


def test_tcp_without_ecn_is_unaffected_by_marking_gateway():
    sim = Simulator(seed=3)
    net = _ecn_net(sim)
    flow = TcpFlow(sim, net, "tcp-0", "A", "B", config=TcpConfig(ecn=False))
    flow.start()
    sim.run(until=60.0)
    assert flow.sender.ecn_cuts == 0
    assert flow.sender.retransmits > 0  # congestion shows up as drops


def test_rla_reacts_to_ecn_marks():
    sim = Simulator(seed=4)
    net = Network(sim)
    factory = red_factory(sim, mark_ecn=True)
    net.add_link("S", "G", pps_to_bps(2000), ms(5))
    for i in (1, 2):
        net.add_link("G", f"R{i}", pps_to_bps(200), ms(50),
                     queue_factory=factory)
    net.build_routes()
    session = RLASession(sim, net, "rla-0", "S", ["R1", "R2"],
                         config=RLAConfig(ecn=True))
    session.start()
    sim.run(until=10.0)
    session.mark()
    sim.run(until=90.0)
    report = session.report()
    assert report["congestion_signals"] > 0
    assert report["window_cuts"] > 0
    # with marking, repairs are rare relative to signals
    assert (report["rtx_multicast"] + report["rtx_unicast"]
            < report["congestion_signals"])
    assert report["throughput_pps"] == pytest.approx(200, rel=0.2)
