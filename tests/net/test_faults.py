"""Failure injection: the Bernoulli loss channel and end-to-end recovery."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.droptail import DropTailQueue
from repro.net.faults import RandomDropQueue, random_drop_factory
from repro.net.network import Network, droptail_factory
from repro.net.packet import DATA, Packet
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow
from repro.units import ms, pps_to_bps


def _pkt(seq):
    return Packet(DATA, "f", "A", "B", seq, 1000)


def test_zero_probability_never_drops():
    queue = RandomDropQueue(DropTailQueue(10), 0.0, rng=random.Random(1))
    for seq in range(10):
        assert queue.enqueue(0.0, _pkt(seq))
    assert queue.random_drops == 0


def test_drop_rate_close_to_probability():
    queue = RandomDropQueue(DropTailQueue(10_000), 0.3, rng=random.Random(2))
    offered = 5000
    accepted = sum(1 for seq in range(offered) if queue.enqueue(0.0, _pkt(seq)))
    assert queue.random_drops / offered == pytest.approx(0.3, abs=0.03)
    assert accepted + queue.random_drops == offered


def test_inner_overflow_still_applies():
    queue = RandomDropQueue(DropTailQueue(3), 0.0, rng=random.Random(3))
    for seq in range(10):
        queue.enqueue(0.0, _pkt(seq))
    assert len(queue) == 3
    assert queue.dropped == 7  # all overflow, no random


def test_dequeue_delegates():
    queue = RandomDropQueue(DropTailQueue(10), 0.0, rng=random.Random(4))
    queue.enqueue(0.0, _pkt(7))
    assert queue.dequeue(0.0).seq == 7
    assert queue.dequeue(0.0) is None


def test_observer_hooks_reach_inner_storage():
    # Storage lives in the inner gateway; enqueue/dequeue observers must
    # fire there or auditors watching the wrapper see nothing.
    queue = RandomDropQueue(DropTailQueue(10), 0.0, rng=random.Random(5))
    seen = {"enq": [], "deq": []}
    queue.on_enqueue(lambda _now, packet, _depth: seen["enq"].append(packet.seq))
    queue.on_dequeue(lambda _now, packet: seen["deq"].append(packet.seq))
    queue.enqueue(0.0, _pkt(1))
    queue.enqueue(0.0, _pkt(2))
    assert [p.seq for p in queue.contents()] == [1, 2]
    queue.dequeue(0.0)
    assert seen == {"enq": [1, 2], "deq": [1]}


def test_random_drop_fires_drop_hook_once():
    queue = RandomDropQueue(DropTailQueue(10), 0.999, rng=random.Random(6))
    reasons = []
    queue.on_drop(lambda _now, _packet, reason: reasons.append(reason))
    queue.enqueue(0.0, _pkt(0))
    assert reasons == ["random"]
    assert queue.dropped == 1


def test_validation():
    with pytest.raises(ConfigurationError):
        RandomDropQueue(DropTailQueue(10), 1.0, rng=random.Random(1))
    with pytest.raises(ConfigurationError):
        RandomDropQueue(DropTailQueue(10), -0.1, rng=random.Random(1))


def test_missing_rng_is_rejected():
    # Regression: the loss channel used to default to a private
    # random.Random(0), silently decoupled from the engine's named
    # streams — identical seeds then produced different drop patterns
    # than the documented stream derivation, and snapshot/restore could
    # not capture the hidden state.  Injection is now mandatory,
    # mirroring REDQueue.
    with pytest.raises(ConfigurationError, match="rng"):
        RandomDropQueue(DropTailQueue(10), 0.1)
    with pytest.raises(ConfigurationError, match="sim"):
        random_drop_factory(droptail_factory(20), 0.1)("A->B")


def test_inner_red_causes_survive_the_wrapper():
    """Regression: inner drops must keep their own cause labels.

    The old wrapper re-reported every inner rejection through its own
    ``_notify_drop(..., "overflow")``: a RED forced or early drop inside
    the channel reached observers (and the audit ledger) mislabelled as
    physical overflow, and fired hooks registered on both layers twice.
    """
    from repro.net.red import REDQueue

    inner = REDQueue(capacity=100, min_th=2, max_th=4, w_q=1.0,
                     rng=random.Random(1))
    queue = RandomDropQueue(inner, 0.0, rng=random.Random(2))
    reasons = []
    queue.on_drop(lambda _now, _packet, reason: reasons.append(reason))
    for seq in range(30):
        queue.enqueue(0.0, _pkt(seq))
    assert inner.forced_drops > 0
    assert "forced" in reasons
    assert "overflow" not in reasons  # buffer never physically filled
    # exactly one hook fire per drop, with the inner cause
    assert len(reasons) == queue.dropped == inner.dropped
    assert reasons.count("forced") == inner.forced_drops
    assert reasons.count("early") == inner.early_drops


def test_wrapper_dropped_is_not_double_counted():
    """Regression: ``dropped`` must be random + inner, counted once each."""
    from repro.net.red import REDQueue

    inner = REDQueue(capacity=8, min_th=2, max_th=4, w_q=1.0,
                     rng=random.Random(3))
    queue = RandomDropQueue(inner, 0.25, rng=random.Random(4))
    offered = 400
    accepted = 0
    for seq in range(offered):
        if queue.enqueue(0.0, _pkt(seq)):
            accepted += 1
        if seq % 2 == 0:
            queue.dequeue(0.0)
    assert queue.random_drops > 0 and inner.dropped > 0
    assert queue.dropped == queue.random_drops + inner.dropped
    assert accepted + queue.dropped == offered
    assert inner.dropped == (inner.early_drops + inner.forced_drops
                             + inner.overflow_drops)


def test_per_cause_counts_match_the_auditors_ledger():
    """End-to-end attribution: queue counters == conservation ledger.

    A TCP flow pushes through a Bernoulli channel wrapped around a RED
    gateway under the ConservationAuditor; every cause counter on the
    wrapper stack must add up to exactly the drops the ledger recorded —
    no masking, no double counting.
    """
    from repro.audit import ConservationAuditor
    from repro.net.network import red_factory

    sim = Simulator(seed=9)
    net = Network(sim)
    factory = random_drop_factory(
        red_factory(sim, capacity=10, min_th=2, max_th=6, w_q=0.2),
        0.05, sim=sim)
    net.add_link("A", "B", pps_to_bps(200), ms(10), queue_factory=factory)
    net.build_routes()
    auditor = ConservationAuditor(sim)
    auditor.attach(net)
    try:
        flow = TcpFlow(sim, net, "tcp-0", "A", "B", limit=300)
        flow.start()
        sim.run(until=60.0)
        auditor.verify()
    finally:
        auditor.detach()
    queue = net.links[("A", "B")].gateway
    inner = queue.inner
    ledger = auditor.link_summary()["A->B"]
    assert ledger["dropped"] > 0
    assert ledger["dropped"] == queue.dropped
    assert queue.dropped == queue.random_drops + inner.dropped
    assert inner.dropped == (inner.early_drops + inner.forced_drops
                             + inner.overflow_drops)


def _lossy_net(sim, drop_prob):
    net = Network(sim)
    factory = random_drop_factory(droptail_factory(20), drop_prob, sim=sim)
    net.add_link("A", "B", pps_to_bps(400), ms(20), queue_factory=factory)
    net.build_routes()
    return net


def test_tcp_transfer_completes_under_random_loss():
    sim = Simulator(seed=5)
    net = _lossy_net(sim, 0.05)
    flow = TcpFlow(sim, net, "tcp-0", "A", "B", limit=500)
    flow.start()
    sim.run(until=120.0)
    assert flow.sender.finished
    assert flow.receiver.tracker.rcv_nxt == 500
    assert flow.sender.retransmits > 0


def test_rla_stays_reliable_under_random_loss():
    sim = Simulator(seed=6)
    net = Network(sim)
    factory = random_drop_factory(droptail_factory(20), 0.05, sim=sim)
    net.add_link("S", "G", pps_to_bps(2000), ms(5),
                 queue_factory=droptail_factory(100))
    for i in (1, 2, 3):
        net.add_link("G", f"R{i}", pps_to_bps(300), ms(40),
                     queue_factory=factory)
    net.build_routes()
    session = RLASession(sim, net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=60.0)
    sender = session.sender
    assert sender.max_reach_all > 500
    # reliability: every receiver holds the full prefix
    for receiver in session.receivers.values():
        assert receiver.tracker.rcv_nxt >= sender.max_reach_all * 0.95
    # the repair machinery did real work
    assert sender.rtx_multicast + sender.rtx_unicast > 0
