"""Dynamic multicast group membership on the Network layer."""

import pytest

from repro.errors import TopologyError
from repro.net.network import Network, droptail_factory
from repro.net.packet import DATA, Packet
from repro.units import ms, pps_to_bps


@pytest.fixture
def diamond(sim):
    """S - G - {C, D}: one replication point, two leaves."""
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", pps_to_bps(1000), ms(5))
    net.add_link("G", "C", pps_to_bps(1000), ms(5))
    net.add_link("G", "D", pps_to_bps(1000), ms(5))
    net.build_routes()
    return net


def _deliveries(sim, net, members):
    got = {m: [] for m in members}
    for m in members:
        net.node(m).bind("m", lambda pkt, m=m: got[m].append(pkt.seq))
    net.node("S").send(Packet(DATA, "m", "S", "group:g", 0, 100))
    sim.run()
    return got


def test_rejoin_with_smaller_member_set_prunes_stale_branch(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C", "D"])
    net.join_group("group:g", "S", ["C"])  # D left between the two joins
    got = _deliveries(sim, net, ["C", "D"])
    assert got["C"] == [0]
    assert got["D"] == []  # the stale G->D branch must be gone
    assert "group:g" not in net.node("D").memberships


def test_exact_repeat_join_is_idempotent(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C", "D"])
    routes_before = {n: list(net.node(n).mcast_routes.get("group:g", []))
                     for n in net.nodes}
    net.join_group("group:g", "S", ["C", "D"])
    routes_after = {n: list(net.node(n).mcast_routes.get("group:g", []))
                    for n in net.nodes}
    assert routes_before == routes_after
    got = _deliveries(sim, net, ["C", "D"])
    assert got["C"] == [0] and got["D"] == [0]  # exactly once each


def test_join_dedupes_repeated_members(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C", "C", "C"])
    assert net.group_members("group:g") == ["C"]
    got = _deliveries(sim, net, ["C"])
    assert got["C"] == [0]


def test_add_member_grafts_new_leaf(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C"])
    net.add_member("group:g", "D")
    assert net.group_members("group:g") == ["C", "D"]
    got = _deliveries(sim, net, ["C", "D"])
    assert got["C"] == [0] and got["D"] == [0]


def test_add_member_is_idempotent(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C"])
    net.add_member("group:g", "C")
    assert net.group_members("group:g") == ["C"]


def test_leave_group_prunes_branch(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C", "D"])
    net.leave_group("group:g", "D")
    assert net.group_members("group:g") == ["C"]
    got = _deliveries(sim, net, ["C", "D"])
    assert got["C"] == [0]
    assert got["D"] == []
    assert "group:g" not in net.node("D").mcast_routes


def test_leave_group_nonmember_is_noop(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C"])
    net.leave_group("group:g", "D")
    assert net.group_members("group:g") == ["C"]


def test_leave_last_member_empties_tree(sim, diamond):
    net = diamond
    net.join_group("group:g", "S", ["C"])
    net.leave_group("group:g", "C")
    assert net.group_members("group:g") == []
    # no node keeps a forwarding entry for the empty group
    assert all("group:g" not in net.node(n).mcast_routes for n in net.nodes)


def test_add_member_unknown_group_or_node_raises(sim, diamond):
    net = diamond
    with pytest.raises(TopologyError):
        net.add_member("group:nope", "C")
    net.join_group("group:g", "S", ["C"])
    with pytest.raises(TopologyError):
        net.add_member("group:g", "Z")


def test_group_members_unknown_group_raises(sim, diamond):
    with pytest.raises(TopologyError):
        diamond.group_members("group:nope")
