"""Link timing: serialization, propagation, queue interaction."""

import pytest

from repro.errors import ConfigurationError
from repro.net.droptail import DropTailQueue
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator
from repro.units import pps_to_bps


class _Catcher(Node):
    """Node that records packet arrival times."""

    def __init__(self, node_id, sim):
        super().__init__(node_id)
        self.sim = sim
        self.times = []

    def receive(self, packet):
        self.times.append((self.sim.now, packet.seq))


def _link(sim, rate_pps=200, delay=0.1, capacity=20):
    src = Node("A")
    dst = _Catcher("B", sim)
    link = Link(sim, "A->B", src, dst, pps_to_bps(rate_pps), delay,
                DropTailQueue(capacity))
    return link, dst


def test_single_packet_timing():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.1)
    link.send(Packet(DATA, "f", "A", "B", 0, 1000))
    sim.run()
    # 5 ms serialization + 100 ms propagation
    assert dst.times == [(pytest.approx(0.105), 0)]


def test_back_to_back_packets_are_serialized():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.0)
    for seq in range(3):
        link.send(Packet(DATA, "f", "A", "B", seq, 1000))
    sim.run()
    times = [t for t, _ in dst.times]
    assert times == pytest.approx([0.005, 0.010, 0.015])


def test_throughput_never_exceeds_capacity():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.0, capacity=1000)
    for seq in range(500):
        link.send(Packet(DATA, "f", "A", "B", seq, 1000))
    sim.run(until=1.0)
    assert len(dst.times) <= 200 + 1


def test_drops_when_queue_overflows():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.0, capacity=5)
    for seq in range(20):
        link.send(Packet(DATA, "f", "A", "B", seq, 1000))
    sim.run()
    # 1 in service + 5 queued survive the burst
    assert len(dst.times) == 6
    assert link.gateway.dropped == 14


def test_small_packets_serialize_faster():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.0)
    link.send(Packet(DATA, "f", "A", "B", 0, 40))  # an ACK
    sim.run()
    assert dst.times[0][0] == pytest.approx(0.005 * 40 / 1000)


def test_utilization():
    sim = Simulator()
    link, dst = _link(sim, rate_pps=200, delay=0.0, capacity=1000)
    for seq in range(100):
        link.send(Packet(DATA, "f", "A", "B", seq, 1000))
    sim.run(until=1.0)
    assert link.utilization(1.0) == pytest.approx(0.5, rel=0.05)


def test_utilization_counts_packet_in_service():
    # Regression: bytes_sent is credited at serialization *end*, so a read
    # mid-transmission used to undercount — a fully busy wire measured
    # over a short window reported 0 instead of 1.
    sim = Simulator()
    link, _dst = _link(sim, rate_pps=200, delay=0.0)
    link.send(Packet(DATA, "f", "A", "B", 0, 1000))  # 5 ms serialization
    readings = []
    sim.schedule(0.0025, lambda: readings.append(link.utilization(0.0025)))
    sim.run()
    assert link.busy is False  # transmission completed by the end
    assert readings == [pytest.approx(1.0)]


def test_utilization_in_service_credit_is_capped():
    # The in-service credit must never exceed the packet's own size nor
    # push utilization above 1.0 (e.g. right at serialization boundaries).
    sim = Simulator()
    link, _dst = _link(sim, rate_pps=200, delay=0.0)
    for seq in range(3):
        link.send(Packet(DATA, "f", "A", "B", seq, 1000))
    readings = []
    sim.schedule(0.012, lambda: readings.append(link.utilization(0.012)))
    sim.run()
    assert readings == [pytest.approx(1.0)]
    assert link.utilization(0.015) == pytest.approx(1.0)


def test_mean_pkt_time_installed_on_gateway():
    sim = Simulator()
    link, _ = _link(sim, rate_pps=200)
    assert link.gateway.mean_pkt_time == pytest.approx(0.005)


def test_mean_pkt_time_follows_configured_packet_size():
    """Regression: attach used to hardcode DEFAULT_PACKET_SIZE.

    A link provisioned for 500-byte packets told its gateway the service
    time of 1000-byte ones, so RED idle aging (and PIE's delay estimate)
    ran at half speed on any non-default-MTU link.
    """
    sim = Simulator()
    link = Link(sim, "A->B", Node("A"), _Catcher("B", sim),
                pps_to_bps(200), 0.1, DropTailQueue(20),
                mean_packet_size=500)
    # 200 pps is sized for 1000-byte packets; 500-byte ones take half.
    assert link.gateway.mean_pkt_time == pytest.approx(0.0025)
    assert link.mean_packet_size == 500


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Link(sim, "bad", Node("A"), Node("B"), 0.0, 0.1, DropTailQueue(5))
    with pytest.raises(ConfigurationError):
        Link(sim, "bad", Node("A"), Node("B"), 1e6, -1.0, DropTailQueue(5))
    with pytest.raises(ConfigurationError):
        Link(sim, "bad", Node("A"), Node("B"), 1e6, 0.1, DropTailQueue(5),
             mean_packet_size=0)
