"""Queue monitors: drop accounting and occupancy statistics."""

import pytest

from repro.net.droptail import DropTailQueue
from repro.net.monitor import QueueMonitor
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator


def _pkt(seq, flow="f"):
    return Packet(DATA, flow, "A", "B", seq, 1000)


def test_counts_drops_per_flow():
    sim = Simulator()
    queue = DropTailQueue(2)
    monitor = QueueMonitor(sim, queue)
    queue.enqueue(0.0, _pkt(0, "a"))
    queue.enqueue(0.0, _pkt(1, "b"))
    queue.enqueue(0.0, _pkt(2, "a"))  # dropped
    assert monitor.drops_by_flow["a"] == 1
    assert monitor.total_drops == 1


def test_drop_log_optional():
    sim = Simulator()
    queue = DropTailQueue(1)
    monitor = QueueMonitor(sim, queue, log_drops=True)
    queue.enqueue(0.0, _pkt(0))
    queue.enqueue(0.0, _pkt(1))
    assert monitor.drop_log == [(0.0, "f", 1, "overflow")]


def test_loss_rate():
    sim = Simulator()
    queue = DropTailQueue(2)
    monitor = QueueMonitor(sim, queue)
    for seq in range(4):
        queue.enqueue(0.0, _pkt(seq))
    assert monitor.loss_rate() == pytest.approx(0.5)
    assert monitor.loss_rate("f") == pytest.approx(0.5)
    assert monitor.loss_rate("other") == 0.0


def test_mean_depth_time_weighted():
    sim = Simulator()
    queue = DropTailQueue(10)
    monitor = QueueMonitor(sim, queue)
    queue.enqueue(0.0, _pkt(0))  # depth 1 from t=0
    sim.schedule(10.0, lambda: queue.enqueue(sim.now, _pkt(1)))
    sim.run()
    monitor.finish()
    # depth was 1 for 10 s then 2 for 0 s
    assert monitor.mean_depth() == pytest.approx(1.0, rel=0.01)
    assert monitor.max_depth == 2


def test_stats_are_fresh_without_finish():
    # Regression: mean_depth()/max_depth used to return whatever the last
    # *observation* left behind, so reading them without an explicit
    # finish() reported stale values (here: 1.0 instead of 0.5).
    sim = Simulator()
    queue = DropTailQueue(10)
    monitor = QueueMonitor(sim, queue)
    queue.enqueue(0.0, _pkt(0))                          # depth 1 at t=0
    sim.schedule(5.0, lambda: queue.dequeue(sim.now))    # depth 0 at t=5
    sim.schedule(10.0, lambda: None)                     # idle until t=10
    sim.run()
    assert monitor.mean_depth() == pytest.approx(0.5)    # (1*5 + 0*5) / 10
    assert monitor.max_depth == 1


def test_dequeues_are_observed():
    # The monitor must fold depth *decreases* into the time-weighted mean,
    # not just enqueues and drops.
    sim = Simulator()
    queue = DropTailQueue(10)
    monitor = QueueMonitor(sim, queue)
    queue.enqueue(0.0, _pkt(0))
    queue.enqueue(0.0, _pkt(1))                          # depth 2 at t=0
    sim.schedule(2.0, lambda: queue.dequeue(sim.now))    # depth 1 at t=2
    sim.schedule(4.0, lambda: queue.dequeue(sim.now))    # depth 0 at t=4
    sim.schedule(8.0, lambda: None)
    sim.run()
    # (2*2 + 1*2 + 0*4) / 8
    assert monitor.mean_depth() == pytest.approx(0.75)


def test_depth_samples_opt_in():
    sim = Simulator()
    queue = DropTailQueue(10)
    monitor = QueueMonitor(sim, queue, sample_depth=True)
    queue.enqueue(0.0, _pkt(0))
    sim.schedule(1.0, lambda: queue.enqueue(sim.now, _pkt(1)))
    sim.schedule(2.0, lambda: queue.dequeue(sim.now))
    sim.run()
    monitor.finish()
    assert monitor.depth_samples == [(0.0, 1), (1.0, 2), (2.0, 1)]


def test_depth_samples_off_by_default():
    sim = Simulator()
    queue = DropTailQueue(10)
    monitor = QueueMonitor(sim, queue)
    queue.enqueue(0.0, _pkt(0))
    assert monitor.depth_samples == []
