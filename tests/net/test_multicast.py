"""Multicast tree construction."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.net.multicast import shortest_path_tree, tree_edges


def _graph():
    graph = nx.Graph()
    graph.add_edge("S", "G1", delay=1.0)
    graph.add_edge("G1", "G2", delay=1.0)
    graph.add_edge("G1", "G3", delay=1.0)
    graph.add_edge("G2", "R1", delay=1.0)
    graph.add_edge("G2", "R2", delay=1.0)
    graph.add_edge("G3", "R3", delay=1.0)
    return graph


def test_tree_covers_all_members():
    children = shortest_path_tree(_graph(), "S", ["R1", "R2", "R3"])
    edges = set(tree_edges(children))
    assert ("S", "G1") in edges
    assert ("G2", "R1") in edges and ("G2", "R2") in edges
    assert ("G3", "R3") in edges
    # shared trunk appears once
    assert len([e for e in edges if e == ("S", "G1")]) == 1


def test_member_equal_to_source_is_skipped():
    children = shortest_path_tree(_graph(), "S", ["S", "R1"])
    assert ("S", "G1") in tree_edges(children)


def test_interior_member_included():
    children = shortest_path_tree(_graph(), "S", ["G2", "R1"])
    edges = set(tree_edges(children))
    assert ("G1", "G2") in edges and ("G2", "R1") in edges


def test_empty_members_rejected():
    with pytest.raises(TopologyError):
        shortest_path_tree(_graph(), "S", [])


def test_unreachable_member_rejected():
    graph = _graph()
    graph.add_node("island")
    with pytest.raises(TopologyError):
        shortest_path_tree(graph, "S", ["island"])


def test_weights_respected():
    graph = nx.Graph()
    graph.add_edge("S", "A", delay=1.0)
    graph.add_edge("A", "R", delay=1.0)
    graph.add_edge("S", "R", delay=10.0)
    children = shortest_path_tree(graph, "S", ["R"])
    assert children == {"S": ["A"], "A": ["R"]}
