"""Network builder: links, routing, path utilities."""

import pytest

from repro.errors import TopologyError
from repro.net.network import Network, droptail_factory, red_factory
from repro.net.red import REDQueue
from repro.sim.engine import Simulator
from repro.units import mbps, ms


def test_add_node_idempotent(sim):
    net = Network(sim)
    a = net.add_node("A")
    assert net.add_node("A") is a


def test_unknown_node_raises(sim):
    net = Network(sim)
    with pytest.raises(TopologyError):
        net.node("missing")


def test_bidirectional_links_by_default(sim):
    net = Network(sim)
    forward, reverse = net.add_link("A", "B", mbps(1), ms(1))
    assert net.link("A", "B") is forward
    assert net.link("B", "A") is reverse


def test_unidirectional_link(sim):
    net = Network(sim)
    _, reverse = net.add_link("A", "B", mbps(1), ms(1), bidirectional=False)
    assert reverse is None
    with pytest.raises(TopologyError):
        net.link("B", "A")


def test_duplicate_link_rejected(sim):
    net = Network(sim)
    net.add_link("A", "B", mbps(1), ms(1))
    with pytest.raises(TopologyError):
        net.add_link("A", "B", mbps(1), ms(1))


def test_routes_follow_shortest_delay(sim):
    net = Network(sim)
    net.add_link("A", "B", mbps(1), ms(1))
    net.add_link("B", "C", mbps(1), ms(1))
    net.add_link("A", "C", mbps(1), ms(10))  # direct but slower
    net.build_routes()
    assert net.path("A", "C") == ["A", "B", "C"]
    assert net.node("A").routes["C"].dst.id == "B"


def test_path_delay(sim):
    net = Network(sim)
    net.add_link("A", "B", mbps(1), ms(2))
    net.add_link("B", "C", mbps(1), ms(3))
    net.build_routes()
    assert net.path_delay("A", "C") == pytest.approx(ms(5))


def test_red_factory_produces_seeded_queues(sim):
    factory = red_factory(sim, capacity=20)
    queue_ab = factory("A->B")
    queue_ba = factory("B->A")
    assert isinstance(queue_ab, REDQueue)
    # different directions get independent RNG streams
    assert queue_ab.rng is not queue_ba.rng


def test_join_group_unreachable_member(sim):
    net = Network(sim)
    net.add_link("A", "B", mbps(1), ms(1))
    net.add_node("Z")
    net.build_routes()
    with pytest.raises(TopologyError):
        net.join_group("group:g", "A", ["Z"])


def test_droptail_factory_capacity():
    factory = droptail_factory(7)
    assert factory("x").capacity == 7
