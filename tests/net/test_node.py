"""Node forwarding: unicast routes, multicast replication, agent delivery."""

import pytest

from repro.errors import RoutingError
from repro.net.network import Network, droptail_factory
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator
from repro.units import mbps, ms


def _net(sim):
    net = Network(sim, default_queue=droptail_factory(50))
    net.add_link("A", "B", mbps(10), ms(1))
    net.add_link("B", "C", mbps(10), ms(1))
    net.add_link("B", "D", mbps(10), ms(1))
    net.build_routes()
    return net


def test_unicast_forwarding_via_route(sim):
    net = _net(sim)
    got = []
    net.node("C").bind("f", lambda pkt: got.append(pkt.seq))
    net.node("A").send(Packet(DATA, "f", "A", "C", 1, 100))
    sim.run()
    assert got == [1]


def test_no_route_raises(sim):
    net = _net(sim)
    with pytest.raises(RoutingError):
        net.node("A").receive(Packet(DATA, "f", "A", "Z", 0, 100))


def test_unbound_flow_is_sunk_silently(sim):
    net = _net(sim)
    net.node("A").send(Packet(DATA, "nobody", "A", "C", 0, 100))
    sim.run()  # no exception
    assert net.node("C").packets_received == 1


def test_double_bind_rejected(sim):
    net = _net(sim)
    net.node("C").bind("f", lambda pkt: None)
    with pytest.raises(RoutingError):
        net.node("C").bind("f", lambda pkt: None)


def test_unbind_allows_rebind(sim):
    net = _net(sim)
    net.node("C").bind("f", lambda pkt: None)
    net.node("C").unbind("f")
    net.node("C").bind("f", lambda pkt: None)


def test_multicast_replication(sim):
    net = _net(sim)
    net.join_group("group:g", "A", ["C", "D"])
    got = {"C": [], "D": []}
    net.node("C").bind("m", lambda pkt: got["C"].append(pkt.uid))
    net.node("D").bind("m", lambda pkt: got["D"].append(pkt.uid))
    net.node("A").send(Packet(DATA, "m", "A", "group:g", 0, 100))
    sim.run()
    assert len(got["C"]) == 1 and len(got["D"]) == 1
    # replication produced distinct packet instances
    assert got["C"][0] != got["D"][0]


def test_multicast_delivers_to_interior_member(sim):
    net = _net(sim)
    net.join_group("group:g", "A", ["B", "C"])
    got = []
    net.node("B").bind("m", lambda pkt: got.append("B"))
    net.node("C").bind("m", lambda pkt: got.append("C"))
    net.node("A").send(Packet(DATA, "m", "A", "group:g", 0, 100))
    sim.run()
    assert sorted(got) == ["B", "C"]


def test_multicast_no_duplicate_branch_entries(sim):
    net = _net(sim)
    net.join_group("group:g", "A", ["C"])
    net.join_group("group:g", "A", ["C"])  # joining twice must not duplicate
    got = []
    net.node("C").bind("m", lambda pkt: got.append(pkt.seq))
    net.node("A").send(Packet(DATA, "m", "A", "group:g", 0, 100))
    sim.run()
    assert got == [0]


def test_hop_count_increments(sim):
    net = _net(sim)
    seen = []
    net.node("C").bind("f", lambda pkt: seen.append(pkt.hops))
    net.node("A").send(Packet(DATA, "f", "A", "C", 0, 100))
    sim.run()
    # A (origin counts as a hop), B, C
    assert seen == [3]
