"""Packet objects and addressing helpers."""

from repro.net.addressing import flow_id, group_address, is_multicast
from repro.net.packet import ACK, DATA, Packet


def test_uids_are_unique():
    a = Packet(DATA, "f", "A", "B", 0, 1000)
    b = Packet(DATA, "f", "A", "B", 0, 1000)
    assert a.uid != b.uid


def test_copy_preserves_fields_but_not_uid():
    original = Packet(DATA, "f", "A", "group:g", 7, 1000,
                      sent_time=1.5, is_retransmit=True)
    original.hops = 3
    clone = original.copy()
    assert clone.uid != original.uid
    assert clone.seq == 7
    assert clone.dst == "group:g"
    assert clone.sent_time == 1.5
    assert clone.is_retransmit
    assert clone.hops == 3


def test_ack_fields():
    ack = Packet(ACK, "f", "B", "A", 7, 40, ack=8, sack=((10, 12),),
                 receiver="B", echo_ts=2.0)
    assert ack.ack == 8
    assert ack.sack == ((10, 12),)
    assert ack.receiver == "B"
    assert "ack=8" in repr(ack)


def test_group_address_idempotent():
    assert group_address("rla-0") == "group:rla-0"
    assert group_address("group:rla-0") == "group:rla-0"


def test_is_multicast():
    assert is_multicast("group:x")
    assert not is_multicast("R1")


def test_flow_id():
    assert flow_id("tcp", 3) == "tcp-3"
    assert flow_id("rla", "a.b") == "rla-a.b"
