"""PIE gateway: controller bounds, burst guard, idle decay, determinism."""

import random

import pytest

from repro.net.packet import DATA, Packet
from repro.net.pie import PIEQueue


def _pkt(seq, ect=False):
    packet = Packet(DATA, "f", "A", "B", seq, 1000)
    packet.ect = ect
    return packet


def _queue(**kwargs):
    kwargs.setdefault("rng", random.Random(1))
    queue = PIEQueue(**kwargs)
    queue.mean_pkt_time = 0.01  # 10 ms per packet service
    return queue


def test_rng_injection_is_required():
    with pytest.raises(ValueError, match="rng"):
        PIEQueue(capacity=20)


def test_validation():
    with pytest.raises(ValueError):
        _queue(target=0.0)
    with pytest.raises(ValueError):
        _queue(t_update=-1.0)


def test_probability_stays_in_unit_interval():
    queue = _queue(capacity=1000, target=0.015, t_update=0.015)
    t = 0.0
    for seq in range(2000):
        t += 0.001
        queue.enqueue(t, _pkt(seq))
        assert 0.0 <= queue.p <= 1.0
        if seq % 5 == 0:
            queue.dequeue(t)
    assert queue.updates > 0
    # a standing queue far above target must have driven p upward
    assert queue.p > 0.0
    assert queue.early_drops > 0


def test_lazy_update_catches_up_on_every_boundary():
    queue = _queue(target=0.015, t_update=0.015)
    queue.enqueue(1.0, _pkt(0))  # 66 boundaries elapsed since t=0
    assert queue.updates == 66


def test_burst_guard_skips_coin_when_nearly_empty():
    queue = _queue(capacity=100, target=0.015, t_update=0.015)
    queue.p = 0.9999  # even a huge p must not drop at depth <= 1
    assert queue.enqueue(0.0, _pkt(0))
    assert queue.enqueue(0.0, _pkt(1))
    assert queue.early_drops == 0


def test_small_p_low_delay_guard():
    queue = _queue(capacity=100, target=0.5, t_update=1000.0)
    for seq in range(5):  # qdelay 0.05 < target/2; p below 0.2
        queue.p = 0.19
        assert queue.enqueue(0.0, _pkt(seq))
    assert queue.early_drops == 0


def test_idle_queue_decays_probability():
    queue = _queue(target=0.015, t_update=0.015)
    queue.p = 0.5
    queue._qdelay_old = 0.0
    queue.enqueue(10.0, _pkt(0))  # hundreds of idle updates elapse
    assert queue.p < 0.01


def test_ecn_mode_marks_instead_of_dropping():
    queue = _queue(capacity=1000, target=0.001, t_update=0.005,
                   mark_ecn=True)
    t = 0.0
    marked = 0
    for seq in range(2000):
        t += 0.001
        packet = _pkt(seq, ect=True)
        queue.enqueue(t, packet)
        marked += packet.ce
        if seq % 5 == 0:
            queue.dequeue(t)
    assert queue.ecn_marks == marked > 0
    assert queue.early_drops == 0


def test_drop_cause_is_early():
    queue = _queue(capacity=1000, target=0.001, t_update=0.005)
    reasons = []
    queue.on_drop(lambda _now, _packet, reason: reasons.append(reason))
    t = 0.0
    for seq in range(2000):
        t += 0.001
        queue.enqueue(t, _pkt(seq))
        if seq % 5 == 0:
            queue.dequeue(t)
    assert queue.early_drops > 0
    assert set(reasons) == {"early"}
    assert queue.dropped == len(reasons)
    assert queue.evicted == 0


def test_same_seed_same_drop_sequence():
    def pattern(seed):
        queue = PIEQueue(capacity=50, target=0.005, t_update=0.01,
                         rng=random.Random(seed))
        queue.mean_pkt_time = 0.01
        out = []
        t = 0.0
        for seq in range(800):
            t += 0.002
            out.append(queue.enqueue(t, _pkt(seq)))
            if seq % 4 == 0:
                queue.dequeue(t)
        return (out, queue.p, queue.updates)

    assert pattern(3) == pattern(3)
    assert pattern(3) != pattern(4)
