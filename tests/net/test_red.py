"""RED gateway: threshold behaviour, average tracking, drop accounting."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import DATA, Packet
from repro.net.red import REDQueue


def _pkt(seq):
    return Packet(DATA, "f", "A", "B", seq, 1000)


def _fill(queue, count, now=0.0):
    accepted = 0
    for seq in range(count):
        if queue.enqueue(now, _pkt(seq)):
            accepted += 1
    return accepted


def test_no_drops_below_min_threshold():
    queue = REDQueue(capacity=20, min_th=5, max_th=15, rng=random.Random(1))
    # With w_q = 0.002 the average stays near zero for a short burst of 4.
    assert _fill(queue, 4) == 4
    assert queue.dropped == 0


def test_forced_drops_when_average_beyond_max():
    queue = REDQueue(capacity=100, min_th=2, max_th=4, w_q=1.0,
                     rng=random.Random(1))
    # w_q = 1 makes the average track the instantaneous queue exactly.
    _fill(queue, 30)
    assert queue.forced_drops > 0
    # once avg >= max_th every arrival is dropped
    depth = len(queue)
    assert not queue.enqueue(0.0, _pkt(99))
    assert len(queue) == depth


def test_overflow_drops_when_buffer_full():
    queue = REDQueue(capacity=5, min_th=100, max_th=200, rng=random.Random(1))
    # thresholds high: only physical overflow can drop
    _fill(queue, 10)
    assert queue.overflow_drops == 5
    assert queue.early_drops == 0


def test_early_drop_probability_increases_with_average():
    rng = random.Random(7)
    queue = REDQueue(capacity=1000, min_th=5, max_th=15, w_q=1.0, max_p=0.1,
                     rng=rng)
    _fill(queue, 400)
    assert queue.early_drops > 0


def test_average_ages_during_idle():
    queue = REDQueue(capacity=20, min_th=5, max_th=15, w_q=1.0,
                     rng=random.Random(1))
    queue.mean_pkt_time = 0.005
    _fill(queue, 10)
    while queue.dequeue(1.0) is not None:
        pass
    avg_before = queue.avg
    queue.enqueue(10.0, _pkt(50))  # 9 seconds idle -> 1800 packet times
    assert queue.avg < avg_before * 0.01


def test_count_resets_below_min():
    queue = REDQueue(capacity=20, min_th=5, max_th=15, w_q=1.0,
                     rng=random.Random(1))
    _fill(queue, 3)
    assert queue.count == -1


def test_parameter_validation():
    with pytest.raises(ValueError):
        REDQueue(min_th=10, max_th=5, rng=random.Random(1))
    with pytest.raises(ValueError):
        REDQueue(w_q=0.0, rng=random.Random(1))
    with pytest.raises(ValueError):
        REDQueue(max_p=1.5, rng=random.Random(1))


def test_rng_injection_is_required():
    # Regression: the old default rng=random.Random(0) silently bypassed
    # the simulator's seeded streams, so directly constructed RED
    # gateways broke same-seed replay.
    with pytest.raises(ValueError, match="rng"):
        REDQueue(capacity=20)


def test_same_stream_seed_same_drop_sequence():
    def drop_pattern(seed):
        queue = REDQueue(capacity=20, min_th=2, max_th=8, w_q=1.0,
                         max_p=0.5, rng=random.Random(seed))
        pattern = []
        for seq in range(200):
            pattern.append(queue.enqueue(0.0, _pkt(seq)))
            if seq % 3 == 0:
                queue.dequeue(0.0)
        return pattern

    assert drop_pattern(11) == drop_pattern(11)
    assert drop_pattern(11) != drop_pattern(12)


def test_red_network_same_seed_replays_identically():
    # End-to-end: a RED-gatewayed run is fully pinned by the master seed
    # (all drop draws flow through sim.rng streams via red_factory).
    from repro.experiments.sweeps import run_symmetric_spec

    params = dict(n_receivers=2, share_pps=100.0, buffer_pkts=20,
                  duration=6.0, warmup=3.0, seed=5, gateway="red")
    first = run_symmetric_spec(dict(params))
    second = run_symmetric_spec(dict(params))
    assert first == second
    assert first["sim_stats"]["drops"] > 0  # RED actually dropped
    different = run_symmetric_spec(dict(params, seed=6))
    assert different != first


def test_idle_aging_survives_empty_queue_drop():
    """Regression: a drop at an *empty* queue must not cancel idle aging.

    The old enqueue cleared ``_idle_since`` before the accept/drop
    decision, so once an inflated average force-dropped an arrival at an
    idle gateway, the idle clock was gone: the average never decayed and
    the empty queue kept dropping forever.  After the fix the clock is
    only cleared on accept, so a later arrival after a long idle gap
    sees a fully aged average and must be accepted.
    """
    queue = REDQueue(capacity=20, min_th=2, max_th=4, w_q=0.5,
                     rng=random.Random(1))
    queue.mean_pkt_time = 0.005
    _fill(queue, 20)                       # drive avg above max_th
    while queue.dequeue(1.0) is not None:  # drain; avg stays inflated
        pass
    assert queue.avg >= queue.max_th
    # Arrival just after the drain: ~0.2 packet-times of aging cannot
    # bring avg below max_th, so this is a forced drop at an empty queue.
    assert not queue.enqueue(1.001, _pkt(50))
    assert len(queue) == 0
    # 9 seconds (~1800 packet-times) later the average must have aged
    # away.  Under the pre-fix code this arrival was force-dropped too.
    assert queue.enqueue(10.0, _pkt(51))
    assert queue.avg < queue.min_th


def test_idle_aging_does_not_double_decay_repeated_drops():
    """Back-to-back drops at an empty queue age avg over disjoint gaps."""
    queue = REDQueue(capacity=20, min_th=2, max_th=400, w_q=0.5,
                     rng=random.Random(1))
    queue.mean_pkt_time = 1.0
    queue.avg = 100.0
    queue._idle_since = 0.0
    queue.capacity = 0  # force overflow drops while staying empty-queued
    queue.enqueue(1.0, _pkt(0))   # ages over [0, 1]: one packet-time
    queue.enqueue(3.0, _pkt(1))   # must age over [1, 3], not [0, 3]
    # one then two packet-times of decay: 100 * 0.5 * 0.5**2
    assert queue.avg == pytest.approx(12.5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), arrivals=st.integers(1, 200))
def test_property_accounting_conserved(seed, arrivals):
    """accepted + dropped == offered, and depth never exceeds capacity."""
    queue = REDQueue(capacity=20, rng=random.Random(seed))
    accepted = _fill(queue, arrivals)
    assert accepted + queue.dropped == arrivals
    assert len(queue) <= queue.capacity
    assert queue.dropped == (queue.early_drops + queue.forced_drops
                             + queue.overflow_drops)
