"""Byte-mode and adaptive RED: the study-matrix variants of the gateway."""

import random

import pytest

from repro.net.packet import DATA, Packet
from repro.net.red import AdaptiveREDQueue, REDQueue


def _pkt(seq, size=1000):
    return Packet(DATA, "f", "A", "B", seq, size)


# ---------------------------------------------------------------- byte mode
def test_byte_mode_average_tracks_bytes():
    queue = REDQueue(capacity=20, min_th=2000, max_th=8000, w_q=1.0,
                     byte_mode=True, rng=random.Random(1))
    queue.enqueue(0.0, _pkt(0, size=500))
    queue.enqueue(0.0, _pkt(1, size=500))
    # w_q = 1: avg == instantaneous byte backlog at the last arrival
    # (the second arrival saw 500 bytes queued)
    assert queue.avg == 500.0
    assert queue.bytes_queued == 1000


def test_byte_mode_scales_drop_probability_with_size():
    # Per-byte fairness: with the count correction neutral (count = 0)
    # the notification probability is linear in packet size.
    queue = REDQueue(capacity=10_000, min_th=1000, max_th=100_000,
                     w_q=1.0, max_p=0.02, byte_mode=True,
                     mean_packet_size=1000, rng=random.Random(1))
    queue.avg = 50_000.0
    queue.count = 0
    p_small = queue._drop_probability(100)
    p_big = queue._drop_probability(1500)
    assert p_big == pytest.approx(15 * p_small)
    assert p_small > 0


def test_byte_mode_probability_is_capped_at_one():
    queue = REDQueue(capacity=100, min_th=100, max_th=10_000, w_q=1.0,
                     max_p=1.0, byte_mode=True, mean_packet_size=100,
                     rng=random.Random(1))
    queue.avg = 5000.0
    queue.count = 0
    assert queue._drop_probability(100_000) == 1.0


def test_packet_mode_ignores_size_in_probability():
    queue = REDQueue(capacity=100, min_th=5, max_th=15, w_q=1.0,
                     rng=random.Random(1))
    queue.avg = 10.0
    queue.count = 0
    assert queue._drop_probability(40) == queue._drop_probability(1500)


def test_mean_packet_size_validation():
    with pytest.raises(ValueError):
        REDQueue(byte_mode=True, mean_packet_size=0, rng=random.Random(1))


# ------------------------------------------------------------ adaptive RED
def test_adaptive_raises_max_p_when_average_runs_high():
    queue = AdaptiveREDQueue(capacity=200, min_th=5, max_th=15, w_q=1.0,
                             max_p=0.02, adapt_interval=0.5,
                             rng=random.Random(1))
    queue.avg = 14.0  # above the [9, 11] target band
    before = queue.max_p
    queue.enqueue(10.0, _pkt(0))  # 20 elapsed intervals, caught up lazily
    assert queue.max_p > before
    assert queue.adaptations > 0


def test_adaptive_decays_max_p_when_average_runs_low():
    queue = AdaptiveREDQueue(capacity=200, min_th=5, max_th=15, w_q=0.002,
                             max_p=0.1, adapt_interval=0.5,
                             rng=random.Random(1))
    # Near-empty queue: avg stays below the target band, so max_p must
    # decay multiplicatively toward the floor.
    for step in range(40):
        queue.enqueue(step * 0.5, _pkt(step))
        queue.dequeue(step * 0.5)
    assert queue.max_p < 0.1


def test_adaptive_max_p_stays_clamped():
    queue = AdaptiveREDQueue(capacity=200, min_th=5, max_th=15, w_q=1.0,
                             max_p=0.49, adapt_interval=0.5,
                             rng=random.Random(1))
    queue.avg = 14.0
    queue.enqueue(1000.0, _pkt(0))  # 2000 increase opportunities
    assert queue.max_p <= queue.MAX_P_TOP
    low = AdaptiveREDQueue(capacity=200, min_th=5, max_th=15, w_q=1.0,
                           max_p=0.011, adapt_interval=0.5,
                           rng=random.Random(1))
    low.avg = 0.0
    low.enqueue(1000.0, _pkt(0))
    assert low.max_p >= low.MAX_P_BOTTOM


def test_adaptive_interval_validation():
    with pytest.raises(ValueError):
        AdaptiveREDQueue(adapt_interval=0.0, rng=random.Random(1))


def test_adaptive_same_seed_same_behaviour():
    def pattern(seed):
        queue = AdaptiveREDQueue(capacity=20, min_th=2, max_th=8, w_q=1.0,
                                 max_p=0.2, adapt_interval=0.1,
                                 rng=random.Random(seed))
        out = []
        for seq in range(300):
            out.append(queue.enqueue(seq * 0.01, _pkt(seq)))
            if seq % 3 == 0:
                queue.dequeue(seq * 0.01)
        return (out, queue.max_p, queue.adaptations)

    assert pattern(9) == pattern(9)
