"""Churn byte-identity: incremental sender == naive oracle, end to end.

A scenario with live joins and leaves is run twice — once with the
optimized :class:`RLASender`, once with the :class:`NaiveRLASender`
oracle (the pre-optimization full-recompute behavior) injected into the
scenario runner — and the result rows must be pickle-identical.  This
guards the incremental ``_reach`` maintenance against the post-join
window-deadlock class: a joiner missed as an implicit holder freezes
``max_reach_all`` and throttles throughput, which would show up in the
row long before it raised anything.
"""

import pickle

import pytest

from repro.rla.reference import NaiveRLASender
from repro.rla.session import RLASession
from repro.scenarios import get_scenario
from repro.scenarios import runner as runner_mod

DURATION = 6.0
WARMUP = 2.0


class _NaiveSession(RLASession):
    """Session wiring unchanged, naive reference sender inside."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("sender_cls", NaiveRLASender)
        super().__init__(*args, **kwargs)


@pytest.mark.parametrize("name", ["waxman-churn", "tree-churn"])
def test_churn_scenario_identical_under_naive_sender(name, monkeypatch):
    spec = get_scenario(name, duration=DURATION, warmup=WARMUP)
    incremental = runner_mod.run_scenario(spec)
    assert incremental["joins"] > 0 or incremental["leaves"] > 0, (
        "scenario exercised no membership churn; the test would prove nothing"
    )

    monkeypatch.setattr(runner_mod, "RLASession", _NaiveSession)
    naive = runner_mod.run_scenario(spec)
    assert pickle.dumps(incremental) == pickle.dumps(naive)


def test_audited_churn_scenario_identical_under_naive_sender(monkeypatch):
    """The audit layer reads ``_reach`` per ACK; both senders must satisfy it."""
    spec = get_scenario("waxman-churn", duration=DURATION, warmup=WARMUP,
                        audited=True)
    incremental = runner_mod.run_scenario(spec)
    assert incremental["sim_stats"]["violations"] == 0

    monkeypatch.setattr(runner_mod, "RLASession", _NaiveSession)
    naive = runner_mod.run_scenario(spec)
    assert pickle.dumps(incremental) == pickle.dumps(naive)
