"""Receiver churn on a live RLA session: late joins and mid-session leaves."""

import pytest

from repro.errors import ConfigurationError
from repro.rla.session import RLASession


def test_late_join_syncs_to_current_send_point(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    sim.run(until=5.0)
    progress_at_join = session.sender.snd_nxt
    assert progress_at_join > 0  # the session has been sending

    receiver = session.add_member("R3")
    assert receiver.start_seq == progress_at_join
    # sender state admits R3 holding everything before the sync point
    assert session.sender.receivers["R3"].last_ack == progress_at_join
    assert session.sender.n_receivers == 3

    sim.run(until=20.0)
    # the late joiner receives post-join data (no pre-join history needed)
    assert receiver.tracker.rcv_nxt > progress_at_join
    # and full-group progress advances past the join point
    assert session.sender.stats()["max_reach_all"] > progress_at_join


def test_add_member_is_idempotent(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    sim.run(until=2.0)
    first = session.add_member("R3")
    again = session.add_member("R3")
    assert first is again
    assert session.members.count("R3") == 1
    assert session.joins == 1


def test_leave_mid_session_keeps_sender_running(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=5.0)
    session.remove_member("R2")
    assert "R2" not in session.receivers
    assert "R2" not in session.sender.receivers
    assert session.leaves == 1
    # the departed receiver's final stats were snapshotted
    assert session.departed[0]["member"] == "R2"
    assert session.departed[0]["left_at"] == pytest.approx(5.0)

    before = session.sender.stats()["max_reach_all"]
    sim.run(until=15.0)
    assert session.sender.stats()["max_reach_all"] > before


def test_remove_nonmember_is_noop(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    session.start()
    sim.run(until=1.0)
    session.remove_member("R3")
    assert session.leaves == 0


def test_remove_last_receiver_raises(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    session.start()
    sim.run(until=1.0)
    with pytest.raises(ConfigurationError):
        session.remove_member("R1")


def test_report_carries_churn_counters(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    sim.run(until=3.0)
    session.add_member("R3")
    sim.run(until=6.0)
    session.remove_member("R1")
    sim.run(until=10.0)
    report = session.report()
    assert report["member_joins"] == 1
    assert report["member_leaves"] == 1
    assert report["n_receivers"] == 2


def test_join_leave_cycle_reuses_host(sim, star_net):
    """A host can leave and later re-join; the rejoin syncs afresh."""
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    sim.run(until=4.0)
    session.remove_member("R2")
    sim.run(until=8.0)
    rejoined = session.add_member("R2")
    assert rejoined.start_seq == session.sender.receivers["R2"].last_ack
    sim.run(until=16.0)
    assert rejoined.tracker.rcv_nxt > rejoined.start_seq
    assert session.joins == 1 and session.leaves == 1
