"""RLA configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.rla.config import RLAConfig


def test_defaults_follow_paper():
    config = RLAConfig().validate()
    assert config.eta == 20.0
    assert config.congestion_group_rtts == 2.0
    assert config.forced_cut_awnd_rtts == 2.0
    assert config.rexmit_thresh == 0
    assert config.rtt_scaled_pthresh is False


@pytest.mark.parametrize(
    "kwargs",
    [
        {"packet_size": 0},
        {"eta": 0.5},
        {"interval_gain": 0.0},
        {"interval_gain": 1.5},
        {"awnd_gain": 0.0},
        {"congestion_group_rtts": 0.0},
        {"rexmit_thresh": -1},
        {"rcv_buffer": 0},
        {"phase_jitter": -0.1},
        {"ack_jitter": -0.1},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        RLAConfig(**kwargs).validate()


def test_validate_returns_self():
    config = RLAConfig()
    assert config.validate() is config
