"""Troubled-receiver counting (§3.3 rule 6)."""

import pytest

from repro.rla.congestion import TroubleTracker
from repro.rla.state import ReceiverState


def _states(n):
    states = [ReceiverState(f"R{i}") for i in range(n)]
    for state in states:
        state.observation_start = 0.0
    return states


def test_single_receiver_is_troubled():
    tracker = TroubleTracker(eta=20, interval_gain=0.5)
    (state,) = _states(1)
    tracker.record_signal(state, 5.0, [state])
    assert state.troubled
    assert tracker.num_trouble == 1


def test_similar_intervals_all_troubled():
    tracker = TroubleTracker(eta=20, interval_gain=0.5)
    states = _states(3)
    now = 0.0
    for round_ in range(1, 4):
        for state in states:
            now = round_ * 3.0 + 0.1 * states.index(state)
            tracker.record_signal(state, now, states)
    assert tracker.num_trouble == 3


def test_rare_reporter_not_troubled():
    tracker = TroubleTracker(eta=20, interval_gain=1.0)
    frequent, rare = _states(2)
    # frequent: signals every 1 s
    now = 0.0
    for k in range(1, 30):
        now = float(k)
        tracker.record_signal(frequent, now, [frequent, rare])
    # rare: one signal whose seeded interval (29 s) exceeds eta * 1 s = 20 s
    tracker.record_signal(rare, 29.0, [frequent, rare])
    assert frequent.troubled
    assert not rare.troubled
    assert tracker.num_trouble == 1


def test_silent_receiver_ages_out():
    tracker = TroubleTracker(eta=2, interval_gain=1.0)
    a, b = _states(2)
    for k in range(1, 5):
        tracker.record_signal(a, float(k), [a, b])
        tracker.record_signal(b, float(k) + 0.5, [a, b])
    assert tracker.num_trouble == 2
    # b goes silent; a keeps signalling every 1 s
    for k in range(5, 30):
        tracker.record_signal(a, float(k), [a, b])
    assert a.troubled
    assert not b.troubled


def test_pthresh():
    tracker = TroubleTracker(eta=20, interval_gain=0.5)
    tracker.num_trouble = 4
    assert tracker.pthresh() == pytest.approx(0.25)
    assert tracker.pthresh(scale=0.5) == pytest.approx(0.125)
    tracker.num_trouble = 0
    assert tracker.pthresh() == 1.0  # degenerate case: listen to everything


def test_pthresh_capped_at_one():
    tracker = TroubleTracker(eta=20, interval_gain=0.5)
    tracker.num_trouble = 1
    assert tracker.pthresh(scale=5.0) == 1.0


def test_recount_with_no_signals():
    tracker = TroubleTracker(eta=20, interval_gain=0.5)
    states = _states(3)
    tracker.recount(10.0, states)
    assert tracker.num_trouble == 0
    assert tracker.min_interval is None
