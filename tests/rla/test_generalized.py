"""The generalized (RTT-scaled) RLA of §5.3."""

import pytest

from repro.net.network import Network, droptail_factory
from repro.rla.generalized import GeneralizedRLASession, rtt_scaling
from repro.sim.engine import Simulator
from repro.units import ms, pps_to_bps


def test_rtt_scaling_function():
    assert rtt_scaling(0.1, 0.1) == 1.0
    assert rtt_scaling(0.05, 0.1) == pytest.approx(0.25)
    assert rtt_scaling(0.0, 0.1) == 0.0
    # clamped
    assert rtt_scaling(0.2, 0.1) == 1.0
    assert rtt_scaling(0.1, 0.0) == 1.0


def test_rtt_scaling_custom_exponent():
    assert rtt_scaling(0.5, 1.0, exponent=1.0) == pytest.approx(0.5)


def test_generalized_session_sets_flag(sim, star_net):
    session = GeneralizedRLASession(sim, star_net, "rla-0", "S",
                                    ["R1", "R2", "R3"])
    assert session.sender.config.rtt_scaled_pthresh is True


def test_generalized_runs_with_heterogeneous_rtts():
    sim = Simulator(seed=5)
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", pps_to_bps(400), ms(5))
    net.add_link("G", "Rnear", pps_to_bps(10_000), ms(5))
    net.add_link("G", "Rfar", pps_to_bps(10_000), ms(100))
    net.build_routes()
    session = GeneralizedRLASession(sim, net, "rla-0", "S", ["Rnear", "Rfar"])
    session.start()
    sim.run(until=10.0)
    session.mark()
    sim.run(until=60.0)
    report = session.report()
    assert report["throughput_pps"] == pytest.approx(400, rel=0.25)
    # both receivers got everything
    assert session.receivers["Rnear"].tracker.rcv_nxt > 0
