"""Incremental sender aggregates vs naive full recomputation.

Seeded-random interleavings of ACKs (with SACK gaps, so loss detection
and retransmit decisions fire), late joins, leaves, and time advances
(which fire the retransmit-decision and RTO-watchdog timers) drive an
:class:`RLASender`; after **every** operation the maintained aggregates
— ``min_last_ack``, max-SRTT, max-RTO, the reached-all counts and the
per-receiver signal table — must equal a from-scratch recomputation over
the current receiver states.

A second pass replays the identical script through the
:class:`NaiveRLASender` oracle and must produce identical observable
sender state step by step, pinning the optimized implementation and the
reference to each other.
"""

import random

import pytest

from repro.net.node import Node
from repro.net.packet import ACK, Packet
from repro.rla.config import RLAConfig
from repro.rla.reference import NaiveRLASender
from repro.rla.sender import _DEFAULT_SRTT, RLASender
from repro.sim.engine import Simulator


class _StubNode(Node):
    """Node that captures outbound packets instead of routing them."""

    def __init__(self):
        super().__init__("S")
        self.outbox = []

    def send(self, packet):
        self.outbox.append(packet)


# ----------------------------------------------------------------------
# naive recomputations (the assertions' ground truth)
# ----------------------------------------------------------------------
def _true_min_last_ack(sender):
    return min(st.last_ack for st in sender.receivers.values())

def _true_max_srtt(sender):
    return max(st.srtt(_DEFAULT_SRTT) for st in sender.receivers.values())

def _true_max_rto(sender):
    return max(st.rtt.rto() for st in sender.receivers.values())

def _true_reach(sender):
    reach = {}
    for seq in sender._send_time:
        holders = sum(1 for st in sender.receivers.values() if st.has(seq))
        if holders:
            reach[seq] = holders
    return reach


def _check_aggregates(sender):
    """Every maintained aggregate equals its full recomputation."""
    true_min = _true_min_last_ack(sender)
    assert sender.min_last_ack == true_min
    assert sender._max_srtt() == _true_max_srtt(sender)
    assert sender._rto() == _true_max_rto(sender)
    assert sender._reach == _true_reach(sender)
    if type(sender) is RLASender:  # naive oracle does not maintain these
        cohort = sum(1 for st in sender.receivers.values()
                     if st.last_ack == true_min)
        assert sender._min_count == cohort
    # signal table matches a fresh rebuild, including insertion order
    # (snapshot dicts must pickle identically to a rebuilt comprehension)
    assert list(sender._signals_by_receiver.items()) == [
        (rid, st.signals) for rid, st in sender.receivers.items()
    ]


# ----------------------------------------------------------------------
# script driver
# ----------------------------------------------------------------------
def _snapshot(sender):
    """Observable sender state, for cross-implementation comparison."""
    return (
        sender.sim.now,
        sender.snd_nxt,
        sender.min_last_ack,
        sender.cwnd,
        sender.max_reach_all,
        tuple(sorted(sender._reach.items())),
        sender._max_srtt(),
        sender._rto(),
        sender.congestion_signals,
        sender.rtx_multicast,
        sender.rtx_unicast,
        sender.timeouts,
        tuple(sender._signals_by_receiver.items()),
    )


def _run_script(sender_cls, seed, steps=250, check=False):
    """Drive one sender through a seeded op interleaving; return snapshots.

    Ops are generated from sender state with a dedicated RNG, so two
    implementations that behave identically see identical scripts.
    """
    rng = random.Random(seed)
    sim = Simulator(seed=7)
    node = _StubNode()
    config = RLAConfig(ack_jitter=0.0)
    members = [f"R{i}" for i in range(4)]
    sender = sender_cls(sim, node, "rla-0", "group:rla-0", members,
                        config=config)
    sender.start(0.0)
    sim.run(until=0.01)

    next_join = 0
    snapshots = []
    for _ in range(steps):
        op = rng.choices(("ack", "join", "leave", "advance"),
                         weights=(10, 1, 1, 3))[0]
        if op == "ack" and sender.snd_nxt > 0:
            rid = rng.choice(list(sender.receivers))
            state = sender.receivers[rid]
            ack = min(state.last_ack + rng.randrange(0, 4), sender.snd_nxt)
            sack = None
            if rng.random() < 0.5 and ack + 2 < sender.snd_nxt:
                # a gap above the cumulative point: SACKed segments that
                # eventually push loss detection over the dupack threshold
                start = ack + rng.randrange(1, 3)
                end = min(start + rng.randrange(1, 4), sender.snd_nxt)
                if start < end:
                    sack = ((start, end),)
            echo = sim.now - rng.uniform(0.01, 0.2) if rng.random() < 0.7 else 0.0
            sender.on_packet(Packet(
                ACK, "rla-0", rid, "S", ack, 40, ack=ack, sack=sack,
                receiver=rid, echo_ts=max(echo, 0.0),
            ))
        elif op == "join":
            sender.add_receiver(f"J{next_join}")
            next_join += 1
        elif op == "leave" and len(sender.receivers) > 2:
            sender.remove_receiver(rng.choice(list(sender.receivers)))
        elif op == "advance":
            # fire pending retransmit decisions / the RTO watchdog
            sim.run(until=sim.now + rng.uniform(0.05, 1.5))
        if check:
            _check_aggregates(sender)
        snapshots.append(_snapshot(sender))
    return snapshots


@pytest.mark.parametrize("seed", [1, 17, 4242])
def test_incremental_aggregates_match_naive_recomputation(seed):
    _run_script(RLASender, seed, check=True)


@pytest.mark.parametrize("seed", [1, 17, 4242])
def test_incremental_and_naive_senders_evolve_identically(seed):
    fast = _run_script(RLASender, seed)
    naive = _run_script(NaiveRLASender, seed)
    assert fast == naive


def test_script_exercises_every_op_kind():
    """The interleavings above actually hit joins, leaves and repairs."""
    snapshots = _run_script(RLASender, 17)
    final = snapshots[-1]
    signals = final[8]
    rtx = final[9] + final[10]
    assert signals > 0, "no congestion signals generated"
    assert rtx > 0, "no retransmissions decided"
    joined = {rid for rid, _ in final[12] if rid.startswith("J")}
    assert joined, "no late joiner survived to the end"
