"""The §4.3 slow-receiver ejection option."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network, droptail_factory
from repro.rla.config import RLAConfig
from repro.rla.policy import LaggardDropPolicy
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.units import ms, pps_to_bps, mbps


def test_remove_receiver_shrinks_threshold(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=5.0)
    sender = session.sender
    before_reach = sender.max_reach_all
    sender.remove_receiver("R3")
    assert sender.n_receivers == 2
    assert "R3" not in sender.receivers
    assert sender.max_reach_all >= before_reach
    # session keeps making progress with the remaining receivers
    sim.run(until=15.0)
    assert sender.max_reach_all > before_reach + 100


def test_remove_unknown_receiver_is_noop(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.sender.remove_receiver("Rx")
    assert session.sender.n_receivers == 2


def test_cannot_remove_last_receiver(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    with pytest.raises(ConfigurationError):
        session.sender.remove_receiver("R1")
    assert session.sender.n_receivers == 1


def test_acks_from_removed_receiver_ignored(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    sim.run(until=3.0)
    session.sender.remove_receiver("R2")
    reach = session.sender.max_reach_all
    sim.run(until=6.0)
    # R2 keeps acking (it is still wired) but the sender no longer counts it
    assert "R2" not in session.sender.receivers
    assert session.sender.max_reach_all > reach


def _slow_fast_net(sim):
    """One crawling branch (20 pkt/s) next to two fast ones."""
    net = Network(sim, default_queue=droptail_factory(20))
    net.add_link("S", "G", mbps(100), ms(5), queue_factory=droptail_factory(100))
    net.add_link("G", "R1", pps_to_bps(400), ms(50))
    net.add_link("G", "R2", pps_to_bps(400), ms(50))
    net.add_link("G", "Rslow", pps_to_bps(20), ms(50))
    net.build_routes()
    return net


def test_policy_drops_the_laggard():
    sim = Simulator(seed=9)
    net = _slow_fast_net(sim)
    session = RLASession(sim, net, "rla-0", "S", ["R1", "R2", "Rslow"])
    session.start()
    dropped = []
    policy = LaggardDropPolicy(sim, session.sender, check_interval=2.0,
                               patience=6.0, on_drop=dropped.append)
    policy.start()
    sim.run(until=60.0)
    assert dropped == ["Rslow"]
    assert session.sender.n_receivers == 2
    # freed from the 20 pkt/s branch, the session speeds up
    reach_at_drop = session.sender.max_reach_all
    sim.run(until=90.0)
    rate = (session.sender.max_reach_all - reach_at_drop) / 30.0
    assert rate > 100


def test_policy_does_not_drop_balanced_receivers(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    policy = LaggardDropPolicy(sim, session.sender, check_interval=2.0,
                               patience=6.0)
    policy.start()
    sim.run(until=60.0)
    assert policy.dropped == []
    assert session.sender.n_receivers == 3


def test_policy_respects_min_receivers():
    sim = Simulator(seed=9)
    net = _slow_fast_net(sim)
    session = RLASession(sim, net, "rla-0", "S", ["R1", "Rslow"])
    session.start()
    policy = LaggardDropPolicy(sim, session.sender, check_interval=2.0,
                               patience=4.0, min_receivers=2)
    policy.start()
    sim.run(until=40.0)
    assert policy.dropped == []


def test_policy_validation(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    with pytest.raises(ConfigurationError):
        LaggardDropPolicy(sim, session.sender, check_interval=0)
    with pytest.raises(ConfigurationError):
        LaggardDropPolicy(sim, session.sender, gap_packets=0)
    with pytest.raises(ConfigurationError):
        LaggardDropPolicy(sim, session.sender, check_interval=5.0, patience=1.0)
    with pytest.raises(ConfigurationError):
        LaggardDropPolicy(sim, session.sender, min_receivers=0)
