"""Regression: receiver ejection racing the retransmit decision timer.

A receiver can request a repair and then be ejected (``remove_receiver``,
the §4.3 drop-the-laggard option) before the ``rtx_wait_rtts`` decision
timer fires.  ``_decide_retransmit`` used to index ``self.receivers`` with
the departed id and crash with ``KeyError``.
"""

from repro.net.node import Node
from repro.net.packet import ACK, DATA, Packet
from repro.rla.config import RLAConfig
from repro.rla.sender import RLASender
from repro.sim.engine import Simulator


class _StubNode(Node):
    """Node that captures outbound packets instead of routing them."""

    def __init__(self):
        super().__init__("S")
        self.outbox = []

    def send(self, packet):
        self.outbox.append(packet)


def _sender(sim, n=3, **config_kwargs):
    node = _StubNode()
    config = RLAConfig(ack_jitter=0.0, **config_kwargs)
    sender = RLASender(sim, node, "rla-0", "group:rla-0",
                       [f"R{i}" for i in range(1, n + 1)], config=config)
    return sender, node


def _ack(receiver, ack, sack=None, echo=0.0):
    return Packet(ACK, "rla-0", receiver, "S", ack, 40, ack=ack, sack=sack,
                  receiver=receiver, echo_ts=echo)


def _repairs(node):
    return [p for p in node.outbox if p.kind == DATA and p.is_retransmit]


def test_ejected_requester_does_not_crash_decision():
    sim = Simulator()
    sender, node = _sender(sim, n=3)
    sender.start()
    sim.run(until=0.5)
    sender._request_retransmit(0, "R1")
    sender.remove_receiver("R1")
    # Fire the armed decision timer by hand (deterministic: no RTO-path
    # repairs muddying the outbox).  Pre-fix this raised KeyError 'R1'.
    sender._decide_retransmit(0)
    assert _repairs(node) == []  # the ejected receiver needs no repair


def test_remaining_requesters_still_repaired_after_ejection():
    sim = Simulator()
    sender, node = _sender(sim, n=3)
    sender.start()
    sim.run(until=0.5)
    # R2 holds seq 0; R3 requests a repair of it alongside the doomed R1.
    sender.on_packet(_ack("R2", 1))
    sender._request_retransmit(0, "R1")
    sender._request_retransmit(0, "R3")
    sender.remove_receiver("R1")
    sender._decide_retransmit(0)
    repairs = _repairs(node)
    assert repairs, "R3's outstanding request must still be honoured"
    assert all(p.seq == 0 for p in repairs)


def test_decision_tolerates_unknown_requester_id():
    # Defence in depth: even an id that never purged (or never existed)
    # must not crash the decision path.
    sim = Simulator()
    sender, node = _sender(sim, n=2)
    sender.start()
    sim.run(until=0.5)
    sender._rtx_requests[0] = {"ghost"}
    sender._rtx_scheduled.add(0)
    sender._decide_retransmit(0)
    assert _repairs(node) == []
