"""RLA receiver unit behaviour: stamped ACKs, jitter, ECN echo."""

import pytest

from repro.net.node import Node
from repro.net.packet import ACK, DATA, Packet
from repro.rla.config import RLAConfig
from repro.rla.receiver import RLAReceiver
from repro.sim.engine import Simulator


class _LoopbackNode(Node):
    def __init__(self, name="R1"):
        super().__init__(name)
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def _data(seq, sent_time=1.0, ce=False):
    packet = Packet(DATA, "rla-0", "S", "group:rla-0", seq, 1000,
                    sent_time=sent_time)
    packet.ce = ce
    return packet


def _receiver(sim, **config_kwargs):
    node = _LoopbackNode()
    receiver = RLAReceiver(sim, node, "rla-0", "S",
                           config=RLAConfig(ack_jitter=0.0, **config_kwargs))
    return receiver, node


def test_acks_carry_receiver_identity():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    ack = node.sent[0]
    assert ack.kind == ACK
    assert ack.receiver == "R1"
    assert ack.dst == "S"
    assert ack.ack == 1


def test_ack_echoes_timestamp_and_sack():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0, sent_time=2.5))
    receiver.on_packet(_data(3))
    assert node.sent[0].echo_ts == 2.5
    assert node.sent[1].sack == ((3, 4),)


def test_duplicates_counted_but_acked():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(0))
    assert receiver.duplicates == 1
    assert len(node.sent) == 2


def test_non_data_ignored():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(Packet(ACK, "rla-0", "S", "R1", 0, 40, ack=1))
    assert node.sent == []


def test_ack_jitter_delays_emission():
    sim = Simulator(seed=3)
    node = _LoopbackNode()
    receiver = RLAReceiver(sim, node, "rla-0", "S",
                           config=RLAConfig(ack_jitter=0.01))
    sim.schedule(1.0, receiver.on_packet, _data(0))
    sim.run(until=1.0)
    assert node.sent == []          # still waiting out the jitter
    sim.run(until=1.02)
    assert len(node.sent) == 1


def test_jittered_ack_carries_fresh_state():
    """State advancing during the jitter window is reflected in the ACK."""
    sim = Simulator(seed=3)
    node = _LoopbackNode()
    receiver = RLAReceiver(sim, node, "rla-0", "S",
                           config=RLAConfig(ack_jitter=0.01))
    sim.schedule(1.0, receiver.on_packet, _data(0))
    sim.schedule(1.0, receiver.on_packet, _data(1))
    sim.run(until=1.05)
    # both ACKs report the final cumulative point
    assert [p.ack for p in node.sent] == [2, 2]


def test_ecn_mark_echoed():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0, ce=True))
    receiver.on_packet(_data(1, ce=False))
    assert node.sent[0].ece is True
    assert node.sent[1].ece is False


def test_stats():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    stats = receiver.stats()
    assert stats["distinct_received"] == 1
    assert stats["acks_sent"] == 1
    assert stats["rcv_nxt"] == 1
