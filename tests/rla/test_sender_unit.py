"""RLA sender mechanics, driven by hand-crafted ACKs (no network)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.net.packet import ACK, DATA, Packet
from repro.rla.config import RLAConfig
from repro.rla.sender import RLASender
from repro.sim.engine import Simulator


class _StubNode(Node):
    """Node that captures outbound packets instead of routing them."""

    def __init__(self):
        super().__init__("S")
        self.outbox = []

    def send(self, packet):
        self.outbox.append(packet)


def _sender(sim, n=3, **config_kwargs):
    node = _StubNode()
    config = RLAConfig(ack_jitter=0.0, **config_kwargs)
    sender = RLASender(sim, node, "rla-0", "group:rla-0",
                       [f"R{i}" for i in range(1, n + 1)], config=config)
    return sender, node


def _ack(receiver, ack, sack=None, echo=0.0):
    return Packet(ACK, "rla-0", receiver, "S", ack, 40, ack=ack, sack=sack,
                  receiver=receiver, echo_ts=echo)


def test_needs_receivers():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        RLASender(sim, _StubNode(), "rla-0", "group:x", [])


def test_initial_window_sends_one_packet():
    sim = Simulator()
    sender, node = _sender(sim)
    sender.start()
    sim.run(until=0.5)
    data = [p for p in node.outbox if p.kind == DATA]
    assert [p.seq for p in data] == [0]
    assert data[0].dst == "group:rla-0"


def test_window_grows_only_on_full_ack():
    sim = Simulator()
    sender, node = _sender(sim, n=3)
    sender.start()
    sim.run(until=0.5)
    sender.on_packet(_ack("R1", 1))
    sender.on_packet(_ack("R2", 1))
    assert sender.cwnd == 1.0            # two of three acked: no growth
    assert sender.max_reach_all == -1
    sender.on_packet(_ack("R3", 1))
    assert sender.cwnd == 2.0            # slow start
    assert sender.max_reach_all == 0


def test_duplicate_acks_do_not_grow_twice():
    sim = Simulator()
    sender, node = _sender(sim, n=2)
    sender.start()
    sim.run(until=0.5)
    for _ in range(3):
        sender.on_packet(_ack("R1", 1))
    sender.on_packet(_ack("R2", 1))
    assert sender.cwnd == 2.0


def test_min_last_ack_tracks_laggard():
    sim = Simulator()
    sender, node = _sender(sim, n=3)
    sender.start()
    sim.run(until=0.5)
    sender.on_packet(_ack("R1", 5))
    sender.on_packet(_ack("R2", 3))
    assert sender.min_last_ack == 0
    sender.on_packet(_ack("R3", 2))
    assert sender.min_last_ack == 2


def test_congestion_signal_triggers_possible_cut():
    sim = Simulator()
    sender, node = _sender(sim, n=1)
    sender.start()
    sim.run(until=0.5)
    # grow the window a little
    for seq in range(1, 6):
        sender.on_packet(_ack("R1", seq))
    before = sender.cwnd
    # R1 sacks far ahead, leaving a hole at its cumulative point
    sender.on_packet(_ack("R1", 5, sack=((9, 12),)))
    assert sender.congestion_signals == 1
    # n = 1 troubled receiver -> pthresh = 1 -> certain cut.  With a single
    # receiver the three sacked packets are also acked-by-all, so the
    # window first grows by 3 (slow start), then halves.
    assert sender.window_cuts == 1
    assert sender.cwnd == pytest.approx((before + 3) / 2)


def test_losses_within_two_srtt_grouped():
    sim = Simulator()
    sender, node = _sender(sim, n=1)
    sender.start()
    sim.run(until=0.5)
    for seq in range(1, 8):
        sender.on_packet(_ack("R1", seq, echo=max(sim.now - 0.1, 0)))
    sender.on_packet(_ack("R1", 7, sack=((11, 12),)))   # loss of 7..8 zone
    first_cuts = sender.window_cuts
    # another loss right away: same congestion period, no second signal
    sender.on_packet(_ack("R1", 7, sack=((11, 13),)))
    assert sender.congestion_signals == 1
    assert sender.window_cuts == first_cuts


def test_forced_cut_after_long_quiet():
    sim = Simulator()
    sender, node = _sender(sim, n=2, forced_cut_awnd_rtts=0.001)
    sender.start()
    sim.run(until=0.5)
    for seq in range(1, 5):
        sender.on_packet(_ack("R1", seq))
        sender.on_packet(_ack("R2", seq))
    sim.run(until=10.0)
    sender.on_packet(_ack("R1", 4, sack=((8, 9),)))
    assert sender.forced_cuts == 1


def test_forced_cut_disabled():
    sim = Simulator()
    sender, node = _sender(sim, n=2, forced_cut_awnd_rtts=0.001,
                           forced_cut_enabled=False)
    sender.start()
    sim.run(until=0.5)
    for seq in range(1, 5):
        sender.on_packet(_ack("R1", seq))
        sender.on_packet(_ack("R2", seq))
    sim.run(until=10.0)
    sender.on_packet(_ack("R1", 4, sack=((8, 9),)))
    assert sender.forced_cuts == 0


def test_window_bounded_by_receiver_buffer():
    sim = Simulator()
    sender, node = _sender(sim, n=2, rcv_buffer=4)
    sender.cwnd = 100.0
    sender.start()
    sim.run(until=0.5)
    data = [p for p in node.outbox if p.kind == DATA]
    assert len(data) == 4  # min_last_ack (0) + rcv_buffer


def test_retransmit_multicast_above_threshold():
    sim = Simulator()
    sender, node = _sender(sim, n=3, rexmit_thresh=0)
    sender.cwnd = 20.0
    sender.start()
    sim.run(until=0.5)
    # every receiver sacks around seq 2 -> all request retransmission
    for rid in ("R1", "R2", "R3"):
        sender.on_packet(_ack(rid, 2, sack=((6, 9),)))
    sim.run(until=2.0)  # let the rtx wait timer fire
    rtx = [p for p in node.outbox if p.is_retransmit]
    assert sender.rtx_multicast >= 1
    assert any(p.dst == "group:rla-0" for p in rtx)


def test_retransmit_unicast_below_threshold():
    sim = Simulator()
    sender, node = _sender(sim, n=3, rexmit_thresh=2)
    sender.cwnd = 20.0
    sender.start()
    sim.run(until=0.5)
    # only R1 misses seq 2
    sender.on_packet(_ack("R1", 2, sack=((6, 9),)))
    sender.on_packet(_ack("R2", 9))
    sender.on_packet(_ack("R3", 9))
    sim.run(until=2.0)
    rtx = [p for p in node.outbox if p.is_retransmit]
    assert sender.rtx_unicast >= 1
    assert rtx[0].dst == "R1"


def test_rtt_scaled_pthresh_discounts_near_receiver():
    sim = Simulator()
    # forced-cut disabled: with a 50 ms srtt the forced-cut deadline
    # (2 * awnd * srtt ~ 0.1 s) would fire before the randomized check.
    sender, node = _sender(sim, n=2, rtt_scaled_pthresh=True,
                           forced_cut_enabled=False)
    near, far = sender.receivers["R1"], sender.receivers["R2"]
    near.rtt.update(0.05)
    far.rtt.update(0.5)
    # scale for the near receiver: (0.05/0.5)^2 = 0.01 -> pthresh tiny
    listen_draws = []
    sender._listen_rng.random = lambda: listen_draws.append(1) or 0.02
    sender.start()
    sim.run(until=0.5)
    for seq in range(1, 5):
        sender.on_packet(_ack("R1", seq))
        sender.on_packet(_ack("R2", seq))
    cuts_before = sender.window_cuts
    sender.on_packet(_ack("R1", 4, sack=((8, 9),)))
    # draw 0.02 > pthresh = 0.01/num_trouble -> ignored
    assert sender.window_cuts == cuts_before


def test_stats_contains_per_receiver_signals():
    sim = Simulator()
    sender, _ = _sender(sim, n=2)
    sender.start()
    sim.run(until=0.5)
    stats = sender.stats()
    assert set(stats["signals_by_receiver"]) == {"R1", "R2"}
