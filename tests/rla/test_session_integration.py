"""End-to-end RLA sessions on real (small) networks."""

import pytest

from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.units import pps_to_bps, transmission_time


def test_rla_alone_fills_bottleneck(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=10.0)
    session.mark()
    sim.run(until=60.0)
    report = session.report()
    # three 200 pkt/s branches; the session is limited by the slowest
    assert report["throughput_pps"] == pytest.approx(200, rel=0.1)


def test_rla_reliable_delivery(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=60.0)
    reach = session.sender.max_reach_all
    assert reach > 0
    # every receiver holds every packet up to max_reach_all
    for receiver in session.receivers.values():
        assert receiver.tracker.rcv_nxt >= reach * 0.98


def test_rla_shares_with_tcp(sim, star_net):
    jitter = transmission_time(1000, pps_to_bps(200))
    tcp_cfg = TcpConfig(phase_jitter=jitter)
    tcps = [TcpFlow(sim, star_net, f"tcp-{i}", "S", f"R{i}",
                    config=tcp_cfg) for i in (1, 2, 3)]
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"],
                         config=RLAConfig(phase_jitter=jitter))
    for index, flow in enumerate(tcps):
        flow.start(0.1 * index)
    session.start(0.05)
    sim.run(until=20.0)
    session.mark()
    for flow in tcps:
        flow.mark()
    sim.run(until=160.0)
    rla_rate = session.report()["throughput_pps"]
    tcp_rates = [flow.report()["throughput_pps"] for flow in tcps]
    # Theorem II: 1/4 * wtcp < rla < 2n * wtcp -- and here losses are
    # independent and symmetric, so the share should be near-absolute.
    assert rla_rate > 0.25 * min(tcp_rates)
    assert rla_rate < 2 * 3 * min(tcp_rates)
    assert rla_rate == pytest.approx(100, rel=0.5)


def test_cut_rate_is_one_over_n(sim, star_net):
    jitter = transmission_time(1000, pps_to_bps(200))
    tcps = [TcpFlow(sim, star_net, f"tcp-{i}", "S", f"R{i}",
                    config=TcpConfig(phase_jitter=jitter)) for i in (1, 2, 3)]
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"],
                         config=RLAConfig(phase_jitter=jitter))
    for flow in tcps:
        flow.start()
    session.start()
    sim.run(until=20.0)
    session.mark()
    sim.run(until=200.0)
    report = session.report()
    randomized_cuts = report["window_cuts"] - report["forced_cuts"] - report["timeouts"]
    assert report["congestion_signals"] > 30
    ratio = randomized_cuts / report["congestion_signals"]
    assert ratio == pytest.approx(1 / 3, abs=0.15)


def test_two_sessions_share_equally(sim, star_net):
    sessions = [RLASession(sim, star_net, f"rla-{k}", "S", ["R1", "R2", "R3"])
                for k in range(2)]
    for index, session in enumerate(sessions):
        session.start(0.2 * index)
    sim.run(until=20.0)
    for session in sessions:
        session.mark()
    sim.run(until=200.0)
    rates = [session.report()["throughput_pps"] for session in sessions]
    assert sum(rates) == pytest.approx(200, rel=0.15)
    assert min(rates) / max(rates) > 0.6


def test_session_report_keys(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    session.start()
    sim.run(until=5.0)
    report = session.report()
    for key in ("throughput_pps", "mean_cwnd", "mean_rtt", "congestion_signals",
                "window_cuts", "forced_cuts", "num_trouble",
                "signals_by_receiver", "rtx_multicast"):
        assert key in report
