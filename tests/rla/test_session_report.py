"""RLASession reporting semantics."""

import pytest

from repro.rla.session import RLASession


def test_report_before_mark_uses_lifetime(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    session.start()
    sim.run(until=10.0)
    report = session.report()
    assert report["elapsed"] == pytest.approx(10.0)
    assert report["throughput_pps"] > 0


def test_mark_resets_window(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1"])
    session.start()
    sim.run(until=10.0)
    session.mark()
    sim.run(until=15.0)
    report = session.report()
    assert report["elapsed"] == pytest.approx(5.0)
    # counters are diffs, not lifetime totals
    assert report["packets_sent"] < session.sender.packets_sent


def test_signals_by_receiver_diffed(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2", "R3"])
    session.start()
    sim.run(until=15.0)
    session.mark()
    baseline = {rid: st.signals for rid, st in session.sender.receivers.items()}
    sim.run(until=45.0)
    report = session.report()
    for rid, diff in report["signals_by_receiver"].items():
        assert diff == session.sender.receivers[rid].signals - baseline[rid]


def test_group_defaults_to_flow_name(sim, star_net):
    session = RLASession(sim, star_net, "rla-9", "S", ["R1"])
    assert session.group == "group:rla-9"
