"""Per-receiver state at the RLA sender."""

import pytest

from repro.rla.state import ReceiverState


def test_cumulative_ack_reports_new_seqs():
    state = ReceiverState("R1")
    assert state.update_ack(3, None) == [0, 1, 2]
    assert state.update_ack(3, None) == []
    assert state.last_ack == 3


def test_sack_reports_new_seqs_once():
    state = ReceiverState("R1")
    assert state.update_ack(0, [(2, 4)]) == [2, 3]
    assert state.update_ack(0, [(2, 4)]) == []
    assert state.max_sacked == 3


def test_cum_ack_does_not_recount_sacked():
    state = ReceiverState("R1")
    state.update_ack(0, [(1, 3)])
    newly = state.update_ack(3, None)
    assert newly == [0]


def test_has():
    state = ReceiverState("R1")
    state.update_ack(2, [(5, 6)])
    assert state.has(0) and state.has(5)
    assert not state.has(3)


def test_loss_detection_needs_dupthresh():
    state = ReceiverState("R1")
    state.update_ack(0, [(1, 3)])  # max_sacked 2
    assert state.detect_losses(snd_nxt=10, dupthresh=3) == []
    state.update_ack(0, [(3, 4)])  # max_sacked 3 -> seq 0 lost
    assert state.detect_losses(snd_nxt=10, dupthresh=3) == [0]
    # marked: not reported again
    assert state.detect_losses(snd_nxt=10, dupthresh=3) == []


def test_loss_mark_cleared_on_receipt():
    state = ReceiverState("R1")
    state.update_ack(0, [(3, 4)])
    assert state.detect_losses(10, 3) == [0]
    state.update_ack(1, None)  # seq 0 finally arrives
    assert 0 not in state.lost_marks


def test_unmark_lost():
    state = ReceiverState("R1")
    state.update_ack(0, [(3, 4)])
    state.detect_losses(10, 3)
    state.unmark_lost(0)
    assert state.detect_losses(10, 3) == [0]  # re-detected


def test_first_signal_seeds_interval_from_observation_start():
    state = ReceiverState("R1")
    state.observation_start = 0.0
    state.record_signal(now=5.0, gain=0.125)
    assert state.interval_ewma == pytest.approx(5.0)


def test_interval_ewma_updates():
    state = ReceiverState("R1")
    state.observation_start = 0.0
    state.record_signal(2.0, gain=0.5)   # seeds at 2.0
    state.record_signal(6.0, gain=0.5)   # interval 4 -> ewma 3.0
    assert state.interval_ewma == pytest.approx(3.0)
    assert state.signals == 2


def test_effective_interval_stretches_with_silence():
    state = ReceiverState("R1")
    state.observation_start = 0.0
    state.record_signal(1.0, gain=0.5)
    state.record_signal(2.0, gain=0.5)
    assert state.effective_interval(2.0) == pytest.approx(1.0)
    # after 50 silent seconds the receiver no longer looks troubled
    assert state.effective_interval(52.0) == pytest.approx(50.0)


def test_effective_interval_none_before_signals():
    state = ReceiverState("R1")
    assert state.effective_interval(10.0) is None


def test_srtt_default():
    state = ReceiverState("R1")
    assert state.srtt(0.25) == 0.25
    state.rtt.update(0.1)
    assert state.srtt(0.25) == pytest.approx(0.1)
