"""Property-based invariants of the RLA per-receiver state."""

from hypothesis import given, settings, strategies as st

from repro.rla.state import ReceiverState


ack_stream = st.lists(
    st.tuples(st.integers(0, 40),                      # cumulative ack
              st.lists(st.tuples(st.integers(0, 40), st.integers(1, 6)),
                       max_size=3)),                   # sack (start, width)
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ack_stream)
def test_property_newly_received_reported_exactly_once(stream):
    state = ReceiverState("R1")
    reported = []
    for ack, sack in stream:
        blocks = tuple((start, start + width) for start, width in sack)
        reported.extend(state.update_ack(ack, blocks))
    assert len(reported) == len(set(reported))  # no double counting
    for seq in reported:
        assert state.has(seq)


@settings(max_examples=60, deadline=None)
@given(ack_stream)
def test_property_last_ack_monotone(stream):
    state = ReceiverState("R1")
    last = 0
    for ack, sack in stream:
        blocks = tuple((start, start + width) for start, width in sack)
        state.update_ack(ack, blocks)
        assert state.last_ack >= last
        last = state.last_ack
        assert state.max_sacked >= state.last_ack - 1


@settings(max_examples=60, deadline=None)
@given(ack_stream, st.integers(1, 5))
def test_property_detected_losses_are_unreceived(stream, dupthresh):
    state = ReceiverState("R1")
    for ack, sack in stream:
        blocks = tuple((start, start + width) for start, width in sack)
        state.update_ack(ack, blocks)
        for seq in state.detect_losses(snd_nxt=100, dupthresh=dupthresh):
            assert not state.has(seq)
            assert seq + dupthresh <= state.max_sacked
    # every loss mark refers to a segment still missing
    for seq in state.lost_marks:
        assert not state.has(seq)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
def test_property_interval_ewma_positive(times):
    state = ReceiverState("R1")
    state.observation_start = 0.0
    now = 0.0
    for delta in times:
        now += delta
        state.record_signal(now, gain=0.125)
        assert state.interval_ewma is not None
        assert state.interval_ewma > 0
        assert state.effective_interval(now) >= state.interval_ewma - 1e-12
