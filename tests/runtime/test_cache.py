"""On-disk result cache: hits, misses, invalidation, atomicity."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ResultCache, RunMetrics, RunSpec

ECHO = "repro.runtime._testing:echo"


def _metrics(label="m"):
    return RunMetrics(label=label, wall_time_s=0.5, events=100)


def test_cache_path_must_be_a_directory(tmp_path):
    not_a_dir = tmp_path / "plain-file"
    not_a_dir.write_text("occupied")
    with pytest.raises(ConfigurationError, match="not a directory"):
        ResultCache(not_a_dir)


def test_miss_then_hit_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})
    assert cache.get(spec) is None
    cache.put(spec, {"answer": 42}, _metrics())
    entry = cache.get(spec)
    assert entry is not None
    assert entry.result == {"answer": 42}
    assert entry.metrics.events == 100
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1
    assert spec in cache


def test_different_spec_misses(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    cache.put(RunSpec(ECHO, {"x": 1}), "one", _metrics())
    assert cache.get(RunSpec(ECHO, {"x": 2})) is None


def test_code_version_invalidates(tmp_path):
    spec = RunSpec(ECHO, {"x": 1})
    ResultCache(tmp_path, code="old").put(spec, "stale", _metrics())
    assert ResultCache(tmp_path, code="new").get(spec) is None


def test_corrupt_entry_is_a_miss_and_evicted(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})
    cache.put(spec, "good", _metrics())
    entry_path = cache._entry_path(spec)
    entry_path.write_bytes(b"not a pickle")
    assert cache.get(spec) is None
    assert not entry_path.exists()


def test_clear(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    for x in range(3):
        cache.put(RunSpec(ECHO, {"x": x}), x, _metrics())
    assert cache.clear() == 3
    assert len(cache) == 0


def test_no_stray_temp_files(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    cache.put(RunSpec(ECHO, {"x": 1}), "v", _metrics())
    assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# orphaned temp-file sweep (crash between open and rename)
# ----------------------------------------------------------------------
def _orphan(tmp_path, name, age_seconds):
    """Plant a temp file whose mtime is age_seconds in the past."""
    import os
    import time

    path = tmp_path / name
    path.write_bytes(b"partial write from a dead process")
    stamp = time.time() - age_seconds
    os.utime(path, (stamp, stamp))
    return path


def test_init_sweeps_stale_orphaned_tmp_files(tmp_path):
    # Regression: a writer killed between mkstemp() and os.replace()
    # leaves an anonymous .tmp file that no later reader ever trusted —
    # but nothing ever deleted it either, so every crash permanently
    # leaked a file into the cache directory.
    stale = _orphan(tmp_path, "deadbeef.tmp", age_seconds=7200)
    cache = ResultCache(tmp_path, code="c1")
    assert not stale.exists()
    assert cache.swept_tmp == 1


def test_init_leaves_fresh_tmp_files_alone(tmp_path):
    # A sibling process may be mid-put right now: its seconds-old temp
    # file must never be raced.
    fresh = _orphan(tmp_path, "inflight.tmp", age_seconds=5)
    cache = ResultCache(tmp_path, code="c1")
    assert fresh.exists()
    assert cache.swept_tmp == 0


def test_sweep_ignores_real_entries(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})
    cache.put(spec, "keep", _metrics())
    _orphan(tmp_path, "old.tmp", age_seconds=7200)
    again = ResultCache(tmp_path, code="c1")
    assert again.swept_tmp == 1
    assert again.get(spec) is not None


def test_crash_during_put_leaves_no_trusted_state(tmp_path, monkeypatch):
    # Simulate the pickling step dying mid-write: put() must propagate,
    # remove its own temp file, and never publish the entry.
    import pickle as pickle_module

    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})

    def exploding_dump(*args, **kwargs):
        raise RuntimeError("simulated crash mid-write")

    monkeypatch.setattr(pickle_module, "dump", exploding_dump)
    with pytest.raises(RuntimeError):
        cache.put(spec, "half", _metrics())
    monkeypatch.undo()
    assert list(tmp_path.glob("*.tmp")) == []
    assert cache.get(spec) is None  # nothing was published


def test_snapshot_path_is_content_addressed(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    a = cache.snapshot_path(RunSpec(ECHO, {"x": 1}), 15.0)
    b = cache.snapshot_path(RunSpec(ECHO, {"x": 1}), 15.0)
    c = cache.snapshot_path(RunSpec(ECHO, {"x": 2}), 15.0)
    d = cache.snapshot_path(RunSpec(ECHO, {"x": 1}), 30.0)
    assert a == b
    assert len({a, c, d}) == 3
    assert a.name.endswith(".t15.ckpt")


def test_clear_removes_snapshots_too(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    cache.put(RunSpec(ECHO, {"x": 1}), "v", _metrics())
    cache.snapshot_path(RunSpec(ECHO, {"x": 1}), 5.0).write_bytes(b"ckpt")
    assert cache.clear() == 2
    assert list(tmp_path.iterdir()) == []
