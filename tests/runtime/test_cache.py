"""On-disk result cache: hits, misses, invalidation, atomicity."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ResultCache, RunMetrics, RunSpec

ECHO = "repro.runtime._testing:echo"


def _metrics(label="m"):
    return RunMetrics(label=label, wall_time_s=0.5, events=100)


def test_cache_path_must_be_a_directory(tmp_path):
    not_a_dir = tmp_path / "plain-file"
    not_a_dir.write_text("occupied")
    with pytest.raises(ConfigurationError, match="not a directory"):
        ResultCache(not_a_dir)


def test_miss_then_hit_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})
    assert cache.get(spec) is None
    cache.put(spec, {"answer": 42}, _metrics())
    entry = cache.get(spec)
    assert entry is not None
    assert entry.result == {"answer": 42}
    assert entry.metrics.events == 100
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1
    assert spec in cache


def test_different_spec_misses(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    cache.put(RunSpec(ECHO, {"x": 1}), "one", _metrics())
    assert cache.get(RunSpec(ECHO, {"x": 2})) is None


def test_code_version_invalidates(tmp_path):
    spec = RunSpec(ECHO, {"x": 1})
    ResultCache(tmp_path, code="old").put(spec, "stale", _metrics())
    assert ResultCache(tmp_path, code="new").get(spec) is None


def test_corrupt_entry_is_a_miss_and_evicted(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    spec = RunSpec(ECHO, {"x": 1})
    cache.put(spec, "good", _metrics())
    entry_path = cache._entry_path(spec)
    entry_path.write_bytes(b"not a pickle")
    assert cache.get(spec) is None
    assert not entry_path.exists()


def test_clear(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    for x in range(3):
        cache.put(RunSpec(ECHO, {"x": x}), x, _metrics())
    assert cache.clear() == 3
    assert len(cache) == 0


def test_no_stray_temp_files(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    cache.put(RunSpec(ECHO, {"x": 1}), "v", _metrics())
    assert list(tmp_path.glob("*.tmp")) == []
