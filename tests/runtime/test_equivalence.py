"""Parallel-vs-serial equivalence on the real experiment stack.

The acceptance property of the runtime layer: fanning runs out over a
process pool (or replaying them from the cache) yields per-run reports
*byte-identical* to the serial loop — compared here as pickles of each
run's report, the strongest practical notion of "same result".
"""

import pickle

from repro.experiments.fig7_droptail import run_fig7
from repro.experiments.sweeps import sweep_receiver_count
from repro.runtime import ResultCache


def _bytes(obj):
    return pickle.dumps(obj)


def test_sweep_parallel_matches_serial_per_run():
    kwargs = dict(counts=(2, 3), duration=6.0, warmup=3.0, seed=2)
    serial = sweep_receiver_count(**kwargs)
    parallel = sweep_receiver_count(workers=2, **kwargs)
    assert [_bytes(row) for row in serial] == [_bytes(row) for row in parallel]


def test_sweep_cached_matches_fresh(tmp_path):
    kwargs = dict(counts=(2,), duration=6.0, warmup=3.0, seed=2)
    cache = ResultCache(tmp_path)
    fresh = sweep_receiver_count(workers=2, cache=cache, **kwargs)
    outs = []
    replay = sweep_receiver_count(workers=2, cache=cache, outcomes=outs,
                                  **kwargs)
    assert all(o.cached for o in outs)
    assert _bytes(fresh) == _bytes(replay)
    assert _bytes(fresh[0]) == _bytes(sweep_receiver_count(**kwargs)[0])


def test_fig7_parallel_matches_serial_per_case():
    kwargs = dict(duration=6.0, warmup=3.0, seed=3, cases=(1, 5))
    serial = run_fig7(**kwargs)
    parallel = run_fig7(workers=2, **kwargs)
    assert list(serial) == list(parallel)
    for case in serial:
        assert _bytes(serial[case]) == _bytes(parallel[case])
        # engine stats rode along with the result
        assert parallel[case].stats["events"] > 0
        assert parallel[case].stats["peak_queue_depth"] > 0
