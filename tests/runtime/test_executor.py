"""Executor behaviour: fan-out, caching, retry, failure reporting."""

import os
import time

import pytest

from repro.errors import SimulationError
from repro.runtime import ResultCache, RunSpec, metrics_table, run_one, run_specs

ECHO = "repro.runtime._testing:echo"
BOOM = "repro.runtime._testing:boom"
FLAKY = "repro.runtime._testing:flaky"
HANG = "repro.runtime._testing:hang"
SNOOZE = "repro.runtime._testing:snooze"


def _echo_specs(n):
    return [RunSpec(ECHO, {"x": i, "events": 10 * (i + 1)}) for i in range(n)]


def test_serial_and_parallel_agree_in_order():
    specs = _echo_specs(5)
    serial = run_specs(specs, workers=1)
    parallel = run_specs(specs, workers=3)
    assert [o.result["params"] for o in serial] == \
           [o.result["params"] for o in parallel]
    assert [o.spec for o in parallel] == specs
    assert all(o.ok and not o.cached for o in parallel)


def test_parallel_actually_uses_other_processes():
    outs = run_specs(_echo_specs(4), workers=4)
    pids = {o.result["pid"] for o in outs}
    # at least one run landed off the parent process
    assert any(pid != os.getpid() for pid in pids)


def test_metrics_come_from_sim_stats():
    out = run_one(RunSpec(ECHO, {"x": 0, "events": 30}))
    assert out.metrics.events == 30
    assert out.metrics.drops == 1
    assert out.metrics.peak_queue_depth == 2
    assert out.metrics.wall_time_s >= 0.0
    table = metrics_table([out.metrics])
    assert "ev/s" in table and "1 runs" in table


def test_cache_hit_skips_execution(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    specs = _echo_specs(3)
    first = run_specs(specs, workers=2, cache=cache)
    second = run_specs(specs, workers=2, cache=cache)
    assert all(not o.cached for o in first)
    assert all(o.cached for o in second)
    # cached outcomes replay the stored result and original metrics
    for a, b in zip(first, second):
        assert a.result["params"] == b.result["params"]
        assert b.metrics.cached and b.attempts == 0
    # one changed point only misses that point
    changed = [specs[0], specs[1].with_params(x=99), specs[2]]
    third = run_specs(changed, workers=2, cache=cache)
    assert [o.cached for o in third] == [True, False, True]


def test_failed_run_is_cached_never(tmp_path):
    cache = ResultCache(tmp_path, code="c1")
    with pytest.raises(SimulationError):
        run_specs([RunSpec(BOOM, {"why": "nope"})], workers=1,
                  cache=cache, retries=0)
    assert len(cache) == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_failure_retry_succeeds(tmp_path, workers):
    marker = str(tmp_path / f"marker-{workers}")
    out = run_specs(
        [RunSpec(FLAKY, {"marker": marker})], workers=workers, retries=2,
    )[0]
    assert out.ok
    assert out.result == "recovered"
    assert out.attempts == 2
    assert out.metrics.attempts == 2


@pytest.mark.parametrize("workers", [1, 2])
def test_exhausted_retries_reported_not_dropped(workers):
    specs = [RunSpec(ECHO, {"x": 1}), RunSpec(BOOM, {"why": "always"})]
    outcomes = run_specs(specs, workers=workers, retries=1, strict=False)
    assert len(outcomes) == 2
    assert outcomes[0].ok
    failed = outcomes[1]
    assert not failed.ok
    assert failed.attempts == 2
    assert "boom" in failed.error
    assert failed.result is None
    # strict mode surfaces the same failure as an exception
    with pytest.raises(SimulationError, match="boom"):
        run_specs(specs, workers=workers, retries=1, strict=True)


def test_hung_worker_is_killed_and_reported():
    start = time.monotonic()
    outcomes = run_specs(
        [RunSpec(HANG, {"seconds": 60.0})],
        workers=2, timeout=1.0, retries=0, strict=False,
    )
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, "hung worker was not torn down"
    assert not outcomes[0].ok
    assert "hung" in outcomes[0].error


def test_workers_overlap_wall_clock():
    # Four 0.7 s sleep-bound runs over four workers must take well under
    # the 2.8 s a serial loop would — the executor genuinely overlaps
    # runs (sleep-bound so the check holds on single-core hosts too).
    specs = [RunSpec(SNOOZE, {"seconds": 0.7, "i": i}) for i in range(4)]
    start = time.monotonic()
    outcomes = run_specs(specs, workers=4)
    elapsed = time.monotonic() - start
    assert all(o.ok for o in outcomes)
    assert elapsed < 0.7 * len(specs) / 2, (
        f"no overlap: 4 parallel 0.7s runs took {elapsed:.2f}s")


def test_invalid_retries_rejected():
    with pytest.raises(SimulationError):
        run_specs(_echo_specs(1), retries=-1)


# ----------------------------------------------------------------------
# mid-run checkpointing through the executor
# ----------------------------------------------------------------------
def _tiny_scenario_specs(n=2):
    from repro.scenarios.catalog import get_scenario
    from repro.scenarios.runner import scenario_runspec

    return [scenario_runspec(get_scenario("tree-churn", duration=4.0,
                                          warmup=1.0, seed=seed))
            for seed in range(1, n + 1)]


def test_checkpoint_at_writes_snapshots_and_keeps_results(tmp_path):
    import pickle

    from repro.checkpoint import load

    specs = _tiny_scenario_specs()
    plain = run_specs(specs, workers=1)
    checkpointed = run_specs(specs, workers=1, checkpoint_at=2.0,
                             checkpoint_dir=str(tmp_path))
    assert (pickle.dumps([o.result for o in checkpointed])
            == pickle.dumps([o.result for o in plain]))
    snapshots = sorted(tmp_path.glob("*.t2.ckpt"))
    assert len(snapshots) == len(specs)
    assert all(load(path).sim_time == 2.0 for path in snapshots)


def test_checkpoint_snapshots_land_in_cache_by_default(tmp_path):
    cache = ResultCache(tmp_path)
    [spec] = _tiny_scenario_specs(1)
    run_specs([spec], workers=1, cache=cache, checkpoint_at=2.0)
    assert cache.snapshot_path(spec, 2.0).exists()


def test_checkpoint_at_without_destination_is_an_error():
    with pytest.raises(SimulationError, match="somewhere to write"):
        run_specs(_tiny_scenario_specs(1), workers=1, checkpoint_at=2.0)


def test_checkpoint_at_requires_registered_runner(tmp_path):
    # ECHO has no checkpoint runner; the failure must say so.
    spec = RunSpec(ECHO, {"x": 0, "events": 10})
    with pytest.raises(SimulationError, match="checkpoint"):
        run_specs([spec], workers=1, checkpoint_at=1.0,
                  checkpoint_dir=str(tmp_path), retries=0)
